#!/usr/bin/env python
"""Fluid data-plane scale benchmark: packet vs fluid-bg background.

Two gated measurements, reported to ``BENCH_scale.json``:

* ``fig3g_sweep`` -- the Figure 3(g) ping workload at several
  background loads, run under both data planes.  The per-packet plane
  pays one event chain per background packet; the fluid plane replaces
  the whole aggregate with a handful of rate re-solves, so the event
  count must collapse.  Gate: every sweep point's event-count
  reduction is at least ``EVENTS_GATE`` (20x).  The foreground ping
  RTTs from both planes ride along in the report so equivalence stays
  inspectable (the tolerance itself is asserted by
  ``tests/test_fluid.py``).

* ``scale_100k`` -- the headline scenario: a 100,000-UE population on
  one simulated EPC.  1,000 UEs attach individually (a concurrent
  attach storm over 20 eNodeBs, every control-plane message simulated)
  and each runs a live CI ping session; the other 99,000 UEs are
  aggregated into 99 fluid background flows of 1,000 UEs x 20 kbit/s
  each (~2 Gbit/s offered) sharing the same central gateways, with the
  core provisioned at 10 Gbit/s and the ACACIA OVS fast-path profile
  so the shared CPUs run loaded-but-unsaturated.  Gate: the population
  is >= 100,000, every attach succeeds, >= 99% of pings are answered,
  and the whole scenario fits ``WALL_BUDGET_S`` of wall clock.

Protocol: the sweep alternates timed passes over the two planes with
the cyclic garbage collector disabled (pyperf-style, as in
``tools/bench_sim.py``); reported times are medians.  ``--smoke``
shrinks the ping-train shape (not the 100k population -- the headline
gate is the point) for CI.

Usage::

    PYTHONPATH=src python tools/bench_scale.py [--repeats N] [--smoke]
                                               [--out PATH]
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                               # noqa: E402

from repro.core.config import NetworkConfig, SimConfig           # noqa: E402
from repro.core.network import MobileNetwork, Pinger             # noqa: E402
from repro.sdn.dataplane import ACACIA_OVS_PROFILE               # noqa: E402

#: Acceptance gate: minimum event-count reduction at every sweep point.
EVENTS_GATE = 20.0

#: Acceptance gate: the 100k-UE scenario must fit this much wall clock.
#: CI machines are slow and noisy; a local run finishes in seconds.
WALL_BUDGET_S = 120.0

#: The fig3g background sweep (Mbit/s offered through the shared GW-Us).
SWEEP_BG_MBPS = (40.0, 80.0, 100.0)

#: Ping-train shape per mode (the experiment preset's shape vs a
#: shrunken smoke shape; both regimes keep the warmup ahead of the
#: measured train).
SWEEP_SHAPES = {
    "full": dict(count=8, interval=0.4, warmup=6.0, tail=8.0),
    "smoke": dict(count=4, interval=0.4, warmup=2.0, tail=3.0),
}

#: 100k-UE scenario composition.
SCALE = dict(
    n_enbs=20,            # real attaches spread over these base stations
    n_real_ues=1_000,     # individually attached, one CI session each
    n_fluid_flows=99,     # aggregated background flows
    ues_per_flow=1_000,   # population folded into each fluid flow
    per_ue_bps=20e3,      # offered rate per aggregated UE
    core_bandwidth=10e9,  # provisioned core for the ~2 Gbit/s aggregate
    pings={"full": 5, "smoke": 3},
    ping_interval=0.5,
)


def run_fig3g(bg_mbps: float, data_plane: str, shape: dict) -> dict:
    """One fig3g ping trial (the ``ping`` workload's conventional
    rtt_ms=70 cell, replicated here so the simulator's event count can
    be reported without touching the workload's canonical output)."""
    config = NetworkConfig(seed=17, sim=SimConfig(data_plane=data_plane),
                           backhaul_delay=0.010, core_delay=0.010,
                           internet_delay=0.009)
    network = MobileNetwork(config)
    ue = network.add_ue()
    if bg_mbps > 0:
        network.add_background_load(rate=bg_mbps * 1e6).start()
    pinger = Pinger(network, ue, "internet", size=1000,
                    interval=shape["interval"])
    pinger.run(count=shape["count"], start=shape["warmup"])
    network.sim.run(until=shape["warmup"]
                    + shape["count"] * shape["interval"] + shape["tail"])
    pinger.close()
    median = (float(np.median(pinger.rtts)) if pinger.rtts
              else shape["warmup"] + shape["tail"])
    return {
        "median_rtt_ms": median * 1e3,
        "answered": len(pinger.rtts),
        "lost": pinger.lost,
        "events_run": network.sim.events_run,
    }


def run_sweep_point(bg_mbps: float, shape: dict, repeats: int) -> dict:
    """One fig3g load point, timed under both data planes."""
    results = {}
    times = {"packet": [], "fluid-bg": []}
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            for plane in ("packet", "fluid-bg"):
                start = time.perf_counter()
                out = run_fig3g(bg_mbps, plane, shape)
                times[plane].append(time.perf_counter() - start)
                previous = results.setdefault(plane, out)
                assert out == previous, \
                    f"non-deterministic {plane} run at bg={bg_mbps}"
            gc.collect()
    finally:
        gc.enable()
    median = {plane: statistics.median(runs)
              for plane, runs in times.items()}
    packet, fluid = results["packet"], results["fluid-bg"]
    return {
        "bg_mbps": bg_mbps,
        "events_run": {"packet": packet["events_run"],
                       "fluid-bg": fluid["events_run"]},
        "events_reduction": packet["events_run"] / fluid["events_run"],
        "median_s": median,
        "wall_speedup": median["packet"] / median["fluid-bg"],
        "median_rtt_ms": {"packet": packet["median_rtt_ms"],
                          "fluid-bg": fluid["median_rtt_ms"]},
        "answered": {"packet": packet["answered"],
                     "fluid-bg": fluid["answered"]},
    }


def run_scale_100k(pings: int) -> dict:
    """The 100k-UE scenario: real signalling + CI sessions for 1k UEs,
    the other 99k UEs as fluid background aggregates."""
    s = SCALE
    wall_start = time.perf_counter()
    config = NetworkConfig(seed=7, sim=SimConfig(data_plane="fluid-bg"),
                           core_bandwidth=s["core_bandwidth"],
                           central_profile=ACACIA_OVS_PROFILE)
    network = MobileNetwork(config)
    for i in range(1, s["n_enbs"]):
        network.add_enb(f"enb{i}")
    enb_names = list(network.enbs)

    procs = [network.add_ue_async(enb_name=enb_names[i % len(enb_names)])
             for i in range(s["n_real_ues"])]
    network.sim.run()
    attached = [proc.value for proc in procs
                if proc.finished and proc.value.attached]
    attach_wall = time.perf_counter() - wall_start

    for _ in range(s["n_fluid_flows"]):
        network.add_background_load(
            rate=s["ues_per_flow"] * s["per_ue_bps"]).start()

    pingers = []
    for i, ue in enumerate(attached):
        pinger = Pinger(network, ue, "internet", size=256,
                        interval=s["ping_interval"])
        # stagger the session starts so the trains interleave
        pinger.run(count=pings,
                   start=network.sim.now + 0.5 + (i % 100) * 0.005)
        pingers.append(pinger)
    network.sim.run()
    for pinger in pingers:
        pinger.close()

    rtts = [rtt for pinger in pingers for rtt in pinger.rtts]
    lost = sum(pinger.lost for pinger in pingers)
    wall = time.perf_counter() - wall_start
    population = (s["n_real_ues"]
                  + s["n_fluid_flows"] * s["ues_per_flow"])
    return {
        "population_ues": population,
        "real_ues": s["n_real_ues"],
        "aggregated_ues": s["n_fluid_flows"] * s["ues_per_flow"],
        "background_bps": (s["n_fluid_flows"] * s["ues_per_flow"]
                           * s["per_ue_bps"]),
        "attached": len(attached),
        "ci_sessions": len(pingers),
        "pings_answered": len(rtts),
        "pings_lost": lost,
        "median_rtt_ms": float(np.median(rtts)) * 1e3 if rtts else None,
        "p95_rtt_ms": (float(np.percentile(rtts, 95)) * 1e3
                       if rtts else None),
        "fluid_resolves": network.fluid.resolves,
        "events_run": network.sim.events_run,
        "sim_seconds": network.sim.now,
        "attach_wall_s": attach_wall,
        "wall_s": wall,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed alternating passes per sweep point")
    parser.add_argument("--smoke", action="store_true",
                        help="shrunken ping trains (CI); gates still apply")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_scale.json")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    mode = "smoke" if args.smoke else "full"
    shape = SWEEP_SHAPES[mode]
    report = {"mode": mode,
              "protocol": {"repeats": args.repeats,
                           "statistic": "median of alternating passes",
                           "gc": "disabled during timed passes"},
              "gates": {"events_reduction_min": EVENTS_GATE,
                        "wall_budget_s": WALL_BUDGET_S},
              "fig3g_sweep": {"shape": shape, "points": []},
              }

    failures = []
    for bg in SWEEP_BG_MBPS:
        point = run_sweep_point(bg, shape, args.repeats)
        report["fig3g_sweep"]["points"].append(point)
        print(f"fig3g bg={bg:5.0f} Mbit/s  events "
              f"{point['events_run']['packet']:>9d} -> "
              f"{point['events_run']['fluid-bg']:>6d}  "
              f"reduction {point['events_reduction']:8.0f}x  "
              f"wall speedup {point['wall_speedup']:6.1f}x")
        if point["events_reduction"] < EVENTS_GATE:
            failures.append(
                f"fig3g bg={bg}: events reduction "
                f"{point['events_reduction']:.1f}x < {EVENTS_GATE}x")

    scale = run_scale_100k(pings=SCALE["pings"][mode])
    report["scale_100k"] = scale
    print(f"scale_100k {scale['population_ues']:,} UEs  "
          f"({scale['real_ues']} attached + {scale['aggregated_ues']:,} "
          f"aggregated)  {scale['ci_sessions']} CI sessions  "
          f"median RTT {scale['median_rtt_ms']:.1f} ms  "
          f"wall {scale['wall_s']:.1f}s")
    if scale["population_ues"] < 100_000:
        failures.append(f"population {scale['population_ues']} < 100000")
    if scale["attached"] != scale["real_ues"]:
        failures.append(f"only {scale['attached']}/{scale['real_ues']} "
                        "UEs attached")
    offered = scale["ci_sessions"] * SCALE["pings"][mode]
    if scale["pings_answered"] < 0.99 * offered:
        failures.append(f"pings answered {scale['pings_answered']} "
                        f"< 99% of {offered}")
    if scale["wall_s"] > WALL_BUDGET_S:
        failures.append(f"wall {scale['wall_s']:.1f}s > "
                        f"{WALL_BUDGET_S:.0f}s budget")

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
