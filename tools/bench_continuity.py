#!/usr/bin/env python
"""Session-continuity benchmark: relocation policies across an edge fabric.

Runs the ``continuity`` workload -- a population of UEs sweeping across
a 3-site edge fabric while each keeps a live CI ping session -- under
both application-context relocation policies, and reports to
``BENCH_continuity.json``:

* ``policies`` -- one entry per relocation policy
  (``make-before-break`` / ``break-before-make``): handover and
  relocation counts, measured session-interruption statistics, context
  bytes moved over the inter-site WAN, and ping delivery.

Gates:

* **Determinism** -- every repeated pass of the same trial must return
  a byte-identical result (the workload is a pure function of the
  seed).
* **Continuity** -- every UE attaches, every session is alive at the
  end, and every session finished anchored on the *last* site, having
  relocated across each of the two site boundaries.
* **Make-before-break wins** -- MBB's mean interruption is strictly
  below BBM's: pre-copying the bulk of the context before the switch
  must beat moving all of it during the outage.

Protocol: alternating timed passes over the two policies with the
cyclic garbage collector disabled (pyperf-style, as in
``tools/bench_scale.py``); reported times are medians.  ``--smoke``
shrinks the UE population for CI; the gates still apply.

Usage::

    PYTHONPATH=src python tools/bench_continuity.py [--repeats N]
                                                    [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exp.spec import TrialSpec                             # noqa: E402
from repro.exp.workloads import get                              # noqa: E402

POLICIES = ("make-before-break", "break-before-make")

#: Scenario shape per mode.  Both modes sweep the same 3-site fabric
#: (two cells per site -> two cross-site boundaries per walk); smoke
#: only shrinks the walker population.
SHAPES = {
    "full": dict(n_ues=96, n_sites=3, enbs_per_site=2, context_kb=2000,
                 speed=25.0, stagger=0.05, tail=5.0),
    "smoke": dict(n_ues=12, n_sites=3, enbs_per_site=2, context_kb=2000,
                  speed=25.0, stagger=0.05, tail=5.0),
}

SEED = 43

#: Acceptance gate: minimum fraction of ping probes answered.
PINGS_GATE = 0.99


def run_policy(policy: str, shape: dict) -> dict:
    params = dict(shape)
    params["policy"] = policy
    trial = TrialSpec(experiment="bench-continuity", index=0,
                      workload="continuity", base_seed=SEED, seed=SEED,
                      params=tuple(sorted(params.items())))
    return get("continuity")(trial)


def run_policies(shape: dict, repeats: int) -> dict:
    """Both policies, timed alternating passes, determinism-checked."""
    results: dict[str, dict] = {}
    times: dict[str, list[float]] = {policy: [] for policy in POLICIES}
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            for policy in POLICIES:
                start = time.perf_counter()
                out = run_policy(policy, shape)
                times[policy].append(time.perf_counter() - start)
                previous = results.setdefault(policy, out)
                assert out == previous, \
                    f"non-deterministic continuity run under {policy}"
            gc.collect()
    finally:
        gc.enable()
    for policy in POLICIES:
        results[policy]["median_wall_s"] = statistics.median(times[policy])
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed alternating passes per policy")
    parser.add_argument("--smoke", action="store_true",
                        help="shrunken UE population (CI); gates still apply")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_continuity.json")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    mode = "smoke" if args.smoke else "full"
    shape = SHAPES[mode]
    boundaries = shape["n_sites"] - 1

    results = run_policies(shape, args.repeats)
    report = {"mode": mode,
              "seed": SEED,
              "shape": shape,
              "protocol": {"repeats": args.repeats,
                           "statistic": "median of alternating passes",
                           "gc": "disabled during timed passes"},
              "gates": {"determinism": "byte-identical repeated passes",
                        "pings_answered_min_fraction": PINGS_GATE,
                        "continuity": "all sessions alive on the last site",
                        "policy_order":
                            "MBB mean interruption < BBM mean interruption"},
              "policies": results,
              }

    failures = []
    for policy in POLICIES:
        out = results[policy]
        n_ues = shape["n_ues"]
        print(f"{policy:>17}  {out['attached']:>3d} UEs  "
              f"{out['handovers']:>3d} handovers  "
              f"{out['relocations_completed']:>3d} relocations  "
              f"interruption mean {out['interruption_ms']['mean']:6.2f} ms "
              f"p95 {out['interruption_ms']['p95']:6.2f} ms  "
              f"pings {out['pings_answered']}/{out['pings_answered'] + out['pings_lost']}  "
              f"wall {out['median_wall_s']:.1f}s")
        if out["attached"] != n_ues:
            failures.append(f"{policy}: only {out['attached']}/{n_ues} "
                            "UEs attached")
        if out["sessions_alive"] != n_ues:
            failures.append(f"{policy}: sessions alive "
                            f"{out['sessions_alive']}/{n_ues}")
        if out["sessions_on_last_site"] != n_ues:
            failures.append(f"{policy}: sessions on last site "
                            f"{out['sessions_on_last_site']}/{n_ues}")
        expected_relocations = boundaries * n_ues
        if out["relocations_completed"] != expected_relocations:
            failures.append(
                f"{policy}: relocations {out['relocations_completed']} "
                f"!= {expected_relocations} "
                f"({boundaries} boundaries x {n_ues} UEs)")
        offered = out["pings_answered"] + out["pings_lost"]
        if offered and out["pings_answered"] < PINGS_GATE * offered:
            failures.append(f"{policy}: pings answered "
                            f"{out['pings_answered']} < "
                            f"{PINGS_GATE:.0%} of {offered}")

    mbb = results["make-before-break"]["interruption_ms"]["mean"]
    bbm = results["break-before-make"]["interruption_ms"]["mean"]
    print(f"interruption: make-before-break {mbb:.2f} ms vs "
          f"break-before-make {bbm:.2f} ms "
          f"({bbm / mbb:.1f}x)" if mbb else "")
    if not mbb < bbm:
        failures.append(f"MBB mean interruption {mbb:.2f} ms not < "
                        f"BBM {bbm:.2f} ms")

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
