#!/usr/bin/env python3
"""Export the scenario-document schema to docs/scenario.schema.json.

The in-code :data:`repro.scenario.schema.SCHEMA` is generated from
the config dataclasses and the fault-type inventory, so this export
is the *published* form; ``tests/test_scenario.py`` fails when the
file goes stale, exactly like the API-doc staleness gate.

Usage: PYTHONPATH=src python tools/gen_scenario_schema.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.scenario.schema import SCHEMA  # noqa: E402


def render() -> str:
    return json.dumps(SCHEMA, indent=2, sort_keys=True) + "\n"


def main() -> int:
    out = ROOT / "docs" / "scenario.schema.json"
    out.write_text(render())
    print(f"wrote {out.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
