#!/usr/bin/env python
"""Wall-clock comparison of the matching engines on the Fig 11a workload.

Runs the paper's naive-scheme search workload -- 24 checkpoints x 5
frames at 960x720 against the whole 105-object store database -- through
both engines and reports per-frame wall-clock times plus the speedup of
the batched engine, asserting byte-identical match decisions along the
way.  Results land in ``BENCH_matcher.json`` at the repository root.

Protocol: engines alternate over ``--repeats`` timed passes (so CPU
frequency drift hits both alike) and the reported time is the median
pass.  The batched engine is timed in its two serving shapes:

* ``batch_single``  -- ``match_frame`` per frame (cold cache on the
  first frame, warm after);
* ``batch_block``   -- ``match_frames`` per checkpoint (the workload's
  natural shape: 5 frames per checkpoint share one screening GEMM).

Usage::

    PYTHONPATH=src python tools/bench_matcher.py [--repeats N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                          # noqa: E402

from repro.apps.retail import build_retail_database         # noqa: E402
from repro.apps.scenario import store_scenario              # noqa: E402
from repro.apps.workload import CheckpointWorkload          # noqa: E402
from repro.vision.batch import (BatchObjectMatcher,         # noqa: E402
                                CandidateMatrixCache)
from repro.vision.camera import R960x720                    # noqa: E402
from repro.vision.matcher import ObjectMatcher              # noqa: E402

SEED = 99
N_FEATURES = 60
WORKLOAD_SEED = 7


def decision_tuple(outcome):
    if outcome is None:
        return None
    return (outcome.object_name, outcome.good_matches,
            outcome.symmetric_matches, outcome.inliers,
            outcome.accepted, outcome.stage_reached)


def build_workload():
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=N_FEATURES)
    models = [record.model for record in db.all_records()]
    workload = CheckpointWorkload(scenario, db, seed=WORKLOAD_SEED,
                                  resolution=R960x720)
    blocks = [sample.frames for sample in workload.samples()]
    return models, blocks


def run_reference(models, blocks):
    matcher = ObjectMatcher(rng=np.random.default_rng(SEED))
    start = time.perf_counter()
    decisions = [decision_tuple(matcher.match_frame(frame, models))
                 for block in blocks for frame in block]
    return time.perf_counter() - start, decisions


def run_batch_single(models, blocks, cache=None):
    matcher = BatchObjectMatcher(rng=np.random.default_rng(SEED),
                                 cache=cache)
    start = time.perf_counter()
    decisions = [decision_tuple(matcher.match_frame(frame, models))
                 for block in blocks for frame in block]
    return time.perf_counter() - start, decisions, matcher.cache


def run_batch_block(models, blocks, cache=None):
    matcher = BatchObjectMatcher(rng=np.random.default_rng(SEED),
                                 cache=cache)
    start = time.perf_counter()
    decisions = []
    for block in blocks:
        decisions.extend(decision_tuple(outcome) for outcome in
                         matcher.match_frames(block, models))
    return time.perf_counter() - start, decisions, matcher.cache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed alternating passes per engine")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_matcher.json")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    models, blocks = build_workload()
    n_frames = sum(len(block) for block in blocks)
    total_descriptors = sum(m.descriptors.shape[0] for m in models)
    print(f"workload: {len(blocks)} checkpoints x {len(blocks[0])} frames "
          f"= {n_frames} frames at 960x720, {len(models)} objects "
          f"({total_descriptors} descriptors)")

    # warm-up pass per engine (also the decision-equivalence check)
    _, ref_decisions = run_reference(models, blocks)
    _, single_decisions, warm_cache = run_batch_single(models, blocks)
    _, block_decisions, _ = run_batch_block(models, blocks,
                                            cache=warm_cache)
    if single_decisions != ref_decisions:
        print("FATAL: batch match_frame decisions differ from reference")
        return 1
    if block_decisions != ref_decisions:
        print("FATAL: batch match_frames decisions differ from reference")
        return 1
    print(f"decision equivalence: all {n_frames} frame decisions "
          "byte-identical across engines")

    times = {"reference": [], "batch_single": [], "batch_block": []}
    cold_time, _, _ = run_batch_single(models, blocks,
                                       cache=CandidateMatrixCache())
    for _ in range(args.repeats):
        elapsed, decisions = run_reference(models, blocks)
        assert decisions == ref_decisions
        times["reference"].append(elapsed)
        elapsed, decisions, _ = run_batch_single(models, blocks,
                                                 cache=warm_cache)
        assert decisions == ref_decisions
        times["batch_single"].append(elapsed)
        elapsed, decisions, _ = run_batch_block(models, blocks,
                                                cache=warm_cache)
        assert decisions == ref_decisions
        times["batch_block"].append(elapsed)

    median = {name: statistics.median(runs) for name, runs in times.items()}
    per_frame = {name: value / n_frames * 1e3
                 for name, value in median.items()}
    speedup_single = median["reference"] / median["batch_single"]
    speedup_block = median["reference"] / median["batch_block"]

    print(f"reference:     {per_frame['reference']:8.3f} ms/frame")
    print(f"batch single:  {per_frame['batch_single']:8.3f} ms/frame "
          f"({speedup_single:.2f}x)")
    print(f"batch block:   {per_frame['batch_block']:8.3f} ms/frame "
          f"({speedup_block:.2f}x)")
    print(f"batch cold-cache first pass: {cold_time / n_frames * 1e3:.3f} "
          f"ms/frame")
    print(f"cache stats: {warm_cache.stats()}")

    report = {
        "workload": {
            "figure": "11a (naive scheme search space)",
            "checkpoints": len(blocks),
            "frames_per_checkpoint": len(blocks[0]),
            "frames": n_frames,
            "resolution": "960x720",
            "objects": len(models),
            "descriptors": total_descriptors,
            "workload_seed": WORKLOAD_SEED,
            "matcher_seed": SEED,
        },
        "protocol": {
            "repeats": args.repeats,
            "statistic": "median of alternating passes",
        },
        "times_s": times,
        "median_s": median,
        "per_frame_ms": per_frame,
        "cold_cache_pass_s": cold_time,
        "speedup": {
            "batch_single_vs_reference": speedup_single,
            "batch_block_vs_reference": speedup_block,
        },
        "decisions_identical": True,
        "cache": warm_cache.stats(),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if speedup_block < 5.0:
        print(f"WARNING: block speedup {speedup_block:.2f}x below the "
              "5x acceptance target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
