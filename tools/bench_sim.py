#!/usr/bin/env python
"""Simulator-core throughput benchmark: fast vs reference scheduler.

Runs three event-profile workloads through both schedulers and reports
events/sec plus the fast scheduler's speedup, asserting identical
behaviour along the way (event counts, packet counts and the final
clock must match bit-for-bit; the experiment presets must produce
byte-identical canonical JSON).  Results land in ``BENCH_sim.json`` at
the repository root.

Workload profiles:

* ``packet_flood``     -- hundreds of guarded CBR flows: periodic
  ticks, transmit/receive chains (the pooled-event fast path) plus the
  two canonical cancel-heavy timer bands riding alongside the data
  plane -- a per-flow delivery guard re-armed on every send and
  cancelled on every delivery (the retransmission-timer idiom of
  :mod:`repro.epc.signalling`'s RetryPolicy), and a per-flow idle
  timer reset on every delivery (the OVS ``idle_timeout`` idiom of
  the ACACIA data plane).  Those timers almost never fire, which is
  exactly the asymmetry the timer wheel exploits: a cancelled wheel
  event is discarded with a flag check when its bucket opens, while
  the reference heap pays two full O(log n) passes of Python-level
  ``Event.__lt__`` comparisons to carry and skip each tombstone;
* ``signalling_storm`` -- a concurrent attach storm plus dedicated
  bearers: process-driven control-plane signalling with retransmission
  timers armed and cancelled (the now-lane fast path);
* ``chaos_mix``        -- the storm under injected signalling loss with
  background CBR traffic: a mix of all event shapes.

Protocol: schedulers alternate over ``--repeats`` timed passes (so CPU
frequency drift hits both alike), the cyclic garbage collector is
disabled during timed passes (pyperf-style; both schedulers hold large
tombstone populations and GC pauses would add noise), and the reported
rate is from the median-time pass.  ``--smoke`` shrinks every workload
and skips the speedup gate: CI uses it to check determinism, not
performance.  ``--quick`` sits in between -- one timed pass over a
reduced flood, gate skipped -- for fast local iteration on scheduler
changes.  Every report carries a ``host`` provenance block so
cross-PR speedup comparisons are anchored to the hardware that
produced them.

Usage::

    PYTHONPATH=src python tools/bench_sim.py [--repeats N] [--smoke]
                                             [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import (NetworkConfig, ResilienceConfig,  # noqa: E402
                               SimConfig)
from repro.sim.engine import Simulator                           # noqa: E402
from repro.sim.link import Link                                  # noqa: E402
from repro.sim.node import Node                                  # noqa: E402
from repro.sim.packet import Packet                              # noqa: E402
from repro.sim.traffic import CBRSource                          # noqa: E402

#: Presets whose canonical JSON must be byte-identical across schedulers.
IDENTITY_PRESETS = ("smoke", "fig3g", "fig10b", "bearer-setup", "chaos")
SMOKE_IDENTITY_PRESETS = ("smoke",)

#: Acceptance gate: fast-scheduler speedup on the packet flood.
FLOOD_GATE = 3.0


# ---------------------------------------------------------------------------
# workload profiles -- each returns (events_run, behaviour_digest_dict)
# ---------------------------------------------------------------------------

class GuardedCBRSource(CBRSource):
    """CBR source with a per-flow delivery guard.

    The guard is re-armed on every send and cancelled when the peer
    acknowledges a delivery -- the retransmission-timer idiom (one RTO
    timer per connection, reset on progress).  On a healthy link the
    guard never fires, so it exists purely as scheduler load: armed,
    cancelled, discarded.
    """

    def __init__(self, sim, name: str, dst: str, rate: float,
                 packet_size: int, guard_timeout: float) -> None:
        super().__init__(sim, name, dst, rate=rate,
                         packet_size=packet_size)
        self.guard_timeout = guard_timeout
        self.guard = None
        self.guard_expiries = 0

    def _tick(self) -> None:
        packet = Packet(src=self.ip, dst=self.dst, size=self.packet_size)
        old = self.guard
        if old is not None:
            old.cancel()
        self.guard = self.sim.schedule(self.guard_timeout,
                                       self._guard_expired)
        self.send("out", packet)
        self._timer = self._timer.reschedule(self._interval)

    def _guard_expired(self) -> None:
        self.guard_expiries += 1
        self.guard = None


class AckingSink(Node):
    """Counts deliveries, cancels the sender's guard, resets an idle
    timer per flow (the OVS ``idle_timeout`` idiom: a rule's timer is
    pushed back on every matching packet and expires only when the
    flow goes quiet)."""

    def __init__(self, sim, name: str, source: GuardedCBRSource,
                 idle_timeout: float) -> None:
        super().__init__(sim, name)
        self.rx_count = 0
        self.bytes_received = 0
        self.source = source
        self.idle_timeout = idle_timeout
        self.idle_timer = None
        self.idle_expiries = 0

    def on_receive(self, packet, link) -> None:
        self.rx_count += 1
        self.bytes_received += packet.size
        guard = self.source.guard
        if guard is not None:
            guard.cancel()
            self.source.guard = None
        timer = self.idle_timer
        if timer is not None:
            timer.cancel()
        self.idle_timer = self.sim.schedule(self.idle_timeout, self._idle)

    def _idle(self) -> None:
        self.idle_expiries += 1
        self.idle_timer = None


def run_packet_flood(scheduler: str, n_sources: int = 800,
                     duration: float = 0.5, guard_timeout: float = 0.08,
                     idle_timeout: float = 0.1) -> tuple[int, dict]:
    """Guarded CBR flood: per-pair flows with live timer bands.

    Every packet drags two armed-then-cancelled timers through the
    scheduler, and the pending set holds on the order of a hundred
    thousand tombstones in steady state -- the event profile of a
    figure-scale data-plane experiment with resilience enabled.
    """
    sim = Simulator(scheduler=scheduler)
    sources = []
    sinks = []
    for i in range(n_sources):
        src = GuardedCBRSource(sim, f"src{i}", f"sink{i}", rate=8e6,
                               packet_size=1000,
                               guard_timeout=guard_timeout)
        sink = AckingSink(sim, f"sink{i}", src, idle_timeout=idle_timeout)
        link = Link(sim, f"l{i}", bandwidth=20e6, delay=0.002)
        src.attach("out", link)
        sink.attach("in", link)
        src.start(at=i * 2e-5)       # stagger so ticks spread over slots
        sources.append(src)
        sinks.append(sink)
    sim.run(until=duration)
    digest = {
        "events_run": sim.events_run,
        "now": sim.now,
        "rx_packets": sum(s.rx_count for s in sinks),
        "rx_bytes": sum(s.bytes_received for s in sinks),
        "guard_expiries": sum(s.guard_expiries for s in sources),
        "idle_expiries": sum(s.idle_expiries for s in sinks),
    }
    return sim.events_run, digest


def run_signalling_storm(scheduler: str, n_ues: int = 80) -> tuple[int, dict]:
    """Concurrent attach storm plus one dedicated bearer per UE."""
    from repro.core.network import MobileNetwork
    from repro.epc.entities import ServicePolicy

    config = NetworkConfig(seed=4242, sim=SimConfig(scheduler=scheduler))
    network = MobileNetwork(config)
    network.add_mec_site("mec")
    network.add_server("ci", site_name="mec", echo=True)
    network.pcrf.configure(ServicePolicy(service_id="svc", qci=3))
    server_ip = network.servers["ci"].ip

    attach_procs = [network.add_ue_async() for _ in range(n_ues)]
    network.sim.run()
    attached = [proc.value for proc in attach_procs if proc.value.attached]
    bearer_procs = [
        network.control_plane.activate_dedicated_bearer_async(
            ue, "svc", server_ip, "mec")
        for ue in attached]
    network.sim.run()
    digest = {
        "events_run": network.sim.events_run,
        "now": network.sim.now,
        "attached": len(attached),
        "bearers_ok": sum(1 for proc in bearer_procs
                          if proc.value.outcome in ("ok", "retried-ok")),
        "messages": network.fabric.messages_sent,
    }
    return network.sim.events_run, digest


def run_chaos_mix(scheduler: str, n_ues: int = 40,
                  tail: float = 3.0) -> tuple[int, dict]:
    """Attach storm under signalling loss with background CBR load."""
    from repro.core.network import MobileNetwork
    from repro.faults import ChannelLoss, FaultInjector, FaultPlan

    config = NetworkConfig(seed=1717,
                           resilience=ResilienceConfig(enabled=True),
                           sim=SimConfig(scheduler=scheduler))
    network = MobileNetwork(config)
    network.add_mec_site("mec")
    network.add_server("ci", site_name="mec", echo=True)
    FaultInjector(network, FaultPlan((
        ChannelLoss(channel="*", rate=0.05),))).arm()
    background = network.add_background_load(rate=40e6)
    background.start()

    attach_procs = [network.add_ue_async() for _ in range(n_ues)]
    network.sim.run(until=network.sim.now + tail)
    background.stop()                # let the control plane drain
    network.sim.run()
    digest = {
        "events_run": network.sim.events_run,
        "now": network.sim.now,
        "attached": sum(1 for proc in attach_procs
                        if proc.finished and proc.value.attached),
        "retransmissions": network.fabric.retransmissions,
        "drops": dict(sorted(network.fabric.drops.items())),
    }
    return network.sim.events_run, digest


WORKLOADS = {
    "packet_flood": run_packet_flood,
    "signalling_storm": run_signalling_storm,
    "chaos_mix": run_chaos_mix,
}

SMOKE_SIZES = {
    "packet_flood": dict(n_sources=50, duration=0.25),
    "signalling_storm": dict(n_ues=15),
    "chaos_mix": dict(n_ues=8, tail=1.0),
}

#: ``--quick``: big enough for a meaningful local speedup reading,
#: small enough to iterate on (single repeat, reduced flood).
QUICK_SIZES = {
    "packet_flood": dict(n_sources=200, duration=0.3),
    "signalling_storm": dict(n_ues=40),
    "chaos_mix": dict(n_ues=20, tail=2.0),
}


def host_provenance() -> dict:
    """Where a benchmark number came from: the hardware anchor every
    cross-PR speedup comparison needs."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def preset_digest(name: str, scheduler: str) -> str:
    """SHA-256 of a preset's canonical JSON under one scheduler."""
    from repro.exp.presets import preset
    from repro.exp.runner import ExperimentRunner

    os.environ["REPRO_SIM_SCHEDULER"] = scheduler
    try:
        result = ExperimentRunner(preset(name)).run()
    finally:
        del os.environ["REPRO_SIM_SCHEDULER"]
    return hashlib.sha256(result.canonical_json().encode()).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed alternating passes per scheduler "
                             "(default 5; 1 under --quick)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes, no speedup gate (CI)")
    parser.add_argument("--quick", action="store_true",
                        help="one repeat over a reduced flood, no "
                             "speedup gate (local iteration)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_sim.json")
    args = parser.parse_args(argv)
    if args.smoke and args.quick:
        parser.error("--smoke and --quick are mutually exclusive")
    if args.repeats is None:
        args.repeats = 1 if args.quick else 5
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.smoke:
        mode, sizes = "smoke", SMOKE_SIZES
    elif args.quick:
        mode, sizes = "quick", QUICK_SIZES
    else:
        mode, sizes = "full", {name: {} for name in WORKLOADS}

    report = {"mode": mode,
              "host": host_provenance(),
              "protocol": {"repeats": args.repeats,
                           "statistic": "median of alternating passes",
                           "gc": "disabled during timed passes"},
              "workloads": {}}
    speedups = {}
    for name, fn in WORKLOADS.items():
        kwargs = sizes[name]
        # behavioural-drift check: both schedulers must agree exactly
        events, fast_digest = fn("fast", **kwargs)
        _, ref_digest = fn("reference", **kwargs)
        if fast_digest != ref_digest:
            print(f"FATAL: {name} behaviour differs across schedulers")
            print(f"  fast:      {fast_digest}")
            print(f"  reference: {ref_digest}")
            return 1

        times = {"fast": [], "reference": []}
        gc.collect()
        gc.disable()
        try:
            for _ in range(args.repeats):
                for scheduler in ("fast", "reference"):
                    start = time.perf_counter()
                    got_events, digest = fn(scheduler, **kwargs)
                    times[scheduler].append(time.perf_counter() - start)
                    assert digest == ref_digest
                gc.collect()
        finally:
            gc.enable()
        median = {s: statistics.median(runs) for s, runs in times.items()}
        rates = {s: events / median[s] for s in median}
        speedups[name] = median["reference"] / median["fast"]
        print(f"{name:18s} {events:>9d} events  "
              f"fast {rates['fast']:>10.0f} ev/s  "
              f"reference {rates['reference']:>10.0f} ev/s  "
              f"speedup {speedups[name]:.2f}x")
        report["workloads"][name] = {
            "params": kwargs,
            "events_run": events,
            "behaviour_digest": ref_digest,
            "times_s": times,
            "median_s": median,
            "events_per_sec": rates,
            "speedup": speedups[name],
        }

    presets = (SMOKE_IDENTITY_PRESETS if args.smoke or args.quick
               else IDENTITY_PRESETS)
    identity = {}
    for name in presets:
        fast = preset_digest(name, "fast")
        ref = preset_digest(name, "reference")
        identity[name] = {"sha256": fast, "identical": fast == ref}
        status = "identical" if fast == ref else "DIFFERS"
        print(f"preset {name:14s} canonical JSON {status}")
        if fast != ref:
            print(f"FATAL: preset {name} canonical JSON differs "
                  "across schedulers")
            return 1
    report["preset_identity"] = identity

    # profile of one small flood pass, for the record
    sim = Simulator(scheduler="fast")
    src = GuardedCBRSource(sim, "s", "d", rate=8e6, packet_size=1000,
                           guard_timeout=0.08)
    sink = AckingSink(sim, "d", src, idle_timeout=0.1)
    link = Link(sim, "l", bandwidth=20e6, delay=0.002)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=2.0)
    report["sample_profile"] = sim.profile()

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not (args.smoke or args.quick) \
            and speedups["packet_flood"] < FLOOD_GATE:
        print(f"WARNING: packet_flood speedup "
              f"{speedups['packet_flood']:.2f}x below the "
              f"{FLOOD_GATE}x acceptance target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
