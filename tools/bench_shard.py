#!/usr/bin/env python
"""Sharded-execution benchmark: byte-identity gates + wall-clock speedup.

Two claims are checked, in this order of importance:

1. **Identity** -- sharded execution changes wall-clock only, never
   results.  The ``shard_fabric`` fleet is run ``sharding=off``
   (inline single process) and ``sharding=site`` (one OS process per
   edge site) and the canonical result digests must match exactly;
   every shipped experiment preset is additionally run through the
   degenerate single-shard path (:func:`repro.sim.shard.run_isolated`)
   and each trial's metrics must digest identically to the in-process
   run.  Identity failures are always fatal, on every host.

2. **Speedup** -- per-site shard processes beat the single process on
   a multi-core host.  The fleet alternates timed off/site passes
   (gc disabled, median statistic, the ``bench_sim.py`` protocol) and
   the full-mode gate requires ``SPEEDUP_GATE`` on the 4-site
   continuity-style fleet.  A conservative-window federation cannot
   run faster than its slowest shard, so the gate is only *enforced*
   when the host has at least as many CPUs as the fleet has shards;
   on smaller hosts the measured value is recorded with an explicit
   waiver (the ``host`` provenance block shows why) and CI -- which
   has the cores -- enforces the floor.

The full report (fleet timings, the fluid sharded profile standing in
for the million-UE configuration, preset identity digests) feeds the
``shard`` section of ``BENCH_scale.json``.

Usage::

    PYTHONPATH=src python tools/bench_shard.py [--repeats N] [--smoke]
                                               [--out PATH]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exp import workloads                                  # noqa: E402
from repro.exp.presets import PRESETS, preset                    # noqa: E402
from repro.exp.spec import TrialSpec                             # noqa: E402
from repro.sim.shard import canonical_digest, run_isolated       # noqa: E402

#: Full-mode acceptance gate: sharded speedup on the 4-site fleet,
#: enforced when the host has >= 4 CPUs.
SPEEDUP_GATE = 2.5

#: Smoke-mode floor: a 2-site fleet on a >= 2-CPU host must at least
#: clearly beat process overheads.
SMOKE_SPEEDUP_GATE = 1.15

#: The 4-site continuity-style fleet of the BENCH_scale gate: per-site
#: attach storm + CI ping trains + periodic cross-site context sync,
#: sized so one pass is seconds of single-core work.
FLEET_PARAMS = dict(n_sites=4, n_ues=12, wan_delay=0.05,
                    warmup=1.0, duration=10.0, tail=1.0,
                    ping_interval=0.02, sync_interval=0.25)

#: Smoke fleet: light, but with enough per-shard work (seconds, not
#: tenths) that on a 2-core host the parallel win clearly exceeds the
#: process spawn + window round-trip overheads the floor must absorb.
SMOKE_FLEET_PARAMS = dict(n_sites=2, n_ues=10, wan_delay=0.05,
                          warmup=1.0, duration=8.0, tail=1.0,
                          ping_interval=0.02, sync_interval=0.25)

#: The fluid sharded profile: 4 shards each carrying an aggregate
#: fluid background standing in for a 250k-UE population (the
#: ``million_ue_fluid`` scenario's scale split across the fabric),
#: plus a small per-packet foreground.  Recorded, not gated.
FLUID_FLEET_PARAMS = dict(n_sites=4, n_ues=4, wan_delay=0.05,
                          warmup=1.0, duration=10.0, tail=1.0,
                          ping_interval=0.1, sync_interval=0.5,
                          data_plane="fluid-bg", bg_mbps=400.0)


def host_provenance() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def fleet_trial(sharding: str, params: dict) -> TrialSpec:
    return TrialSpec(experiment="bench_shard", index=0,
                     workload="shard_fabric", base_seed=0, seed=1234,
                     params=(("sharding", sharding),)
                     + tuple(sorted(params.items())))


def bench_fleet(name: str, params: dict, repeats: int) -> dict:
    """Alternating off/site passes over one fleet; identity is fatal."""
    fn = workloads.get("shard_fabric")
    reference = fn(fleet_trial("off", params))
    ref_digest = canonical_digest(reference)

    times: dict[str, list[float]] = {"off": [], "site": []}
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            for sharding in ("off", "site"):
                start = time.perf_counter()
                result = fn(fleet_trial(sharding, params))
                times[sharding].append(time.perf_counter() - start)
                if canonical_digest(result) != ref_digest:
                    raise SystemExit(
                        f"FATAL: {name} sharding={sharding} result "
                        f"differs from the single-process run")
            gc.collect()
    finally:
        gc.enable()
    median = {s: statistics.median(runs) for s, runs in times.items()}
    speedup = median["off"] / median["site"]
    events = reference["events_run"]
    print(f"{name:14s} {params['n_sites']} sites  {events:>9d} events  "
          f"off {median['off']:.2f}s  site {median['site']:.2f}s  "
          f"speedup {speedup:.2f}x  digest {ref_digest[:12]}")
    return {
        "params": params,
        "events_run": events,
        "envelopes_sent": reference["envelopes_sent"],
        "behaviour_digest": ref_digest,
        "times_s": times,
        "median_s": median,
        "speedup": speedup,
    }


def preset_identity(names: tuple[str, ...]) -> dict:
    """Per-trial metrics digests: in-process vs the isolated shard path.

    Digests the workload *output* dicts, not the whole experiment
    JSON, so the comparison is about simulated behaviour, not
    provenance wrapping.
    """
    identity = {}
    for name in names:
        spec = preset(name)
        digests = []
        for trial in spec.trials():
            fn = workloads.get(trial.workload)
            direct = canonical_digest(fn(trial))
            isolated = canonical_digest(run_isolated(fn, trial))
            if direct != isolated:
                raise SystemExit(
                    f"FATAL: preset {name} trial {trial.index} differs "
                    f"between in-process and isolated execution")
            digests.append(direct)
        combined = canonical_digest(digests)
        identity[name] = {"trials": len(digests), "sha256": combined,
                          "identical": True}
        print(f"preset {name:14s} {len(digests):>3d} trials  "
              f"isolated execution identical  {combined[:12]}")
    return identity


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed alternating passes per backend")
    parser.add_argument("--smoke", action="store_true",
                        help="2-site fleet, smoke preset, modest "
                             "speedup floor (CI)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_shard.json")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    host = host_provenance()
    cpus = host["cpu_count"] or 1
    report = {"mode": "smoke" if args.smoke else "full",
              "host": host,
              "protocol": {"repeats": args.repeats,
                           "statistic": "median of alternating passes",
                           "gc": "disabled during timed passes"},
              "fleets": {}}

    if args.smoke:
        fleets = [("smoke_fleet", SMOKE_FLEET_PARAMS, SMOKE_SPEEDUP_GATE)]
        presets = ("smoke",)
    else:
        fleets = [("continuity_4site", FLEET_PARAMS, SPEEDUP_GATE),
                  ("fluid_4site", FLUID_FLEET_PARAMS, None)]
        presets = tuple(sorted(PRESETS))

    failures = []
    for name, params, gate in fleets:
        entry = bench_fleet(name, params, args.repeats)
        shards = params["n_sites"]
        entry["gate"] = gate
        if gate is None:
            entry["gated"] = False
        elif cpus >= shards:
            entry["gated"] = True
            if entry["speedup"] < gate:
                failures.append(
                    f"{name}: speedup {entry['speedup']:.2f}x below "
                    f"the {gate}x floor on a {cpus}-CPU host")
        else:
            entry["gated"] = False
            entry["waiver"] = (
                f"host has {cpus} CPU(s) < {shards} shards; a "
                f"conservative federation cannot beat its slowest "
                f"shard without a core per shard -- floor enforced "
                f"on >= {shards}-CPU hosts (CI)")
            print(f"  (speedup floor waived: {entry['waiver']})")
        report["fleets"][name] = entry

    report["preset_identity"] = preset_identity(presets)

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    for failure in failures:
        print(f"FAILED gate: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
