#!/usr/bin/env python
"""CI gate for the operator runtime: a compressed diurnal soak.

Runs the shipped ``diurnal_soak`` scenario twice through the
deterministic batch drive (:meth:`repro.ops.service.OpsService.run_batch`,
pacer off) with the day compressed into ``--duration`` simulated
seconds, and asserts the acceptance contract:

* **zero dropped CI sessions** -- every attached UE's edge session is
  still alive at the end of the day;
* **autoscaler activity** -- at least one ScaleUp *and* one ScaleDown
  (the diurnal curve plus flash crowds must actually exercise the
  policy);
* **determinism** -- the two runs produce byte-identical telemetry
  digests and byte-identical metrics digests;
* **batch equivalence** -- the scenario metrics under the operator
  runtime equal the plain ``scenario`` workload run (the ops layer is
  a pure observer of the network sim), excluding only ``events_run``
  (the operator machinery adds its own sim events).

Exit code 0 when every gate holds.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ops.service import OpsService            # noqa: E402
from repro.scenario.loader import load              # noqa: E402
from repro.scenario.runtime import execute          # noqa: E402

SCENARIO = "diurnal_soak"


def run_once(duration: float) -> tuple[dict, str]:
    service = OpsService(load(SCENARIO), duration=duration)
    summary = service.run_batch()
    return summary, service.metrics_digest(summary)


def batch_reference(duration: float) -> dict:
    spec = load(SCENARIO).compile()
    trial = spec.trials()[0]
    trial = dataclasses.replace(
        trial, params=trial.params + (("duration", float(duration)),))
    return execute(trial)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=600.0,
                        help="compressed day length in simulated "
                             "seconds (default 600)")
    args = parser.parse_args()

    gates: list[tuple[str, bool, str]] = []

    def gate(name: str, ok: bool, detail: str) -> None:
        gates.append((name, ok, detail))
        print(f"  [{'ok' if ok else 'FAIL'}] {name}: {detail}")

    print(f"ops soak smoke: {SCENARIO} at duration={args.duration:.0f}s")
    first, first_digest = run_once(args.duration)
    second, second_digest = run_once(args.duration)
    ops = first["ops"]

    gate("zero dropped CI sessions",
         ops["ci_sessions_dropped"] == 0 and first["session_failures"] == 0,
         f"dropped={ops['ci_sessions_dropped']} "
         f"failures={first['session_failures']} "
         f"alive={first['sessions_alive']}/{first['attached']}")
    gate("autoscaler scaled up",
         ops["scale_ups"] >= 1, f"scale_ups={ops['scale_ups']}")
    gate("autoscaler scaled down",
         ops["scale_downs"] >= 1, f"scale_downs={ops['scale_downs']}")
    gate("telemetry digest byte-identical across reruns",
         first["ops"]["telemetry_digest"]
         == second["ops"]["telemetry_digest"],
         first["ops"]["telemetry_digest"][:16])
    gate("metrics digest byte-identical across reruns",
         first_digest == second_digest, first_digest[:16])

    reference = batch_reference(args.duration)
    shared = {k: v for k, v in first.items()
              if k not in ("ops", "events_run")}
    ref_shared = {k: v for k, v in reference.items()
                  if k != "events_run"}
    gate("scenario metrics equal the plain batch run "
         "(sans events_run)", shared == ref_shared,
         f"ops events={first['events_run']} "
         f"batch events={reference['events_run']}")

    failed = [name for name, ok, _ in gates if not ok]
    if failed:
        print(f"\nFAILED: {failed}")
        print(json.dumps(first, indent=2, sort_keys=True,
                         default=str)[:4000])
        return 1
    print(f"\nall {len(gates)} gates green "
          f"(matches={ops['match_completed']}, "
          f"records={ops['telemetry_records']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
