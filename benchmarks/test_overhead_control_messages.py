"""Section 4 control-overhead analysis + the bearer-policy ablation.

Reproduces the measured release/re-establish sequence -- 15 messages,
2914 bytes, split SCTP 7 (1138 B) / GTPv2 4 (352 B) / OpenFlow 4
(1424 B) -- and the daily projections: 2.58 MB/device/day at 929
app-driven bearer events, ~20 MB at 7200 promotion events.

Ablation: ACACIA's on-demand dedicated bearers vs the strawman that
maintains (and therefore re-creates) a second always-on MEC bearer.
"""

import pytest

from repro.core.network import MobileNetwork
from repro.epc.entities import ServicePolicy
from repro.epc.overhead import (APP_DRIVEN_EVENTS_PER_DAY,
                                PROMOTION_EVENTS_PER_DAY, daily_overhead_mb)


def build():
    network = MobileNetwork()
    network.pcrf.configure(ServicePolicy("ar-retail", qci=7))
    network.add_mec_site("mec")
    network.add_server("ar-server", site_name="mec", echo=True)
    ue = network.add_ue()
    return network, ue


def release_reestablish_cycle(network, ue):
    release = network.control_plane.release_to_idle(ue)
    reestablish = network.control_plane.service_request(ue)
    return release.messages + reestablish.messages


def test_overhead_control_messages(report, benchmark):
    network, ue = build()
    messages = release_reestablish_cycle(network, ue)

    by_protocol: dict[str, list[int]] = {}
    for message in messages:
        entry = by_protocol.setdefault(message.protocol, [0, 0])
        entry[0] += 1
        entry[1] += message.size
    total_bytes = sum(m.size for m in messages)

    r = report("overhead_control_messages",
               "Sec 4: release + re-establish control overhead")
    r.table(["protocol", "messages", "bytes"],
            [[proto, c, b] for proto, (c, b) in sorted(by_protocol.items())]
            + [["TOTAL", len(messages), total_bytes]])
    r.line()
    r.line(f"app-driven ({APP_DRIVEN_EVENTS_PER_DAY}/day): "
           f"{daily_overhead_mb(total_bytes, APP_DRIVEN_EVENTS_PER_DAY):.2f}"
           f" MB/device/day")
    r.line(f"promotion-driven ({PROMOTION_EVENTS_PER_DAY}/day): "
           f"{daily_overhead_mb(total_bytes, PROMOTION_EVENTS_PER_DAY):.1f}"
           f" MB/device/day")

    assert len(messages) == 15
    assert total_bytes == 2914
    assert by_protocol["SCTP"] == [7, 1138]
    assert by_protocol["GTPv2"] == [4, 352]
    assert by_protocol["OpenFlow"] == [4, 1424]
    assert daily_overhead_mb(total_bytes, APP_DRIVEN_EVENTS_PER_DAY) == \
        pytest.approx(2.58, abs=0.01)
    assert daily_overhead_mb(total_bytes, PROMOTION_EVENTS_PER_DAY) == \
        pytest.approx(20.0, abs=0.1)

    def cycle():
        net, device = build()
        return release_reestablish_cycle(net, device)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


def test_ablation_bearer_policies(report, benchmark):
    """On-demand MEC bearers vs an always-on second bearer."""
    network, ue = build()

    # one ACACIA dedicated-bearer lifecycle (setup + teardown)
    setup = network.create_mec_bearer(ue, "ar-server")
    teardown = network.control_plane.deactivate_dedicated_bearer(
        ue, setup.bearer.ebi)
    acacia_session_bytes = setup.byte_count + teardown.byte_count

    # the default bearer's own release/re-establish cycle
    cycle_bytes = sum(m.size for m in release_reestablish_cycle(network, ue))

    # an always-on dedicated bearer doubles the per-event release +
    # re-establish machinery (two bearers to tear down and rebuild)
    always_on_daily = daily_overhead_mb(
        2 * cycle_bytes, APP_DRIVEN_EVENTS_PER_DAY)
    baseline_daily = daily_overhead_mb(
        cycle_bytes, APP_DRIVEN_EVENTS_PER_DAY)
    # ACACIA: default-bearer cycles plus a handful of app sessions/day
    app_sessions_per_day = 10
    acacia_daily = baseline_daily + (
        acacia_session_bytes * app_sessions_per_day) / (1024 ** 2)

    r = report("ablation_bearer_policies",
               "Ablation: daily control overhead by bearer policy "
               "(MB/device/day)")
    r.table(["policy", "MB/day"], [
        ["default bearer only (today's LTE)", f"{baseline_daily:.2f}"],
        ["always-on MEC bearer (strawman)", f"{always_on_daily:.2f}"],
        [f"ACACIA on-demand ({app_sessions_per_day} CI sessions/day)",
         f"{acacia_daily:.2f}"],
    ])
    r.line()
    r.line(f"one ACACIA session costs {acacia_session_bytes} bytes of "
           f"signalling (setup {setup.byte_count}, teardown "
           f"{teardown.byte_count})")

    assert acacia_daily < always_on_daily
    assert acacia_daily - baseline_daily < 0.1   # <0.1 MB of extra signalling

    benchmark.pedantic(build, rounds=1, iterations=1)
