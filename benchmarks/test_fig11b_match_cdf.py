"""Figure 11(b): CDF of the matching runtime at 960*720.

Per-checkpoint matching-time distributions for the three schemes on
both machines.  Paper shape: without pruning (Naive, i7) some frames
take over a second; ACACIA's distribution sits an order of magnitude
to the left.
"""

import numpy as np

from benchmarks.test_fig11a_search_space import (SCHEMES, build_context,
                                                 search_space_for)
from repro.vision.camera import R960x720
from repro.vision.costmodel import DEVICES

MACHINES = ["xeon-32core", "i7-8core"]


def test_fig11b_match_cdf(scenario, db, report, benchmark):
    localization, optimizer, samples = build_context(scenario, db)

    series = {}
    for machine in MACHINES:
        device = DEVICES[machine]
        for scheme in SCHEMES:
            times = []
            for sample in samples:
                space = search_space_for(scheme, localization, optimizer,
                                         sample.checkpoint.name)
                times.append(device.db_match_time(
                    R960x720, db_objects=space.size,
                    object_features=db.mean_nominal_features(
                        space.records)))
            series[(scheme, machine)] = np.sort(times)

    r = report("fig11b_match_cdf",
               "Figure 11(b): match-runtime percentiles (ms) at 960*720")
    rows = []
    for (scheme, machine), values in series.items():
        rows.append([
            f"{scheme} ({machine})",
            f"{np.percentile(values, 25) * 1e3:.0f}",
            f"{np.percentile(values, 50) * 1e3:.0f}",
            f"{np.percentile(values, 75) * 1e3:.0f}",
            f"{values.max() * 1e3:.0f}",
        ])
    r.table(["scheme (machine)", "p25", "p50", "p75", "max"], rows)

    # paper observations: naive on the i7 crosses 1 second for some
    # frames; ACACIA's whole distribution is far below
    assert series[("naive", "i7-8core")].max() > 0.5
    assert series[("acacia", "i7-8core")].max() < \
        series[("naive", "i7-8core")].min()
    # first-order stochastic dominance of acacia over rxpower over naive
    for machine in MACHINES:
        acacia = series[("acacia", machine)]
        rx = series[("rxpower", machine)]
        naive = series[("naive", machine)]
        assert np.median(acacia) < np.median(rx) < np.median(naive)

    benchmark(lambda: DEVICES["i7-8core"].db_match_time(R960x720, 105))
