"""Figure 11(a): object-matching time by search scheme, machine and
resolution -- plus the accuracy side-experiment.

24 checkpoints x 5 frames against the 105-object database.  Paper
shape: ACACIA (sub-section pruning) up to ~5x faster than Naive and
~2x faster than rxPower; the Xeon beats the i7; Naive and ACACIA match
every frame while rxPower suffers a boundary false negative.
"""

import numpy as np

from repro.apps.retail import landmark_map_for
from repro.apps.workload import CheckpointWorkload
from repro.core.localization_manager import LocalizationManager
from repro.core.optimizer import SearchSpaceOptimizer
from repro.d2d.radio import RadioModel
from repro.localization.pathloss import calibrate_from_radio
from repro.vision.camera import R720x480, R960x720, R1280x720
from repro.vision.costmodel import DEVICES

SCHEMES = ["acacia", "rxpower", "naive"]
MACHINES = ["i7-8core", "xeon-32core"]
RESOLUTIONS = [R720x480, R960x720, R1280x720]
FRAMES_PER_CHECKPOINT = 5


def build_context(scenario, db, seed=31):
    """Localisation state per checkpoint, from one observation round."""
    radio = RadioModel()
    rng = np.random.default_rng(seed)
    regression = calibrate_from_radio(radio, rng)
    localization = LocalizationManager(landmark_map_for(scenario,
                                                        regression))
    workload = CheckpointWorkload(scenario, db, radio=radio, seed=seed)
    samples = []
    for cp in scenario.checkpoints:
        sample = workload.sample(cp)
        # the user stands at the checkpoint through three discovery
        # periods; the tracker's EWMA smooths the shadowing noise
        for round_index in range(3):
            observations = workload.landmark_observations(cp.position)
            for landmark, rx_power in observations.items():
                localization.report(cp.name, landmark, rx_power,
                                    float(round_index))
        samples.append(sample)
    optimizer = SearchSpaceOptimizer(db, scenario)
    return localization, optimizer, samples


def search_space_for(scheme, localization, optimizer, cp_name):
    if scheme == "naive":
        return optimizer.naive()
    if scheme == "rxpower":
        return optimizer.rxpower(
            localization.strongest_landmarks(cp_name, now=1.0))
    location = localization.location(cp_name, now=1.0)
    return optimizer.acacia(
        location, localization.strongest_landmarks(cp_name, now=1.0))


def test_fig11a_search_space(scenario, db, report, benchmark):
    localization, optimizer, samples = build_context(scenario, db)

    # --- timing table (cost model over the real pruned search spaces)
    rows = []
    mean_times = {}
    for machine in MACHINES:
        device = DEVICES[machine]
        for resolution in RESOLUTIONS:
            row = [f"{machine} ({resolution})"]
            for scheme in SCHEMES:
                times = []
                for sample in samples:
                    space = search_space_for(
                        scheme, localization, optimizer,
                        sample.checkpoint.name)
                    t = device.db_match_time(
                        resolution, db_objects=space.size,
                        object_features=db.mean_nominal_features(
                            space.records))
                    times.extend([t] * FRAMES_PER_CHECKPOINT)
                mean = float(np.mean(times))
                mean_times[(machine, resolution, scheme)] = mean
                row.append(f"{mean * 1e3:.0f}")
            rows.append(row)

    r = report("fig11a_search_space",
               "Figure 11(a): mean matching time (ms) by scheme")
    r.table(["machine (resolution)"] + SCHEMES, rows)

    # --- accuracy: is the true object inside each scheme's space?
    misses = {scheme: [] for scheme in SCHEMES}
    for sample in samples:
        for scheme in SCHEMES:
            space = search_space_for(scheme, localization, optimizer,
                                     sample.checkpoint.name)
            names = {record.name for record in space.records}
            if sample.record.name not in names:
                misses[scheme].append(sample.checkpoint.name)
    r.line()
    for scheme in SCHEMES:
        r.line(f"{scheme}: true object pruned away at "
               f"{len(misses[scheme])}/24 checkpoints "
               f"{misses[scheme] if misses[scheme] else ''}")

    # paper shape: ACACIA up to ~5x vs naive, ~2x vs rxPower
    for machine in MACHINES:
        for resolution in RESOLUTIONS:
            naive = mean_times[(machine, resolution, "naive")]
            rx = mean_times[(machine, resolution, "rxpower")]
            acacia = mean_times[(machine, resolution, "acacia")]
            assert 3.0 <= naive / acacia <= 8.0
            assert 1.2 <= rx / acacia <= 3.5
            assert rx < naive
    # Xeon faster than i7 at every point
    for resolution in RESOLUTIONS:
        for scheme in SCHEMES:
            assert mean_times[("xeon-32core", resolution, scheme)] < \
                mean_times[("i7-8core", resolution, scheme)]
    # naive and acacia never lose the true object; rxPower may miss a
    # boundary checkpoint or two
    assert misses["naive"] == []
    assert misses["acacia"] == []
    assert len(misses["rxpower"]) <= 3

    benchmark.pedantic(build_context, args=(scenario, db), rounds=1,
                       iterations=1)
