"""Figure 11(a): object-matching time by search scheme, machine and
resolution -- plus the accuracy side-experiment.

24 checkpoints x 5 frames against the 105-object database.  Paper
shape: ACACIA (sub-section pruning) up to ~5x faster than Naive and
~2x faster than rxPower; the Xeon beats the i7; Naive and ACACIA match
every frame while rxPower suffers a boundary false negative.

The measurement itself is the declarative ``fig11a`` preset (see
:mod:`repro.exp.presets`) driven through the experiment runner, so
``python -m repro exp run fig11a`` regenerates exactly these numbers.
"""

from repro.exp import ExperimentRunner, preset, run_trial
from repro.vision.camera import R720x480, R960x720, R1280x720

SCHEMES = ["acacia", "rxpower", "naive"]
MACHINES = ["i7-8core", "xeon-32core"]
RESOLUTIONS = [R720x480, R960x720, R1280x720]


def test_fig11a_search_space(report, benchmark):
    spec = preset("fig11a")
    outcome = ExperimentRunner(spec).run()
    assert outcome.ok, [f.error for f in outcome.failures()]
    metrics = outcome.metrics_by("machine")

    # --- timing table (cost model over the real pruned search spaces)
    rows = []
    mean_times = {}
    for machine in MACHINES:
        per_machine = metrics[(machine,)]["mean_ms"]
        for resolution in RESOLUTIONS:
            row = [f"{machine} ({resolution})"]
            for scheme in SCHEMES:
                mean = per_machine[f"{resolution}|{scheme}"] / 1e3
                mean_times[(machine, resolution, scheme)] = mean
                row.append(f"{mean * 1e3:.0f}")
            rows.append(row)

    r = report("fig11a_search_space",
               "Figure 11(a): mean matching time (ms) by scheme")
    r.table(["machine (resolution)"] + SCHEMES, rows)

    # --- accuracy: is the true object inside each scheme's space?
    # (scheme accuracy is machine-independent; report the first cell)
    first = metrics[(MACHINES[0],)]
    misses = first["misses"]
    checkpoints = first["checkpoints"]
    r.line()
    for scheme in SCHEMES:
        r.line(f"{scheme}: true object pruned away at "
               f"{len(misses[scheme])}/{checkpoints} checkpoints "
               f"{misses[scheme] if misses[scheme] else ''}")

    # paper shape: ACACIA up to ~5x vs naive, ~2x vs rxPower
    for machine in MACHINES:
        for resolution in RESOLUTIONS:
            naive = mean_times[(machine, resolution, "naive")]
            rx = mean_times[(machine, resolution, "rxpower")]
            acacia = mean_times[(machine, resolution, "acacia")]
            assert 3.0 <= naive / acacia <= 8.0
            assert 1.2 <= rx / acacia <= 3.5
            assert rx < naive
    # Xeon faster than i7 at every point
    for resolution in RESOLUTIONS:
        for scheme in SCHEMES:
            assert mean_times[("xeon-32core", resolution, scheme)] < \
                mean_times[("i7-8core", resolution, scheme)]
    # naive and acacia never lose the true object; rxPower may miss a
    # boundary checkpoint or two
    assert misses["naive"] == []
    assert misses["acacia"] == []
    assert len(misses["rxpower"]) <= 3

    i7_trial = next(t for t in spec.trials()
                    if t.param_dict["machine"] == "i7-8core")
    benchmark.pedantic(run_trial, args=(i7_trial,), rounds=1,
                       iterations=1)
