"""Figure 10(b): latency vs background traffic for the three designs.

* Conventional EPC -- distant shared gateways (~70 ms baseline);
* EPC with MEC -- gateways+server co-located with the eNodeB (~13 ms
  baseline) but the data path is still shared with background traffic;
* ACACIA -- dedicated bearer onto local split GW-Us, background load
  stays on the central gateways.

Paper shape: below saturation the MEC server's proximity dominates;
at/over ~90-100 Mbps the two shared designs explode while ACACIA stays
flat at its low baseline.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig
from repro.core.network import MobileNetwork, Pinger
from repro.epc.entities import ServicePolicy

BG_RATES_MBPS = [0, 40, 80, 100]
WARMUP = 6.0
PINGS = 8
INTERVAL = 0.4


def _run_pings(network, ue, server_name, bg_mbps):
    if bg_mbps > 0:
        bg = network.add_background_load(rate=bg_mbps * 1e6)
        bg.start()
    pinger = Pinger(network, ue, server_name, size=1000, interval=INTERVAL)
    pinger.run(count=PINGS, start=WARMUP)
    network.sim.run(until=WARMUP + PINGS * INTERVAL + 8.0)
    if not pinger.rtts:
        return WARMUP + 8.0     # replies trapped behind the queue
    return float(np.median(pinger.rtts))


def measure_conventional(bg_mbps):
    network = MobileNetwork(NetworkConfig(seed=23))
    ue = network.add_ue()
    return _run_pings(network, ue, "internet", bg_mbps)


def measure_mec_shared(bg_mbps):
    config = NetworkConfig(backhaul_delay=0.0006, core_delay=0.0004,
                           internet_delay=0.0002, seed=23)
    network = MobileNetwork(config)
    ue = network.add_ue()
    return _run_pings(network, ue, "internet", bg_mbps)


def measure_acacia(bg_mbps):
    network = MobileNetwork(NetworkConfig(seed=23))
    network.pcrf.configure(ServicePolicy("ar", qci=7))
    network.add_mec_site("mec")
    network.add_server("mec-server", site_name="mec", echo=True)
    ue = network.add_ue()
    network.create_mec_bearer(ue, "mec-server", service_id="ar")
    return _run_pings(network, ue, "mec-server", bg_mbps)


SYSTEMS = [
    ("Conventional EPC", measure_conventional),
    ("EPC with MEC", measure_mec_shared),
    ("ACACIA", measure_acacia),
]


def test_fig10b_isolation(report, benchmark):
    results = {}
    rows = []
    for label, fn in SYSTEMS:
        row = [label]
        for bg in BG_RATES_MBPS:
            latency = fn(bg)
            results[(label, bg)] = latency
            row.append(f"{latency * 1e3:.1f}")
        rows.append(row)

    r = report("fig10b_isolation",
               "Figure 10(b): median latency (ms) vs background traffic")
    r.table(["system"] + [f"{bg} Mbps" for bg in BG_RATES_MBPS], rows)

    # below saturation, server location dominates: MEC ~ ACACIA << EPC
    assert results[("EPC with MEC", 0)] < 0.3 * \
        results[("Conventional EPC", 0)]
    assert results[("ACACIA", 0)] == pytest.approx(
        results[("EPC with MEC", 0)], rel=0.5)

    # at saturation the shared designs explode...
    assert results[("Conventional EPC", 100)] > \
        10 * results[("Conventional EPC", 0)]
    assert results[("EPC with MEC", 100)] > \
        10 * results[("EPC with MEC", 0)]
    # ...while ACACIA's isolated bearer is unaffected
    assert results[("ACACIA", 100)] == pytest.approx(
        results[("ACACIA", 0)], rel=0.5)
    assert results[("ACACIA", 100)] < 0.020

    benchmark.pedantic(measure_acacia, args=(0,), rounds=1, iterations=1)
