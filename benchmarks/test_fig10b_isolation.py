"""Figure 10(b): latency vs background traffic for the three designs.

* Conventional EPC -- distant shared gateways (~70 ms baseline);
* EPC with MEC -- gateways+server co-located with the eNodeB (~13 ms
  baseline) but the data path is still shared with background traffic;
* ACACIA -- dedicated bearer onto local split GW-Us, background load
  stays on the central gateways.

Paper shape: below saturation the MEC server's proximity dominates;
at/over ~90-100 Mbps the two shared designs explode while ACACIA stays
flat at its low baseline.

The measurement itself is the declarative ``fig10b`` preset (see
:mod:`repro.exp.presets`) driven through the experiment runner, so
``python -m repro exp run fig10b`` regenerates exactly these numbers.
"""

import pytest

from repro.exp import ExperimentRunner, preset, run_trial

SYSTEM_LABELS = {"conventional": "Conventional EPC",
                 "mec-shared": "EPC with MEC",
                 "acacia": "ACACIA"}
BG_RATES_MBPS = [0, 40, 80, 100]


def test_fig10b_isolation(report, benchmark):
    spec = preset("fig10b")
    outcome = ExperimentRunner(spec).run()
    assert outcome.ok, [f.error for f in outcome.failures()]
    metrics = outcome.metrics_by("system", "bg_mbps")

    results = {}
    rows = []
    for system, label in SYSTEM_LABELS.items():
        row = [label]
        for bg in BG_RATES_MBPS:
            latency = metrics[(system, bg)]["median_rtt_ms"] / 1e3
            results[(label, bg)] = latency
            row.append(f"{latency * 1e3:.1f}")
        rows.append(row)

    r = report("fig10b_isolation",
               "Figure 10(b): median latency (ms) vs background traffic")
    r.table(["system"] + [f"{bg} Mbps" for bg in BG_RATES_MBPS], rows)

    # below saturation, server location dominates: MEC ~ ACACIA << EPC
    assert results[("EPC with MEC", 0)] < 0.3 * \
        results[("Conventional EPC", 0)]
    assert results[("ACACIA", 0)] == pytest.approx(
        results[("EPC with MEC", 0)], rel=0.5)

    # at saturation the shared designs explode...
    assert results[("Conventional EPC", 100)] > \
        10 * results[("Conventional EPC", 0)]
    assert results[("EPC with MEC", 100)] > \
        10 * results[("EPC with MEC", 0)]
    # ...while ACACIA's isolated bearer is unaffected
    assert results[("ACACIA", 100)] == pytest.approx(
        results[("ACACIA", 0)], rel=0.5)
    assert results[("ACACIA", 100)] < 0.020

    quiet_acacia = next(t for t in spec.trials()
                        if t.param_dict["system"] == "acacia"
                        and t.param_dict["bg_mbps"] == 0)
    benchmark.pedantic(run_trial, args=(quiet_acacia,), rounds=1,
                       iterations=1)
