"""Figure 3(e): OnePlus One camera preview FPS per resolution.

Paper shape: 30 FPS at low resolutions falling to 10 FPS at 1920*1080.
"""

from repro.vision.camera import (PREVIEW_FPS, R320x240, R1920x1080,
                                 CameraModel)


def test_fig3e_camera_fps(report, benchmark):
    camera = CameraModel()
    ordered = sorted(PREVIEW_FPS, key=lambda r: r.pixels)
    rows = [[str(res), f"{camera.preview_fps(res):.0f}"]
            for res in ordered]

    r = report("fig3e_camera_fps",
               "Figure 3(e): camera preview FPS by resolution (One+ One)")
    r.table(["resolution", "fps"], rows)

    assert camera.preview_fps(R320x240) == 30.0
    assert camera.preview_fps(R1920x1080) == 10.0
    fps = [camera.preview_fps(res) for res in ordered]
    assert fps == sorted(fps, reverse=True)

    benchmark(camera.preview_fps, R1920x1080)
