"""Figure 3(d): LTE uplink bandwidth to EC2 regions by signal quality.

Paper shape: ~12 Mbps peak to California at excellent signal, roughly
half at fair signal, decreasing with region distance.
"""

from repro.sim.wan import LTE_WAN_PROFILES


def test_fig3d_ul_bandwidth(report, benchmark):
    rows = []
    for name, profile in LTE_WAN_PROFILES.items():
        rows.append([
            name,
            f"{profile.ul_bandwidth('excellent') / 1e6:.1f}",
            f"{profile.ul_bandwidth('fair') / 1e6:.1f}",
        ])

    r = report("fig3d_ul_bandwidth",
               "Figure 3(d): uplink bandwidth (Mbps) by region and signal")
    r.table(["region", "excellent (4/4 bars)", "fair (2/4 bars)"], rows)

    ca = LTE_WAN_PROFILES["ec2-california"]
    assert ca.ul_bandwidth("excellent") == 12e6
    for profile in LTE_WAN_PROFILES.values():
        assert profile.ul_bandwidth("fair") < \
            profile.ul_bandwidth("excellent")

    benchmark(ca.ul_bandwidth, "excellent")
