"""Figure 6: SNR and rxPower along a walk past three landmarks.

Paper shape: rxPower peaks as the subscriber passes each landmark and
spans ~50 dB, correlating strongly with (negative log) distance; SNR is
clamped to a ~25 dB decoding span and correlates poorly -- the reason
ACACIA localises on rxPower.
"""

import math

import numpy as np

from repro.apps.scenario import figure6_scenario
from repro.d2d.channel import D2DChannel, Publisher, Subscriber
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import DiscoveryMessage
from repro.d2d.radio import RadioModel
from repro.sim.engine import Simulator

PERIOD = 10.0


def run_walk():
    scenario, walk = figure6_scenario()
    sim = Simulator()
    rng = np.random.default_rng(6)
    channel = D2DChannel(sim, RadioModel(), rng=rng)
    ns = ExpressionNamespace()

    subscriber = Subscriber("walker", lambda: walk.position_at(sim.now))
    trace: list[tuple[float, str, float, float, float]] = []

    def on_observation(observation):
        position = walk.position_at(sim.now)
        lm_pos = scenario.landmarks[observation.landmark]
        trace.append((sim.now, observation.landmark, observation.rx_power,
                      observation.snr, math.dist(position, lm_pos)))

    subscriber.modem.subscribe("all", ns.service_filter("walk-demo"),
                               on_observation)
    channel.add_subscriber(subscriber)
    for name, position in scenario.landmarks.items():
        message = DiscoveryMessage(
            publisher_id=name, service_name="walk-demo",
            code=ns.code("walk-demo", name), payload=f"landmark={name}")
        channel.add_publisher(Publisher(name, position, message,
                                        period=PERIOD), start=0.0)
    sim.run(until=walk.duration)
    return scenario, walk, trace


def test_fig6_lte_direct_trace(report, benchmark):
    scenario, walk, trace = run_walk()

    r = report("fig6_lte_direct_trace",
               "Figure 6: rxPower/SNR trace along the 3-landmark walk")
    r.line(f"walk duration {walk.duration:.0f}s, discovery period "
           f"{PERIOD:.0f}s, {len(trace)} observations")
    r.line()
    sample_rows = [[f"{t:.0f}", lm, f"{rx:.1f}", f"{snr:.1f}", f"{d:.1f}"]
                   for t, lm, rx, snr, d in trace[::9]]
    r.table(["t (s)", "landmark", "rxPower (dBm)", "SNR (dB)",
             "distance (m)"], sample_rows)

    rx = np.array([row[2] for row in trace])
    snr = np.array([row[3] for row in trace])
    log_d = np.log10([max(row[4], 0.5) for row in trace])

    rx_span = rx.max() - rx.min()
    snr_span = snr.max() - snr.min()
    corr_rx = float(np.corrcoef(rx, log_d)[0, 1])
    corr_snr = float(np.corrcoef(snr, log_d)[0, 1])
    r.line()
    r.line(f"rxPower span {rx_span:.1f} dB, corr(rx, log d) = {corr_rx:.2f}")
    r.line(f"SNR     span {snr_span:.1f} dB, corr(snr, log d) = {corr_snr:.2f}")

    # the paper's argument, quantified:
    assert rx_span > 35.0                       # wide dynamic range
    assert snr_span <= 25.0                     # clamped decoder span
    assert corr_rx < -0.85                      # strong distance correlation
    assert abs(corr_snr) < abs(corr_rx)         # SNR is the worse ranger

    # rxPower peaks in time must align with the landmark pass-bys
    for landmark, lm_pos in scenario.landmarks.items():
        rows = [row for row in trace if row[1] == landmark]
        peak_time = max(rows, key=lambda row: row[2])[0]
        dist_at_peak = math.dist(walk.position_at(peak_time), lm_pos)
        closest = min(math.dist(walk.position_at(t), lm_pos)
                      for t in np.arange(0, walk.duration, PERIOD))
        assert dist_at_peak <= closest + 8.0

    benchmark.pedantic(run_walk, rounds=1, iterations=1)
