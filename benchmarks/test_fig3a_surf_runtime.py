"""Figure 3(a): SURF detection+description runtime vs resolution/device.

Paper shape: OnePlus One ~2 s even at 320*240; servers 36x / 182x /
1087x faster (1 i7 core / 8 cores / GPU).
"""

from repro.vision.camera import (R320x240, R480x360, R720x540, R960x720,
                                 R1440x1080)
from repro.vision.costmodel import DEVICES
from repro.vision.features import expected_feature_count

RESOLUTIONS = [R320x240, R480x360, R720x540, R960x720, R1440x1080]
DEVICE_ORDER = ["oneplus-one", "i7-1core", "i7-8core", "gpu-titan"]


def test_fig3a_surf_runtime(report, benchmark):
    rows = []
    for resolution in RESOLUTIONS:
        row = [f"{resolution} ({expected_feature_count(resolution):.1f})"]
        for device_name in DEVICE_ORDER:
            runtime = DEVICES[device_name].surf_time(resolution)
            row.append(f"{runtime:.4g}s")
        rows.append(row)

    r = report("fig3a_surf_runtime",
               "Figure 3(a): SURF runtime (sec) by resolution and device")
    r.table(["resolution (#features)"] + DEVICE_ORDER, rows)

    # paper-shape checks
    one_plus = DEVICES["oneplus-one"]
    assert one_plus.surf_time(R320x240) >= 2.0
    base = one_plus.surf_time(R960x720)
    assert base / DEVICES["i7-1core"].surf_time(R960x720) == 36.0
    assert base / DEVICES["gpu-titan"].surf_time(R960x720) == 1087.0

    benchmark(DEVICES["i7-8core"].surf_time, R960x720)
