"""Section 7.3 micro-benchmark: JPEG-90 compression time and ratio.

Paper numbers on the OnePlus One: 53/38/23 ms encode and 5 / 5.8 / 4.7x
size reduction for 1280*720 / 960*720 / 720*480 grayscale frames.
"""

import pytest

from repro.vision.camera import R720x480, R960x720, R1280x720
from repro.vision.codec import JPEG90

RESOLUTIONS = [R1280x720, R960x720, R720x480]
PAPER_ENCODE_MS = {R1280x720: 53, R960x720: 38, R720x480: 23}


def test_compression_micro(report, benchmark):
    rows = []
    for resolution in RESOLUTIONS:
        encode = JPEG90.encode_time(resolution)
        ratio = JPEG90.compression_ratio(resolution)
        rows.append([str(resolution), f"{encode * 1e3:.1f}",
                     f"{PAPER_ENCODE_MS[resolution]}",
                     f"{ratio:.1f}x"])

    r = report("compression_micro",
               "Sec 7.3: JPEG-90 encode time (ms, One+ One) and ratio")
    r.table(["resolution", "encode (model)", "encode (paper)", "ratio"],
            rows)

    for resolution in RESOLUTIONS:
        assert JPEG90.encode_time(resolution) * 1e3 == pytest.approx(
            PAPER_ENCODE_MS[resolution], abs=4.0)
        assert 4.5 <= JPEG90.compression_ratio(resolution) <= 6.0

    benchmark(JPEG90.encode_time, R960x720)
