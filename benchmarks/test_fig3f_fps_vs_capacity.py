"""Figure 3(f): achievable upload FPS by codec and uplink capacity.

HD (1920*1080) grayscale preview frames from the OnePlus camera
(10 FPS); paper shape: raw cannot ship 1 FPS even at 12 Mbps, JPEG-90
reaches ~8 FPS, stronger compression approaches the camera rate.
"""

from repro.vision.camera import R1920x1080, CameraModel
from repro.vision.codec import (JPEG50, JPEG80, JPEG90, JPEG100, PNG,
                                RAW_GRAY, achievable_fps)

CAPACITIES = [5.5e6, 10e6, 12e6]
CODECS = [JPEG50, JPEG80, JPEG90, JPEG100, PNG, RAW_GRAY]

#: The Figure 3(f) test scene is a wide HD preview, which compresses
#: better than the close-up retail objects of Section 7.3.
SCENE_COMPLEXITY = 0.47


def test_fig3f_fps_vs_capacity(report, benchmark):
    camera_fps = CameraModel().preview_fps(R1920x1080)
    rows = []
    for codec in CODECS:
        row = [codec.name]
        for capacity in CAPACITIES:
            fps = achievable_fps(codec, R1920x1080, capacity, camera_fps,
                                 scene_complexity=SCENE_COMPLEXITY)
            row.append(f"{fps:.1f}")
        rows.append(row)

    r = report("fig3f_fps_vs_capacity",
               "Figure 3(f): upload FPS at HD by codec and uplink capacity")
    r.table(["codec"] + [f"{c / 1e6:g} Mbps" for c in CAPACITIES], rows)

    raw_fps = achievable_fps(RAW_GRAY, R1920x1080, 12e6, camera_fps)
    assert raw_fps < 1.0
    jpeg90_fps = achievable_fps(JPEG90, R1920x1080, 12e6, camera_fps,
                                scene_complexity=SCENE_COMPLEXITY)
    assert 6.0 <= jpeg90_fps <= 10.0
    # more compression never hurts the achievable rate
    for capacity in CAPACITIES:
        series = [achievable_fps(c, R1920x1080, capacity, camera_fps,
                                 scene_complexity=SCENE_COMPLEXITY)
                  for c in CODECS]
        assert series == sorted(series, reverse=True)

    benchmark(achievable_fps, JPEG90, R1920x1080, 12e6, camera_fps)
