"""Bearer-setup latency vs. concurrent signalling load.

Every control procedure now runs as a simulator process whose messages
traverse modelled signalling channels, so concurrent dedicated-bearer
activations contend on the shared per-cell RRC channel and the core
S11/S5/Gx paths.  This bench sweeps how many UEs activate a dedicated
MEC bearer simultaneously and reports the measured setup-latency
distribution -- the Section 5.4 bearer-setup sequence under load.
"""

import numpy as np

from repro.core.config import NetworkConfig
from repro.core.network import MobileNetwork
from repro.epc.entities import ServicePolicy

SWEEP = (1, 5, 10, 25, 50)


def setup_latencies(n_ues, seed=41, qci=3):
    """Attach ``n_ues`` UEs then activate one bearer each, concurrently."""
    network = MobileNetwork(NetworkConfig(seed=seed))
    network.add_mec_site("mec")
    network.add_server("ci", site_name="mec", echo=True)
    network.pcrf.configure(ServicePolicy(service_id="svc", qci=qci))
    server_ip = network.servers["ci"].ip
    cp = network.control_plane

    ues = [network.add_ue() for _ in range(n_ues)]
    procs = [cp.activate_dedicated_bearer_async(ue, "svc", server_ip, "mec")
             for ue in ues]
    network.sim.run()
    assert all(p.finished and p.error is None for p in procs)
    return [p.value.elapsed for p in procs]


def test_bearer_setup_latency_vs_load(report, benchmark):
    rows = []
    by_n = {}
    for n_ues in SWEEP:
        latencies = setup_latencies(n_ues)
        by_n[n_ues] = latencies
        rows.append([n_ues,
                     f"{np.mean(latencies) * 1e3:.1f}",
                     f"{np.percentile(latencies, 95) * 1e3:.1f}",
                     f"{np.max(latencies) * 1e3:.1f}"])

    r = report("bearer_setup_latency",
               "Dedicated-bearer setup latency vs concurrent load")
    r.table(["n_ues", "mean_ms", "p95_ms", "max_ms"], rows)
    r.line()
    r.line("concurrent setups serialise on the shared RRC channel and "
           "the core signalling paths")

    lone = by_n[1][0]
    # a lone setup sits in the calibrated tens-of-ms band
    assert 0.02 < lone < 0.1
    # latency grows under concurrent signalling load ...
    means = [float(np.mean(by_n[n])) for n in SWEEP]
    assert means == sorted(means)
    assert means[-1] > 1.5 * lone
    # ... and the tail stretches even more than the mean
    assert np.max(by_n[SWEEP[-1]]) > 2.0 * lone
    # but every bearer still comes up in bounded time
    assert all(lat < 1.0 for lats in by_n.values() for lat in lats)

    benchmark.pedantic(setup_latencies, args=(10,), rounds=3, iterations=1)
