"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation and writes a formatted text artefact to
``benchmarks/results/<id>.txt`` (also echoed to stdout with ``-s``), so
EXPERIMENTS.md can be checked against fresh runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps.retail import build_retail_database
from repro.apps.scenario import store_scenario
from repro.apps.workload import CheckpointWorkload

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scenario():
    return store_scenario()


@pytest.fixture(scope="session")
def db(scenario):
    return build_retail_database(scenario, n_features=60)


@pytest.fixture(scope="session")
def workload(scenario, db):
    return CheckpointWorkload(scenario, db, seed=7)


class Report:
    """Accumulates formatted lines; writes the artefact on close."""

    def __init__(self, name: str, title: str) -> None:
        self.name = name
        self.lines = [title, "=" * len(title)]

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  for i, h in enumerate(headers)] if rows else \
                 [len(str(h)) for h in headers]
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        self.lines.append(fmt.format(*headers))
        self.lines.append(fmt.format(*("-" * w for w in widths)))
        for row in rows:
            self.lines.append(fmt.format(*(str(c) for c in row)))

    def save(self) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(self.lines) + "\n"
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        print("\n" + text)
        return text


@pytest.fixture()
def report(request):
    """Per-test report: ``report("fig3a", "title")`` then add rows."""
    created = []

    def factory(name: str, title: str) -> Report:
        r = Report(name, title)
        created.append(r)
        return r

    yield factory
    for r in created:
        r.save()


def ms(value: float, digits: int = 1) -> str:
    """Format seconds as milliseconds."""
    return f"{value * 1e3:.{digits}f}"
