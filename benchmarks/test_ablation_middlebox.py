"""Ablation (Section 2 / DESIGN 5): where should traffic be classified?

The MEC alternatives the paper argues against (SMORE-style) deploy an
inspection middlebox at/near the eNodeB that examines *every* packet to
decide what gets redirected to the MEC server.  ACACIA classifies at
the source: the UE's modem-resident UL TFT marks CI traffic onto the
dedicated bearer and nothing else is ever inspected.

This bench quantifies the difference: per-packet inspection cost adds
latency to CI traffic and burns middlebox CPU proportional to *total*
eNodeB throughput, even when almost none of it is CI traffic.
"""

import numpy as np

from repro.sdn.dataplane import DataPlaneProfile
from repro.sdn.openflow import FlowMatch, FlowRule, Output
from repro.sdn.switch import FlowSwitch
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import LatencyProbe
from repro.sim.node import PacketSink
from repro.sim.traffic import CBRSource, PoissonSource

#: GTP de/encapsulation + DPI classification per packet (user space).
INSPECTION_PROFILE = DataPlaneProfile(
    name="inspection-middlebox", slow_path_cost=40e-6,
    fast_path_cost=40e-6, has_fast_path=False)

#: Source-side classification: the switch only sees pre-marked CI
#: traffic and forwards it on a cached kernel path.
ACACIA_PATH_PROFILE = DataPlaneProfile(
    name="acacia-local-gwu", slow_path_cost=80e-6,
    fast_path_cost=4e-6, has_fast_path=True)

CI_RATE = 2e6
BG_RATE = 60e6
DURATION = 5.0


def run_case(classify_at_source: bool, seed=9):
    """CI flow + bulk background through one redirect point."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    profile = (ACACIA_PATH_PROFILE if classify_at_source
               else INSPECTION_PROFILE)
    switch = FlowSwitch(sim, "redirector", profile=profile,
                        ip="172.16.9.1")
    probe = LatencyProbe(sim)
    mec_server = PacketSink(sim, "mec", ip="10.9.0.1", on_packet=probe)
    internet = PacketSink(sim, "internet", ip="10.9.0.2")

    ci = CBRSource(sim, "ci", dst=mec_server.ip, rate=CI_RATE,
                   packet_size=1400, ip="10.45.0.2")
    bg = PoissonSource(sim, "bg", dst=internet.ip, rate=BG_RATE, rng=rng,
                       packet_size=1400, ip="10.45.0.3")

    l_ci = Link(sim, "l-ci", bandwidth=1e9, delay=0.0005)
    l_mec = Link(sim, "l-mec", bandwidth=1e9, delay=0.0005)
    ci.attach("out", l_ci)
    switch.attach("ci-in", l_ci)
    switch.attach("mec", l_mec)
    mec_server.attach("net", l_mec)
    switch.install(FlowRule(FlowMatch(dst_ip=mec_server.ip),
                            [Output("mec")], priority=200, cookie="ci"))

    l_bg = Link(sim, "l-bg", bandwidth=1e9, delay=0.0005)
    bg.attach("out", l_bg)
    if classify_at_source:
        # ACACIA: background never touches the redirect point -- the
        # UE's TFT already split the traffic at the source
        internet.attach("net", l_bg)
    else:
        # middlebox: everything flows through and must be inspected
        l_net = Link(sim, "l-net", bandwidth=1e9, delay=0.0005)
        switch.attach("bg-in", l_bg)
        switch.attach("net", l_net)
        internet.attach("net", l_net)
        switch.install(FlowRule(FlowMatch(), [Output("net")],
                                priority=10, cookie="default"))

    ci.start()
    bg.start()
    sim.run(until=DURATION)
    ci.stop()
    bg.stop()

    latencies = probe.flow(ci.flow_id)
    inspected = switch.rx_count
    ci_packets = latencies.packets
    return {
        "ci_median_ms": float(np.median(latencies.latencies)) * 1e3,
        "ci_p99_ms": float(np.percentile(latencies.latencies, 99)) * 1e3,
        "inspected": inspected,
        "ci_fraction": ci_packets / max(1, inspected),
        "cpu_seconds": inspected * profile.slow_path_cost
        if not classify_at_source
        else ci_packets * profile.fast_path_cost,
    }


def test_ablation_middlebox(report, benchmark):
    middlebox = run_case(classify_at_source=False)
    acacia = run_case(classify_at_source=True)

    r = report("ablation_middlebox",
               "Ablation: middlebox inspection vs UE-side classification")
    r.table(
        ["approach", "CI median (ms)", "CI p99 (ms)",
         "pkts through box", "CI fraction", "CPU (s)"],
        [["middlebox (SMORE-style)",
          f"{middlebox['ci_median_ms']:.2f}",
          f"{middlebox['ci_p99_ms']:.2f}",
          middlebox["inspected"],
          f"{middlebox['ci_fraction']:.1%}",
          f"{middlebox['cpu_seconds']:.2f}"],
         ["ACACIA (UL TFT at the UE)",
          f"{acacia['ci_median_ms']:.2f}",
          f"{acacia['ci_p99_ms']:.2f}",
          acacia["inspected"],
          f"{acacia['ci_fraction']:.1%}",
          f"{acacia['cpu_seconds']:.2f}"]])

    # the middlebox inspects *everything*: with 60 Mbps of background
    # next to 2 Mbps of CI traffic, >90% of its work is irrelevant
    assert middlebox["ci_fraction"] < 0.1
    assert acacia["ci_fraction"] == 1.0
    # inspection costs the CI flow latency (queueing behind inspected
    # background bursts) and costs the operator CPU
    assert acacia["ci_p99_ms"] < middlebox["ci_p99_ms"]
    assert acacia["cpu_seconds"] < 0.05 * middlebox["cpu_seconds"]

    benchmark.pedantic(run_case, args=(True,), rounds=1, iterations=1)
