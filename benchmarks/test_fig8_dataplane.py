"""Figure 8: gateway data-plane throughput (OpenEPC vs ACACIA vs IDEAL).

An iperf-style greedy flow is pushed through a two-switch GW-U chain on
1 Gbps links.  Paper shape: the user-space OpenEPC gateway caps out an
order of magnitude below line rate; ACACIA's kernel fast path tracks
the IDEAL (no-gateway-cost) curve closely.
"""

import pytest

from repro.epc.gtp import gtp_encapsulate
from repro.sdn.dataplane import (ACACIA_OVS_PROFILE, IDEAL_PROFILE,
                                 OPENEPC_USERSPACE_PROFILE)
from repro.sdn.openflow import FlowMatch, FlowRule, GtpDecap, GtpEncap, Output
from repro.sdn.switch import FlowSwitch
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import ThroughputMeter
from repro.sim.node import PacketSink
from repro.sim.traffic import GreedySource

LINK_BW = 1e9
DURATION = 2.0
WINDOW = 0.25


def run_profile(profile):
    """Greedy flow: src -> SGW-U -> PGW-U -> sink (echoing acks)."""
    sim = Simulator()
    src = GreedySource(sim, "iperf", dst="10.0.0.9", packet_size=1400,
                       window=256, ip="10.45.0.2")
    sgw = FlowSwitch(sim, "sgw-u", profile=profile, ip="172.16.0.1")
    pgw = FlowSwitch(sim, "pgw-u", profile=profile, ip="172.16.0.2")
    meter = ThroughputMeter(sim, window=WINDOW)
    sink = PacketSink(sim, "server", ip="10.0.0.9", echo=True,
                      on_packet=meter)
    links = [Link(sim, f"l{i}", bandwidth=LINK_BW, delay=0.0002,
                  queue_bytes=2_000_000) for i in range(3)]
    src.attach("out", links[0])
    sgw.attach("s1", links[0])
    sgw.attach("s5", links[1])
    pgw.attach("s5", links[1])
    pgw.attach("sgi", links[2])
    sink.attach("net", links[2])

    # uplink: GTP in from the "eNB", decap+re-encap at the SGW-U,
    # decap at the PGW-U; downlink (acks) the reverse
    sgw.install(FlowRule(FlowMatch(teid=0x11),
                         [GtpDecap(),
                          GtpEncap(0x22, sgw.ip, pgw.ip), Output("s5")]))
    pgw.install(FlowRule(FlowMatch(teid=0x22), [GtpDecap(), Output("sgi")]))
    pgw.install(FlowRule(FlowMatch(src_ip="10.0.0.9"),
                         [GtpEncap(0x33, pgw.ip, sgw.ip), Output("s5")]))
    sgw.install(FlowRule(FlowMatch(teid=0x33), [GtpDecap(), Output("s1")]))

    # the source stands in for the eNB: wrap its send() so uplink
    # packets leave already GTP-encapsulated toward the SGW-U
    plain_send = src.send

    def send_with_gtp(port, packet):
        if packet.dst == "10.0.0.9":
            gtp_encapsulate(packet, 0x11, "192.168.1.1", sgw.ip)
        plain_send(port, packet)

    src.send = send_with_gtp  # type: ignore[method-assign]
    src.start()
    sim.run(until=DURATION)
    return meter.mean_throughput(skip_first=1), src.goodput(DURATION)


def test_fig8_dataplane(report, benchmark):
    results = {}
    for profile in (OPENEPC_USERSPACE_PROFILE, ACACIA_OVS_PROFILE,
                    IDEAL_PROFILE):
        throughput, _ = run_profile(profile)
        results[profile.name] = throughput

    r = report("fig8_dataplane",
               "Figure 8: GW-U data-plane throughput (Mbps), 1 Gbps links")
    r.table(["data plane", "throughput (Mbps)"],
            [[name, f"{bps / 1e6:.0f}"] for name, bps in results.items()])

    openepc = results["openepc-userspace"]
    acacia = results["acacia-ovs"]
    ideal = results["ideal"]
    # paper shape: OpenEPC far below line rate; ACACIA close to IDEAL
    assert openepc < 0.35 * ideal
    assert acacia > 0.75 * ideal
    assert acacia > 3 * openepc
    # OpenEPC's user-space ceiling: each delivered payload costs the GW
    # CPU two packets (data + ack), so the goodput ceiling is
    # payload_bits / (2 * per-packet cost)
    expected_ceiling = 1400 * 8 / (
        2 * OPENEPC_USERSPACE_PROFILE.slow_path_cost)
    assert openepc == pytest.approx(expected_ceiling, rel=0.15)

    benchmark.pedantic(run_profile, args=(OPENEPC_USERSPACE_PROFILE,),
                       rounds=1, iterations=1)
