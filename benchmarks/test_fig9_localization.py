"""Figure 9(b): localisation accuracy vs number of landmarks.

Trace-based evaluation over the 24 checkpoints of Figure 9(a): for
every subset of k of the 7 landmarks, trilaterate from shadowed rxPower
observations and measure Euclidean error.  Paper shape: error falls as
landmarks are added; the best/worst spread is large for few landmarks
and shrinks with more; ~3 m mean error with all seven.
"""

import itertools
import math

import numpy as np

from repro.apps.scenario import FLOOR_HEIGHT, FLOOR_WIDTH
from repro.d2d.radio import RadioModel
from repro.localization.pathloss import calibrate_from_radio
from repro.localization.trilateration import TrilaterationError, trilaterate

LANDMARK_COUNTS = [3, 4, 5, 6, 7]

#: Deployment prior: estimates must land on the store floor, and no
#: landmark can be further away than the floor diagonal.
FLOOR_BOUNDS = ((0.0, FLOOR_WIDTH), (0.0, FLOOR_HEIGHT))
MAX_RANGE = 50.0


def run_sweep(scenario, workload, seed=11):
    radio = RadioModel()
    rng = np.random.default_rng(seed)
    regression = calibrate_from_radio(radio, rng)
    names = list(scenario.landmarks)

    # one shadowed observation per (checkpoint, landmark), as a phone
    # hears in a single discovery period
    observations = {}
    for cp in scenario.checkpoints:
        per_landmark = {}
        for name in names:
            d = math.dist(cp.position, scenario.landmarks[name])
            per_landmark[name] = radio.rx_power(d, rng)
        observations[cp.name] = per_landmark

    stats = {}
    for k in LANDMARK_COUNTS:
        combo_errors = []
        for combo in itertools.combinations(names, k):
            errors = []
            for cp in scenario.checkpoints:
                anchors = [scenario.landmarks[n] for n in combo]
                ranges = [regression.predict_distance(
                    observations[cp.name][n], max_distance=MAX_RANGE)
                    for n in combo]
                try:
                    estimate = trilaterate(anchors, ranges,
                                           bounds=FLOOR_BOUNDS)
                except TrilaterationError:
                    continue
                errors.append(math.dist(estimate, cp.position))
            combo_errors.append(float(np.mean(errors)))
        stats[k] = {
            "best": float(np.min(combo_errors)),
            "mean": float(np.mean(combo_errors)),
            "worst": float(np.max(combo_errors)),
            "combos": len(combo_errors),
        }
    return stats


def test_fig9_localization(scenario, workload, report, benchmark):
    stats = run_sweep(scenario, workload)

    r = report("fig9_localization",
               "Figure 9(b): Euclidean error (m) vs number of landmarks")
    r.table(["landmarks", "best", "mean", "worst", "combos"],
            [[k, f"{s['best']:.2f}", f"{s['mean']:.2f}",
              f"{s['worst']:.2f}", s["combos"]]
             for k, s in stats.items()])

    # paper shape: accuracy improves with landmark count ...
    means = [stats[k]["mean"] for k in LANDMARK_COUNTS]
    assert means[-1] <= means[0]
    assert stats[7]["mean"] <= min(stats[3]["mean"], stats[4]["mean"])
    # ... the best-worst spread shrinks as landmarks are added ...
    spread3 = stats[3]["worst"] - stats[3]["best"]
    spread7 = stats[7]["worst"] - stats[7]["best"]
    assert spread7 < spread3
    # ... and the headline: ~3 m average error with all 7 landmarks
    assert 1.5 <= stats[7]["mean"] <= 4.5

    benchmark.pedantic(run_sweep, args=(scenario, workload),
                       rounds=1, iterations=1)
