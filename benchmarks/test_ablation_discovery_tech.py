"""Ablation (paper Section 8): proximity-discovery technology choice.

Compares LTE-direct, iBeacon and Wi-Fi Aware along the axes the paper
argues make LTE-direct the right carrier offering: coverage range,
time-to-discover, and application-processor wakeups under many
non-matching broadcasters (the modem-filtering advantage).
"""

import numpy as np

from repro.d2d.beacons import (IBEACON, LTE_DIRECT, WIFI_AWARE,
                               BeaconScanner)
from repro.d2d.channel import D2DChannel, Publisher, Subscriber
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import DiscoveryMessage
from repro.d2d.modem import LteDirectModem
from repro.sim.engine import Simulator

NS = ExpressionNamespace()
TECHNOLOGIES = [LTE_DIRECT, IBEACON, WIFI_AWARE]

#: A busy venue: many stores broadcasting, the user cares about one.
N_PUBLISHERS = 20
USER_DISTANCE = 12.0
OBSERVE_FOR = 60.0


def run_technology(tech, seed=5):
    sim = Simulator()
    channel = D2DChannel(sim, tech.radio, rng=np.random.default_rng(seed))
    receiver = (LteDirectModem("user") if tech.modem_filtering
                else BeaconScanner("user"))
    matches = []
    receiver.subscribe("interest",
                       NS.offering_filter("store-0", "laptops"),
                       matches.append)
    subscriber = Subscriber("user", (USER_DISTANCE, 0.0), modem=receiver)
    channel.add_subscriber(subscriber)
    rng = np.random.default_rng(seed + 1)
    for i in range(N_PUBLISHERS):
        offering = "laptops" if i == 0 else "other"
        message = DiscoveryMessage(
            publisher_id=f"store-{i}", service_name=f"store-{i}",
            code=NS.code(f"store-{i}", offering),
            payload=f"store={i}")
        position = (float(rng.uniform(0, 40)), float(rng.uniform(0, 15)))
        if i == 0:
            position = (0.0, 0.0)    # the matching store is nearby
        channel.add_publisher(Publisher(f"store-{i}", position, message,
                                        period=tech.advertise_period))
    sim.run(until=OBSERVE_FOR)
    time_to_discover = matches[0].timestamp if matches else float("inf")
    return {
        "range_m": tech.radio.max_range(),
        "time_to_discover": time_to_discover,
        "host_wakeups": receiver.host_wakeups,
        "heard": receiver.broadcasts_heard,
        "matches": len(matches),
    }


def test_ablation_discovery_tech(report, benchmark):
    results = {tech.name: run_technology(tech) for tech in TECHNOLOGIES}

    r = report("ablation_discovery_tech",
               "Ablation: proximity technologies (Sec 8), 20 broadcasters")
    r.table(
        ["technology", "range (m)", "discover (s)", "host wakeups/min",
         "broadcasts heard"],
        [[name,
          f"{res['range_m']:.0f}",
          ("inf" if res["time_to_discover"] == float("inf")
           else f"{res['time_to_discover']:.1f}"),
          f"{res['host_wakeups'] / (OBSERVE_FOR / 60):.0f}",
          res["heard"]]
         for name, res in results.items()])

    lte, ibeacon, wifi = (results[t.name] for t in TECHNOLOGIES)
    # LTE-direct covers the venue; BLE beacons only a nearby slice
    assert lte["range_m"] > 2 * ibeacon["range_m"]
    # every technology eventually discovers the nearby matching store
    assert lte["matches"] >= 1
    assert ibeacon["matches"] >= 1
    # beacons advertise faster, so raw discovery latency is lower...
    assert ibeacon["time_to_discover"] <= lte["time_to_discover"]
    # ...but host-side filtering wakes the app processor for every
    # decodable broadcast, while the LTE modem forwards only matches
    assert lte["host_wakeups"] == lte["matches"]
    assert ibeacon["host_wakeups"] > 5 * ibeacon["matches"]

    benchmark.pedantic(run_technology, args=(IBEACON,), rounds=1,
                       iterations=1)
