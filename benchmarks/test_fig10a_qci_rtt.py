"""Figure 10(a): RTT from UE to MEC server by QCI class.

The UE pings the MEC server over dedicated bearers provisioned with
QCI 5..9 while its default bearer uploads in the background, so the
radio uplink scheduler's QCI priorities matter.  Paper shape: all
classes land in the 13-18 ms band (95% within ~15 ms for the
high-priority classes), ordered by QCI priority.
"""

import numpy as np

from repro.core.network import MobileNetwork, Pinger
from repro.epc.entities import ServicePolicy
from repro.sim.packet import Packet
from repro.sim.traffic import DEFAULT_PACKET_SIZE

QCIS = [5, 6, 7, 8, 9]
PINGS = 40


def measure_qci(qci: int) -> np.ndarray:
    network = MobileNetwork()
    network.pcrf.configure(ServicePolicy(f"svc-qci{qci}", qci=qci))
    network.add_mec_site("mec")
    network.add_server("mec-server", site_name="mec", echo=True)
    ue = network.add_ue()
    network.control_plane.activate_dedicated_bearer(
        ue, f"svc-qci{qci}", network.servers["mec-server"].ip, "mec")

    # competing upload on the same UE's default bearer: 10 of the
    # 12 Mbps uplink
    def background_tick():
        packet = Packet(src=ue.ip, dst=network.servers["internet"].ip,
                        size=DEFAULT_PACKET_SIZE, protocol="UDP",
                        src_port=41000, dst_port=5001,
                        created_at=network.sim.now)
        ue.send_app(packet)
        network.sim.schedule(DEFAULT_PACKET_SIZE * 8 / 10e6,
                             background_tick)

    network.sim.schedule(0.0, background_tick)
    pinger = Pinger(network, ue, "mec-server", size=64, interval=0.1)
    pinger.run(count=PINGS, start=1.0)
    network.sim.run(until=1.0 + PINGS * 0.1 + 3.0)
    return np.array(pinger.rtts)


def test_fig10a_qci_rtt(report, benchmark):
    rows = []
    stats = {}
    for qci in QCIS:
        rtts = measure_qci(qci)
        stats[qci] = rtts
        rows.append([
            f"QCI {qci}",
            f"{np.median(rtts) * 1e3:.1f}",
            f"{np.percentile(rtts, 95) * 1e3:.1f}",
            f"{rtts.max() * 1e3:.1f}",
        ])

    r = report("fig10a_qci_rtt",
               "Figure 10(a): UE->MEC RTT (ms) by QCI under uplink load")
    r.table(["bearer", "median", "p95", "max"], rows)

    # the paper's band: high-priority classes keep 95% within ~15 ms
    for qci in (5, 6, 7, 8):
        assert np.percentile(stats[qci], 95) <= 0.016
    # priority ordering: QCI 5 (priority 1) beats QCI 9 (priority 9),
    # which shares the queue with the best-effort upload
    assert np.median(stats[5]) <= np.median(stats[9])
    assert np.percentile(stats[9], 95) >= np.percentile(stats[5], 95)

    benchmark.pedantic(measure_qci, args=(7,), rounds=1, iterations=1)
