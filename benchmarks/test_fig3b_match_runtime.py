"""Figure 3(b): brute-force matcher runtime vs resolution/device.

Two-image (one object) comparison; paper shape: the smartphone takes
~seconds, the servers are 223x / 852x / 3284x faster.
"""

import pytest

from repro.vision.camera import (R320x240, R480x360, R720x540, R960x720,
                                 R1440x1080)
from repro.vision.costmodel import DEVICES
from repro.vision.features import expected_feature_count

RESOLUTIONS = [R320x240, R480x360, R720x540, R960x720, R1440x1080]
DEVICE_ORDER = ["oneplus-one", "i7-1core", "i7-8core", "gpu-titan"]


def test_fig3b_match_runtime(report, benchmark):
    rows = []
    for resolution in RESOLUTIONS:
        features = expected_feature_count(resolution)
        row = [f"{resolution} ({features:.1f})"]
        for device_name in DEVICE_ORDER:
            runtime = DEVICES[device_name].pairwise_match_time(
                features, features)
            row.append(f"{runtime:.4g}s")
        rows.append(row)

    r = report("fig3b_match_runtime",
               "Figure 3(b): brute-force match runtime (sec), two images")
    r.table(["resolution (#features)"] + DEVICE_ORDER, rows)

    features = expected_feature_count(R960x720)
    base = DEVICES["oneplus-one"].pairwise_match_time(features, features)
    assert base / DEVICES["i7-1core"].pairwise_match_time(
        features, features) == pytest.approx(223.0)
    assert base / DEVICES["i7-8core"].pairwise_match_time(
        features, features) == pytest.approx(852.0)
    assert base / DEVICES["gpu-titan"].pairwise_match_time(
        features, features) == pytest.approx(3284.0)

    benchmark(DEVICES["i7-8core"].pairwise_match_time, features, features)
