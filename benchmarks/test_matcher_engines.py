"""Engine comparison: batched vs reference matcher, real wall-clock.

Unlike the figure benchmarks (whose timings come from the calibrated
cost model), this benchmark measures the *actual* CPU time of the two
matching engines on the Figure 11(a) naive-scheme workload: every frame
against the whole 105-object database.  The batched engine must make
byte-identical decisions and be substantially faster; the full
acceptance run lives in ``tools/bench_matcher.py``.
"""

import time

import numpy as np

from repro.vision.batch import BatchObjectMatcher, CandidateMatrixCache
from repro.vision.matcher import ObjectMatcher

SEED = 99


def decision(outcome):
    if outcome is None:
        return None
    return (outcome.object_name, outcome.good_matches,
            outcome.symmetric_matches, outcome.inliers,
            outcome.accepted, outcome.stage_reached)


def test_matcher_engine_speedup(scenario, db, workload, report, benchmark):
    models = [record.model for record in db.all_records()]
    blocks = [sample.frames for sample in workload.samples()]
    n_frames = sum(len(block) for block in blocks)

    def run_reference():
        matcher = ObjectMatcher(rng=np.random.default_rng(SEED))
        start = time.perf_counter()
        out = [decision(matcher.match_frame(f, models))
               for block in blocks for f in block]
        return time.perf_counter() - start, out

    cache = CandidateMatrixCache()

    def run_batch():
        matcher = BatchObjectMatcher(rng=np.random.default_rng(SEED),
                                     cache=cache)
        start = time.perf_counter()
        out = []
        for block in blocks:
            out.extend(decision(o) for o in
                       matcher.match_frames(block, models))
        return time.perf_counter() - start, out

    # warm-up + decision equivalence
    _, ref_out = run_reference()
    _, batch_out = run_batch()
    assert batch_out == ref_out, \
        "batched engine diverged from reference decisions"
    assert cache.stats()["hits"] > 0          # warm across checkpoints

    # alternating timed passes; medians absorb CPU frequency drift
    ref_times, batch_times = [], []
    for _ in range(3):
        elapsed, _ = run_reference()
        ref_times.append(elapsed)
        elapsed, _ = run_batch()
        batch_times.append(elapsed)
    ref_median = sorted(ref_times)[1]
    batch_median = sorted(batch_times)[1]
    speedup = ref_median / batch_median

    r = report("matcher_engines",
               "Matching engines: real wall-clock on the Fig 11(a) "
               "naive workload")
    r.table(["engine", "ms/frame"],
            [["reference", f"{ref_median / n_frames * 1e3:.2f}"],
             ["batch", f"{batch_median / n_frames * 1e3:.2f}"]])
    r.line()
    r.line(f"speedup: {speedup:.2f}x over {n_frames} frames, "
           f"decisions byte-identical")
    r.line(f"cache: {cache.stats()}")

    # modest bound here (tools/bench_matcher.py enforces the 5x target
    # under a tighter protocol); this guards against regressions
    assert speedup >= 3.0

    benchmark(lambda: None)   # timing handled manually above
