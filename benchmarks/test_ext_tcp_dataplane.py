"""Extension: Figure 8 re-run with a real congestion-controlled flow.

The paper's iperf test is TCP; :mod:`repro.sim.tcp` lets us replay the
data-plane comparison with actual slow start / AIMD dynamics instead of
a fixed-window stand-in.  The ordering must reproduce: the user-space
gateway caps the flow an order of magnitude below what the kernel
fast path sustains, and the congestion controller converges onto
whichever ceiling applies.
"""

import pytest

from repro.epc.gtp import gtp_encapsulate
from repro.sdn.dataplane import (ACACIA_OVS_PROFILE, IDEAL_PROFILE,
                                 OPENEPC_USERSPACE_PROFILE)
from repro.sdn.openflow import FlowMatch, FlowRule, GtpDecap, GtpEncap, Output
from repro.sdn.switch import FlowSwitch
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.tcp import TcpSink, TcpSource

LINK_BW = 1e9
DURATION = 2.0


def run_tcp_profile(profile):
    sim = Simulator()
    src = TcpSource(sim, "iperf", dst="10.0.0.9", ip="10.45.0.2",
                    packet_size=1400, max_cwnd=2048)
    sgw = FlowSwitch(sim, "sgw-u", profile=profile, ip="172.16.0.1")
    pgw = FlowSwitch(sim, "pgw-u", profile=profile, ip="172.16.0.2")
    sink = TcpSink(sim, "server", ip="10.0.0.9")
    links = [Link(sim, f"l{i}", bandwidth=LINK_BW, delay=0.0002,
                  queue_bytes=3_000_000) for i in range(3)]
    src.attach("out", links[0])
    sgw.attach("s1", links[0])
    sgw.attach("s5", links[1])
    pgw.attach("s5", links[1])
    pgw.attach("sgi", links[2])
    sink.attach("net", links[2])

    sgw.install(FlowRule(FlowMatch(teid=0x11),
                         [GtpDecap(), GtpEncap(0x22, sgw.ip, pgw.ip),
                          Output("s5")]))
    pgw.install(FlowRule(FlowMatch(teid=0x22), [GtpDecap(),
                                                Output("sgi")]))
    pgw.install(FlowRule(FlowMatch(src_ip="10.0.0.9"),
                         [GtpEncap(0x33, pgw.ip, sgw.ip), Output("s5")]))
    sgw.install(FlowRule(FlowMatch(teid=0x33), [GtpDecap(),
                                                Output("s1")]))

    plain_send = src.send

    def send_with_gtp(port, packet):
        if packet.dst == "10.0.0.9":
            gtp_encapsulate(packet, 0x11, "192.168.1.1", sgw.ip)
        plain_send(port, packet)

    src.send = send_with_gtp  # type: ignore[method-assign]
    src.start()
    sim.run(until=DURATION)
    src.stop()
    return src


def test_ext_tcp_dataplane(report, benchmark):
    results = {}
    for profile in (OPENEPC_USERSPACE_PROFILE, ACACIA_OVS_PROFILE,
                    IDEAL_PROFILE):
        flow = run_tcp_profile(profile)
        results[profile.name] = flow

    r = report("ext_tcp_dataplane",
               "Extension: Figure 8 with a congestion-controlled flow")
    r.table(["data plane", "goodput (Mbps)", "retransmits", "final cwnd"],
            [[name, f"{flow.goodput(DURATION) / 1e6:.0f}",
              flow.retransmits, f"{flow.cwnd:.0f}"]
             for name, flow in results.items()])

    openepc = results["openepc-userspace"].goodput(DURATION)
    acacia = results["acacia-ovs"].goodput(DURATION)
    ideal = results["ideal"].goodput(DURATION)
    # same ordering as the paper's Figure 8
    assert openepc < 0.25 * acacia
    assert acacia == pytest.approx(ideal, rel=0.25)
    # the congestion controller found the user-space CPU ceiling:
    # payload_bits / (2 * per-packet cost), as with the greedy flow
    ceiling = 1400 * 8 / (2 * OPENEPC_USERSPACE_PROFILE.slow_path_cost)
    assert openepc == pytest.approx(ceiling, rel=0.35)

    benchmark.pedantic(run_tcp_profile, args=(OPENEPC_USERSPACE_PROFILE,),
                       rounds=1, iterations=1)
