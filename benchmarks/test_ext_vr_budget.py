"""Extension experiment: VR motion-to-photon budget, edge vs cloud.

Not in the paper's evaluation, but it quantifies the introduction's
claim that CI applications like VR "require very low end-to-end
latencies (low tens of milliseconds or less)": a 60 Hz pose stream with
20 KB rendered tiles either fits the comfort budget at the edge or
blows it from the core, independent of any compute optimisation.
"""

import numpy as np

from repro.apps.vr import VRClient, VRRenderServer
from repro.core.mrs import MecRegistrationServer
from repro.core.network import MobileNetwork
from repro.core.service import CIService

POSES = 120
BUDGETS = [0.020, 0.050, 0.100]


def run_vr(edge: bool) -> VRClient:
    network = MobileNetwork()
    server = VRRenderServer(network.sim, "vr-render")
    if edge:
        network.add_mec_site("mec")
        network.add_server("vr-render", site_name="mec", node=server)
        mrs = MecRegistrationServer(network)
        mrs.register_service(CIService("vr", "vr-arena"))
        mrs.deploy_instance("vr", "vr-render", "mec")
        ue = network.add_ue()
        mrs.request_connectivity(ue, "vr")
    else:
        network.add_server("vr-render", site_name="central", node=server)
        ue = network.add_ue()
        network.route_via_default_bearer(ue, "vr-render")
    client = VRClient(network.sim, ue, server.ip, max_poses=POSES)
    client.start()
    network.sim.run(until=POSES / 60.0 + 3.0)
    return client


def test_ext_vr_budget(report, benchmark):
    edge = run_vr(edge=True)
    cloud = run_vr(edge=False)

    r = report("ext_vr_budget",
               "Extension: VR motion-to-photon, edge vs cloud (60 Hz)")
    rows = []
    for label, client in (("ACACIA edge", edge), ("cloud", cloud)):
        samples = client.motion_to_photon() * 1e3
        rows.append([label, f"{np.median(samples):.1f}",
                     f"{np.percentile(samples, 95):.1f}"]
                    + [f"{client.fraction_within(b):.0%}"
                       for b in BUDGETS])
    r.table(["deployment", "median (ms)", "p95 (ms)"]
            + [f"<= {int(b * 1e3)} ms" for b in BUDGETS], rows)

    assert edge.fraction_within(0.050) > 0.95
    assert cloud.fraction_within(0.050) == 0.0
    assert np.median(edge.motion_to_photon()) < \
        0.5 * np.median(cloud.motion_to_photon())

    benchmark.pedantic(run_vr, args=(True,), rounds=1, iterations=1)
