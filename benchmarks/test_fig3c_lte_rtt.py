"""Figure 3(c): RTT CDF from an LTE smartphone to EC2 regions.

Paper shape: California is the closest region with ~70 ms median RTT;
Oregon and Virginia deliver substantially higher medians; all CDFs have
heavy upper tails.
"""

import numpy as np

from repro.sim.wan import LTE_WAN_PROFILES, rtt_cdf

SAMPLES = 2000


def test_fig3c_lte_rtt(report, benchmark):
    rng = np.random.default_rng(0)
    rows = []
    samples = {}
    for name, profile in LTE_WAN_PROFILES.items():
        rtts = profile.sample_rtt(rng, SAMPLES)
        samples[name] = rtts
        rows.append([
            name,
            f"{np.median(rtts) * 1e3:.1f}",
            f"{np.percentile(rtts, 10) * 1e3:.1f}",
            f"{np.percentile(rtts, 90) * 1e3:.1f}",
            f"{rtts.max() * 1e3:.1f}",
        ])

    r = report("fig3c_lte_rtt",
               "Figure 3(c): LTE->EC2 RTT distribution (ms)")
    r.table(["region", "median", "p10", "p90", "max"], rows)
    r.line()
    r.line("CDF samples (ms at cumulative probability):")
    for name, rtts in samples.items():
        xs, ps = rtt_cdf(rtts)
        points = [f"p{int(p * 100):02d}={xs[np.searchsorted(ps, p)] * 1e3:.0f}"
                  for p in (0.25, 0.5, 0.75, 0.95)]
        r.line(f"  {name}: " + " ".join(points))

    ca = np.median(samples["ec2-california"])
    assert 0.060 <= ca <= 0.080                 # ~70 ms median
    assert np.median(samples["ec2-oregon"]) > ca
    assert np.median(samples["ec2-virginia"]) > \
        np.median(samples["ec2-oregon"])

    benchmark(LTE_WAN_PROFILES["ec2-california"].sample_rtt, rng, 100)
