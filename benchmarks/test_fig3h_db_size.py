"""Figure 3(h): object-matching runtime vs database size (i7, 8 cores).

Paper shape: runtime grows linearly with database size; 50 objects at
high resolution approach ~1 s, making database pruning a first-order
optimisation target.
"""

from repro.vision.camera import (R320x240, R480x360, R720x540, R960x720,
                                 R1440x1080)
from repro.vision.costmodel import DEVICES

DB_SIZES = [1, 5, 10, 25, 50]
RESOLUTIONS = [R320x240, R480x360, R720x540, R960x720, R1440x1080]


def test_fig3h_db_size(report, benchmark):
    device = DEVICES["i7-8core"]
    rows = []
    for resolution in RESOLUTIONS:
        row = [str(resolution)]
        for size in DB_SIZES:
            row.append(f"{device.db_match_time(resolution, size):.4f}")
        rows.append(row)

    r = report("fig3h_db_size",
               "Figure 3(h): match runtime (sec) vs DB size, i7 8-core")
    r.table(["resolution"] + [f"{s} obj" for s in DB_SIZES], rows)

    # linear growth and the ~1 s magnitude at the top-right corner
    t1 = device.db_match_time(R1440x1080, 1)
    t50 = device.db_match_time(R1440x1080, 50)
    assert abs(t50 - 50 * t1) < 1e-9
    assert 0.3 <= t50 <= 2.0

    benchmark(device.db_match_time, R960x720, 50)
