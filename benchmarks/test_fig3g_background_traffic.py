"""Figure 3(g): network latency vs background traffic and server RTT.

A single (conventional, non-split) S/P-GW pair serves both the AR
traffic and iperf-style background load; server proximity is emulated
with controlled link delays giving ~70 / 18 / 8 ms baseline RTTs.
Paper shape: latency is flat at the baseline until the shared gateways
saturate (~90-100 Mbps), then explodes towards seconds.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig
from repro.core.network import MobileNetwork, Pinger

#: (label, backhaul, core, internet) one-way delays emulating the RTTs.
RTT_CONFIGS = [
    ("70 ms", 0.010, 0.010, 0.009),
    ("18 ms", 0.0025, 0.0015, 0.001),
    ("8 ms", 0.0, 0.0, 0.0),
]

BG_RATES_MBPS = [0, 40, 80, 90, 100]
WARMUP = 6.0
PINGS = 8


def measure(backhaul, core, internet, bg_mbps):
    config = NetworkConfig(backhaul_delay=backhaul, core_delay=core,
                           internet_delay=internet, seed=17)
    network = MobileNetwork(config)
    ue = network.add_ue()
    if bg_mbps > 0:
        bg = network.add_background_load(rate=bg_mbps * 1e6)
        bg.start()
    pinger = Pinger(network, ue, "internet", size=1000, interval=0.4)
    pinger.run(count=PINGS, start=WARMUP)
    network.sim.run(until=WARMUP + PINGS * 0.4 + 8.0)
    if not pinger.rtts:
        # overload: replies stuck behind the queue; report the bound
        return WARMUP + 8.0
    return float(np.median(pinger.rtts))


def test_fig3g_background_traffic(report, benchmark):
    rows = []
    results = {}
    for label, backhaul, core, internet in RTT_CONFIGS:
        row = [f"One S-PGW ({label})"]
        for bg in BG_RATES_MBPS:
            latency = measure(backhaul, core, internet, bg)
            results[(label, bg)] = latency
            row.append(f"{latency * 1e3:.1f}")
        rows.append(row)

    r = report("fig3g_background_traffic",
               "Figure 3(g): median latency (ms) vs background traffic")
    r.table(["config"] + [f"{bg} Mbps" for bg in BG_RATES_MBPS], rows)

    for label, _, _, _ in RTT_CONFIGS:
        quiet = results[(label, 0)]
        loaded = results[(label, 100)]
        # flat until saturation...
        assert results[(label, 40)] == pytest.approx(quiet, rel=0.5)
        # ...then an explosion of >10x at/over capacity
        assert loaded > 10 * quiet
        assert loaded > 0.4     # approaching the ~second regime

    # baseline ordering matches the emulated RTTs
    assert results[("8 ms", 0)] < results[("18 ms", 0)] < \
        results[("70 ms", 0)]

    benchmark.pedantic(measure, args=(0.0, 0.0, 0.0, 0), rounds=1,
                       iterations=1)
