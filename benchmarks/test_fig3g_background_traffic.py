"""Figure 3(g): network latency vs background traffic and server RTT.

A single (conventional, non-split) S/P-GW pair serves both the AR
traffic and iperf-style background load; server proximity is emulated
with controlled link delays giving ~70 / 18 / 8 ms baseline RTTs.
Paper shape: latency is flat at the baseline until the shared gateways
saturate (~90-100 Mbps), then explodes towards seconds.

The measurement itself is the declarative ``fig3g`` preset (see
:mod:`repro.exp.presets`) driven through the experiment runner, so
``python -m repro exp run fig3g`` regenerates exactly these numbers.
"""

import pytest

from repro.exp import ExperimentRunner, preset, run_trial

RTT_LABELS = {70: "70 ms", 18: "18 ms", 8: "8 ms"}
BG_RATES_MBPS = [0, 40, 80, 90, 100]


def test_fig3g_background_traffic(report, benchmark):
    spec = preset("fig3g")
    outcome = ExperimentRunner(spec).run()
    assert outcome.ok, [f.error for f in outcome.failures()]
    metrics = outcome.metrics_by("rtt_ms", "bg_mbps")

    results = {}
    rows = []
    for rtt_ms, label in RTT_LABELS.items():
        row = [f"One S-PGW ({label})"]
        for bg in BG_RATES_MBPS:
            latency = metrics[(rtt_ms, bg)]["median_rtt_ms"] / 1e3
            results[(label, bg)] = latency
            row.append(f"{latency * 1e3:.1f}")
        rows.append(row)

    r = report("fig3g_background_traffic",
               "Figure 3(g): median latency (ms) vs background traffic")
    r.table(["config"] + [f"{bg} Mbps" for bg in BG_RATES_MBPS], rows)

    for label in RTT_LABELS.values():
        quiet = results[(label, 0)]
        loaded = results[(label, 100)]
        # flat until saturation...
        assert results[(label, 40)] == pytest.approx(quiet, rel=0.5)
        # ...then an explosion of >10x at/over capacity
        assert loaded > 10 * quiet
        assert loaded > 0.4     # approaching the ~second regime

    # baseline ordering matches the emulated RTTs
    assert results[("8 ms", 0)] < results[("18 ms", 0)] < \
        results[("70 ms", 0)]

    quiet_8ms = next(t for t in spec.trials()
                     if t.param_dict["rtt_ms"] == 8
                     and t.param_dict["bg_mbps"] == 0)
    benchmark.pedantic(run_trial, args=(quiet_8ms,), rounds=1,
                       iterations=1)
