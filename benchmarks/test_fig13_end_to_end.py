"""Figure 13: end-to-end latency breakdown -- ACACIA vs MEC vs CLOUD.

The full stack: a customer at a checkpoint streams 720*480 JPEG frames
through the simulated mobile network to the AR server, which matches
them against the 105-object store database.

Paper headline numbers: ACACIA cuts matching 7.7x (location pruning),
network latency 3.15x vs CLOUD (edge path + dedicated bearer); MEC
alone gives ~25% end-to-end reduction over CLOUD; ACACIA reaches ~60%
over MEC and ~70% over CLOUD.
"""

import pytest

from repro.apps.workload import CheckpointWorkload
from repro.baselines import build_deployment
from repro.vision.camera import R720x480

FRAMES = 8
CHECKPOINT = 4


def run_deployment(kind, scenario, db):
    deployment = build_deployment(kind, db, scenario, seed=13)
    checkpoint = scenario.checkpoints[CHECKPOINT]
    workload = CheckpointWorkload(scenario, db, seed=13,
                                  frames_per_object=FRAMES,
                                  resolution=R720x480)
    sample = workload.sample(checkpoint)

    if kind == "acacia":
        section = scenario.section_of_subsection(checkpoint.subsection)
        deployment.customer.move_to(checkpoint.position)
        deployment.customer.open([section])
        # browse through ~3 discovery periods so the tracker's EWMA
        # settles before the AR session starts
        deployment.network.sim.run(until=32.0)
        assert deployment.customer.session is not None
    session = deployment.new_session(iter(sample.frames),
                                     resolution=R720x480,
                                     max_frames=FRAMES)
    session.start(at=deployment.network.sim.now)
    deployment.network.sim.run(
        until=deployment.network.sim.now + 120.0)
    assert len(session.records) == FRAMES
    assert all(r.matched == sample.record.name for r in session.records)
    return session.mean_breakdown()


def test_fig13_end_to_end(scenario, db, report, benchmark):
    breakdowns = {kind: run_deployment(kind, scenario, db)
                  for kind in ("acacia", "mec", "cloud")}

    r = report("fig13_end_to_end",
               "Figure 13: end-to-end per-frame breakdown (ms), 720*480")
    rows = []
    for part in ("match", "compute", "network", "total"):
        rows.append([part.capitalize()] + [
            f"{breakdowns[kind][part] * 1e3:.0f}"
            for kind in ("acacia", "mec", "cloud")])
    r.table(["component", "ACACIA", "MEC", "CLOUD"], rows)

    acacia, mec, cloud = (breakdowns[k] for k in ("acacia", "mec",
                                                  "cloud"))
    match_speedup = cloud["match"] / acacia["match"]
    network_speedup = cloud["network"] / acacia["network"]
    e2e_vs_cloud = 1 - acacia["total"] / cloud["total"]
    e2e_vs_mec = 1 - acacia["total"] / mec["total"]
    mec_vs_cloud = 1 - mec["total"] / cloud["total"]
    r.line()
    r.line(f"match reduction ACACIA vs CLOUD: {match_speedup:.1f}x "
           f"(paper: 7.7x)")
    r.line(f"network reduction ACACIA vs CLOUD: {network_speedup:.2f}x "
           f"(paper: 3.15x)")
    r.line(f"end-to-end reduction vs CLOUD: {e2e_vs_cloud:.0%} "
           f"(paper: 70%)")
    r.line(f"end-to-end reduction vs MEC: {e2e_vs_mec:.0%} (paper: 60%)")
    r.line(f"MEC end-to-end reduction vs CLOUD: {mec_vs_cloud:.0%} "
           f"(paper: 25%)")

    # paper-shape assertions (generous bands around the headline
    # claims; see EXPERIMENTS.md for the per-number discussion)
    assert 3.0 <= match_speedup <= 12.0
    assert 1.8 <= network_speedup <= 5.0
    assert 0.55 <= e2e_vs_cloud <= 0.85
    assert 0.40 <= e2e_vs_mec <= 0.75
    assert 0.05 <= mec_vs_cloud <= 0.40
    # compute (encode/decode/SURF) is scheme-independent
    assert acacia["compute"] == pytest.approx(cloud["compute"], rel=0.05)

    benchmark.pedantic(run_deployment, args=("mec", scenario, db),
                       rounds=1, iterations=1)
