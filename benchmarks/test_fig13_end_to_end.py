"""Figure 13: end-to-end latency breakdown -- ACACIA vs MEC vs CLOUD.

The full stack: a customer at a checkpoint streams 720*480 JPEG frames
through the simulated mobile network to the AR server, which matches
them against the 105-object store database.

Paper headline numbers: ACACIA cuts matching 7.7x (location pruning),
network latency 3.15x vs CLOUD (edge path + dedicated bearer); MEC
alone gives ~25% end-to-end reduction over CLOUD; ACACIA reaches ~60%
over MEC and ~70% over CLOUD.

The measurement itself is the declarative ``fig13`` preset (see
:mod:`repro.exp.presets`) driven through the experiment runner, so
``python -m repro exp run fig13`` regenerates exactly these numbers.
"""

import pytest

from repro.exp import ExperimentRunner, preset, run_trial

KINDS = ("acacia", "mec", "cloud")
FRAMES = 8


def test_fig13_end_to_end(report, benchmark):
    spec = preset("fig13")
    outcome = ExperimentRunner(spec).run()
    assert outcome.ok, [f.error for f in outcome.failures()]
    metrics = outcome.metrics_by("kind")

    breakdowns = {}
    for kind in KINDS:
        m = metrics[(kind,)]
        assert m["frames_completed"] == FRAMES
        assert m["all_matched"]
        breakdowns[kind] = m["breakdown_ms"]

    r = report("fig13_end_to_end",
               "Figure 13: end-to-end per-frame breakdown (ms), 720*480")
    rows = []
    for part in ("match", "compute", "network", "total"):
        rows.append([part.capitalize()] + [
            f"{breakdowns[kind][part]:.0f}" for kind in KINDS])
    r.table(["component", "ACACIA", "MEC", "CLOUD"], rows)

    acacia, mec, cloud = (breakdowns[k] for k in KINDS)
    match_speedup = cloud["match"] / acacia["match"]
    network_speedup = cloud["network"] / acacia["network"]
    e2e_vs_cloud = 1 - acacia["total"] / cloud["total"]
    e2e_vs_mec = 1 - acacia["total"] / mec["total"]
    mec_vs_cloud = 1 - mec["total"] / cloud["total"]
    r.line()
    r.line(f"match reduction ACACIA vs CLOUD: {match_speedup:.1f}x "
           f"(paper: 7.7x)")
    r.line(f"network reduction ACACIA vs CLOUD: {network_speedup:.2f}x "
           f"(paper: 3.15x)")
    r.line(f"end-to-end reduction vs CLOUD: {e2e_vs_cloud:.0%} "
           f"(paper: 70%)")
    r.line(f"end-to-end reduction vs MEC: {e2e_vs_mec:.0%} (paper: 60%)")
    r.line(f"MEC end-to-end reduction vs CLOUD: {mec_vs_cloud:.0%} "
           f"(paper: 25%)")

    # paper-shape assertions (generous bands around the headline
    # claims; see EXPERIMENTS.md for the per-number discussion)
    assert 3.0 <= match_speedup <= 12.0
    assert 1.8 <= network_speedup <= 5.0
    assert 0.55 <= e2e_vs_cloud <= 0.85
    assert 0.40 <= e2e_vs_mec <= 0.75
    assert 0.05 <= mec_vs_cloud <= 0.40
    # compute (encode/decode/SURF) is scheme-independent
    assert acacia["compute"] == pytest.approx(cloud["compute"], rel=0.05)

    mec_trial = next(t for t in spec.trials()
                     if t.param_dict["kind"] == "mec")
    benchmark.pedantic(run_trial, args=(mec_trial,), rounds=1,
                       iterations=1)
