"""Ablation: session continuity across an X2 handover.

Not evaluated in the paper (single-cell testbeds), but the architecture
claims it for free: the SGW-U anchors each bearer, so a dedicated MEC
bearer survives a handover with its local gateways -- and the CI
session's latency -- intact.  This bench runs an AR session through a
mid-session handover and compares per-frame latency before and after,
plus the signalling bill.
"""

import numpy as np

from repro.apps.workload import CheckpointWorkload
from repro.baselines import build_deployment
from repro.vision.camera import R720x480

FRAMES = 12


def run_with_handover(scenario, db):
    deployment = build_deployment("acacia", db, scenario, seed=21)
    network = deployment.network
    network.add_enb("enb1")
    checkpoint = scenario.checkpoints[4]
    section = scenario.section_of_subsection(checkpoint.subsection)
    deployment.customer.move_to(checkpoint.position)
    deployment.customer.open([section])
    network.sim.run(until=32.0)
    assert deployment.customer.session is not None

    workload = CheckpointWorkload(scenario, db, seed=21,
                                  frames_per_object=FRAMES,
                                  resolution=R720x480)
    sample = workload.sample(checkpoint)
    session = deployment.new_session(iter(sample.frames),
                                     resolution=R720x480,
                                     max_frames=FRAMES)
    session.start(at=network.sim.now)

    # hand the customer over to the neighbouring cell mid-session
    handover_at = network.sim.now + FRAMES / 2 * 0.3
    holder = {}

    def do_handover():
        holder["result"] = network.handover(deployment.ue, "enb1")

    network.sim.schedule_at(handover_at, do_handover)
    network.sim.run(until=network.sim.now + 60.0)

    assert len(session.records) == FRAMES
    half = FRAMES // 2
    before = [r.total_time for r in session.records[:half]]
    after = [r.total_time for r in session.records[half:]]
    return {
        "before_ms": float(np.mean(before)) * 1e3,
        "after_ms": float(np.mean(after)) * 1e3,
        "matched": all(r.matched == sample.record.name
                       for r in session.records),
        "ho_messages": holder["result"].message_count,
        "ho_bytes": holder["result"].byte_count,
        "ho_elapsed_ms": holder["result"].elapsed * 1e3,
    }


def test_ablation_handover(scenario, db, report, benchmark):
    result = run_with_handover(scenario, db)

    r = report("ablation_handover",
               "Ablation: AR session continuity across an X2 handover")
    r.table(["metric", "value"], [
        ["mean frame latency before HO", f"{result['before_ms']:.0f} ms"],
        ["mean frame latency after HO", f"{result['after_ms']:.0f} ms"],
        ["all frames matched correctly", str(result["matched"])],
        ["handover signalling", f"{result['ho_messages']} messages, "
                                f"{result['ho_bytes']} bytes"],
        ["handover control latency", f"{result['ho_elapsed_ms']:.0f} ms"],
    ])

    assert result["matched"]
    # latency after the handover stays within 20% of the pre-HO level:
    # the MEC anchoring survived the cell change
    assert abs(result["after_ms"] - result["before_ms"]) < \
        0.2 * result["before_ms"]
    assert result["ho_elapsed_ms"] < 60

    benchmark.pedantic(run_with_handover, args=(scenario, db), rounds=1,
                       iterations=1)
