"""Figure 12: matching time vs number of concurrent clients.

960*720 frames, 1/2/4/8 clients on the Xeon (32 cores) and the i7
(8 cores).  Paper shape: runtime roughly doubles as clients double on
the i7; the Xeon absorbs small client counts; ACACIA's advantage grows
with load.
"""

import numpy as np
import pytest

from benchmarks.test_fig11a_search_space import (SCHEMES, build_context,
                                                 search_space_for)
from repro.vision.camera import R960x720
from repro.vision.costmodel import DEVICES

CLIENTS = [1, 2, 4, 8]
MACHINES = ["xeon-32core", "i7-8core"]


def mean_time(device, db, localization, optimizer, samples, scheme,
              clients):
    times = []
    for sample in samples:
        space = search_space_for(scheme, localization, optimizer,
                                 sample.checkpoint.name)
        times.append(device.db_match_time(
            R960x720, db_objects=space.size,
            object_features=db.mean_nominal_features(space.records),
            clients=clients))
    return float(np.mean(times))


def test_fig12_multiclient(scenario, db, report, benchmark):
    localization, optimizer, samples = build_context(scenario, db)
    results = {}
    for machine in MACHINES:
        device = DEVICES[machine]
        for scheme in SCHEMES:
            for clients in CLIENTS:
                results[(machine, scheme, clients)] = mean_time(
                    device, db, localization, optimizer, samples,
                    scheme, clients)

    for machine in MACHINES:
        r = report(f"fig12_multiclient_{machine}",
                   f"Figure 12: matching time (sec) vs clients, {machine}")
        rows = [[scheme] + [f"{results[(machine, scheme, c)]:.3f}"
                            for c in CLIENTS]
                for scheme in SCHEMES]
        r.table(["scheme"] + [f"{c} clients" for c in CLIENTS], rows)

    # i7: doubling clients doubles runtime (8-core machine, 8-wide jobs)
    i7_naive = [results[("i7-8core", "naive", c)] for c in CLIENTS]
    for previous, current in zip(i7_naive, i7_naive[1:]):
        assert current == pytest.approx(2 * previous, rel=0.01)
    # Xeon absorbs up to 4 clients before contention kicks in
    assert results[("xeon-32core", "naive", 4)] == pytest.approx(
        results[("xeon-32core", "naive", 1)], rel=0.01)
    assert results[("xeon-32core", "naive", 8)] > \
        results[("xeon-32core", "naive", 4)]
    # the absolute gap between ACACIA and the others grows with load
    gap_1 = results[("i7-8core", "naive", 1)] - \
        results[("i7-8core", "acacia", 1)]
    gap_8 = results[("i7-8core", "naive", 8)] - \
        results[("i7-8core", "acacia", 8)]
    assert gap_8 > 4 * gap_1

    benchmark.pedantic(
        mean_time,
        args=(DEVICES["i7-8core"], db, localization, optimizer, samples,
              "naive", 8),
        rounds=1, iterations=1)
