"""Control-plane resilience under injected signalling loss.

Runs the ``chaos`` preset: ``n_ues`` concurrent attaches plus one
dedicated MEC bearer each, while a :class:`~repro.faults.plan.ChannelLoss`
fault drops every signalling delivery with probability ``loss``.  The
sweep crosses loss rate (0-10%) with retransmission on/off, so the
table shows both what the NAS/S1AP-style timers buy (success stays at
100% at the cost of retransmission latency) and what losing them costs
(procedures terminate with ``timeout`` outcomes -- never a deadlock).
The whole experiment is deterministic: a rerun at the same seeds is
byte-identical.
"""

from repro.exp.presets import preset
from repro.exp.runner import ExperimentRunner

LOSSES = (0.0, 0.02, 0.05, 0.10)


def run_chaos():
    result = ExperimentRunner(preset("chaos")).run()
    assert result.ok, result.failures()
    return result


def test_resilience_chaos(report, benchmark):
    result = run_chaos()
    by = result.metrics_by("loss", "retries")

    rows = []
    for retries in (True, False):
        for loss in LOSSES:
            m = by[(loss, retries)]
            timeouts = (m["attach_outcomes"].get("timeout", 0)
                        + m["bearer_outcomes"].get("timeout", 0))
            rows.append([f"{loss:.0%}", "on" if retries else "off",
                         f"{m['attach_success_rate']:.2f}",
                         f"{m['bearer_success_rate']:.2f}",
                         f"{m['attach_mean_ms']:.1f}",
                         m["retransmissions"], timeouts])

    r = report("resilience_chaos", "Resilience under signalling loss "
               "(20 UEs, attach + dedicated bearer)")
    r.table(["loss", "retries", "attach_ok", "bearer_ok",
             "attach_ms", "retrans", "timeouts"], rows)
    r.line()
    r.line("with retransmission every procedure completes even at 10% "
           "loss; without it, losses surface as terminal timeout "
           "outcomes (no deadlocks, no hung procedures)")

    # acceptance: >= 99% attach success at 5% injected loss with retries
    assert by[(0.05, True)]["attach_success_rate"] >= 0.99
    assert by[(0.05, True)]["bearer_success_rate"] >= 0.99
    # recovery is not free: retransmission timers add latency under loss
    assert (by[(0.05, True)]["attach_mean_ms"]
            > by[(0.0, True)]["attach_mean_ms"])
    # zero loss needs zero retransmissions, lossy runs need some
    assert by[(0.0, True)]["retransmissions"] == 0
    assert by[(0.05, True)]["retransmissions"] > 0
    # without retries, loss means terminal timeouts -- but every trial
    # still ran to completion (status "ok"), so nothing deadlocked
    for loss in LOSSES[1:]:
        m = by[(loss, False)]
        assert m["retransmissions"] == 0
        assert m["attach_outcomes"].get("timeout", 0) > 0
        assert m["attach_success_rate"] < 1.0
    # success degrades monotonically with loss when nothing retries
    rates = [by[(loss, False)]["attach_success_rate"] for loss in LOSSES]
    assert rates == sorted(rates, reverse=True)

    # determinism: a rerun of the same spec is byte-identical
    assert run_chaos().canonical_json() == result.canonical_json()

    benchmark.pedantic(run_chaos, rounds=1, iterations=1)
