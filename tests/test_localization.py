"""Tests for path-loss regression, trilateration and the tracker."""

import numpy as np
import pytest

from repro.d2d.radio import RadioModel
from repro.localization.landmarks import Landmark, LandmarkMap
from repro.localization.pathloss import (PathLossRegression,
                                         calibrate_from_radio)
from repro.localization.tracker import LocationTracker
from repro.localization.trilateration import (TrilaterationError,
                                              residual_error, trilaterate)


class TestPathLossRegression:
    def test_fit_recovers_known_model(self):
        """Noise-free samples from rx = -50 - 30 log10(d)."""
        d = np.array([1, 2, 5, 10, 20, 50], dtype=float)
        rx = -50 - 30 * np.log10(d)
        model = PathLossRegression.fit(d, rx)
        assert model.alpha == pytest.approx(-50, abs=1e-9)
        assert model.beta == pytest.approx(-30, abs=1e-9)

    def test_distance_prediction_roundtrip(self):
        model = PathLossRegression(alpha=-50, beta=-30)
        for d in (1.0, 3.0, 12.0, 40.0):
            rx = model.predict_rx_power(d)
            assert model.predict_distance(rx) == pytest.approx(d, rel=1e-9)

    def test_prediction_clamped(self):
        model = PathLossRegression(alpha=-50, beta=-30)
        assert model.predict_distance(-500.0) == 500.0
        assert model.predict_distance(+100.0) == 0.01

    def test_positive_beta_rejected(self):
        with pytest.raises(ValueError):
            PathLossRegression(alpha=-50, beta=+3)

    def test_fit_input_validation(self):
        with pytest.raises(ValueError):
            PathLossRegression.fit(np.array([1.0]), np.array([-50.0]))
        with pytest.raises(ValueError):
            PathLossRegression.fit(np.array([0.0, 1.0]),
                                   np.array([-50.0, -60.0]))

    def test_calibration_against_radio_model(self):
        """The one-time calibration recovers the radio's true exponent."""
        radio = RadioModel()
        rng = np.random.default_rng(0)
        model = calibrate_from_radio(radio, rng)
        assert model.beta == pytest.approx(-10 * radio.exponent, abs=2.0)
        assert model.alpha == pytest.approx(
            radio.tx_power - radio.pl0, abs=2.0)


class TestTrilateration:
    ANCHORS = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)]

    def ranges_to(self, point, anchors=None):
        anchors = anchors if anchors is not None else self.ANCHORS
        return [float(np.hypot(point[0] - x, point[1] - y))
                for x, y in anchors]

    def test_exact_ranges_exact_position(self):
        truth = (7.0, 11.0)
        estimate = trilaterate(self.ANCHORS, self.ranges_to(truth))
        assert estimate[0] == pytest.approx(truth[0], abs=1e-6)
        assert estimate[1] == pytest.approx(truth[1], abs=1e-6)

    def test_three_anchors_suffice(self):
        truth = (5.0, 5.0)
        anchors = self.ANCHORS[:3]
        estimate = trilaterate(anchors, self.ranges_to(truth, anchors))
        assert np.hypot(estimate[0] - 5, estimate[1] - 5) < 1e-6

    def test_noisy_ranges_bounded_error(self):
        rng = np.random.default_rng(5)
        truth = (12.0, 6.0)
        errors = []
        for _ in range(50):
            noisy = [r * rng.uniform(0.8, 1.25)
                     for r in self.ranges_to(truth)]
            est = trilaterate(self.ANCHORS, noisy)
            errors.append(np.hypot(est[0] - truth[0], est[1] - truth[1]))
        assert np.mean(errors) < 4.0

    def test_two_anchor_degenerate_mode(self):
        estimate = trilaterate([(0.0, 0.0), (10.0, 0.0)], [3.0, 7.0])
        assert estimate == pytest.approx((3.0, 0.0))

    def test_input_validation(self):
        with pytest.raises(TrilaterationError):
            trilaterate([(0, 0)], [1.0])
        with pytest.raises(TrilaterationError):
            trilaterate([(0, 0), (1, 1)], [1.0])
        with pytest.raises(TrilaterationError):
            trilaterate([(0, 0), (1, 1), (2, 2)], [1.0, 1.0, -1.0])
        with pytest.raises(TrilaterationError):
            trilaterate([(5, 5), (5, 5), (5, 5)], [1.0, 1.0, 1.0])

    def test_residual_error_zero_for_perfect_fit(self):
        truth = (7.0, 11.0)
        assert residual_error(self.ANCHORS, self.ranges_to(truth),
                              truth) == pytest.approx(0.0, abs=1e-9)


class TestLandmarkMap:
    def make_map(self):
        return LandmarkMap(
            landmarks=[Landmark("lm1", 0.0, 0.0), Landmark("lm2", 20.0, 0.0)],
            regression=PathLossRegression(alpha=-50, beta=-30))

    def test_lookup(self):
        lmap = self.make_map()
        assert lmap.get("lm1").position == (0.0, 0.0)
        assert "lm2" in lmap
        assert len(lmap) == 2

    def test_duplicate_rejected(self):
        lmap = self.make_map()
        with pytest.raises(ValueError):
            lmap.add(Landmark("lm1", 1.0, 1.0))

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            self.make_map().get("nope")

    def test_json_roundtrip(self, tmp_path):
        lmap = self.make_map()
        path = tmp_path / "map.json"
        lmap.save(path)
        loaded = LandmarkMap.load(path)
        assert loaded.names == lmap.names
        assert loaded.regression.alpha == lmap.regression.alpha
        assert loaded.get("lm2").x == 20.0


class TestLocationTracker:
    def make_tracker(self, **kw):
        lmap = LandmarkMap(
            landmarks=[Landmark("lm1", 0.0, 0.0),
                       Landmark("lm2", 20.0, 0.0),
                       Landmark("lm3", 0.0, 20.0)],
            regression=PathLossRegression(alpha=-50, beta=-30))
        return LocationTracker(lmap, **kw)

    def observe_truth(self, tracker, truth, now):
        model = tracker.map.regression
        for landmark in tracker.map:
            d = float(np.hypot(truth[0] - landmark.x, truth[1] - landmark.y))
            tracker.observe(landmark.name, model.predict_rx_power(d), now)

    def test_estimate_from_exact_observations(self):
        tracker = self.make_tracker()
        truth = (6.0, 8.0)
        self.observe_truth(tracker, truth, now=0.0)
        estimate = tracker.estimate(now=1.0)
        assert estimate is not None
        assert np.hypot(estimate[0] - truth[0],
                        estimate[1] - truth[1]) < 0.1

    def test_insufficient_landmarks_returns_none(self):
        tracker = self.make_tracker()
        tracker.observe("lm1", -60.0, 0.0)
        tracker.observe("lm2", -70.0, 0.0)
        assert tracker.estimate(now=1.0) is None

    def test_stale_readings_expire(self):
        tracker = self.make_tracker(staleness=5.0)
        self.observe_truth(tracker, (6.0, 8.0), now=0.0)
        assert tracker.estimate(now=1.0) is not None
        assert tracker.estimate(now=100.0) is None

    def test_unknown_landmark_rejected(self):
        tracker = self.make_tracker()
        with pytest.raises(KeyError):
            tracker.observe("ghost", -60.0, 0.0)

    def test_strongest_landmarks_ranking(self):
        tracker = self.make_tracker()
        tracker.observe("lm1", -80.0, 0.0)
        tracker.observe("lm2", -55.0, 0.0)
        tracker.observe("lm3", -65.0, 0.0)
        assert tracker.strongest_landmarks(now=1.0) == ["lm2", "lm3"]

    def test_requires_regression(self):
        lmap = LandmarkMap(landmarks=[Landmark("lm1", 0, 0)])
        with pytest.raises(ValueError):
            LocationTracker(lmap)

    def test_estimate_counter(self):
        tracker = self.make_tracker()
        self.observe_truth(tracker, (6.0, 8.0), now=0.0)
        tracker.estimate(now=1.0)
        tracker.estimate(now=2.0)
        assert tracker.estimates_made == 2
