"""Tests for the matching pipeline: accuracy on synthetic descriptors."""

import numpy as np
import pytest

from repro.vision.camera import R320x240
from repro.vision.features import FeatureExtractor, ObjectModel
from repro.vision.matcher import MatchStats, ObjectMatcher


@pytest.fixture()
def setup():
    rng = np.random.default_rng(42)
    extractor = FeatureExtractor(np.random.default_rng(7))
    matcher = ObjectMatcher(rng=rng)
    objects = [ObjectModel.generate(f"obj-{i}", n_features=80, seed=i)
               for i in range(10)]
    return extractor, matcher, objects


def test_true_object_accepted(setup):
    extractor, matcher, objects = setup
    frame = extractor.frame_of(objects[3], R320x240)
    outcome = matcher.match_one(frame, objects[3])
    assert outcome.accepted
    assert outcome.stage_reached == "accept"
    assert outcome.inliers >= matcher.min_inliers


def test_wrong_object_rejected(setup):
    extractor, matcher, objects = setup
    frame = extractor.frame_of(objects[3], R320x240)
    outcome = matcher.match_one(frame, objects[5])
    assert not outcome.accepted


def test_clutter_frame_rejected_by_all(setup):
    extractor, matcher, objects = setup
    frame = extractor.clutter_frame(R320x240, n_features=120)
    assert matcher.match_frame(frame, objects) is None


def test_match_frame_finds_correct_object(setup):
    extractor, matcher, objects = setup
    for target in (0, 4, 9):
        frame = extractor.frame_of(objects[target], R320x240)
        best = matcher.match_frame(frame, objects)
        assert best is not None
        assert best.object_name == f"obj-{target}"


def test_match_frame_misses_when_object_pruned_away(setup):
    """The rxPower scheme's false-negative mode: the true object is not
    in the searched subset, so no match is returned."""
    extractor, matcher, objects = setup
    frame = extractor.frame_of(objects[3], R320x240)
    pruned = [o for o in objects if o.name != "obj-3"]
    assert matcher.match_frame(frame, pruned) is None


def test_accuracy_over_many_frames(setup):
    extractor, matcher, objects = setup
    stats = MatchStats()
    for i in range(10):
        frame = extractor.frame_of(objects[i % len(objects)], R320x240)
        best = matcher.match_frame(frame, objects)
        stats.record(frame.true_object,
                     best.object_name if best else None)
    assert stats.true_positives == 10
    assert stats.false_positives == 0


def test_stage_progression_recorded(setup):
    extractor, matcher, objects = setup
    frame = extractor.clutter_frame(R320x240)
    outcome = matcher.match_one(frame, objects[0])
    assert outcome.stage_reached in ("ratio", "symmetry", "ransac")
    assert not outcome.accepted


def test_ratio_threshold_validation():
    with pytest.raises(ValueError):
        ObjectMatcher(ratio_threshold=1.5)


def test_match_stats_categories():
    stats = MatchStats()
    stats.record("a", "a")      # TP
    stats.record("a", None)     # FN
    stats.record(None, "a")     # FP
    stats.record(None, None)    # TN
    stats.record("a", "b")      # FP (wrong object)
    assert stats.true_positives == 1
    assert stats.false_negatives == 1
    assert stats.false_positives == 2
    assert stats.true_negatives == 1
    assert stats.total == 5


def test_lone_reference_candidate_rejected(setup):
    extractor, matcher, objects = setup
    lone = ObjectModel(name="lone", descriptors=objects[0].descriptors[:1],
                       keypoints=objects[0].keypoints[:1], seed=0)
    frame = extractor.frame_of(objects[0], R320x240)
    outcome = matcher.match_one(frame, lone)
    # lone-candidate policy: no second neighbour means no ratio test,
    # so every match is rejected rather than vacuously accepted
    assert outcome.good_matches == 0
    assert not outcome.accepted
    assert outcome.stage_reached == "ratio"


def test_empty_reference_candidate_rejected(setup):
    extractor, matcher, objects = setup
    empty = ObjectModel(name="empty",
                        descriptors=objects[0].descriptors[:0],
                        keypoints=objects[0].keypoints[:0], seed=0)
    frame = extractor.frame_of(objects[0], R320x240)
    outcome = matcher.match_one(frame, empty)
    assert outcome.good_matches == 0
    assert not outcome.accepted


def test_knn2_requires_two_references(setup):
    from repro.vision.matcher import _knn2
    _, _, objects = setup
    with pytest.raises(ValueError, match="lone-candidate"):
        _knn2(objects[0].descriptors, objects[1].descriptors[:1])
