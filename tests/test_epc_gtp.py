"""Unit tests for GTP-U encapsulation."""

import pytest

from repro.epc.gtp import (GTP_TUNNEL_OVERHEAD, gtp_decapsulate,
                           gtp_encapsulate, gtp_teid, is_gtp)
from repro.sim.packet import Packet


def make_packet():
    return Packet(src="10.45.0.2", dst="203.0.113.10", size=1000,
                  protocol="UDP", src_port=40000, dst_port=9000)


def test_encapsulate_adds_36_bytes():
    pkt = gtp_encapsulate(make_packet(), teid=0x1001,
                          src="192.168.1.1", dst="172.16.0.1")
    assert pkt.wire_size == 1000 + GTP_TUNNEL_OVERHEAD
    assert GTP_TUNNEL_OVERHEAD == 36


def test_inner_addresses_preserved():
    pkt = gtp_encapsulate(make_packet(), teid=1, src="a", dst="b")
    assert pkt.src == "10.45.0.2"
    assert pkt.dst == "203.0.113.10"


def test_decapsulate_roundtrip():
    pkt = gtp_encapsulate(make_packet(), teid=0x42, src="a", dst="b")
    pkt, teid = gtp_decapsulate(pkt)
    assert teid == 0x42
    assert pkt.wire_size == 1000
    assert not is_gtp(pkt)


def test_decapsulate_bare_packet_raises():
    with pytest.raises(ValueError):
        gtp_decapsulate(make_packet())


def test_gtp_teid_read_without_mutation():
    pkt = gtp_encapsulate(make_packet(), teid=7, src="a", dst="b")
    assert gtp_teid(pkt) == 7
    assert pkt.wire_size == 1036   # unchanged


def test_gtp_teid_none_for_bare_packet():
    assert gtp_teid(make_packet()) is None


def test_nested_tunnels():
    """Double encapsulation (e.g. transient during SGW relay) nests."""
    pkt = gtp_encapsulate(make_packet(), teid=1, src="a", dst="b")
    pkt = gtp_encapsulate(pkt, teid=2, src="b", dst="c")
    assert pkt.wire_size == 1000 + 2 * GTP_TUNNEL_OVERHEAD
    pkt, outer = gtp_decapsulate(pkt)
    assert outer == 2
    pkt, inner = gtp_decapsulate(pkt)
    assert inner == 1
