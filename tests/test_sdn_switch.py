"""Unit tests for the flow switch: forwarding, fast path, CPU costs."""

import pytest

from repro.epc.gtp import gtp_encapsulate, is_gtp
from repro.sdn.dataplane import (ACACIA_OVS_PROFILE, IDEAL_PROFILE,
                                 OPENEPC_USERSPACE_PROFILE, DataPlaneProfile)
from repro.sdn.openflow import FlowMatch, FlowRule, GtpDecap, GtpEncap, Output
from repro.sdn.switch import FlowSwitch
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import PacketSink
from repro.sim.packet import Packet


def build(profile=IDEAL_PROFILE):
    sim = Simulator()
    src = PacketSink(sim, "src", ip="10.0.0.1")
    switch = FlowSwitch(sim, "sw", profile=profile, ip="172.16.0.1")
    dst = PacketSink(sim, "dst", ip="10.0.0.2")
    l_in = Link(sim, "in", bandwidth=1e9, delay=0.0)
    l_out = Link(sim, "out", bandwidth=1e9, delay=0.0)
    src.attach("p", l_in)
    switch.attach("in", l_in)
    switch.attach("out", l_out)
    dst.attach("p", l_out)
    return sim, src, switch, dst


def pkt(dst="10.0.0.2", **kw):
    defaults = dict(src="10.0.0.1", dst=dst, size=1000, protocol="UDP",
                    src_port=1, dst_port=2)
    defaults.update(kw)
    return Packet(**defaults)


def test_forwarding_with_matching_rule():
    sim, src, switch, dst = build()
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")]))
    src.send("p", pkt())
    sim.run()
    assert len(dst.received) == 1


def test_table_miss_drops():
    sim, src, switch, dst = build()
    switch.install(FlowRule(FlowMatch(dst_ip="1.1.1.1"), [Output("out")]))
    src.send("p", pkt())
    sim.run()
    assert dst.received == []
    assert switch.table_misses == 1


def test_priority_selects_rule():
    sim, src, switch, dst = build()
    switch.install(FlowRule(FlowMatch(), [Output("in")], priority=10,
                            cookie="low"))
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")],
                            priority=200, cookie="high"))
    src.send("p", pkt())
    sim.run()
    assert len(dst.received) == 1


def test_gtp_decap_encap_chain():
    sim, src, switch, dst = build()
    switch.install(FlowRule(
        FlowMatch(teid=0x10),
        [GtpDecap(), GtpEncap(0x20, "172.16.0.1", "172.16.0.2"),
         Output("out")]))
    packet = gtp_encapsulate(pkt(), 0x10, "192.168.1.1", "172.16.0.1")
    src.send("p", packet)
    sim.run()
    assert len(dst.received) == 1
    out = dst.received[0]
    assert is_gtp(out)
    assert out.find_header("GTP-U")["teid"] == 0x20


def test_remove_by_cookie():
    sim, src, switch, dst = build()
    switch.install(FlowRule(FlowMatch(), [Output("out")], cookie="x"))
    removed = switch.remove("x")
    assert len(removed) == 1
    src.send("p", pkt())
    sim.run()
    assert switch.table_misses == 1


def test_fast_path_cache_hit_counting():
    sim, src, switch, dst = build(profile=ACACIA_OVS_PROFILE)
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")]))
    for _ in range(5):
        src.send("p", pkt())
    sim.run()
    assert switch.slow_path_hits == 1
    assert switch.fast_path_hits == 4
    assert len(dst.received) == 5


def test_no_fast_path_profile_always_slow():
    sim, src, switch, dst = build(profile=OPENEPC_USERSPACE_PROFILE)
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")]))
    for _ in range(5):
        src.send("p", pkt())
    sim.run()
    assert switch.slow_path_hits == 5
    assert switch.fast_path_hits == 0


def test_cpu_serialisation_caps_throughput():
    """With a 100us per-packet cost, 10 packets take ~1ms to process."""
    profile = DataPlaneProfile("slow", slow_path_cost=100e-6,
                               fast_path_cost=100e-6, has_fast_path=False)
    sim, src, switch, dst = build(profile=profile)
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")]))
    for _ in range(10):
        src.send("p", pkt())
    sim.run()
    assert len(dst.received) == 10
    # 10 packets * 100us CPU each, serialized
    assert sim.now == pytest.approx(10 * 100e-6, rel=0.1)


def test_install_invalidates_cache():
    sim, src, switch, dst = build(profile=ACACIA_OVS_PROFILE)
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")],
                            priority=10))
    src.send("p", pkt())
    sim.run()
    # higher-priority rule shadows the old one; cache must not bypass it
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("in")],
                            priority=500))
    src.send("p", pkt())
    sim.run()
    assert len(dst.received) == 1   # second packet went elsewhere


def test_ideal_profile_forwards_inline():
    sim, src, switch, dst = build(profile=IDEAL_PROFILE)
    switch.install(FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")]))
    src.send("p", pkt())
    sim.run()
    # only link serialization (2 hops at 1 Gbps, 1000B) contributes
    assert sim.now == pytest.approx(2 * 8000 / 1e9, rel=0.01)
