"""Signalling-fabric tests: delivery-time stamping, monotonic ledgers,
channel contention and concurrent procedures."""

import pytest

from repro.core.config import NetworkConfig, SignallingConfig
from repro.core.network import MobileNetwork
from repro.epc.entities import ServicePolicy
from repro.epc.events import ProcedureCompleted, ProcedureStarted
from repro.epc.signalling import SignallingFabric
from repro.epc.messages import MessageType
from repro.epc.overhead import ControlLedger
from repro.sim.engine import SimulationError, Simulator


def build(seed=0, **cfg):
    return MobileNetwork(NetworkConfig(seed=seed, **cfg))


# -- the fabric itself ----------------------------------------------------

def test_send_resolves_with_delivered_message():
    sim = Simulator()
    fabric = SignallingFabric(sim, ControlLedger())
    fabric.open_channel("s1mme.enb0", "SCTP", ["enb0"], ["mme"])
    mtype = MessageType("SCTP", "Probe", 164)

    def proc():
        message = yield fabric.send(mtype, "enb0", "mme", imsi="001")
        return message

    message = sim.run_until_complete(sim.spawn(proc()))
    assert message.timestamp == sim.now > 0.0
    assert message.fields["imsi"] == "001"
    assert len(fabric.ledger) == 1


def test_unknown_pair_gets_adhoc_channel():
    sim = Simulator()
    fabric = SignallingFabric(sim, ControlLedger())
    mtype = MessageType("X2AP", "HandoverRequest", 96)

    def proc():
        yield fabric.send(mtype, "enb0", "enb1")

    sim.run_until_complete(sim.spawn(proc()))
    assert "adhoc.X2AP.enb0.enb1" in fabric.channels


def test_future_settles_exactly_once():
    sim = Simulator()
    future = sim.future()
    future.resolve(1)
    with pytest.raises(SimulationError):
        future.resolve(2)


def test_deadlocked_wait_is_detected():
    sim = Simulator()

    def proc():
        yield sim.future()      # nobody will ever resolve this

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(sim.spawn(proc()))


# -- delivery-time stamping (the old code stamped every message of a
#    procedure with the same invocation-time sim.now) --------------------

def test_messages_stamped_at_distinct_delivery_times():
    network = build()
    ue = network.add_ue()
    result = ue.attach_result
    stamps = [m.timestamp for m in result.messages]
    assert len(set(stamps)) == len(stamps), \
        "each message must carry its own delivery time"
    assert stamps == sorted(stamps)
    assert result.started_at < stamps[0] < stamps[-1] == result.completed_at
    assert result.elapsed == pytest.approx(
        result.completed_at - result.started_at)


def test_ledger_timestamps_are_monotonic():
    """Ledger order is delivery order, even with procedures in flight
    concurrently -- timestamps never step backwards."""
    network = build()
    network.add_mec_site("mec")
    network.add_server("ci", site_name="mec")
    network.pcrf.configure(ServicePolicy(service_id="svc", qci=3))
    server_ip = network.servers["ci"].ip

    attaches = [network.add_ue_async() for _ in range(10)]
    network.sim.run()
    ues = [p.value for p in attaches]
    procs = [network.control_plane.activate_dedicated_bearer_async(
        ue, "svc", server_ip, "mec") for ue in ues]
    network.sim.run()
    assert all(p.finished and p.error is None for p in procs)

    stamps = [m.timestamp for m in network.ledger.messages]
    assert stamps, "the storm must have recorded messages"
    assert all(a <= b for a, b in zip(stamps, stamps[1:]))


# -- measured latency and contention -------------------------------------

def test_lone_attach_latency_in_calibrated_band():
    network = build()
    ue = network.add_ue()
    assert 0.03 < ue.attach_result.elapsed < 0.1


def test_concurrent_attaches_contend_on_shared_channels():
    """Two UEs attaching at once on one cell serialise on the shared
    RRC channel: each takes longer than a lone attach."""
    lone = build(seed=1)
    lone_elapsed = lone.add_ue().attach_result.elapsed

    busy = build(seed=1)
    procs = [busy.add_ue_async() for _ in range(8)]
    busy.sim.run()
    elapsed = [p.value.attach_result.elapsed for p in procs]
    assert max(elapsed) > lone_elapsed
    # and everyone still completes in bounded time
    assert all(e < 1.0 for e in elapsed)


def test_service_request_dedup_shares_one_procedure():
    network = build()
    ue = network.add_ue()
    cp = network.control_plane
    cp.release_to_idle(ue)
    first = cp.service_request_async(ue)
    second = cp.service_request_async(ue)
    assert first is second
    result = network.sim.run_until_complete(first)
    assert result.name == "service-request"
    # once finished, a new request starts a fresh (noop) procedure
    assert cp.service_request(ue).name == "service-request(noop)"


def test_procedure_phase_events_emitted():
    network = build()
    started, completed = [], []
    network.hooks.on(ProcedureStarted, started.append)
    network.hooks.on(ProcedureCompleted, completed.append)
    ue = network.add_ue()
    assert [e.name for e in started] == ["attach"]
    assert [e.name for e in completed] == ["attach"]
    assert completed[0].result.elapsed > 0.0
    assert started[0].time == completed[0].result.started_at


def test_entities_count_delivered_messages():
    network = build()
    network.add_ue()
    assert network.mme.messages_received > 0
    assert network.sgwc.messages_received > 0
    assert network.pgwc.messages_received > 0
    assert network.enb.messages_received > 0
    assert network.mme.last_message is not None


def test_signalling_config_is_threaded():
    """A slower RRC air interface stretches attach latency."""
    fast = build(seed=2)
    slow = MobileNetwork(NetworkConfig(
        seed=2, signalling=SignallingConfig(rrc_delay=0.05)))
    fast_elapsed = fast.add_ue().attach_result.elapsed
    slow_elapsed = slow.add_ue().attach_result.elapsed
    assert slow_elapsed > fast_elapsed + 0.2     # 5 RRC legs * ~42 ms extra
