"""Tests for the API documentation generator."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

from gen_api_docs import first_paragraph, generate, public_names  # noqa: E402


@pytest.fixture(scope="module")
def api_text():
    return generate()


def test_generator_covers_all_packages(api_text):
    for package in ("repro.sim", "repro.epc", "repro.sdn", "repro.d2d",
                    "repro.localization", "repro.vision", "repro.core",
                    "repro.apps", "repro.baselines"):
        assert f"## `{package}" in api_text


def test_key_classes_documented(api_text):
    for name in ("MobileNetwork", "AcaciaDeviceManager",
                 "MecRegistrationServer", "FlowSwitch", "LteDirectModem",
                 "ObjectMatcher", "LocationTracker", "TcpSource",
                 "EPCControlPlane"):
        assert f"class `{name}" in api_text


def test_docstring_summaries_included(api_text):
    assert "Mobility Management Entity" in api_text
    assert "trilateration" in api_text.lower()


def test_helpers():
    class Example:
        """First paragraph here.

        Second paragraph ignored."""

    assert first_paragraph(Example) == "First paragraph here."

    import repro.sim as sim_module
    names = public_names(sim_module)
    assert "Simulator" in names
    assert all(not n.startswith("_") for n in names)


def test_checked_in_docs_not_stale(api_text):
    """docs/API.md must be regenerated when the public API changes."""
    path = Path(__file__).parent.parent / "docs" / "API.md"
    assert path.exists(), "run tools/gen_api_docs.py"
    checked_in = path.read_text()
    assert checked_in == api_text, \
        "docs/API.md is stale: run python tools/gen_api_docs.py"
