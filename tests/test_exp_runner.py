"""Unit tests for the declarative experiment spec and runner."""

import pytest

from repro.exp import (ExperimentRunner, ExperimentSpec, PRESETS, preset,
                       run_trial, workload)
from repro.exp.spec import TrialSpec
from repro.sim.context import derive_seed


@workload("_test_double")
def _double(trial):
    p = trial.param_dict
    if p.get("explode"):
        raise RuntimeError("boom")
    return {"doubled": p["x"] * 2, "seed": trial.seed}


# ---------------------------------------------------------------------------
# spec expansion
# ---------------------------------------------------------------------------

def test_trials_cross_sweep_axes_with_seeds_innermost():
    spec = ExperimentSpec(name="t", workload="_test_double",
                          seeds=(0, 1),
                          sweep={"x": (10, 20), "y": ("a", "b")})
    trials = spec.trials()
    assert len(trials) == 8
    assert [t.index for t in trials] == list(range(8))
    # declaration order: x outermost, then y, seeds innermost
    assert [(t.param_dict["x"], t.param_dict["y"], t.base_seed)
            for t in trials[:4]] == [(10, "a", 0), (10, "a", 1),
                                     (10, "b", 0), (10, "b", 1)]


def test_trial_seed_is_derived_and_paired_across_cells():
    spec = ExperimentSpec(name="t", workload="_test_double",
                          seeds=(5,), sweep={"x": (1, 2)})
    first, second = spec.trials()
    expected = derive_seed("t", "_test_double", 5)
    # same derived seed in every sweep cell: paired comparisons
    assert first.seed == second.seed == expected


def test_fixed_params_merge_with_sweep_cell():
    spec = ExperimentSpec(name="t", workload="_test_double",
                          params={"x": 1}, sweep={"y": (7,)})
    (trial,) = spec.trials()
    assert trial.param_dict == {"x": 1, "y": 7}


def test_spec_round_trips_through_json():
    spec = ExperimentSpec(name="t", workload="ping", seeds=(3, 4),
                          sweep={"bg_mbps": (0, 40)},
                          params={"count": 2})
    clone = ExperimentSpec.from_json(
        __import__("json").dumps(spec.to_dict()))
    assert clone == spec
    assert clone.trials() == spec.trials()


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def test_serial_run_collects_metrics_in_trial_order():
    spec = ExperimentSpec(name="t", workload="_test_double",
                          sweep={"x": (1, 2, 3)})
    result = ExperimentRunner(spec).run()
    assert result.ok
    assert [t.metrics["doubled"] for t in result.trials] == [2, 4, 6]
    assert result.metrics_by("x")[(2,)]["doubled"] == 4


def test_errors_are_captured_not_raised():
    spec = ExperimentSpec(name="t", workload="_test_double",
                          sweep={"x": (1,), "explode": (False, True)})
    result = ExperimentRunner(spec).run()
    assert not result.ok
    (failure,) = result.failures()
    assert failure.status == "error"
    assert "boom" in failure.error
    # the healthy cell still produced metrics
    assert result.metrics_by("explode")[(False,)]["doubled"] == 2


def test_unknown_workload_is_an_error_result():
    spec = ExperimentSpec(name="t", workload="no-such-workload")
    result = ExperimentRunner(spec).run()
    assert not result.ok
    assert "no-such-workload" in result.failures()[0].error


def test_runner_rejects_nonpositive_workers():
    spec = ExperimentSpec(name="t", workload="_test_double")
    with pytest.raises(ValueError):
        ExperimentRunner(spec, workers=0)


def test_result_json_embeds_provenance_and_no_timestamps():
    spec = ExperimentSpec(name="t", workload="_test_double",
                          seeds=(9,), sweep={"x": (4,)})
    result = ExperimentRunner(spec).run()
    data = result.to_dict()
    assert data["spec"]["name"] == "t"
    (trial,) = data["trials"]
    assert trial["provenance"]["base_seed"] == 9
    assert trial["provenance"]["seed"] == derive_seed(
        "t", "_test_double", 9)
    assert trial["provenance"]["params"] == {"x": 4}
    # canonical JSON is reproducible: rerun gives identical bytes
    assert result.canonical_json() == \
        ExperimentRunner(spec).run().canonical_json()


def test_run_trial_is_usable_standalone():
    trial = TrialSpec(experiment="t", index=0, workload="_test_double",
                      base_seed=0, seed=1, params=(("x", 21),))
    result = run_trial(trial)
    assert result.status == "ok"
    assert result.metrics["doubled"] == 42


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------

def test_presets_name_known_workloads():
    from repro.exp.workloads import WORKLOADS
    for name, spec in PRESETS.items():
        assert spec.name == name
        assert spec.workload in WORKLOADS
        assert spec.trials()     # every preset expands to >= 1 trial


def test_preset_lookup_fails_cleanly():
    assert preset("smoke") is PRESETS["smoke"]
    with pytest.raises(KeyError):
        preset("fig99")
