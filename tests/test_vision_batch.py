"""Differential tests: BatchObjectMatcher vs the reference ObjectMatcher.

The batched engine's contract is decision equivalence: for a shared RNG
seed it must reproduce the reference matcher's full MatchOutcome --
same good/symmetric/inlier counts, same acceptance, same stage -- for
every candidate, under every screen mode.  These tests sweep random
frames, candidate subsets and feature counts to enforce that, plus the
CandidateMatrixCache and the edge-case policies both engines share.
"""

import numpy as np
import pytest

from repro.apps.retail import build_retail_database
from repro.apps.scenario import store_scenario
from repro.vision.batch import (SCREEN_MODES, BatchObjectMatcher,
                                CandidateMatrixCache, CandidateStack)
from repro.vision.camera import R480x360, R720x480, R960x720
from repro.vision.features import FeatureExtractor, ObjectModel
from repro.vision.matcher import ObjectMatcher


def outcome_tuple(outcome):
    if outcome is None:
        return None
    return (outcome.object_name, outcome.good_matches,
            outcome.symmetric_matches, outcome.inliers,
            outcome.accepted, outcome.stage_reached)


def random_models(rng, count, n_features=24, dim=64):
    models = []
    for k in range(count):
        desc = rng.normal(size=(n_features, dim))
        desc /= np.linalg.norm(desc, axis=1, keepdims=True)
        keypoints = rng.uniform(0, 400, size=(n_features, 2))
        models.append(ObjectModel(name=f"obj-{k}", descriptors=desc,
                                  keypoints=keypoints, seed=k))
    return models


@pytest.fixture(scope="module")
def store():
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=40)
    models = [record.model for record in db.all_records()]
    return models


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("screen", SCREEN_MODES)
    def test_match_all_equals_reference_on_store(self, store, screen):
        extractor = FeatureExtractor(np.random.default_rng(7))
        rng = np.random.default_rng(21)
        for trial in range(6):
            subset_size = int(rng.integers(2, len(store) + 1))
            picks = rng.choice(len(store), size=subset_size, replace=False)
            subset = [store[i] for i in picks]
            target = subset[int(rng.integers(len(subset)))]
            resolution = (R960x720, R720x480, R480x360)[trial % 3]
            frame = extractor.frame_of(target, resolution)

            seed = 1000 + trial
            reference = ObjectMatcher(rng=np.random.default_rng(seed))
            batch = BatchObjectMatcher(rng=np.random.default_rng(seed),
                                       screen=screen)
            expected = [reference._match_arrays(frame, m.name,
                                                m.descriptors, m.keypoints)
                        for m in subset]
            actual = batch.match_all(frame, subset)
            assert ([outcome_tuple(o) for o in actual]
                    == [outcome_tuple(o) for o in expected])

    @pytest.mark.parametrize("screen", SCREEN_MODES)
    def test_match_frame_equals_reference(self, store, screen):
        extractor = FeatureExtractor(np.random.default_rng(3))
        frame = extractor.frame_of(store[17], R960x720)
        reference = ObjectMatcher(rng=np.random.default_rng(5))
        batch = BatchObjectMatcher(rng=np.random.default_rng(5),
                                   screen=screen)
        assert (outcome_tuple(batch.match_frame(frame, store))
                == outcome_tuple(reference.match_frame(frame, store)))

    @pytest.mark.parametrize("screen", SCREEN_MODES)
    def test_match_frames_block_equals_sequential_reference(self, store,
                                                            screen):
        extractor = FeatureExtractor(np.random.default_rng(11))
        frames = [extractor.frame_of(store[i], R720x480)
                  for i in (4, 30, 77)]
        reference = ObjectMatcher(rng=np.random.default_rng(9))
        batch = BatchObjectMatcher(rng=np.random.default_rng(9),
                                   screen=screen)
        expected = [reference.match_frame(frame, store) for frame in frames]
        actual = batch.match_frames(frames, store)
        assert ([outcome_tuple(o) for o in actual]
                == [outcome_tuple(o) for o in expected])

    def test_match_one_equals_reference(self, store):
        extractor = FeatureExtractor(np.random.default_rng(2))
        frame = extractor.frame_of(store[9], R480x360)
        reference = ObjectMatcher(rng=np.random.default_rng(13))
        batch = BatchObjectMatcher(rng=np.random.default_rng(13))
        for obj in (store[9], store[10]):
            assert (outcome_tuple(batch.match_one(frame, obj))
                    == outcome_tuple(reference.match_one(frame, obj)))

    def test_candidate_order_controls_rng_stream(self, store):
        # permuting the candidate list must give the same decisions the
        # reference gives for that same permuted order
        extractor = FeatureExtractor(np.random.default_rng(4))
        frame = extractor.frame_of(store[50], R960x720)
        permuted = list(reversed(store))
        reference = ObjectMatcher(rng=np.random.default_rng(17))
        batch = BatchObjectMatcher(rng=np.random.default_rng(17))
        expected = [reference._match_arrays(frame, m.name, m.descriptors,
                                            m.keypoints) for m in permuted]
        actual = batch.match_all(frame, permuted)
        assert ([outcome_tuple(o) for o in actual]
                == [outcome_tuple(o) for o in expected])


class TestEdgeCases:
    def test_empty_candidate_list(self):
        extractor = FeatureExtractor(np.random.default_rng(0))
        models = random_models(np.random.default_rng(1), 1)
        frame = extractor.frame_of(models[0], R480x360)
        batch = BatchObjectMatcher()
        assert batch.match_all(frame, []) == []
        assert batch.match_frame(frame, []) is None
        assert batch.match_frames([frame], []) == [None]
        assert batch.match_frames([], models) == []

    @pytest.mark.parametrize("screen", SCREEN_MODES)
    def test_lone_descriptor_candidate_rejected_by_both(self, screen):
        rng = np.random.default_rng(8)
        models = random_models(rng, 3)
        lone = ObjectModel(name="lone",
                           descriptors=models[0].descriptors[:1],
                           keypoints=models[0].keypoints[:1], seed=0)
        extractor = FeatureExtractor(np.random.default_rng(2))
        frame = extractor.frame_of(models[0], R480x360)
        candidates = [lone] + models
        reference = ObjectMatcher(rng=np.random.default_rng(3))
        batch = BatchObjectMatcher(rng=np.random.default_rng(3),
                                   screen=screen)
        expected = [reference.match_one(frame, m) for m in candidates]
        actual = batch.match_all(frame, candidates)
        assert ([outcome_tuple(o) for o in actual]
                == [outcome_tuple(o) for o in expected])
        assert actual[0].good_matches == 0
        assert not actual[0].accepted

    def test_all_lone_candidates_never_match(self):
        rng = np.random.default_rng(5)
        base = random_models(rng, 2)
        lones = [ObjectModel(name=f"lone-{i}",
                             descriptors=m.descriptors[:1],
                             keypoints=m.keypoints[:1], seed=i)
                 for i, m in enumerate(base)]
        extractor = FeatureExtractor(np.random.default_rng(6))
        frame = extractor.frame_of(base[0], R480x360)
        batch = BatchObjectMatcher()
        assert batch.match_frame(frame, lones) is None
        for outcome in batch.match_all(frame, lones):
            assert outcome_tuple(outcome)[1:] == (0, 0, 0, False, "ratio")

    @pytest.mark.parametrize("screen", SCREEN_MODES)
    def test_single_query_frame(self, screen):
        # q == 1: forward stage can run, backward 2-NN cannot
        models = random_models(np.random.default_rng(12), 4)
        frame_like = FeatureExtractor(
            np.random.default_rng(1)).frame_of(models[0], R480x360)
        single = type(frame_like)(
            descriptors=frame_like.descriptors[:1],
            keypoints=frame_like.keypoints[:1],
            resolution=frame_like.resolution,
            true_object=frame_like.true_object)
        reference = ObjectMatcher(rng=np.random.default_rng(3),
                                  min_inliers=1)
        batch = BatchObjectMatcher(rng=np.random.default_rng(3),
                                   min_inliers=1, screen=screen)
        expected = [reference.match_one(single, m) for m in models]
        actual = batch.match_all(single, models)
        assert ([outcome_tuple(o) for o in actual]
                == [outcome_tuple(o) for o in expected])

    def test_duplicate_candidate_names_rejected(self):
        models = random_models(np.random.default_rng(4), 2)
        twin = ObjectModel(name=models[0].name,
                           descriptors=models[1].descriptors,
                           keypoints=models[1].keypoints, seed=1)
        with pytest.raises(ValueError, match="duplicate"):
            CandidateStack.build([models[0], twin])

    def test_unknown_screen_mode_rejected(self):
        with pytest.raises(ValueError, match="screen mode"):
            BatchObjectMatcher(screen="sometimes")


class TestCandidateMatrixCache:
    def test_hits_and_misses(self):
        models = random_models(np.random.default_rng(0), 6)
        cache = CandidateMatrixCache(capacity=4)
        stack1 = cache.get_or_build(models[:3])
        stack2 = cache.get_or_build(models[:3])
        assert stack1 is stack2
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_key_is_order_insensitive(self):
        models = random_models(np.random.default_rng(1), 4)
        cache = CandidateMatrixCache()
        forward = cache.get_or_build(models)
        backward = cache.get_or_build(list(reversed(models)))
        assert forward is backward
        assert cache.stats()["hits"] == 1

    def test_lru_eviction(self):
        models = random_models(np.random.default_rng(2), 5)
        cache = CandidateMatrixCache(capacity=2)
        cache.get_or_build(models[:1])
        cache.get_or_build(models[1:2])
        cache.get_or_build(models[2:3])        # evicts the first entry
        assert cache.stats()["evictions"] == 1
        assert CandidateMatrixCache.key_for(models[:1]) not in cache
        assert CandidateMatrixCache.key_for(models[2:3]) in cache

    def test_touch_counts_as_hit(self):
        models = random_models(np.random.default_rng(3), 2)
        cache = CandidateMatrixCache()
        stack = cache.get_or_build(models)
        assert cache.touch(stack.names) is stack
        assert cache.stats()["hits"] == 1
        assert cache.touch(("missing",)) is None

    def test_matcher_repeat_lookups_hit_cache(self):
        models = random_models(np.random.default_rng(4), 5, n_features=30)
        extractor = FeatureExtractor(np.random.default_rng(5))
        frames = [extractor.frame_of(models[0], R480x360) for _ in range(3)]
        batch = BatchObjectMatcher()
        for frame in frames:
            batch.match_frame(frame, models)
        stats = batch.cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= len(frames) - 1

    def test_shared_cache_across_matchers(self):
        models = random_models(np.random.default_rng(6), 4)
        cache = CandidateMatrixCache()
        a = BatchObjectMatcher(cache=cache)
        b = BatchObjectMatcher(cache=cache)
        extractor = FeatureExtractor(np.random.default_rng(7))
        frame = extractor.frame_of(models[0], R480x360)
        a.match_frame(frame, models)
        b.match_frame(frame, models)
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] >= 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            CandidateMatrixCache(capacity=0)


class TestCandidateStack:
    def test_segment_layout(self):
        models = random_models(np.random.default_rng(0), 3, n_features=10)
        stack = CandidateStack.build(models)
        assert stack.total_descriptors == 30
        assert list(stack.sizes) == [10, 10, 10]
        assert list(stack.starts) == [0, 10, 20]
        assert stack.uniform
        assert not stack.lone_mask.any()
        assert stack.names == tuple(sorted(m.name for m in models))
        for model in models:
            k = stack.index[model.name]
            start = stack.starts[k]
            np.testing.assert_array_equal(
                stack.descriptors[start:start + 10], model.descriptors)

    def test_screen_desc_carries_bias_row(self):
        models = random_models(np.random.default_rng(1), 2, n_features=6,
                               dim=8)
        stack = CandidateStack.build(models)
        assert stack.screen_desc.shape == (9, 12)
        np.testing.assert_array_equal(stack.screen_desc[8],
                                      np.ones(12, dtype=np.float32))

    def test_ragged_segments_not_uniform(self):
        models = random_models(np.random.default_rng(2), 2, n_features=8)
        short = ObjectModel(name="short",
                            descriptors=models[0].descriptors[:3],
                            keypoints=models[0].keypoints[:3], seed=9)
        stack = CandidateStack.build(models + [short])
        assert not stack.uniform
        assert stack.pad_gather.shape == (3, 8)
        # padded columns of the short segment point at the sentinel
        k = stack.index["short"]
        assert (stack.pad_gather[k, 3:] == stack.total_descriptors).all()
