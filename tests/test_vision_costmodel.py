"""Tests for the calibrated device cost model, codec and database."""

import numpy as np
import pytest

from repro.vision.camera import (R320x240, R720x480, R960x720, R1280x720,
                                 R1440x1080, R1920x1080)
from repro.vision.codec import (ALL_CODECS, JPEG90, RAW_GRAY,
                                achievable_fps)
from repro.vision.costmodel import DEVICES
from repro.vision.database import ObjectDatabase, ObjectRecord
from repro.vision.features import ObjectModel


class TestSurfCost:
    def test_oneplus_baseline_two_seconds(self):
        assert DEVICES["oneplus-one"].surf_time(R320x240) == \
            pytest.approx(2.0)

    def test_speedups_match_paper(self):
        base = DEVICES["oneplus-one"].surf_time(R960x720)
        assert base / DEVICES["i7-1core"].surf_time(R960x720) == \
            pytest.approx(36.0)
        assert base / DEVICES["i7-8core"].surf_time(R960x720) == \
            pytest.approx(182.0)
        assert base / DEVICES["gpu-titan"].surf_time(R960x720) == \
            pytest.approx(1087.0)

    def test_runtime_grows_with_resolution(self):
        device = DEVICES["i7-8core"]
        times = [device.surf_time(r) for r in
                 (R320x240, R720x480, R960x720, R1440x1080)]
        assert times == sorted(times)


class TestMatchCost:
    def test_speedups_match_paper(self):
        base = DEVICES["oneplus-one"].pairwise_match_time(400, 400)
        assert base / DEVICES["i7-1core"].pairwise_match_time(400, 400) == \
            pytest.approx(223.0)
        assert base / DEVICES["gpu-titan"].pairwise_match_time(400, 400) == \
            pytest.approx(3284.0)

    def test_db_match_scales_linearly_with_objects(self):
        device = DEVICES["i7-8core"]
        t10 = device.db_match_time(R960x720, db_objects=10)
        t50 = device.db_match_time(R960x720, db_objects=50)
        assert t50 == pytest.approx(5 * t10)

    def test_fig3h_order_of_magnitude(self):
        """Figure 3(h): 50 objects at 1440*1080 on i7(8) ~ 1 second."""
        t = DEVICES["i7-8core"].db_match_time(R1440x1080, db_objects=50)
        assert 0.3 <= t <= 2.0

    def test_xeon_faster_than_i7_for_matching(self):
        i7 = DEVICES["i7-8core"].db_match_time(R960x720, 105)
        xeon = DEVICES["xeon-32core"].db_match_time(R960x720, 105)
        assert 1.5 <= i7 / xeon <= 4.0

    def test_contention_model(self):
        """Figure 12: runtime roughly doubles as clients double on the
        8-core i7; the 32-core Xeon absorbs up to 4 clients."""
        i7 = DEVICES["i7-8core"]
        xeon = DEVICES["xeon-32core"]
        assert i7.contention_factor(2) == pytest.approx(2.0)
        assert i7.contention_factor(8) == pytest.approx(8.0)
        assert xeon.contention_factor(2) == pytest.approx(1.0)
        assert xeon.contention_factor(8) == pytest.approx(2.0)

    def test_invalid_inputs(self):
        device = DEVICES["i7-8core"]
        with pytest.raises(ValueError):
            device.db_match_time(R960x720, db_objects=-1)
        with pytest.raises(ValueError):
            device.contention_factor(0)


class TestCodec:
    def test_jpeg90_ratio_near_5x(self):
        """Section 7.3: ~5x size reduction at the retail scenes."""
        for resolution in (R720x480, R960x720, R1280x720):
            ratio = JPEG90.compression_ratio(resolution)
            assert 4.5 <= ratio <= 6.0

    def test_jpeg90_encode_times_match_paper(self):
        """23/38/53 ms on the OnePlus One at the three resolutions."""
        assert JPEG90.encode_time(R720x480) == pytest.approx(0.023, abs=0.003)
        assert JPEG90.encode_time(R960x720) == pytest.approx(0.038, abs=0.004)
        assert JPEG90.encode_time(R1280x720) == pytest.approx(0.053, abs=0.004)

    def test_raw_has_no_encode_cost(self):
        assert RAW_GRAY.encode_time(R960x720) == 0.0
        assert RAW_GRAY.frame_bytes(R960x720) == R960x720.pixels

    def test_raw_hd_under_one_fps(self):
        """Figure 3(f): raw grayscale HD cannot ship 1 frame/sec at 12 Mbps."""
        fps = achievable_fps(RAW_GRAY, R1920x1080, uplink_bps=12e6,
                             camera_fps=10.0)
        assert fps < 1.0

    def test_jpeg90_hd_near_camera_rate(self):
        """Figure 3(f): JPEG-90 ~8 fps at 12 Mbps for an HD preview scene."""
        fps = achievable_fps(JPEG90, R1920x1080, uplink_bps=12e6,
                             camera_fps=10.0, scene_complexity=0.47)
        assert 6.0 <= fps <= 10.0

    def test_more_compression_more_fps(self):
        fps = [achievable_fps(codec, R1920x1080, 12e6, camera_fps=30.0)
               for codec in ALL_CODECS]
        # ALL_CODECS is ordered from strongest to no compression
        assert fps == sorted(fps, reverse=True)

    def test_camera_caps_fps(self):
        fps = achievable_fps(JPEG90, R320x240, uplink_bps=100e6,
                             camera_fps=30.0)
        assert fps == 30.0


class TestObjectDatabase:
    def make_db(self):
        db = ObjectDatabase()
        for i in range(12):
            db.add(ObjectRecord(
                model=ObjectModel.generate(f"obj-{i}", n_features=30,
                                           seed=i),
                tag=f"tag {i}", section=f"s{i // 4}",
                subsection=i // 2, position=(float(i), 0.0)))
        return db

    def test_counts_and_lookup(self):
        db = self.make_db()
        assert len(db) == 12
        assert "obj-3" in db
        assert db.get("obj-3").section == "s0"

    def test_duplicate_rejected(self):
        db = self.make_db()
        with pytest.raises(ValueError):
            db.add(db.get("obj-0"))

    def test_section_query(self):
        db = self.make_db()
        records = db.in_sections(["s1"])
        assert {r.name for r in records} == {f"obj-{i}" for i in (4, 5, 6, 7)}

    def test_subsection_query(self):
        db = self.make_db()
        records = db.in_subsections([0, 5])
        assert {r.name for r in records} == {"obj-0", "obj-1",
                                             "obj-10", "obj-11"}

    def test_sections_and_subsections_enumerations(self):
        db = self.make_db()
        assert db.sections() == ["s0", "s1", "s2"]
        assert db.subsections() == list(range(6))

    def test_mean_features(self):
        db = self.make_db()
        assert db.mean_features() == 30.0

    def test_persistence_roundtrip(self, tmp_path):
        db = self.make_db()
        db.save(tmp_path / "store")
        loaded = ObjectDatabase.load(tmp_path / "store")
        assert len(loaded) == 12
        original = db.get("obj-7")
        restored = loaded.get("obj-7")
        assert restored.section == original.section
        assert restored.subsection == original.subsection
        assert np.array_equal(restored.model.descriptors,
                              original.model.descriptors)
