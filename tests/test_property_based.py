"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.d2d.expressions import ExpressionNamespace
from repro.epc.bearer import PacketFilter
from repro.epc.gtp import gtp_decapsulate, gtp_encapsulate
from repro.epc.identifiers import TeidAllocator
from repro.localization.pathloss import PathLossRegression
from repro.localization.trilateration import trilaterate
from repro.sim.engine import Simulator
from repro.sim.packet import Packet


# -- engine -----------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_engine_executes_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=20))
def test_process_sleep_accumulates(delays):
    sim = Simulator()

    def proc():
        for delay in delays:
            yield delay

    handle = sim.spawn(proc())
    sim.run()
    assert handle.finished
    assert math.isclose(sim.now, sum(delays), rel_tol=1e-9)


# -- packets ------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=10_000),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_gtp_roundtrip_preserves_payload_and_teid(size, teid):
    packet = Packet(src="a", dst="b", size=size)
    gtp_encapsulate(packet, teid, "s", "d")
    assert packet.wire_size == size + 36
    packet, seen = gtp_decapsulate(packet)
    assert seen == teid
    assert packet.wire_size == size


@given(st.integers(min_value=1, max_value=8))
def test_nested_encapsulation_is_lifo(depth):
    packet = Packet(src="a", dst="b", size=100)
    for level in range(depth):
        gtp_encapsulate(packet, level, "s", "d")
    for level in reversed(range(depth)):
        packet, teid = gtp_decapsulate(packet)
        assert teid == level
    assert packet.wire_size == 100


# -- identifiers ---------------------------------------------------------------

@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_teid_allocator_never_hands_out_duplicates(ops):
    alloc = TeidAllocator()
    live: list[int] = []
    for release in ops:
        if release and live:
            alloc.release(live.pop())
        else:
            teid = alloc.allocate()
            assert teid not in live
            live.append(teid)
    assert len(set(live)) == len(live)


# -- TFT matching ---------------------------------------------------------------

_addresses = st.sampled_from(["10.0.0.1", "10.0.0.2", "8.8.8.8"])
_ports = st.integers(min_value=1, max_value=65535)


@given(src=_addresses, dst=_addresses, sport=_ports, dport=_ports,
       protocol=st.sampled_from(["UDP", "TCP", "ICMP"]))
def test_wildcard_filter_matches_any_packet(src, dst, sport, dport,
                                            protocol):
    packet = Packet(src=src, dst=dst, size=1, protocol=protocol,
                    src_port=sport, dst_port=dport)
    assert PacketFilter().matches(packet, "uplink")
    assert PacketFilter().matches(packet, "downlink")


@given(dst=_addresses, dport=_ports)
def test_exact_filter_matches_only_its_flow(dst, dport):
    packet = Packet(src="10.0.0.1", dst=dst, size=1, protocol="UDP",
                    src_port=1, dst_port=dport)
    exact = PacketFilter(remote_address=dst, remote_port=dport,
                         protocol="UDP")
    assert exact.matches(packet, "uplink")
    other = PacketFilter(remote_address=dst,
                         remote_port=dport % 65535 + 1, protocol="UDP")
    assert not other.matches(packet, "uplink")


# -- expressions ----------------------------------------------------------------

_names = st.text(alphabet="abcdefgh-", min_size=1, max_size=12)


@given(service=_names, offering_a=_names, offering_b=_names)
def test_offering_filter_exactness(service, offering_a, offering_b):
    ns = ExpressionNamespace()
    flt = ns.offering_filter(service, offering_a)
    assert flt.matches(ns.code(service, offering_a))
    if offering_a != offering_b:
        assert not flt.matches(ns.code(service, offering_b))


@given(service_a=_names, service_b=_names, offering=_names)
def test_service_filter_covers_offerings_of_its_service_only(
        service_a, service_b, offering):
    ns = ExpressionNamespace()
    flt = ns.service_filter(service_a)
    assert flt.matches(ns.code(service_a, offering))
    if service_a != service_b:
        assert not flt.matches(ns.code(service_b, offering))


# -- path loss -------------------------------------------------------------------

@given(alpha=st.floats(min_value=-80, max_value=-20),
       beta=st.floats(min_value=-45, max_value=-15),
       distance=st.floats(min_value=0.02, max_value=400.0))
def test_pathloss_roundtrip(alpha, beta, distance):
    model = PathLossRegression(alpha=alpha, beta=beta)
    rx = model.predict_rx_power(distance)
    assert math.isclose(model.predict_distance(rx), distance,
                        rel_tol=1e-6)


@given(alpha=st.floats(min_value=-80, max_value=-20),
       beta=st.floats(min_value=-45, max_value=-15),
       d1=st.floats(min_value=0.1, max_value=400.0),
       d2=st.floats(min_value=0.1, max_value=400.0))
def test_pathloss_monotone(alpha, beta, d1, d2):
    assume(abs(d1 - d2) > 1e-6)
    model = PathLossRegression(alpha=alpha, beta=beta)
    nearer, farther = sorted((d1, d2))
    assert model.predict_rx_power(nearer) > model.predict_rx_power(farther)


# -- trilateration ------------------------------------------------------------------

@settings(max_examples=50)
@given(x=st.floats(min_value=2.0, max_value=38.0),
       y=st.floats(min_value=2.0, max_value=16.0))
def test_trilateration_recovers_exact_position(x, y):
    anchors = [(0.0, 0.0), (40.0, 0.0), (0.0, 18.0), (40.0, 18.0)]
    ranges = [math.dist((x, y), a) for a in anchors]
    estimate = trilaterate(anchors, ranges)
    assert math.dist(estimate, (x, y)) < 1e-4


@settings(max_examples=30)
@given(x=st.floats(min_value=2.0, max_value=38.0),
       y=st.floats(min_value=2.0, max_value=16.0),
       noise=st.floats(min_value=0.8, max_value=1.25))
def test_trilateration_bounded_under_uniform_range_scaling(x, y, noise):
    """Scaling all ranges by a constant keeps the estimate near the
    truth (the geometry's least-squares point barely moves)."""
    anchors = [(0.0, 0.0), (40.0, 0.0), (0.0, 18.0), (40.0, 18.0),
               (20.0, 9.0)]
    ranges = [noise * math.dist((x, y), a) for a in anchors]
    estimate = trilaterate(anchors, ranges,
                           bounds=((0, 40), (0, 18)))
    assert math.dist(estimate, (x, y)) < 8.0
