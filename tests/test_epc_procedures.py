"""Integration tests for EPC signalling procedures.

Uses the full MobileNetwork builder; verifies the attach and dedicated
bearer choreography, and the calibrated release/re-establish overhead
(15 messages / 2914 bytes, Section 4 of the paper).
"""

import pytest

from repro.core.network import MobileNetwork
from repro.epc.entities import ServicePolicy
from repro.epc.overhead import (APP_DRIVEN_EVENTS_PER_DAY,
                                PROMOTION_EVENTS_PER_DAY, daily_overhead_mb)
from repro.epc.qos import MEC_BEARER_QCI


@pytest.fixture()
def network():
    net = MobileNetwork()
    net.pcrf.configure(ServicePolicy("ar-retail", qci=MEC_BEARER_QCI))
    net.add_mec_site("mec")
    net.add_server("ar-server", site_name="mec", echo=True)
    return net


class TestAttach:
    def test_attach_creates_default_bearer(self, network):
        ue = network.add_ue()
        assert ue.attached
        bearer = ue.bearers.default_bearer()
        assert bearer is not None
        assert bearer.qci == 9
        assert bearer.gateway_site == "central"
        assert ue.ip is not None

    def test_attach_allocates_all_tunnel_endpoints(self, network):
        ue = network.add_ue()
        bearer = ue.bearers.default_bearer()
        assert bearer.enb_fteid is not None
        assert bearer.sgw_s1_fteid is not None
        assert bearer.sgw_s5_fteid is not None
        assert bearer.pgw_fteid is not None
        central = network.sgwc.site("central")
        assert bearer.sgw_s1_fteid.address == central.sgw_u.ip

    def test_attach_installs_four_flow_rules(self, network):
        ue = network.add_ue()
        central = network.sgwc.site("central")
        imsi = ue.imsi
        cookies = [r.cookie for r in
                   central.sgw_u.table + central.pgw_u.table
                   if imsi in r.cookie]
        assert len(cookies) == 4

    def test_attach_registers_mme_context(self, network):
        ue = network.add_ue()
        context = network.mme.context(ue.imsi)
        assert context.state == "connected"

    def test_double_attach_rejected(self, network):
        ue = network.add_ue()
        with pytest.raises(RuntimeError):
            network.control_plane.attach(ue, network.enb)

    def test_unprovisioned_imsi_rejected(self, network):
        from repro.epc.ue import UEDevice
        ue = UEDevice(network.sim, "rogue", imsi="999990000000001")
        with pytest.raises(KeyError):
            network.control_plane.attach(ue, network.enb)

    def test_attach_message_mix(self, network):
        ue = network.add_ue()
        result = ue.attach_result
        protocols = {}
        for msg in result.messages:
            protocols[msg.protocol] = protocols.get(msg.protocol, 0) + 1
        assert protocols["RRC"] == 5
        assert protocols["GTPv2"] == 6
        assert protocols["SCTP"] == 4
        assert protocols["OpenFlow"] == 4
        assert result.elapsed > 0


class TestDedicatedBearer:
    def test_activation_creates_mec_bearer(self, network):
        ue = network.add_ue()
        result = network.create_mec_bearer(ue, "ar-server")
        bearer = result.bearer
        assert not bearer.default
        assert bearer.qci == MEC_BEARER_QCI
        assert bearer.gateway_site == "mec"
        mec = network.sgwc.site("mec")
        assert bearer.sgw_s1_fteid.address == mec.sgw_u.ip
        assert bearer.pgw_fteid.address == mec.pgw_u.ip

    def test_tft_points_at_ci_server(self, network):
        ue = network.add_ue()
        result = network.create_mec_bearer(ue, "ar-server")
        server_ip = network.servers["ar-server"].ip
        assert result.bearer.tft.filters[0].remote_address == server_ip

    def test_pcef_rule_installed(self, network):
        ue = network.add_ue()
        network.create_mec_bearer(ue, "ar-server")
        rule = network.pgwc.pcef_rules[(ue.imsi, "ar-retail")]
        assert rule.qci == MEC_BEARER_QCI
        assert rule.ue_ip == ue.ip

    def test_flow_rules_on_local_gwus_only(self, network):
        ue = network.add_ue()
        network.create_mec_bearer(ue, "ar-server")
        mec = network.sgwc.site("mec")
        central = network.sgwc.site("central")
        dedicated_cookie = f"{ue.imsi}:ebi6"
        mec_rules = [r for r in mec.sgw_u.table + mec.pgw_u.table
                     if dedicated_cookie in r.cookie]
        central_rules = [r for r in central.sgw_u.table + central.pgw_u.table
                         if dedicated_cookie in r.cookie]
        assert len(mec_rules) == 4
        assert central_rules == []

    def test_unknown_service_rejected(self, network):
        ue = network.add_ue()
        with pytest.raises(KeyError):
            network.control_plane.activate_dedicated_bearer(
                ue, "unknown-service", "1.2.3.4", "mec")

    def test_deactivation_cleans_up(self, network):
        ue = network.add_ue()
        result = network.create_mec_bearer(ue, "ar-server")
        ebi = result.bearer.ebi
        network.control_plane.deactivate_dedicated_bearer(ue, ebi)
        assert ebi not in ue.bearers.bearers
        assert (ue.imsi, "ar-retail") not in network.pgwc.pcef_rules
        mec = network.sgwc.site("mec")
        leftover = [r for r in mec.sgw_u.table + mec.pgw_u.table
                    if ue.imsi in r.cookie]
        assert leftover == []

    def test_deactivating_default_bearer_rejected(self, network):
        ue = network.add_ue()
        default_ebi = ue.bearers.default_bearer().ebi
        with pytest.raises(ValueError):
            network.control_plane.deactivate_dedicated_bearer(ue, default_ebi)

    def test_setup_latency_in_tens_of_ms(self, network):
        """Dedicated bearer setup: a dozen control messages, ~tens of ms."""
        ue = network.add_ue()
        result = network.create_mec_bearer(ue, "ar-server")
        assert 0.01 < result.elapsed < 0.1


class TestIdleCycle:
    def test_release_message_calibration(self, network):
        """Release: 3 SCTP + 2 GTPv2 + 2 OpenFlow = 7 messages."""
        ue = network.add_ue()
        result = network.control_plane.release_to_idle(ue)
        assert result.message_count == 7
        by_proto = {}
        for msg in result.messages:
            s = by_proto.setdefault(msg.protocol, [0, 0])
            s[0] += 1
            s[1] += msg.size
        assert by_proto["SCTP"][0] == 3
        assert by_proto["GTPv2"][0] == 2
        assert by_proto["OpenFlow"][0] == 2

    def test_reestablish_message_calibration(self, network):
        """Service request: 4 SCTP + 2 GTPv2 + 2 OpenFlow = 8 messages."""
        ue = network.add_ue()
        network.control_plane.release_to_idle(ue)
        result = network.control_plane.service_request(ue)
        assert result.message_count == 8

    def test_full_cycle_matches_paper_totals(self, network):
        """The headline numbers: 15 messages, 2914 bytes, split
        SCTP 7 (1138) / GTPv2 4 (352) / OpenFlow 4 (1424)."""
        ue = network.add_ue()
        release = network.control_plane.release_to_idle(ue)
        reestablish = network.control_plane.service_request(ue)
        messages = release.messages + reestablish.messages
        assert len(messages) == 15
        assert sum(msg.size for msg in messages) == 2914
        totals = {}
        for msg in messages:
            c = totals.setdefault(msg.protocol, [0, 0])
            c[0] += 1
            c[1] += msg.size
        assert totals["SCTP"] == [7, 1138]
        assert totals["GTPv2"] == [4, 352]
        assert totals["OpenFlow"] == [4, 1424]

    def test_daily_overhead_projections(self):
        assert daily_overhead_mb(2914, APP_DRIVEN_EVENTS_PER_DAY) == \
            pytest.approx(2.58, abs=0.01)
        assert daily_overhead_mb(2914, PROMOTION_EVENTS_PER_DAY) == \
            pytest.approx(20.0, abs=0.1)

    def test_release_deactivates_bearers(self, network):
        ue = network.add_ue()
        network.control_plane.release_to_idle(ue)
        assert not ue.rrc_connected
        assert all(not b.active for b in ue.bearers)
        assert network.mme.context(ue.imsi).state == "idle"

    def test_service_request_reactivates(self, network):
        ue = network.add_ue()
        network.control_plane.release_to_idle(ue)
        network.control_plane.service_request(ue)
        assert ue.rrc_connected
        assert all(b.active for b in ue.bearers)

    def test_service_request_noop_when_connected(self, network):
        ue = network.add_ue()
        result = network.control_plane.service_request(ue)
        assert result.message_count == 0

    def test_idle_cycle_restores_dedicated_bearer_rules(self, network):
        ue = network.add_ue()
        network.create_mec_bearer(ue, "ar-server")
        mec = network.sgwc.site("mec")
        before = len(mec.sgw_u.table) + len(mec.pgw_u.table)
        network.control_plane.release_to_idle(ue)
        network.control_plane.service_request(ue)
        after = len(mec.sgw_u.table) + len(mec.pgw_u.table)
        assert before == after
