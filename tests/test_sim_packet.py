"""Unit tests for the packet/header model."""

import pytest

from repro.sim.packet import Header, Packet


def make_packet(**kw):
    defaults = dict(src="10.0.0.1", dst="10.0.0.2", size=1000,
                    protocol="UDP", src_port=1234, dst_port=80)
    defaults.update(kw)
    return Packet(**defaults)


def test_wire_size_is_payload_without_headers():
    assert make_packet(size=500).wire_size == 500


def test_push_header_adds_to_wire_size():
    pkt = make_packet(size=1000)
    pkt.push_header(Header("GTP-U", 8, {"teid": 0x10}))
    pkt.push_header(Header("UDP", 8))
    pkt.push_header(Header("IPv4", 20))
    assert pkt.wire_size == 1036


def test_pop_header_lifo_order():
    pkt = make_packet()
    pkt.push_header(Header("GTP-U", 8))
    pkt.push_header(Header("IPv4", 20))
    assert pkt.pop_header().protocol == "IPv4"
    assert pkt.pop_header().protocol == "GTP-U"


def test_pop_header_protocol_mismatch_raises():
    pkt = make_packet()
    pkt.push_header(Header("GTP-U", 8))
    with pytest.raises(ValueError):
        pkt.pop_header("IPv4")


def test_pop_empty_raises():
    with pytest.raises(ValueError):
        make_packet().pop_header()


def test_outer_header():
    pkt = make_packet()
    assert pkt.outer_header() is None
    pkt.push_header(Header("GTP-U", 8))
    assert pkt.outer_header().protocol == "GTP-U"


def test_find_header_by_protocol():
    pkt = make_packet()
    pkt.push_header(Header("GTP-U", 8, {"teid": 7}))
    pkt.push_header(Header("UDP", 8))
    found = pkt.find_header("GTP-U")
    assert found is not None and found["teid"] == 7
    assert pkt.find_header("SCTP") is None


def test_five_tuple():
    pkt = make_packet()
    assert pkt.five_tuple == ("10.0.0.1", "10.0.0.2", "UDP", 1234, 80)


def test_copy_is_independent():
    pkt = make_packet()
    pkt.push_header(Header("GTP-U", 8, {"teid": 1}))
    clone = pkt.copy()
    assert clone.packet_id != pkt.packet_id
    clone.headers[0].fields["teid"] = 2
    assert pkt.headers[0]["teid"] == 1
    clone.meta["x"] = 1
    assert "x" not in pkt.meta


def test_packet_ids_unique():
    ids = {make_packet().packet_id for _ in range(100)}
    assert len(ids) == 100


def test_header_get_and_getitem():
    header = Header("GTP-U", 8, {"teid": 42})
    assert header["teid"] == 42
    assert header.get("teid") == 42
    assert header.get("missing", "d") == "d"
