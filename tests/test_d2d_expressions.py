"""Unit tests for LTE-direct expression codes and filters."""

import pytest

from repro.d2d.expressions import (CODE_BITS, ExpressionCode,
                                   ExpressionFilter, ExpressionNamespace)


@pytest.fixture()
def ns():
    return ExpressionNamespace()


def test_codes_are_deterministic(ns):
    a = ns.code("acme-retail", "laptops")
    b = ns.code("acme-retail", "laptops")
    assert a == b


def test_different_offerings_differ(ns):
    assert ns.code("acme-retail", "laptops") != ns.code("acme-retail", "toys")


def test_different_services_differ_in_prefix(ns):
    a = ns.code("acme-retail", "laptops")
    b = ns.code("mega-mart", "laptops")
    assert a.service_prefix != b.service_prefix


def test_same_service_shares_prefix(ns):
    a = ns.code("acme-retail", "laptops")
    b = ns.code("acme-retail", "toys")
    assert a.service_prefix == b.service_prefix
    assert a.suffix != b.suffix


def test_offering_filter_is_exact(ns):
    flt = ns.offering_filter("acme-retail", "laptops")
    assert flt.matches(ns.code("acme-retail", "laptops"))
    assert not flt.matches(ns.code("acme-retail", "toys"))
    assert not flt.matches(ns.code("mega-mart", "laptops"))


def test_service_filter_matches_any_offering(ns):
    flt = ns.service_filter("acme-retail")
    assert flt.matches(ns.code("acme-retail", "laptops"))
    assert flt.matches(ns.code("acme-retail", "toys"))
    assert not flt.matches(ns.code("mega-mart", "laptops"))


def test_code_width_bounds():
    with pytest.raises(ValueError):
        ExpressionCode(-1)
    with pytest.raises(ValueError):
        ExpressionCode(1 << CODE_BITS)
    ExpressionCode((1 << CODE_BITS) - 1)    # max value is fine


def test_manual_mask_semantics():
    flt = ExpressionFilter(code=0b1010, mask=0b1100)
    assert flt.matches(ExpressionCode(0b1011))   # low bits ignored
    assert not flt.matches(ExpressionCode(0b0110))


def test_str_is_hex(ns):
    assert str(ns.code("s", "o")).startswith("0x")
