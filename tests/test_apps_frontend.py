"""Unit tests for the AR front-end and session mechanics."""

import numpy as np
import pytest

from repro.apps.ar_frontend import ARFrontend, ARSession, FrameRecord
from repro.epc.events import DownlinkDelivered
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node, PacketSink
from repro.sim.packet import Packet
from repro.vision.camera import R720x480, R1920x1080
from repro.vision.codec import JPEG90, RAW_GRAY
from repro.vision.features import FeatureExtractor, ObjectModel


class TestARFrontend:
    def test_frame_bytes_from_codec(self):
        frontend = ARFrontend(R720x480, codec=JPEG90)
        assert frontend.frame_bytes == JPEG90.frame_bytes(R720x480)

    def test_scene_complexity_scales_size(self):
        simple = ARFrontend(R720x480, codec=JPEG90, scene_complexity=0.5)
        normal = ARFrontend(R720x480, codec=JPEG90)
        assert simple.frame_bytes == pytest.approx(normal.frame_bytes / 2,
                                                   rel=0.01)

    def test_raw_codec_zero_encode_time(self):
        assert ARFrontend(R720x480, codec=RAW_GRAY).encode_time == 0.0

    def test_camera_limits_frame_interval(self):
        fast = ARFrontend(R720x480)
        slow = ARFrontend(R1920x1080)
        assert fast.min_frame_interval < slow.min_frame_interval


class _EchoServer(Node):
    """Minimal server replying to frame uploads with stamped metadata."""

    def __init__(self, sim, name, ip, compute=0.05):
        super().__init__(sim, name, ip)
        self.compute = compute

    def on_receive(self, packet, link):
        reply = Packet(src=self.ip, dst=packet.src, size=1000,
                       flow_id=packet.flow_id, created_at=self.sim.now,
                       meta={"frame_seq": packet.meta.get("frame_seq"),
                             "matched": "obj", "decode_time": 0.002,
                             "surf_time": 0.018,
                             "match_time": self.compute})
        port = self.port_for_link(link)
        self.sim.schedule(self.compute + 0.02, self.send, port, reply)


class _FakeUE(Node):
    """Stands in for a UE: forwards app packets over a link and
    publishes downlink arrivals on the hook bus like the real one."""

    def __init__(self, sim, name, ip):
        super().__init__(sim, name, ip)

    def send_app(self, packet):
        self.send("radio", packet)

    def on_receive(self, packet, link):
        self.sim.hooks.emit(DownlinkDelivered(ue=self, packet=packet))


def build_session(n_frames=3, max_frames=None):
    sim = Simulator()
    ue = _FakeUE(sim, "ue", ip="10.0.0.1")
    server = _EchoServer(sim, "server", ip="10.0.0.2")
    link = Link(sim, "l", bandwidth=50e6, delay=0.005)
    ue.attach("radio", link)
    server.attach("net", link)
    extractor = FeatureExtractor(np.random.default_rng(0))
    obj = ObjectModel.generate("x", n_features=40)
    frames = [extractor.frame_of(obj, R720x480) for _ in range(n_frames)]
    frontend = ARFrontend(R720x480)
    session = ARSession(sim, ue, server.ip, frontend, iter(frames),
                        max_frames=max_frames)
    return sim, session


def test_session_processes_all_frames():
    sim, session = build_session(n_frames=3)
    session.start()
    sim.run(until=30.0)
    assert len(session.records) == 3
    assert [r.frame_seq for r in session.records] == [1, 2, 3]


def test_max_frames_caps_session():
    sim, session = build_session(n_frames=10, max_frames=4)
    session.start()
    sim.run(until=60.0)
    assert len(session.records) == 4


def test_on_complete_callback_fires():
    done = []
    sim, session = build_session(n_frames=2)
    session.on_complete = done.append
    session.start()
    sim.run(until=30.0)
    assert done == [session]


def test_total_time_includes_all_stages():
    sim, session = build_session(n_frames=1)
    session.start()
    sim.run(until=30.0)
    record = session.records[0]
    # encode + 2 propagation delays + server compute at minimum
    assert record.total_time > record.encode_time + 0.01 + 0.05
    assert record.network_time > 0
    assert record.matched == "obj"


def test_closed_loop_respects_camera_rate():
    sim, session = build_session(n_frames=2)
    session.start()
    sim.run(until=30.0)
    gap = session.records[1].total_time     # second frame started after
    # consecutive captures cannot be closer than the preview interval
    assert session.frontend.min_frame_interval <= 1 / 30 + 1e-9


def test_mean_breakdown_empty_session():
    sim, session = build_session(n_frames=0)
    session.start()
    sim.run(until=5.0)
    breakdown = session.mean_breakdown()
    assert breakdown == {"match": 0.0, "compute": 0.0, "network": 0.0,
                         "total": 0.0}


def test_frame_record_network_time_never_negative():
    record = FrameRecord(frame_seq=1, matched=None, encode_time=0.5,
                         decode_time=0.5, surf_time=0.5, match_time=0.5,
                         total_time=0.1)
    assert record.network_time == 0.0
