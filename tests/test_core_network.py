"""End-to-end data-plane tests through the full simulated network."""

import numpy as np
import pytest

from repro.core.network import MobileNetwork, Pinger
from repro.epc.entities import ServicePolicy
from repro.epc.qos import MEC_BEARER_QCI
from repro.sim.packet import Packet


@pytest.fixture()
def network():
    net = MobileNetwork()
    net.pcrf.configure(ServicePolicy("ar-retail", qci=MEC_BEARER_QCI))
    net.add_mec_site("mec")
    net.add_server("ar-server", site_name="mec", echo=True)
    return net


def test_uplink_packet_reaches_internet_server(network):
    ue = network.add_ue()
    internet = network.servers["internet"]
    packet = Packet(src=ue.ip, dst=internet.ip, size=500, protocol="UDP",
                    src_port=40000, dst_port=80,
                    created_at=network.sim.now)
    ue.send_app(packet)
    network.sim.run(until=1.0)
    # echo=True means the UE also gets a reply; the server saw the request
    assert any(p.dst == internet.ip for p in internet.received)


def test_round_trip_through_default_bearer(network):
    ue = network.add_ue()
    replies = []
    ue.on_downlink = replies.append
    internet = network.servers["internet"]
    packet = Packet(src=ue.ip, dst=internet.ip, size=100, protocol="UDP",
                    src_port=40000, dst_port=80, created_at=network.sim.now)
    ue.send_app(packet)
    network.sim.run(until=1.0)
    assert len(replies) == 1
    assert replies[0].src == internet.ip


def test_gtp_tunnels_used_on_backhaul(network):
    """Packets on the S1/S5 segments must be GTP encapsulated."""
    ue = network.add_ue()
    central = network.sgwc.site("central")
    internet = network.servers["internet"]
    seen = []
    original = central.sgw_u.on_receive

    def spy(packet, link):
        seen.append(packet.find_header("GTP-U"))
        original(packet, link)

    central.sgw_u.on_receive = spy
    ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                       created_at=network.sim.now))
    network.sim.run(until=1.0)
    uplink_headers = [h for h in seen if h is not None]
    assert uplink_headers, "no GTP-U header observed at the SGW-U"


def test_cloud_rtt_near_70ms(network):
    """Figure 3(c): ping to the 'cloud' lands around the 70 ms median."""
    ue = network.add_ue()
    pinger = Pinger(network, ue, "internet", size=64, interval=0.2)
    pinger.run(count=30)
    network.sim.run(until=10.0)
    assert len(pinger.rtts) == 30
    median = float(np.median(pinger.rtts))
    assert 0.060 <= median <= 0.085


def test_mec_rtt_under_15ms(network):
    """Section 7.2: 95% of RTTs to the MEC server within 15 ms."""
    ue = network.add_ue()
    network.create_mec_bearer(ue, "ar-server")
    pinger = Pinger(network, ue, "ar-server", size=64, interval=0.1)
    pinger.run(count=40)
    network.sim.run(until=10.0)
    assert len(pinger.rtts) == 40
    p95 = float(np.percentile(pinger.rtts, 95))
    assert p95 <= 0.015


def test_mec_traffic_bypasses_central_gateways(network):
    ue = network.add_ue()
    network.create_mec_bearer(ue, "ar-server")
    central = network.sgwc.site("central")
    before = central.sgw_u.rx_count
    server = network.servers["ar-server"]
    for _ in range(5):
        ue.send_app(Packet(src=ue.ip, dst=server.ip, size=500,
                           created_at=network.sim.now))
    network.sim.run(until=1.0)
    assert len(server.received) == 5
    assert central.sgw_u.rx_count == before


def test_non_mec_traffic_still_uses_default_bearer(network):
    """Only CI traffic is redirected; internet traffic keeps its path."""
    ue = network.add_ue()
    network.create_mec_bearer(ue, "ar-server")
    internet = network.servers["internet"]
    mec = network.sgwc.site("mec")
    before = mec.sgw_u.rx_count
    ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                       created_at=network.sim.now))
    network.sim.run(until=1.0)
    assert any(p.dst == internet.ip for p in internet.received)
    assert mec.sgw_u.rx_count == before


def test_route_via_default_bearer_reaches_central_server(network):
    """The CLOUD/MEC baselines reach central-attached servers without a
    dedicated bearer."""
    server = network.add_server("cloud-ar", site_name="central", echo=True,
                                delay=0.001)
    ue = network.add_ue()
    network.route_via_default_bearer(ue, "cloud-ar")
    replies = []
    ue.on_downlink = replies.append
    ue.send_app(Packet(src=ue.ip, dst=server.ip, size=100,
                       created_at=network.sim.now))
    network.sim.run(until=1.0)
    assert len(replies) == 1


def test_background_load_inflates_default_path_latency(network):
    """Figure 3(g): saturating background traffic on the central GWs
    inflates latency by orders of magnitude."""
    ue = network.add_ue()
    quiet = Pinger(network, ue, "internet", interval=0.5)
    quiet.run(count=6)
    network.sim.run(until=4.0)
    baseline = float(np.median(quiet.rtts))

    bg = network.add_background_load(rate=120e6)
    bg.start(at=network.sim.now)
    loaded = Pinger(network, ue, "internet", interval=0.5)
    loaded.run(count=6, start=network.sim.now + 4.0)
    network.sim.run(until=network.sim.now + 15.0)
    bg.stop()
    assert len(loaded.rtts) >= 1
    assert float(np.median(loaded.rtts)) > 5 * baseline


def test_background_load_does_not_affect_mec_bearer(network):
    ue = network.add_ue()
    network.create_mec_bearer(ue, "ar-server")
    bg = network.add_background_load(rate=120e6)
    bg.start()
    pinger = Pinger(network, ue, "ar-server", interval=0.2)
    pinger.run(count=10, start=2.0)
    network.sim.run(until=6.0)
    bg.stop()
    assert len(pinger.rtts) == 10
    assert float(np.percentile(pinger.rtts, 95)) <= 0.015


def test_background_loads_have_distinct_cookies_and_remove_cleanly(network):
    """Each load installs rules under its own cookie, so tearing one
    down leaves the others' flow rules (and traffic) untouched."""
    first = network.add_background_load(rate=10e6)
    second = network.add_background_load(rate=20e6)
    assert first.name != second.name
    assert set(network.background_loads()) == {first.name, second.name}
    site = network.sgwc.site("central")
    rules_with_both = len(site.sgw_u.table)

    network.remove_background_load(first)
    assert network.background_loads() == (second.name,)
    assert len(site.sgw_u.table) == rules_with_both - 1

    network.remove_background_load(second.name)     # by name also works
    assert network.background_loads() == ()
    with pytest.raises(KeyError):
        network.remove_background_load(second)


def test_multiple_ues_isolated_ips(network):
    ue1 = network.add_ue()
    ue2 = network.add_ue()
    assert ue1.ip != ue2.ip
    assert ue1.imsi != ue2.imsi


def test_duplicate_server_name_rejected(network):
    with pytest.raises(ValueError):
        network.add_server("internet")


def test_promotion_delay_applied_after_idle(network):
    """A packet sent from RRC idle pays the promotion delay."""
    ue = network.add_ue()
    network.control_plane.release_to_idle(ue)
    internet = network.servers["internet"]
    reply_times = []
    ue.on_downlink = lambda p: reply_times.append(network.sim.now)
    t0 = network.sim.now
    ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                       created_at=t0))
    network.sim.run(until=t0 + 2.0)
    assert len(reply_times) == 1
    # RTT must include the ~260 ms promotion on top of the ~70 ms path
    assert reply_times[0] - t0 > 0.26
    assert ue.promotions == 1


def test_pinger_books_midflight_drops_with_reason(network):
    """A ping that dies on a downed link is counted as lost (with its
    drop reason) the moment it dies -- not just at ``close()``."""
    ue = network.add_ue()
    pinger = Pinger(network, ue, "internet", interval=0.2)
    pinger.run(count=5)
    # cut the server's SGi link before the later pings cross it
    network.sim.schedule(0.45, network.links["sgi.internet"].set_up, False)
    network.sim.run(until=5.0)
    assert pinger.lost >= 2
    assert pinger.lost_reasons.get("link-down", 0) >= 2
    assert sum(pinger.lost_reasons.values()) == pinger.lost
    # every ping is accounted for: answered or lost, nothing vanished
    assert len(pinger.rtts) + pinger.lost == 5
    pinger.close()           # no still-outstanding pings to re-book
    assert len(pinger.rtts) + pinger.lost == 5


def test_pinger_books_injected_signalling_style_loss(network):
    """Echoes killed by a queue overflow surface under that reason."""
    ue = network.add_ue()
    pinger = Pinger(network, ue, "internet", interval=0.2)
    pinger.run(count=3)
    network.sim.run(until=0.5)      # first pings answered
    pinger.close()
    answered = len(pinger.rtts)
    outstanding = 3 - answered - pinger.lost
    assert outstanding == 0
    if pinger.lost:                 # whatever was in flight at close()
        assert pinger.lost_reasons.get("unanswered") == pinger.lost
