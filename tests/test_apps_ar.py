"""Tests for the AR back-end, retail store wiring and workload."""

import numpy as np
import pytest

from repro.apps.ar_backend import ARBackend
from repro.apps.retail import (RetailStore, build_retail_database,
                               landmark_map_for)
from repro.apps.scenario import store_scenario
from repro.apps.workload import CheckpointWorkload
from repro.core.localization_manager import LocalizationManager
from repro.d2d.channel import D2DChannel, Subscriber
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.modem import LteDirectModem
from repro.localization.pathloss import PathLossRegression
from repro.sim.engine import Simulator
from repro.vision.camera import R720x480, R960x720
from repro.vision.costmodel import DEVICES
from repro.vision.features import FeatureExtractor


@pytest.fixture(scope="module")
def world():
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=60)
    regression = PathLossRegression(alpha=-50.0, beta=-30.0)
    localization = LocalizationManager(landmark_map_for(scenario,
                                                        regression))
    backend = ARBackend(db, scenario, localization,
                        device=DEVICES["i7-8core"])
    workload = CheckpointWorkload(scenario, db, seed=3)
    return scenario, db, localization, backend, workload


class TestRetailDatabase:
    def test_105_objects_over_21_subsections(self, world):
        scenario, db, *_ = world
        assert len(db) == 105
        assert set(db.subsections()) == set(range(21))
        for subsection in db.subsections():
            assert len(db.in_subsections([subsection])) == 5

    def test_sections_match_scenario(self, world):
        scenario, db, *_ = world
        assert set(db.sections()) == set(scenario.sections)

    def test_object_positions_in_their_subsection_neighbourhood(self, world):
        scenario, db, *_ = world
        for record in db.all_records():
            center = scenario.subsection_center(record.subsection)
            assert abs(record.position[0] - center[0]) <= 3.0
            assert abs(record.position[1] - center[1]) <= 3.0

    def test_deterministic_build(self, world):
        scenario, db, *_ = world
        again = build_retail_database(scenario, n_features=60)
        record_a = db.get("toys-item-1")
        record_b = again.get("toys-item-1")
        assert np.array_equal(record_a.model.descriptors,
                              record_b.model.descriptors)
        assert record_a.position == record_b.position


class TestARBackend:
    def prime_location(self, world, checkpoint, user="u1"):
        scenario, db, localization, backend, workload = world
        sample = workload.sample(checkpoint)
        workload.feed_localization(localization, user, sample, now=0.0)
        return sample

    def test_naive_matches_correctly(self, world):
        scenario, db, localization, backend, workload = world
        sample = workload.sample(scenario.checkpoints[2])
        response = backend.process_frame("u-naive", sample.frames[0],
                                         now=1.0, scheme="naive")
        assert response.matched_object == sample.record.name
        assert response.correct
        assert response.search_space.size == 105

    def test_acacia_prunes_and_matches(self, world):
        scenario, db, localization, backend, workload = world
        cp = scenario.checkpoints[4]
        sample = self.prime_location(world, cp, user="u-acacia")
        response = backend.process_frame("u-acacia", sample.frames[0],
                                         now=1.0, scheme="acacia")
        assert response.search_space.scheme == "acacia"
        assert response.search_space.size < 105
        assert response.matched_object == sample.record.name

    def test_acacia_match_time_much_smaller_than_naive(self, world):
        scenario, db, localization, backend, workload = world
        cp = scenario.checkpoints[7]
        sample = self.prime_location(world, cp, user="u-time")
        naive = backend.process_frame("u-time", sample.frames[0], 1.0,
                                      scheme="naive")
        acacia = backend.process_frame("u-time", sample.frames[1], 1.0,
                                       scheme="acacia")
        assert naive.match_time / acacia.match_time > 2.0

    def test_rxpower_between_naive_and_acacia_on_average(self, world):
        """Mean search-space sizes order acacia < rxpower < naive.

        Individual checkpoints can invert (a one-column rxPower section
        may be smaller than a 7-cell acacia neighbourhood), so the
        comparison is over all 24 checkpoints, as in Figure 11."""
        scenario, db, localization, backend, workload = world
        rx_sizes, acacia_sizes = [], []
        for i, cp in enumerate(scenario.checkpoints):
            user = f"u-avg-{i}"
            sample = self.prime_location(world, cp, user=user)
            rx_sizes.append(backend.process_frame(
                user, sample.frames[0], 1.0,
                scheme="rxpower").search_space.size)
            acacia_sizes.append(backend.process_frame(
                user, sample.frames[1], 1.0,
                scheme="acacia").search_space.size)
        assert np.mean(acacia_sizes) < np.mean(rx_sizes) < 105

    def test_unknown_scheme_rejected(self, world):
        scenario, db, localization, backend, workload = world
        sample = workload.sample(scenario.checkpoints[0])
        with pytest.raises(ValueError):
            backend.process_frame("u", sample.frames[0], 1.0,
                                  scheme="magic")

    def test_clients_inflate_match_time(self, world):
        scenario, db, localization, backend, workload = world
        sample = workload.sample(scenario.checkpoints[0])
        t1 = backend.process_frame("u", sample.frames[0], 1.0,
                                   scheme="naive", clients=1).match_time
        t4 = backend.process_frame("u", sample.frames[1], 1.0,
                                   scheme="naive", clients=4).match_time
        assert t4 == pytest.approx(4 * t1, rel=0.01)

    def test_clutter_frame_no_match(self, world):
        scenario, db, localization, backend, workload = world
        extractor = FeatureExtractor(np.random.default_rng(0))
        frame = extractor.clutter_frame(R960x720, n_features=90)
        response = backend.process_frame("u", frame, 1.0, scheme="naive")
        assert response.matched_object is None
        assert response.correct    # correctly found nothing


class TestCheckpointWorkload:
    def test_24_samples_5_frames_each(self, world):
        scenario, db, localization, backend, workload = world
        samples = list(workload.samples())
        assert len(samples) == 24
        assert all(len(s.frames) == 5 for s in samples)

    def test_frames_carry_ground_truth(self, world):
        scenario, db, localization, backend, workload = world
        sample = workload.sample(scenario.checkpoints[0])
        assert all(f.true_object == sample.record.name
                   for f in sample.frames)

    def test_nearest_object_is_in_checkpoint_subsection_vicinity(self, world):
        scenario, db, localization, backend, workload = world
        for cp in scenario.checkpoints:
            record = workload.nearest_object(cp)
            d = np.hypot(record.position[0] - cp.position[0],
                         record.position[1] - cp.position[1])
            assert d < 10.0

    def test_observations_cover_multiple_landmarks(self, world):
        scenario, db, localization, backend, workload = world
        sample = workload.sample(scenario.checkpoints[12])
        assert len(sample.observations) >= 3

    def test_resolution_override(self, world):
        scenario, db, localization, backend, workload = world
        sample = workload.sample(scenario.checkpoints[0],
                                 resolution=R720x480)
        assert sample.frames[0].resolution == R720x480


class TestRetailStoreDiscovery:
    def test_publishers_broadcast_their_sections(self):
        scenario = store_scenario()
        sim = Simulator()
        channel = D2DChannel(sim, rng=np.random.default_rng(0))
        store = RetailStore(scenario, channel, discovery_period=5.0)
        store.open(start_staggered=False)
        assert len(store.publishers) == 7

        ns = ExpressionNamespace()
        modem = LteDirectModem("cust")
        heard = []
        modem.subscribe("all", ns.service_filter("acme-retail"),
                        heard.append)
        subscriber = Subscriber("cust", (20.0, 9.0), modem=modem)
        channel.add_subscriber(subscriber)
        sim.run(until=6.0)
        landmarks_heard = {o.landmark for o in heard}
        assert len(landmarks_heard) >= 3
        payloads = {o.message.payload for o in heard}
        assert all(p.startswith("section=") for p in payloads)

    def test_close_stops_publishers(self):
        scenario = store_scenario()
        sim = Simulator()
        channel = D2DChannel(sim, rng=np.random.default_rng(0))
        store = RetailStore(scenario, channel, discovery_period=1.0)
        store.open(start_staggered=False)
        store.close()
        assert store.publishers == {}
        sim.run(until=5.0)
        assert all(not p.enabled for p in channel.publishers.values()) \
            or channel.publishers == {}
