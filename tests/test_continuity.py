"""Tests for the multi-site edge fabric and CI-session continuity.

Covers the topology layer (edge sites, inter-site WAN mesh, eNodeB
home-site mapping), the context-transfer cost model, the SDN bearer
re-steer, and the MRS's application-context relocation policies
(make-before-break vs break-before-make).
"""

import pytest

from repro.apps.mobility import MobilityManager
from repro.apps.scenario import WalkPath
from repro.baselines.deployments import build_edge_fabric
from repro.core.config import ContinuityConfig
from repro.core.events import SessionRelocated, SessionRelocating
from repro.core.network import MobileNetwork, Pinger, wan_link_name
from repro.faults import FaultInjector, FaultPlan, McServerOutage
from repro.sdn.openflow import FlowMatch, FlowRule, Output
from repro.sim.packet import Packet


# -- configuration ---------------------------------------------------------

class TestContinuityConfig:
    def test_defaults_valid(self):
        cfg = ContinuityConfig()
        assert cfg.policy == "make-before-break"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ContinuityConfig(policy="teleport")

    def test_bad_numbers_rejected(self):
        with pytest.raises(ValueError):
            ContinuityConfig(chunk_bytes=0)
        with pytest.raises(ValueError):
            ContinuityConfig(delta_fraction=1.5)
        with pytest.raises(ValueError):
            ContinuityConfig(context_size_bytes=-1)
        with pytest.raises(ValueError):
            ContinuityConfig(wan_bandwidth=0)


# -- topology --------------------------------------------------------------

class TestEdgeFabricTopology:
    def test_fabric_builds_sites_and_wan_mesh(self):
        fab = build_edge_fabric(n_sites=3, enbs_per_site=2, seed=0)
        net = fab.network
        assert set(net.edge_sites) == {"edge0", "edge1", "edge2"}
        # full WAN mesh: 3 choose 2 links
        for a, b in (("edge0", "edge1"), ("edge0", "edge2"),
                     ("edge1", "edge2")):
            assert wan_link_name(a, b) in net.links
        # every eNodeB homed, two per site
        for site, edge in net.edge_sites.items():
            assert len(edge.home_enbs) == 2
        assert net.home_site_of("enb0") == "edge0"
        assert net.home_site_of("enb5") == "edge2"

    def test_wan_link_name_is_order_independent(self):
        assert wan_link_name("b", "a") == wan_link_name("a", "b")

    def test_duplicate_site_rejected(self):
        net = MobileNetwork()
        net.add_edge_site("edge0")
        with pytest.raises(ValueError, match="edge0"):
            net.add_edge_site("edge0")

    def test_home_site_validation(self):
        net = MobileNetwork()
        net.add_edge_site("edge0")
        with pytest.raises(ValueError, match="unknown eNodeB"):
            net.set_home_site("enb9", "edge0")
        with pytest.raises(ValueError, match="unknown edge site"):
            net.set_home_site("enb0", "edge9")

    def test_rehoming_moves_membership(self):
        net = MobileNetwork()
        net.add_edge_site("edge0", home_enbs=("enb0",))
        net.add_edge_site("edge1")
        net.set_home_site("enb0", "edge1")
        assert net.home_site_of("enb0") == "edge1"
        assert "enb0" not in net.edge_sites["edge0"].home_enbs
        assert "enb0" in net.edge_sites["edge1"].home_enbs

    def test_unhomed_enb_has_no_site(self):
        net = MobileNetwork()
        assert net.home_site_of("enb0") is None

    def test_single_site_network_has_no_fabric(self):
        """Plain ``add_mec_site`` deployments stay fabric-free."""
        net = MobileNetwork()
        net.add_mec_site("mec")
        assert net.edge_sites == {}
        assert net.home_site_of("enb0") is None


# -- context transfer ------------------------------------------------------

class TestContextTransfer:
    def build(self):
        net = MobileNetwork()
        net.add_edge_site("edge0")
        net.add_edge_site("edge1")
        return net

    def test_transfer_resolves_with_byte_count(self):
        net = self.build()
        future = net.context_transfer_async("edge0", "edge1", 500_000)
        net.sim.run(until=5.0)
        assert future.done and future.error is None
        assert future.value == 500_000

    def test_transfer_time_tracks_cost_model(self):
        """Duration ~ size / bandwidth + one-way WAN delay."""
        net = self.build()
        cfg = net.config.continuity
        nbytes = 2_000_000
        start = net.sim.now
        done_at = []
        future = net.context_transfer_async("edge0", "edge1", nbytes)
        future.add_done_callback(lambda f: done_at.append(net.sim.now))
        net.sim.run(until=5.0)
        assert future.done
        # serialisation at wan_bandwidth plus propagation; headers and
        # chunking add a little, so bound rather than pin
        floor = nbytes * 8.0 / cfg.wan_bandwidth + cfg.wan_delay
        elapsed = done_at[0] - start
        assert floor <= elapsed <= floor * 1.5

    def test_empty_transfer_resolves_immediately(self):
        net = self.build()
        future = net.context_transfer_async("edge0", "edge1", 0)
        assert future.done and future.value == 0

    def test_unknown_site_rejected(self):
        net = self.build()
        with pytest.raises(ValueError, match="edge9"):
            net.context_transfer_async("edge0", "edge9", 100)


# -- SDN re-steer ----------------------------------------------------------

def fabric_with_session(policy="make-before-break", **continuity_kwargs):
    fab = build_edge_fabric(
        n_sites=3, enbs_per_site=2, seed=7,
        continuity=ContinuityConfig(policy=policy, **continuity_kwargs))
    ue = fab.network.add_ue("walker", enb_name="enb0")
    session = fab.mrs.request_connectivity(ue, fab.service_id)
    return fab, ue, session


class TestResteer:
    def test_resteer_moves_bearer_and_rules(self):
        fab, ue, session = fabric_with_session()
        net = fab.network
        cp = net.control_plane
        bearer = ue.bearers.bearers[session.ebi]
        old = net.sgwc.site("edge0")
        new = net.sgwc.site("edge1")
        cookie_ul = f"{ue.imsi}:ebi{session.ebi}:ul"
        cookie_dl = f"{ue.imsi}:ebi{session.ebi}:dl"
        assert old.sgw_u.rules_for_cookie(cookie_ul)

        result = cp.resteer_bearer(ue, session.ebi, "edge1")
        assert result.outcome == "ok"
        assert bearer.gateway_site == "edge1"
        assert bearer.active
        # new-site switches programmed, old-site rules withdrawn
        assert new.sgw_u.rules_for_cookie(cookie_ul)
        assert new.sgw_u.rules_for_cookie(cookie_dl)
        assert new.pgw_u.rules_for_cookie(cookie_ul)
        assert new.pgw_u.rules_for_cookie(cookie_dl)
        assert not old.sgw_u.rules_for_cookie(cookie_ul)
        assert not old.pgw_u.rules_for_cookie(cookie_dl)

    def test_resteer_releases_old_site_teids(self):
        fab, ue, session = fabric_with_session()
        net = fab.network
        bearer = ue.bearers.bearers[session.ebi]
        old = net.sgwc.site("edge0")
        old_teids = {bearer.sgw_s1_fteid.teid, bearer.sgw_s5_fteid.teid}
        old_pgw = bearer.pgw_fteid.teid
        net.control_plane.resteer_bearer(ue, session.ebi, "edge1")
        assert not (old_teids & old.sgw_teids.allocated)
        assert old_pgw not in old.pgw_teids.allocated

    def test_resteer_rewrites_tft_to_new_server(self):
        fab, ue, session = fabric_with_session()
        net = fab.network
        new_ip = net.servers[fab.server_of_site["edge1"]].ip
        net.control_plane.resteer_bearer(ue, session.ebi, "edge1",
                                         server_ip=new_ip)
        bearer = ue.bearers.bearers[session.ebi]
        assert all(f.remote_address == new_ip for f in bearer.tft.filters)
        probe = Packet(src=ue.ip, dst=new_ip, size=100)
        assert ue.bearers.classify_uplink(probe) is bearer

    def test_resteer_same_site_is_noop(self):
        fab, ue, session = fabric_with_session()
        result = fab.network.control_plane.resteer_bearer(
            ue, session.ebi, "edge0")
        assert result.message_count == 0

    def test_resteer_default_bearer_rejected(self):
        fab, ue, _ = fabric_with_session()
        default = ue.bearers.default_bearer()
        with pytest.raises(ValueError, match="dedicated"):
            fab.network.control_plane.resteer_bearer(
                ue, default.ebi, "edge1")

    def test_suspend_withdraws_rules_and_deactivates(self):
        fab, ue, session = fabric_with_session()
        net = fab.network
        bearer = ue.bearers.bearers[session.ebi]
        old = net.sgwc.site("edge0")
        cookie_ul = f"{ue.imsi}:ebi{session.ebi}:ul"
        net.control_plane.suspend_bearer_flows(ue, session.ebi)
        assert not bearer.active
        assert not old.sgw_u.rules_for_cookie(cookie_ul)
        # the bearer context survives for the subsequent re-steer
        assert ue.bearers.bearers.get(session.ebi) is bearer
        net.control_plane.resteer_bearer(ue, session.ebi, "edge1")
        assert bearer.active and bearer.gateway_site == "edge1"

    def test_traffic_flows_after_resteer(self):
        fab, ue, session = fabric_with_session()
        net = fab.network
        new_server = fab.server_of_site["edge1"]
        new_ip = net.servers[new_server].ip
        net.control_plane.resteer_bearer(ue, session.ebi, "edge1",
                                         server_ip=new_ip)
        pinger = Pinger(net, ue, new_server, interval=0.1)
        pinger.run(count=5, start=net.sim.now)
        net.sim.run(until=net.sim.now + 2.0)
        pinger.close()
        assert len(pinger.rtts) == 5


class TestIdempotentInstall:
    def test_reinstall_replaces_not_duplicates(self):
        net = MobileNetwork()
        site = net.sgwc.site("central")
        rule = FlowRule(FlowMatch(dst_ip="10.0.0.1"), [Output("x")],
                        priority=10, cookie="c1")
        before = len(site.sgw_u.table)
        site.sgw_u.install(rule)
        site.sgw_u.install(FlowRule(FlowMatch(dst_ip="10.0.0.1"),
                                    [Output("y")], priority=10,
                                    cookie="c1"))
        assert len(site.sgw_u.table) == before + 1
        installed = site.sgw_u.rules_for_cookie("c1")
        assert len(installed) == 1
        assert installed[0].actions[0].port == "y"    # latest wins


# -- relocation policies ---------------------------------------------------

def relocate_once(policy):
    fab, ue, session = fabric_with_session(policy=policy)
    net = fab.network
    events = []
    net.hooks.on(SessionRelocating, events.append)
    net.hooks.on(SessionRelocated, events.append)
    net.handover(ue, "enb2")        # crosses the edge0 -> edge1 boundary
    net.sim.run(until=net.sim.now + 5.0)
    return fab, ue, session, events


class TestRelocationPolicies:
    def test_handover_across_boundary_relocates(self):
        fab, ue, session, events = relocate_once("make-before-break")
        assert [type(e).__name__ for e in events] == [
            "SessionRelocating", "SessionRelocated"]
        done = events[1]
        assert (done.from_site, done.to_site) == ("edge0", "edge1")
        assert done.policy == "make-before-break"
        assert done.transferred_bytes == \
            fab.network.config.continuity.context_size_bytes
        assert 0.0 < done.interruption < done.duration
        assert session.instance.site_name == "edge1"
        bearer = ue.bearers.bearers[session.ebi]
        assert bearer.active and bearer.gateway_site == "edge1"

    def test_intra_site_handover_does_not_relocate(self):
        fab, ue, session = fabric_with_session()
        events = []
        fab.network.hooks.on(SessionRelocating, events.append)
        fab.network.handover(ue, "enb1")     # same home site (edge0)
        fab.network.sim.run(until=fab.network.sim.now + 3.0)
        assert events == []
        assert session.instance.site_name == "edge0"

    def test_mbb_interrupts_less_than_bbm(self):
        _, _, _, mbb = relocate_once("make-before-break")
        _, _, _, bbm = relocate_once("break-before-make")
        assert mbb[1].interruption < bbm[1].interruption
        # the pre-copy means MBB's total duration is not shorter; its
        # *interruption* is the win
        assert mbb[1].interruption < mbb[1].duration

    def test_bbm_interruption_covers_whole_transfer(self):
        _, _, _, events = relocate_once("break-before-make")
        done = events[1]
        assert done.interruption == pytest.approx(done.duration)

    def test_relocation_state_transfer_scales_with_context(self):
        small = fabric_with_session(context_size_bytes=100_000)
        big = fabric_with_session(context_size_bytes=4_000_000)
        durations = []
        for fab, ue, _ in (small, big):
            events = []
            fab.network.hooks.on(SessionRelocated, events.append)
            fab.network.handover(ue, "enb2")
            fab.network.sim.run(until=fab.network.sim.now + 10.0)
            durations.append(events[0].duration)
        assert durations[1] > durations[0]

    def test_relocation_skipped_when_target_server_down(self):
        fab, ue, session = fabric_with_session()
        net = fab.network
        FaultInjector(net, FaultPlan((
            McServerOutage(server=fab.server_of_site["edge1"], at=1.0),
        ))).arm()
        net.sim.run(until=1.5)
        events = []
        net.hooks.on(SessionRelocating, events.append)
        net.handover(ue, "enb2")
        net.sim.run(until=net.sim.now + 3.0)
        assert events == []
        assert fab.mrs.relocations_skipped_fault == 1
        # the session stays anchored (not stranded) on the old site
        assert session.instance.site_name == "edge0"
        bearer = ue.bearers.bearers[session.ebi]
        assert bearer.active and bearer.gateway_site == "edge0"


# -- end to end ------------------------------------------------------------

class TestContinuityEndToEnd:
    def test_ue_sweeps_three_sites_session_alive(self):
        """A walker crossing all three sites keeps its CI session:
        every boundary triggers a relocation and the dedicated bearer
        ends up anchored at the final site, still active."""
        fab = build_edge_fabric(n_sites=3, enbs_per_site=2, seed=11)
        net = fab.network
        events = []
        net.hooks.on(SessionRelocated, events.append)
        ue = net.add_ue("walker", enb_name="enb0")
        session = fab.mrs.request_connectivity(ue, fab.service_id)

        manager = MobilityManager(net, fab.enb_positions,
                                  update_interval=0.5, hysteresis=3.0)
        walk = WalkPath([(0.0, 0.0), (500.0, 0.0)], speed=25.0)
        user = manager.add_mobile(ue, walk)
        net.sim.run(until=walk.duration + 8.0)

        assert len(user.handovers) == 5          # every cell on the line
        assert [ (e.from_site, e.to_site) for e in events ] == [
            ("edge0", "edge1"), ("edge1", "edge2")]
        assert session.instance.site_name == "edge2"
        bearer = ue.bearers.bearers[session.ebi]
        assert bearer.active and bearer.gateway_site == "edge2"
        # and the data path genuinely works at the final site
        server_name = fab.server_of_site["edge2"]
        pinger = Pinger(net, ue, server_name, interval=0.1)
        pinger.run(count=5, start=net.sim.now)
        net.sim.run(until=net.sim.now + 2.0)
        pinger.close()
        assert len(pinger.rtts) == 5

    def test_continuity_workload_runs_and_reports(self):
        from repro.exp.spec import TrialSpec
        from repro.exp.workloads import get

        trial = TrialSpec(experiment="t", index=0, workload="continuity",
                          base_seed=5, seed=5,
                          params=(("n_ues", 3), ("tail", 3.0)))
        out = get("continuity")(trial)
        assert out["attached"] == 3
        assert out["sessions_alive"] == 3
        assert out["sessions_on_last_site"] == 3
        assert out["relocations_completed"] == 6     # 2 boundaries x 3 UEs
        assert out["interruption_ms"]["mean"] > 0.0

    def test_workload_is_deterministic(self):
        from repro.exp.spec import TrialSpec
        from repro.exp.workloads import get

        trial = TrialSpec(experiment="t", index=0, workload="continuity",
                          base_seed=5, seed=5,
                          params=(("n_ues", 2), ("tail", 2.0)))
        assert get("continuity")(trial) == get("continuity")(trial)
