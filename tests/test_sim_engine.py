"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Process, SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    seen = []
    for tag in "abc":
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["a", "b", "c"]


def test_priority_overrides_insertion_order():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "late", priority=5)
    sim.schedule(1.0, seen.append, "early", priority=0)
    sim.run()
    assert seen == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, seen.append, "x"))
    sim.run()
    assert seen == ["x"]
    assert sim.now == 5.0


def test_schedule_at_past_rejected():
    sim = Simulator()

    def later():
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    sim.schedule(1.0, later)
    sim.run()


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, seen.append, "x")
    event.cancel()
    sim.run()
    assert seen == []


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(10.0, seen.append, "b")
    sim.run(until=5.0)
    assert seen == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["a", "b"]


def test_step_runs_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    assert sim.step()
    assert seen == ["a"]
    assert sim.step()
    assert not sim.step()


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    e1.cancel()
    assert sim.pending == 1


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(1.0, seen.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 2.0


def test_max_events_bound():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


class TestProcess:
    def test_process_sleeps_for_yielded_delay(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 1.5
            trace.append(sim.now)
            yield 2.5
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 1.5, 4.0]

    def test_process_join_waits_for_child(self):
        sim = Simulator()
        trace = []

        def child():
            yield 3.0
            return "done"

        def parent():
            proc = sim.spawn(child())
            result = yield proc
            trace.append((sim.now, result))

        sim.spawn(parent())
        sim.run()
        assert trace == [(3.0, "done")]

    def test_join_already_finished_process(self):
        sim = Simulator()
        trace = []

        def child():
            yield 0.5
            return 42

        def parent(proc):
            yield 2.0
            value = yield proc
            trace.append(value)

        proc = sim.spawn(child())
        sim.spawn(parent(proc))
        sim.run()
        assert trace == [42]

    def test_yield_none_resumes_without_time_advance(self):
        sim = Simulator()
        trace = []

        def proc():
            yield None
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0]

    def test_negative_yield_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_return_value_recorded(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "value"

        handle = sim.spawn(proc())
        sim.run()
        assert handle.finished
        assert handle.value == "value"


def test_pending_tracks_cancel_after_run():
    sim = Simulator()
    early = sim.schedule(1.0, lambda: None)
    late = sim.schedule(5.0, lambda: None)
    sim.run(until=2.0)
    assert sim.pending == 1
    early.cancel()                       # already ran: counter unchanged
    assert sim.pending == 1
    late.cancel()
    assert sim.pending == 0
    late.cancel()                        # double-cancel is a no-op
    assert sim.pending == 0


@pytest.mark.parametrize("scheduler", ["fast", "reference"])
def test_pending_matches_external_count_randomized(scheduler):
    import random

    rnd = random.Random(1234)
    sim = Simulator(scheduler=scheduler)
    ran = set()
    events = []
    expected = 0
    for step in range(300):
        action = rnd.random()
        if action < 0.5 or not events:
            key = ("ev", step)
            events.append((key, sim.schedule(rnd.uniform(0, 10),
                                             ran.add, key)))
            expected += 1
        elif action < 0.8:
            key, event = events.pop(rnd.randrange(len(events)))
            if not event.cancelled and key not in ran:
                expected -= 1
            event.cancel()
        else:
            before = len(ran)
            sim.run(max_events=rnd.randrange(1, 4))
            expected -= len(ran) - before
        assert sim.pending == expected
    sim.run()
    assert sim.pending == 0
