"""Tests for GBR admission control, ARP preemption and charging."""

import pytest

from repro.core.network import MobileNetwork
from repro.epc.admission import (AdmissionController, AdmissionError, Arp,
                                 Reservation)
from repro.epc.charging import ChargingFunction, Tariff, UsageCollector
from repro.epc.entities import ServicePolicy
from repro.sim.packet import Packet


class TestArp:
    def test_priority_bounds(self):
        with pytest.raises(ValueError):
            Arp(priority=0)
        with pytest.raises(ValueError):
            Arp(priority=16)

    def test_preemption_rules(self):
        strong = Arp(priority=2, preemption_capable=True)
        weak = Arp(priority=10, preemption_vulnerable=True)
        shielded = Arp(priority=10, preemption_vulnerable=False)
        assert strong.beats(weak)
        assert not strong.beats(shielded)
        assert not weak.beats(strong)
        # equal priority never preempts
        assert not Arp(priority=5, preemption_capable=True).beats(
            Arp(priority=5))


class TestAdmissionController:
    def make(self, capacity=10e6):
        controller = AdmissionController()
        controller.register_site("mec", gbr_capacity=capacity)
        return controller

    def test_non_gbr_always_admitted(self):
        controller = self.make()
        for i in range(100):
            controller.request(f"imsi{i}", 6, "mec", qci=7, gbr=0.0)
        assert controller.admitted == 100
        assert controller.pool("mec").reserved == 0

    def test_gbr_reserves_capacity(self):
        controller = self.make(capacity=10e6)
        controller.request("imsi1", 6, "mec", qci=1, gbr=4e6)
        pool = controller.pool("mec")
        assert pool.reserved == 4e6
        assert pool.available == 6e6

    def test_pool_exhaustion_rejects(self):
        controller = self.make(capacity=10e6)
        controller.request("imsi1", 6, "mec", qci=1, gbr=6e6)
        controller.request("imsi2", 6, "mec", qci=1, gbr=4e6)
        with pytest.raises(AdmissionError, match="exhausted"):
            controller.request("imsi3", 6, "mec", qci=1, gbr=1e6)
        assert controller.rejected == 1

    def test_oversized_request_rejected_outright(self):
        controller = self.make(capacity=10e6)
        with pytest.raises(AdmissionError, match="exceeds"):
            controller.request("imsi1", 6, "mec", qci=1, gbr=20e6)

    def test_preemption_frees_room(self):
        controller = self.make(capacity=10e6)
        controller.request("victim", 6, "mec", qci=1, gbr=8e6,
                           arp=Arp(priority=10))
        controller.request("vip", 6, "mec", qci=1, gbr=8e6,
                           arp=Arp(priority=1, preemption_capable=True))
        preempted = controller.drain_preempted()
        assert [r.imsi for r in preempted] == ["victim"]
        assert controller.pool("mec").reserved == 8e6

    def test_preemption_evicts_lowest_priority_first(self):
        controller = self.make(capacity=10e6)
        controller.request("mid", 6, "mec", qci=1, gbr=5e6,
                           arp=Arp(priority=5))
        controller.request("low", 6, "mec", qci=1, gbr=5e6,
                           arp=Arp(priority=12))
        controller.request("vip", 6, "mec", qci=1, gbr=5e6,
                           arp=Arp(priority=1, preemption_capable=True))
        assert [r.imsi for r in controller.drain_preempted()] == ["low"]

    def test_release_frees_reservation(self):
        controller = self.make(capacity=10e6)
        controller.request("imsi1", 6, "mec", qci=1, gbr=10e6)
        controller.release("imsi1", 6, "mec")
        controller.request("imsi2", 6, "mec", qci=1, gbr=10e6)

    def test_unregistered_site_raises(self):
        controller = AdmissionController()
        with pytest.raises(KeyError):
            controller.request("i", 6, "nowhere", qci=1, gbr=1e6)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController().register_site("x", 0)


class TestAdmissionInControlPlane:
    def build(self, capacity=6e6):
        network = MobileNetwork()
        network.add_mec_site("mec")
        network.add_server("ar-server", site_name="mec", echo=True)
        controller = AdmissionController()
        controller.register_site("mec", gbr_capacity=capacity)
        controller.register_site("central", gbr_capacity=50e6)
        network.control_plane.admission = controller
        network.pcrf.configure(ServicePolicy(
            "gbr-ar", qci=3, gbr=4e6,
            arp=Arp(priority=8, preemption_vulnerable=True)))
        network.pcrf.configure(ServicePolicy(
            "gbr-vip", qci=1, gbr=4e6,
            arp=Arp(priority=1, preemption_capable=True)))
        return network, controller

    def test_gbr_bearer_admitted_and_reserved(self):
        network, controller = self.build()
        ue = network.add_ue()
        result = network.create_mec_bearer(ue, "ar-server",
                                           service_id="gbr-ar")
        assert result.bearer.qci == 3
        assert controller.pool("mec").reserved == 4e6

    def test_rejection_aborts_cleanly(self):
        network, controller = self.build(capacity=6e6)
        ue1 = network.add_ue()
        ue2 = network.add_ue()
        network.create_mec_bearer(ue1, "ar-server", service_id="gbr-ar")
        with pytest.raises(AdmissionError):
            network.create_mec_bearer(ue2, "ar-server",
                                      service_id="gbr-ar")
        # no half-built bearer state leaks
        assert len(ue2.bearers) == 1     # default only
        assert (ue2.imsi, "gbr-ar") not in network.pgwc.pcef_rules

    def test_vip_preempts_and_victim_is_torn_down(self):
        network, controller = self.build(capacity=6e6)
        victim = network.add_ue()
        vip = network.add_ue()
        network.create_mec_bearer(victim, "ar-server",
                                  service_id="gbr-ar")
        result = network.create_mec_bearer(vip, "ar-server",
                                           service_id="gbr-vip")
        assert result.bearer.qci == 1
        # the victim's dedicated bearer is gone, default remains
        assert len(victim.bearers) == 1
        assert controller.pool("mec").reserved == 4e6

    def test_deactivation_releases_reservation(self):
        network, controller = self.build()
        ue = network.add_ue()
        result = network.create_mec_bearer(ue, "ar-server",
                                           service_id="gbr-ar")
        network.control_plane.deactivate_dedicated_bearer(
            ue, result.bearer.ebi)
        assert controller.pool("mec").reserved == 0


class TestCharging:
    def build(self):
        network = MobileNetwork()
        ue = network.add_ue()
        return network, ue

    def run_traffic(self, network, ue, count=10, size=1000):
        internet = network.servers["internet"]
        for _ in range(count):
            ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=size,
                               created_at=network.sim.now))
        network.sim.run(until=network.sim.now + 2.0)

    def test_usage_collected_per_bearer(self):
        network, ue = self.build()
        self.run_traffic(network, ue, count=10, size=1000)
        collector = UsageCollector()
        usage = collector.collect(network.sgwc.site("central"))
        default_ebi = ue.bearers.default_bearer().ebi
        record = usage[(ue.imsi, default_ebi)]
        assert record.uplink_packets == 10
        assert record.uplink_bytes >= 10 * 1000
        # echo replies flowed back down
        assert record.downlink_packets == 10

    def test_repeat_collection_yields_deltas(self):
        network, ue = self.build()
        collector = UsageCollector()
        self.run_traffic(network, ue, count=5)
        site = network.sgwc.site("central")
        first = collector.collect(site)[(ue.imsi, 5)]
        assert first.uplink_packets == 5
        self.run_traffic(network, ue, count=3)
        second = collector.collect(site)[(ue.imsi, 5)]
        assert second.uplink_packets == 3

    def test_charging_records_and_tariff(self):
        network, ue = self.build()
        self.run_traffic(network, ue, count=10, size=10_000)
        charging = ChargingFunction(Tariff(default_per_mb=0.05,
                                           per_qci_per_mb={7: 0.20}))
        records = charging.bill_site(
            network.sgwc.site("central"),
            qci_by_bearer={(ue.imsi, 5): 9})
        assert len(records) == 1
        record = records[0]
        assert record.charge == pytest.approx(
            record.usage.total_bytes / 1e6 * 0.05)
        assert charging.total_charged == record.charge

    def test_idle_bearer_produces_no_cdr(self):
        network, ue = self.build()
        charging = ChargingFunction()
        records = charging.bill_site(network.sgwc.site("central"))
        assert records == []


class TestLoadSignal:
    def make(self, threshold=1.0):
        controller = AdmissionController(overload_threshold=threshold)
        controller.register_site("mec", gbr_capacity=10e6)
        return controller

    def test_no_signal_means_zero_load(self):
        controller = self.make()
        assert controller.external_load("mec") == 0.0
        controller.request("imsi1", 6, "mec", qci=1, gbr=1e6)
        assert controller.rejected_overload == 0

    def test_site_load_snapshot(self):
        controller = self.make()
        controller.set_load_signal(lambda site: 0.25)
        controller.request("imsi1", 6, "mec", qci=1, gbr=4e6)
        load = controller.site_load("mec")
        assert load.site_name == "mec"
        assert load.reserved == 4e6
        assert load.utilization == pytest.approx(0.4)
        assert load.reservations == 1
        assert load.external_load == 0.25
        as_dict = load.to_dict()
        assert as_dict["site"] == "mec"
        assert as_dict["external_load"] == 0.25

    def test_site_loads_covers_all_sites_sorted(self):
        controller = self.make()
        controller.register_site("alpha", gbr_capacity=5e6)
        loads = controller.site_loads()
        assert list(loads) == ["alpha", "mec"]

    def test_overloaded_site_sheds_gbr_requests(self):
        pressure = {"mec": 0.0}
        controller = self.make(threshold=0.9)
        controller.set_load_signal(lambda site: pressure[site])
        controller.request("imsi1", 6, "mec", qci=1, gbr=1e6)
        pressure["mec"] = 0.95
        with pytest.raises(AdmissionError, match="overloaded"):
            controller.request("imsi2", 6, "mec", qci=1, gbr=1e6)
        assert controller.rejected_overload == 1
        assert controller.rejected == 1
        # load recedes: admissions resume
        pressure["mec"] = 0.5
        controller.request("imsi3", 6, "mec", qci=1, gbr=1e6)
        assert controller.admitted == 2

    def test_overload_does_not_touch_non_gbr(self):
        controller = self.make(threshold=0.5)
        controller.set_load_signal(lambda site: 1.0)
        # non-GBR bearers bypass the pool and the overload check
        controller.request("imsi1", 6, "mec", qci=7, gbr=0.0)
        assert controller.admitted == 1
        assert controller.rejected_overload == 0

    def test_set_load_signal_updates_threshold_and_clears(self):
        controller = self.make()
        controller.set_load_signal(lambda site: 0.8, threshold=0.7)
        with pytest.raises(AdmissionError, match="overloaded"):
            controller.request("imsi1", 6, "mec", qci=1, gbr=1e6)
        controller.set_load_signal(None)
        controller.request("imsi1", 6, "mec", qci=1, gbr=1e6)
        assert controller.admitted == 1
