"""The operator runtime: config, pacer, matcher fleets, load curve,
autoscaler, telemetry, control plane, and the determinism contract."""

import asyncio
import dataclasses
import json
import threading
import time

import pytest

from repro.core.config import ConfigError
from repro.ops.autoscaler import Autoscaler
from repro.ops.config import (AutoscalerConfig, FlashCrowd, LoadConfig,
                              MatcherServiceConfig, OPS_SECTIONS,
                              OpsConfig, PacerConfig, TelemetryConfig,
                              ops_field_names)
from repro.ops.control import (ControlClient, ControlError,
                               ControlServer, parse_endpoint)
from repro.ops.events import ScaleDown, ScaleUp
from repro.ops.load import DiurnalLoadModel, MatchLoadGenerator
from repro.ops.matchsvc import SiteMatcherService, build_services
from repro.ops.pacer import Pacer
from repro.ops.service import OpsService
from repro.scenario.schema import SCHEMA
from repro.sim import SimContext


# ---------------------------------------------------------------------------
# OpsConfig
# ---------------------------------------------------------------------------

def test_ops_config_defaults_from_none_and_empty():
    assert OpsConfig.from_dict(None) == OpsConfig()
    assert OpsConfig.from_dict({}) == OpsConfig()


def test_ops_config_round_trip():
    doc = {"pacer": {"rtf": 10.0, "quantum": 0.5},
           "telemetry": {"gauge_interval": 2.0, "window": 32},
           "matcher": {"service_time": 0.08, "jitter": 0.02},
           "autoscaler": {"min_workers": 2, "max_workers": 4},
           "load": {"base_rps": 1.0, "peak_rps": 5.0,
                    "flash_crowds": [{"at": 0.25, "rps": 3.0}]}}
    cfg = OpsConfig.from_dict(doc)
    assert cfg.pacer.rtf == 10.0
    assert cfg.telemetry.window == 32
    assert cfg.matcher.service_time == 0.08
    assert cfg.autoscaler.min_workers == 2
    assert cfg.load.flash_crowds == (FlashCrowd(at=0.25, rps=3.0),)
    # unset sections keep their defaults
    assert cfg.autoscaler.sustain == AutoscalerConfig().sustain


def test_ops_config_rejects_unknown_section_and_key():
    with pytest.raises(ConfigError, match=r"ops.*scaler9000"):
        OpsConfig.from_dict({"scaler9000": {}})
    with pytest.raises(ConfigError, match=r"ops\.pacer"):
        OpsConfig.from_dict({"pacer": {"speed": 2}})
    with pytest.raises(ConfigError, match=r"flash_crowds\[1\]"):
        OpsConfig.from_dict({"load": {"flash_crowds":
                                      [{"at": 0.1}, {"when": 0.2}]}})


@pytest.mark.parametrize("section,bad", [
    ("pacer", {"rtf": -1}),
    ("pacer", {"quantum": 0}),
    ("telemetry", {"gauge_interval": 0}),
    ("telemetry", {"window": 0}),
    ("matcher", {"service_time": 0}),
    ("matcher", {"service_time": 0.01, "jitter": 0.01}),
    ("autoscaler", {"min_workers": 0}),
    ("autoscaler", {"min_workers": 4, "max_workers": 2}),
    ("autoscaler", {"low_queue": 9.0, "high_queue": 8.0}),
    ("autoscaler", {"sustain": 0}),
    ("autoscaler", {"interval": 0}),
    ("load", {"peak_rps": 1.0, "base_rps": 2.0}),
    ("load", {"peak_at": 1.5}),
    ("load", {"flash_crowds": [{"at": 2.0}]}),
])
def test_ops_config_validation(section, bad):
    with pytest.raises((ValueError, ConfigError)):
        OpsConfig.from_dict({section: bad})


def test_scenario_schema_pins_ops_sections():
    """The literal ``ops`` block in the scenario schema cannot drift
    from the dataclasses (scenario must stay importable without ops,
    so it carries a copy)."""
    schema_ops = SCHEMA["properties"]["ops"]["properties"]
    assert set(schema_ops) == set(OPS_SECTIONS)
    for section in OPS_SECTIONS:
        assert (set(schema_ops[section]["properties"])
                == ops_field_names(section)), section
    crowd = (schema_ops["load"]["properties"]["flash_crowds"]
             ["items"])
    assert (set(crowd["properties"])
            == {f.name for f in dataclasses.fields(FlashCrowd)})
    assert crowd["required"] == ["at"]


# ---------------------------------------------------------------------------
# Pacer
# ---------------------------------------------------------------------------

def test_unpaced_advance_parks_clock_and_yields():
    ctx = SimContext(seed=0)
    fired = []
    ctx.schedule(1.0, lambda: fired.append(ctx.now))
    pacer = Pacer(ctx.sim, PacerConfig(rtf=0.0, quantum=0.25))
    asyncio.run(pacer.advance(5.0))
    assert fired == [1.0]
    assert ctx.now == 5.0       # clock parks at the milestone
    assert pacer.slices >= 1
    assert not pacer.paced


def test_paced_advance_tracks_wall_clock():
    ctx = SimContext(seed=0)
    for k in range(10):
        ctx.schedule(0.1 * (k + 1), lambda: None)
    # 1 simulated second at rtf=20 -> ~50ms wall
    pacer = Pacer(ctx.sim, PacerConfig(rtf=20.0, quantum=0.1))
    start = time.monotonic()
    asyncio.run(pacer.advance(1.0))
    elapsed = time.monotonic() - start
    assert ctx.now == 1.0
    assert 0.02 <= elapsed < 2.0
    assert pacer.paced
    stats = pacer.stats()
    assert stats["slices"] == pacer.slices >= 1
    assert stats["max_drift_s"] >= 0.0


def test_pacer_stop_request_breaks_out_early():
    ctx = SimContext(seed=0)

    def stopper():
        pacer.stop_requested = True

    ctx.schedule(1.0, stopper)
    ctx.schedule(50.0, lambda: None)
    pacer = Pacer(ctx.sim, PacerConfig(rtf=0.0, quantum=0.5))
    asyncio.run(pacer.advance(100.0))
    assert ctx.now < 100.0


def test_paced_advance_notices_events_armed_mid_sleep():
    """Control callbacks arming earlier events interrupt a long sleep.

    With one far event the pacer computes a single long wall sleep from
    ``next_event_time()``.  A control-plane callback then spawns a
    process (reentrant engine use, exactly what the control API does
    between slices) whose work is due *much* earlier.  The pacer must
    re-sample its bound -- via ``Simulator.arm_epoch`` -- and run the
    new work at its paced wall time instead of sleeping through to the
    far event (the pre-fix behaviour: the spawned work fired seconds
    late, after the full original sleep).
    """
    ctx = SimContext(seed=0)
    sim = ctx.sim
    fired: list[float] = []
    sim.schedule(100.0, lambda: None)       # only event: ~10s wall away
    pacer = Pacer(sim, PacerConfig(rtf=10.0, quantum=0.25))

    def proc():
        yield 1.0                           # due at ~0.1s wall (rtf=10)
        fired.append(time.monotonic())

    async def scenario():
        start = time.monotonic()
        advance = asyncio.create_task(pacer.advance(100.0))
        await asyncio.sleep(0.2)            # pacer is mid-sleep now
        sim.spawn(proc())                   # control mutation arms work
        await asyncio.sleep(1.0)
        pacer.stop_requested = True
        await advance
        return start

    start = asyncio.run(scenario())
    assert fired, "event armed mid-sleep never fired (pacer overslept)"
    # generous for busy CI hosts; the broken pacer needed the full ~10s
    assert fired[0] - start < 1.1


# ---------------------------------------------------------------------------
# SiteMatcherService
# ---------------------------------------------------------------------------

def make_service(workers=1, service_time=0.1, jitter=0.0, max_queue=4,
                 seed=1):
    ctx = SimContext(seed=seed)
    svc = SiteMatcherService(
        ctx, "mec0",
        MatcherServiceConfig(service_time=service_time, jitter=jitter),
        workers=workers, window=16, max_queue=max_queue)
    return ctx, svc


def test_matcher_service_completes_and_measures_latency():
    ctx, svc = make_service(workers=1, service_time=0.1)
    for _ in range(3):
        assert svc.submit()
    ctx.run(until=1.0)
    assert svc.completed == 3
    assert svc.busy == 0 and svc.queue_depth == 0
    # FIFO behind one worker: latencies 100, 200, 300 ms
    assert svc.p50_ms() == pytest.approx(200.0)
    assert svc.p99_ms() == pytest.approx(300.0, rel=0.01)
    gauges = svc.gauges()
    assert gauges["completed"] == 3 and gauges["dropped"] == 0


def test_matcher_service_sheds_beyond_max_queue():
    ctx, svc = make_service(workers=1, service_time=1.0, max_queue=2)
    accepted = [svc.submit() for _ in range(5)]
    # 1 in service + 2 queued; the rest shed
    assert accepted == [True, True, True, False, False]
    assert svc.dropped == 2
    assert svc.load() == 1.0
    ctx.run(until=10.0)
    assert svc.completed == 3
    assert svc.load() == 0.0


def test_matcher_scale_up_drains_queue_faster():
    def drain_time(workers):
        ctx, svc = make_service(workers=workers, service_time=0.1,
                                max_queue=64)
        for _ in range(8):
            svc.submit()
        ctx.run(until=10.0)
        return max(svc.latencies)

    assert drain_time(4) < drain_time(1)


def test_matcher_scale_down_is_graceful():
    ctx, svc = make_service(workers=4, service_time=1.0, max_queue=64)
    for _ in range(4):
        svc.submit()
    assert svc.busy == 4
    svc.scale_to(1)             # in-flight jobs still complete
    ctx.run(until=2.0)
    assert svc.completed == 4
    assert svc.workers == 1
    with pytest.raises(ValueError):
        svc.scale_to(0)


def test_matcher_service_latencies_are_seed_deterministic():
    def run(seed):
        ctx, svc = make_service(workers=2, service_time=0.1,
                                jitter=0.05, max_queue=64, seed=seed)
        for _ in range(6):
            svc.submit()
        ctx.run(until=5.0)
        return list(svc.latencies)

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_build_services_sorted_per_site_streams():
    ctx = SimContext(seed=0)
    services = build_services(ctx, ["zeta", "alpha"],
                              MatcherServiceConfig(), TelemetryConfig(),
                              workers=2)
    assert list(services) == ["alpha", "zeta"]
    assert all(s.workers == 2 for s in services.values())
    assert ("ops.match.alpha" in ctx.stream_names()
            and "ops.match.zeta" in ctx.stream_names())


# ---------------------------------------------------------------------------
# Diurnal load
# ---------------------------------------------------------------------------

def test_diurnal_curve_crest_trough_and_surges():
    cfg = LoadConfig(base_rps=2.0, peak_rps=10.0, peak_at=0.5,
                     flash_crowds=(FlashCrowd(at=0.25, duration=0.1,
                                              rps=5.0),))
    model = DiurnalLoadModel(cfg, period=100.0)
    assert model.base_rate(50.0) == pytest.approx(10.0)   # crest
    assert model.base_rate(0.0) == pytest.approx(2.0)     # trough
    assert model.base_rate(100.0) == pytest.approx(2.0)   # periodic
    assert model.surge_rate(30.0) == 5.0                  # crowd active
    assert model.surge_rate(40.0) == 0.0                  # crowd over
    assert model.rate(30.0) == pytest.approx(
        model.base_rate(30.0) + 5.0)
    assert model.max_rate == 15.0
    with pytest.raises(ValueError):
        DiurnalLoadModel(cfg, period=0.0)


def test_load_generator_offers_thinned_poisson_arrivals():
    ctx = SimContext(seed=3)
    services = build_services(ctx, ["mec0", "mec1"],
                              MatcherServiceConfig(service_time=0.001,
                                                   jitter=0.0),
                              TelemetryConfig(), workers=4)
    cfg = LoadConfig(base_rps=5.0, peak_rps=5.0)    # flat 5 rps/site
    gen = MatchLoadGenerator(ctx, services, DiurnalLoadModel(cfg, 100.0),
                             start=0.0, end=100.0)
    gen.start_generation()
    with pytest.raises(RuntimeError, match="already started"):
        gen.start_generation()
    ctx.run(until=200.0)
    # ~500 arrivals/site expected; allow generous Poisson slack
    for svc in services.values():
        assert 350 <= svc.submitted <= 650
    assert gen.offered == sum(s.submitted for s in services.values())


def test_load_generator_draw_count_independent_of_curve_shape():
    """Poisson thinning: reshaping the curve must not change how many
    draws the ``ops.load`` stream makes (the isolation guarantee)."""
    def final_draw(cfg):
        ctx = SimContext(seed=11)
        services = build_services(
            ctx, ["mec0"],
            MatcherServiceConfig(service_time=0.001, jitter=0.0),
            TelemetryConfig(), workers=4)
        gen = MatchLoadGenerator(ctx, services,
                                 DiurnalLoadModel(cfg, 50.0),
                                 start=0.0, end=50.0)
        gen.start_generation()
        ctx.run(until=60.0)
        return float(ctx.rng("ops.load").random())

    flat = final_draw(LoadConfig(base_rps=10.0, peak_rps=10.0))
    shaped = final_draw(LoadConfig(base_rps=0.0, peak_rps=10.0,
                                   peak_at=0.2))
    assert flat == shaped


# ---------------------------------------------------------------------------
# Autoscaler
# ---------------------------------------------------------------------------

def make_autoscaler(ctx, svc, **overrides):
    defaults = dict(min_workers=1, max_workers=4, high_queue=4.0,
                    low_queue=1.0, high_p99_ms=1e9, low_p99_ms=1e9,
                    sustain=2, cooldown=0.0, step=1, interval=10.0)
    defaults.update(overrides)
    return Autoscaler(ctx, {svc.site: svc},
                      AutoscalerConfig(**defaults))


def test_autoscaler_needs_sustained_pressure():
    ctx, svc = make_service(workers=1, service_time=10.0, max_queue=64)
    scaler = make_autoscaler(ctx, svc, sustain=3)
    for _ in range(8):
        svc.submit()            # queue depth 7 > high_queue
    scaler.evaluate()
    scaler.evaluate()
    assert svc.workers == 1     # two hot evals < sustain=3
    scaler.evaluate()
    assert svc.workers == 2 and scaler.scale_ups == 1


def test_autoscaler_cooldown_spaces_actions():
    ctx, svc = make_service(workers=1, service_time=30.0, max_queue=64)
    scaler = make_autoscaler(ctx, svc, sustain=1, cooldown=100.0,
                             low_p99_ms=0.0)
    for _ in range(20):
        svc.submit()
    scaler.evaluate()
    assert svc.workers == 2
    scaler.evaluate()           # still hot, but cooling
    assert svc.workers == 2
    ctx.schedule(200.0, scaler.evaluate)
    ctx.run(until=201.0)        # cooldown elapsed, queue still deep
    assert svc.workers == 3


def test_autoscaler_scales_down_when_cold_and_clamps():
    ctx, svc = make_service(workers=3, service_time=0.01, max_queue=64)
    scaler = make_autoscaler(ctx, svc, sustain=1, low_p99_ms=1e9)
    seen = []
    ctx.hooks.on(ScaleDown, seen.append)
    for _ in range(4):
        scaler.evaluate()       # idle: cold every time
    assert svc.workers == 1     # clamped at min_workers
    assert scaler.scale_downs == 2
    assert [e.to_workers for e in seen] == [2, 1]


def test_autoscaler_hysteresis_band_resets_streaks():
    ctx, svc = make_service(workers=1, service_time=10.0, max_queue=64)
    scaler = make_autoscaler(ctx, svc, sustain=2, high_queue=4.0,
                             low_queue=1.0)
    for _ in range(4):
        svc.submit()            # depth 3: between low and high
    scaler.evaluate()
    for _ in range(4):
        svc.submit()            # now depth 7: hot
    scaler.evaluate()
    assert svc.workers == 1     # hot streak restarted at 1
    scaler.evaluate()
    assert svc.workers == 2


def test_autoscaler_disabled_never_starts():
    ctx, svc = make_service()
    scaler = make_autoscaler(ctx, svc, enabled=False)
    scaler.start(until=100.0)
    assert not scaler._running
    assert ctx.sim.next_event_time() is None    # no tick scheduled


def test_autoscaler_periodic_ticks_emit_events():
    ctx, svc = make_service(workers=1, service_time=10.0, max_queue=64)
    scaler = make_autoscaler(ctx, svc, sustain=1, interval=5.0)
    ups = []
    ctx.hooks.on(ScaleUp, ups.append)
    for _ in range(30):
        svc.submit()
    scaler.start(until=20.0)
    ctx.run(until=100.0)
    assert scaler.scale_ups >= 2
    assert ups[0].site == "mec0" and ups[0].from_workers == 1


# ---------------------------------------------------------------------------
# Control plane plumbing
# ---------------------------------------------------------------------------

def test_parse_endpoint():
    assert parse_endpoint("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_endpoint("tcp:127.0.0.1:9000") == ("tcp", "127.0.0.1",
                                                    9000)
    for bad in ("unix:", "tcp:nohost", "tcp:host:notaport", "x:/y"):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


class StubTelemetry:
    def __init__(self):
        self.queues = []

    def subscribe(self, queue):
        self.queues.append(queue)

    def unsubscribe(self, queue):
        if queue in self.queues:
            self.queues.remove(queue)


class StubService:
    """Just enough surface for ControlServer."""

    def __init__(self):
        self.telemetry = StubTelemetry()

    def dispatch(self, method, params):
        if method == "echo":
            return {"echo": params}
        raise ValueError(f"no such method {method!r}")


@pytest.fixture()
def control_pair(tmp_path):
    endpoint = f"unix:{tmp_path / 'ops.sock'}"
    stub = StubService()
    server = ControlServer(stub, endpoint)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(5.0)
    yield endpoint, stub, loop

    async def shutdown():
        await server.stop()
        current = asyncio.current_task()
        for task in asyncio.all_tasks():
            if task is not current:
                task.cancel()
        await asyncio.sleep(0)      # let cancellations unwind
    asyncio.run_coroutine_threadsafe(shutdown(), loop).result(5.0)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(5.0)
    loop.close()


def test_control_round_trip_and_errors(control_pair):
    endpoint, _, _ = control_pair
    with ControlClient(endpoint) as client:
        assert client.call("echo", value=42) == {"echo": {"value": 42}}
        with pytest.raises(ControlError, match="frobnicate"):
            client.call("frobnicate")
        # connection survives an error response
        assert client.call("echo") == {"echo": {}}


def test_control_subscribe_streams_telemetry(control_pair):
    endpoint, stub, loop = control_pair
    got = []
    with ControlClient(endpoint) as client:
        # stream() is a generator: consume it from a helper thread so
        # the subscribe round trip actually runs
        reader = threading.Thread(
            target=lambda: got.append(next(client.stream())),
            daemon=True)
        reader.start()

        def push():
            for queue in stub.telemetry.queues:
                queue.put_nowait(json.dumps({"type": "gauge", "n": 1}))

        deadline = time.monotonic() + 5.0
        while not stub.telemetry.queues:
            assert time.monotonic() < deadline, "never subscribed"
            time.sleep(0.01)
        loop.call_soon_threadsafe(push)
        reader.join(5.0)
        assert not reader.is_alive()
    assert got == [{"type": "gauge", "n": 1}]


# ---------------------------------------------------------------------------
# OpsService: determinism and the control surface end-to-end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def soak_scenario():
    from repro.scenario.loader import load
    return load("diurnal_soak")


def run_soak(scenario, duration=40.0):
    service = OpsService(scenario, duration=duration)
    summary = service.run_batch()
    return summary, service.metrics_digest(summary)


def test_batch_soak_is_byte_deterministic(soak_scenario):
    first, first_digest = run_soak(soak_scenario)
    second, second_digest = run_soak(soak_scenario)
    assert (first["ops"]["telemetry_digest"]
            == second["ops"]["telemetry_digest"])
    assert first_digest == second_digest
    assert first == second


def test_ops_runtime_does_not_perturb_the_scenario(soak_scenario):
    """The operator layer is a pure observer: the scenario metrics are
    those of the plain batch run (bar the event count)."""
    from repro.scenario.runtime import execute

    summary, _ = run_soak(soak_scenario)
    trial = soak_scenario.compile().trials()[0]
    trial = dataclasses.replace(
        trial, params=trial.params + (("duration", 40.0),))
    reference = execute(trial)
    shared = {k: v for k, v in summary.items()
              if k not in ("ops", "events_run")}
    assert shared == {k: v for k, v in reference.items()
                      if k != "events_run"}
    assert summary["events_run"] > reference["events_run"]


def test_seed_override_changes_the_digest(soak_scenario):
    base, base_digest = run_soak(soak_scenario)
    service = OpsService(soak_scenario, seed=123, duration=40.0)
    other = service.run_batch()
    assert (other["ops"]["telemetry_digest"]
            != base["ops"]["telemetry_digest"])


def test_dispatch_rejects_unknown_methods(soak_scenario):
    service = OpsService(soak_scenario, duration=40.0)
    with pytest.raises(ValueError, match="no such method"):
        service.dispatch("reboot_datacenter", {})
    with pytest.raises(ValueError, match="no such method"):
        service.dispatch("_rpc_status", {})   # no reaching internals
    assert service.dispatch("ping", {}) == "pong"


def test_served_soak_full_control_flow(tmp_path, soak_scenario):
    """The acceptance flow: a paced serve with a second-thread client
    that attaches a UE, injects a fault, streams telemetry, queries
    load, and shuts the service down."""
    endpoint = f"unix:{tmp_path / 'soak.sock'}"
    service = OpsService(soak_scenario, duration=120.0, rtf=40.0)
    result = {}

    def serve():
        result["summary"] = asyncio.run(service.serve(endpoint=endpoint))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not (tmp_path / "soak.sock").exists():
        assert time.monotonic() < deadline, "socket never appeared"
        time.sleep(0.02)

    with ControlClient(endpoint) as client:
        assert client.call("ping") == "pong"
        status = client.call("status")
        assert status["scenario"] == "diurnal_soak"
        assert status["pacer"]["rtf"] == 40.0

        attach = client.call("attach_ue", enb="enb0")
        assert attach["ue"] == "opsue0"

        fault = client.call("inject_fault",
                            spec={"type": "channel_loss",
                                  "channel": "s1ap", "rate": 0.2,
                                  "at": 0.0, "until": 2.0})
        assert fault["armed"]["type"] == "channel_loss"

        load = client.call("site_load")
        assert set(load) == set(service.services)
        for entry in load.values():
            assert 0.0 <= entry["pressure"] <= 1.0

        with pytest.raises(ControlError, match="no such UE"):
            client.call("detach_ue", ue="ghost")

        with ControlClient(endpoint) as tail:
            stream = tail.stream()
            record = next(stream)
            assert "t" in record and "type" in record

        drained = client.call("drain")
        assert drained["draining"]
        assert client.call("shutdown") == {"stopping": True}

    thread.join(30.0)
    assert not thread.is_alive()
    summary = result["summary"]
    assert summary["ops"]["live_faults_injected"] == 1
    # the attached ops UE made it into the network
    assert summary["attached"] >= 12
