"""Tests for downlink paging of idle UEs."""

import pytest

from repro.core.network import MobileNetwork
from repro.epc.paging import PAGING_MESSAGE, PAGING_RRC
from repro.sim.packet import Packet


@pytest.fixture()
def network():
    return MobileNetwork()


def go_idle(network, ue):
    network.control_plane.release_to_idle(ue)
    assert not ue.rrc_connected


def server_sends(network, ue, size=300):
    server = network.servers["internet"]
    packet = Packet(src=server.ip, dst=ue.ip, size=size,
                    created_at=network.sim.now)
    server.send("net", packet)


def test_downlink_to_idle_ue_triggers_page(network):
    ue = network.add_ue()
    go_idle(network, ue)
    server_sends(network, ue)
    network.sim.run(until=1.0)
    assert network.paging.pages_sent == 1
    assert network.paging.packets_buffered == 1


def test_paged_packet_is_delivered_after_service_request(network):
    ue = network.add_ue()
    go_idle(network, ue)
    replies = []
    ue.on_downlink = replies.append
    server_sends(network, ue)
    network.sim.run(until=2.0)
    assert len(replies) == 1
    assert ue.rrc_connected
    assert ue.promotions == 1


def test_paging_messages_recorded(network):
    ue = network.add_ue()
    go_idle(network, ue)
    before = len(network.ledger)
    server_sends(network, ue)
    network.sim.run(until=2.0)
    names = [msg.name for msg in network.ledger.messages[before:]]
    assert "DownlinkDataNotification" in names
    assert PAGING_MESSAGE.name in names
    assert PAGING_RRC.name in names


def test_burst_buffered_and_flushed_in_order(network):
    ue = network.add_ue()
    go_idle(network, ue)
    replies = []
    ue.on_downlink = lambda p: replies.append(p.meta.get("seq"))
    server = network.servers["internet"]
    for seq in range(5):
        packet = Packet(src=server.ip, dst=ue.ip, size=300,
                        created_at=network.sim.now, meta={"seq": seq})
        server.send("net", packet)
    network.sim.run(until=2.0)
    # all five arrive (radio jitter may reorder them, as real HARQ does)
    assert sorted(replies) == [0, 1, 2, 3, 4]
    assert network.paging.pages_sent == 1       # one page for the burst


def test_buffer_limit_drops_overflow(network):
    network.paging.buffer_packets = 3
    ue = network.add_ue()
    go_idle(network, ue)
    server = network.servers["internet"]
    for _ in range(6):
        server_sends(network, ue)
    network.sim.run(until=2.0)
    assert network.paging.packets_dropped == 3
    assert network.paging.packets_buffered == 3


def test_connected_ue_needs_no_paging(network):
    ue = network.add_ue()
    replies = []
    ue.on_downlink = replies.append
    server_sends(network, ue)
    network.sim.run(until=1.0)
    assert len(replies) == 1
    assert network.paging.pages_sent == 0


def test_paging_latency_dominates_first_packet(network):
    """First downlink packet after idle pays paging + service request."""
    ue = network.add_ue()
    go_idle(network, ue)
    arrival = []
    ue.on_downlink = lambda p: arrival.append(network.sim.now)
    t0 = network.sim.now
    server_sends(network, ue)
    network.sim.run(until=3.0)
    assert arrival
    first_delay = arrival[0] - t0
    assert first_delay > network.paging.paging_delay


def test_two_ues_paged_independently(network):
    ue1 = network.add_ue()
    ue2 = network.add_ue()
    go_idle(network, ue1)
    go_idle(network, ue2)
    server_sends(network, ue1)
    server_sends(network, ue2)
    network.sim.run(until=2.0)
    assert network.paging.pages_sent == 2
    assert ue1.rrc_connected and ue2.rrc_connected
