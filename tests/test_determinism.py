"""Reproducibility tests: identical seeds give identical runs."""

import numpy as np

from repro.apps.retail import build_retail_database
from repro.apps.scenario import store_scenario
from repro.baselines import build_deployment
from repro.apps.workload import CheckpointWorkload
from repro.core.config import NetworkConfig
from repro.core.network import MobileNetwork, Pinger
from repro.vision.camera import R720x480


def run_pings(seed):
    network = MobileNetwork(NetworkConfig(seed=seed))
    ue = network.add_ue()
    pinger = Pinger(network, ue, "internet", interval=0.2)
    pinger.run(count=15)
    network.sim.run(until=10.0)
    return pinger.rtts


def test_same_seed_same_rtts():
    assert run_pings(5) == run_pings(5)


def test_different_seed_different_jitter():
    assert run_pings(5) != run_pings(6)


def test_workload_is_deterministic():
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=40)
    a = CheckpointWorkload(scenario, db, seed=3).sample(
        scenario.checkpoints[2])
    b = CheckpointWorkload(scenario, db, seed=3).sample(
        scenario.checkpoints[2])
    assert a.record.name == b.record.name
    assert a.observations == b.observations
    assert np.array_equal(a.frames[0].descriptors,
                          b.frames[0].descriptors)


def test_end_to_end_deployment_is_deterministic():
    """The flagship experiment reproduces bit-for-bit from its seed."""
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=40)

    def one_run():
        deployment = build_deployment("acacia", db, scenario, seed=11)
        checkpoint = scenario.checkpoints[4]
        section = scenario.section_of_subsection(checkpoint.subsection)
        deployment.customer.move_to(checkpoint.position)
        deployment.customer.open([section])
        deployment.network.sim.run(until=32.0)
        workload = CheckpointWorkload(scenario, db, seed=11,
                                      frames_per_object=4,
                                      resolution=R720x480)
        sample = workload.sample(checkpoint)
        session = deployment.new_session(iter(sample.frames),
                                         resolution=R720x480,
                                         max_frames=4)
        session.start(at=deployment.network.sim.now)
        deployment.network.sim.run(
            until=deployment.network.sim.now + 60.0)
        return [(r.matched, r.total_time, r.match_time)
                for r in session.records]

    assert one_run() == one_run()


def test_serial_and_parallel_runner_byte_identical():
    """A process-parallel experiment run serialises to exactly the same
    bytes as a serial run: every trial builds its world from its derived
    seed, so worker scheduling cannot leak into the results."""
    from repro.exp import ExperimentRunner, ExperimentSpec

    spec = ExperimentSpec(
        name="determinism-probe", workload="ping", seeds=(0, 1),
        sweep={"system": ("conventional", "acacia")},
        params={"count": 2, "warmup": 1.0, "tail": 1.5, "interval": 0.2})
    serial = ExperimentRunner(spec).run()
    parallel = ExperimentRunner(spec, workers=2).run()
    assert serial.ok
    assert serial.canonical_json() == parallel.canonical_json()


def test_ledger_replay_is_identical():
    def ledger_fingerprint(seed):
        network = MobileNetwork(NetworkConfig(seed=seed))
        ue = network.add_ue()
        network.control_plane.release_to_idle(ue)
        network.control_plane.service_request(ue)
        return [(m.protocol, m.name, m.size, m.sender, m.receiver)
                for m in network.ledger.messages]

    assert ledger_fingerprint(1) == ledger_fingerprint(1)


def test_concurrent_signalling_storm_is_deterministic():
    """100 UEs attach and activate dedicated bearers *concurrently*;
    two runs of the same seed produce byte-identical ledgers, delivery
    timestamps included."""
    from repro.epc.entities import ServicePolicy

    def storm(seed, n_ues=100):
        network = MobileNetwork(NetworkConfig(seed=seed))
        network.add_mec_site("mec")
        network.add_server("ci", site_name="mec")
        network.pcrf.configure(ServicePolicy(service_id="svc", qci=3))
        server_ip = network.servers["ci"].ip
        cp = network.control_plane

        attaches = [network.add_ue_async() for _ in range(n_ues)]
        network.sim.run()
        assert all(p.finished and p.error is None for p in attaches)
        ues = [p.value for p in attaches]

        activations = [
            cp.activate_dedicated_bearer_async(ue, "svc", server_ip, "mec")
            for ue in ues]
        network.sim.run()
        assert all(p.finished and p.error is None for p in activations)
        assert all(p.value.bearer is not None for p in activations)
        return [(m.protocol, m.name, m.size, m.sender, m.receiver,
                 m.timestamp)
                for m in network.ledger.messages]

    first = storm(7)
    second = storm(7)
    assert first == second
    assert len(first) > 100     # the storm really signalled
