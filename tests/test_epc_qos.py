"""Unit tests for the QCI table."""

import pytest

from repro.epc.qos import (DEFAULT_BEARER_QCI, MEC_BEARER_QCI, QCI_TABLE,
                           apply_qci_priorities, qos_for)
from repro.sim.engine import Simulator
from repro.sim.link import Link


def test_standard_qcis_present():
    assert set(QCI_TABLE) == set(range(1, 10))


def test_gbr_split_matches_standard():
    gbr = {qci for qci, row in QCI_TABLE.items() if row.is_gbr}
    assert gbr == {1, 2, 3, 4}


def test_qci5_has_highest_priority():
    assert QCI_TABLE[5].priority == 1
    assert min(row.priority for row in QCI_TABLE.values()) == 1


def test_priorities_unique():
    priorities = [row.priority for row in QCI_TABLE.values()]
    assert len(set(priorities)) == len(priorities)


def test_delay_budgets_positive_and_bounded():
    for row in QCI_TABLE.values():
        assert 0.05 <= row.packet_delay_budget <= 0.3


def test_qci_ordering_5_to_9_monotone():
    """The Figure 10(a) sweep relies on QCI 5..9 priorities being ordered."""
    priorities = [QCI_TABLE[q].priority for q in range(5, 10)]
    assert priorities == sorted(priorities)


def test_default_and_mec_qci_choices():
    assert DEFAULT_BEARER_QCI == 9
    assert qos_for(MEC_BEARER_QCI).priority < qos_for(DEFAULT_BEARER_QCI).priority


def test_unknown_qci_raises():
    with pytest.raises(KeyError, match="QCI"):
        qos_for(42)


def test_apply_qci_priorities_registers_all():
    sim = Simulator()
    link = Link(sim, "l", bandwidth=1e6, delay=0.0, qos_priority=True)
    apply_qci_priorities(link)
    assert link._qci_priorities == {
        qci: row.priority for qci, row in QCI_TABLE.items()}
