"""Unit tests for the EPC control-plane state holders."""

import pytest

from repro.epc.entities import (HSS, MME, PCRF, PGWC, SGWC, PolicyRule,
                                ServicePolicy, SubscriberProfile, UeContext)


class TestHSS:
    def test_provision_and_lookup(self):
        hss = HSS()
        hss.provision(SubscriberProfile(imsi="310410000000001"))
        profile = hss.lookup("310410000000001")
        assert profile.apn == "internet"
        assert profile.default_qci == 9
        assert "310410000000001" in hss
        assert len(hss) == 1

    def test_unknown_imsi_raises(self):
        with pytest.raises(KeyError, match="provisioned"):
            HSS().lookup("999")


class TestMME:
    def test_register_and_state(self):
        mme = MME()
        context = UeContext(imsi="i1", ue=object(), enb=object())
        mme.register(context)
        assert mme.context("i1") is context
        assert mme.connected_count() == 1
        context.state = "idle"
        assert mme.connected_count() == 0

    def test_deregister(self):
        mme = MME()
        mme.register(UeContext(imsi="i1", ue=None, enb=None))
        mme.deregister("i1")
        with pytest.raises(KeyError):
            mme.context("i1")


class TestPCRF:
    def test_rule_generation_uses_configured_policy(self):
        pcrf = PCRF()
        pcrf.configure(ServicePolicy("ar", qci=7, precedence=5))
        rule = pcrf.generate_rule("ar", "10.45.0.1", "203.0.114.2",
                                  server_port=9000)
        assert rule.qci == 7
        assert rule.precedence == 5
        assert rule.server_ip == "203.0.114.2"
        assert pcrf.rules_generated == [rule]

    def test_unconfigured_service_raises(self):
        with pytest.raises(KeyError, match="policy"):
            PCRF().generate_rule("nope", "a", "b")

    def test_policy_validates_qci(self):
        with pytest.raises(KeyError):
            ServicePolicy("bad", qci=0)


class TestGatewayControllers:
    def test_sgwc_unknown_site(self):
        with pytest.raises(KeyError, match="site"):
            SGWC().site("mars")

    def test_pgwc_unknown_site(self):
        with pytest.raises(KeyError, match="site"):
            PGWC().site("mars")

    def test_pgwc_ip_allocation_unique(self):
        pgwc = PGWC()
        ips = {pgwc.allocate_ue_ip() for _ in range(50)}
        assert len(ips) == 50

    def test_pcef_install_remove(self):
        pgwc = PGWC()
        rule = PolicyRule("ar", 7, 5, "10.45.0.1", "203.0.114.2")
        pgwc.pcef_install("imsi1", rule)
        assert pgwc.pcef_rules[("imsi1", "ar")] is rule
        assert pgwc.pcef_remove("imsi1", "ar") is rule
        assert pgwc.pcef_rules == {}
