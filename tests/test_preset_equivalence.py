"""Preset <-> scenario equivalence against pre-refactor goldens.

The presets used to be hand-coded ``ExperimentSpec`` literals; they
are now compiled from scenario documents.  The goldens under
``tests/goldens/`` were pinned from the pre-refactor code, so these
tests prove the refactor changed *nothing*: every compiled spec is
byte-identical to its hand-coded ancestor, and running the ``smoke``
preset reproduces the exact canonical result bytes.
"""

import json
from pathlib import Path

import pytest

from repro.exp import ExperimentRunner, PRESETS, preset

GOLDENS = Path(__file__).parent / "goldens"

with (GOLDENS / "preset_specs.json").open() as handle:
    GOLDEN_SPECS = json.load(handle)


def test_no_preset_appeared_or_vanished():
    assert sorted(PRESETS) == sorted(GOLDEN_SPECS)


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_compiled_spec_matches_pre_refactor_golden(name):
    compiled = json.dumps(preset(name).to_dict(), sort_keys=True,
                          indent=2)
    golden = json.dumps(GOLDEN_SPECS[name], sort_keys=True, indent=2)
    assert compiled == golden


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_trial_seeds_are_unchanged(name):
    spec = preset(name)
    golden_spec = spec.from_dict(GOLDEN_SPECS[name])
    # params compare as dicts: the golden file was dumped with sorted
    # keys, and tuple order inside a trial does not affect results
    assert ([(t.index, t.seed, t.param_dict) for t in spec.trials()]
            == [(t.index, t.seed, t.param_dict)
                for t in golden_spec.trials()])


def test_smoke_run_is_byte_identical_to_pre_refactor():
    result = ExperimentRunner(preset("smoke")).run()
    golden = (GOLDENS / "smoke_result.json").read_text()
    assert result.canonical_json() + "\n" == golden
