"""Tests for synthetic feature extraction and feature-count calibration."""

import numpy as np
import pytest

from repro.vision.camera import (R320x240, R480x360, R720x480, R960x720,
                                 R1280x720, R1440x1080, CameraModel,
                                 Resolution, PREVIEW_FPS)
from repro.vision.features import (DESCRIPTOR_DIM, FeatureExtractor,
                                   Frame, ObjectModel,
                                   expected_feature_count)


class TestFeatureCounts:
    def test_measured_points_exact(self):
        assert expected_feature_count(R320x240) == 392.5
        assert expected_feature_count(R960x720) == 1704.9
        assert expected_feature_count(R1440x1080) == 2641.2

    def test_power_law_interpolation_monotone(self):
        resolutions = [R320x240, R480x360, R720x480, R960x720,
                       R1280x720, R1440x1080]
        counts = [expected_feature_count(r) for r in resolutions]
        assert counts == sorted(counts)

    def test_interpolated_720x480_between_neighbours(self):
        count = expected_feature_count(R720x480)
        assert expected_feature_count(R480x360) < count
        assert count < expected_feature_count(R960x720)


class TestObjectModel:
    def test_generation_deterministic_by_name(self):
        a = ObjectModel.generate("laptop-1")
        b = ObjectModel.generate("laptop-1")
        assert np.array_equal(a.descriptors, b.descriptors)

    def test_different_names_differ(self):
        a = ObjectModel.generate("laptop-1")
        b = ObjectModel.generate("laptop-2")
        assert not np.array_equal(a.descriptors, b.descriptors)

    def test_descriptors_are_unit_vectors(self):
        obj = ObjectModel.generate("x", n_features=50)
        norms = np.linalg.norm(obj.descriptors, axis=1)
        assert np.allclose(norms, 1.0)
        assert obj.descriptors.shape == (50, DESCRIPTOR_DIM)
        assert obj.n_features == 50


class TestFeatureExtractor:
    def test_frame_of_object_contains_truth(self):
        extractor = FeatureExtractor(np.random.default_rng(0))
        obj = ObjectModel.generate("x", n_features=100)
        frame = extractor.frame_of(obj, R320x240)
        assert frame.true_object == "x"
        # visible fraction + clutter
        assert 80 + 40 == frame.n_features

    def test_frame_descriptors_near_object_descriptors(self):
        extractor = FeatureExtractor(np.random.default_rng(0))
        obj = ObjectModel.generate("x", n_features=100)
        frame = extractor.frame_of(obj, R320x240)
        # the visible features should be highly similar to some object row
        sims = frame.descriptors[:80] @ obj.descriptors.T
        assert float(np.mean(sims.max(axis=1))) > 0.9

    def test_clutter_frame_has_no_truth(self):
        extractor = FeatureExtractor(np.random.default_rng(0))
        frame = extractor.clutter_frame(R320x240, n_features=60)
        assert frame.true_object is None
        assert frame.n_features == 60

    def test_nominal_features_default_from_resolution(self):
        frame = Frame(resolution=R960x720,
                      descriptors=np.zeros((1, DESCRIPTOR_DIM)),
                      keypoints=np.zeros((1, 2)))
        assert frame.nominal_features == 1704.9


class TestCameraModel:
    def test_table_lookup(self):
        camera = CameraModel()
        assert camera.preview_fps(R320x240) == 30.0
        assert camera.preview_fps(Resolution(1920, 1080)) == 10.0

    def test_fps_decreases_with_resolution(self):
        camera = CameraModel()
        ordered = sorted(PREVIEW_FPS, key=lambda r: r.pixels)
        fps = [camera.preview_fps(r) for r in ordered]
        assert fps == sorted(fps, reverse=True)

    def test_interpolation_between_known_points(self):
        camera = CameraModel()
        fps = camera.preview_fps(R960x720)   # not in the table
        assert 15.0 <= fps <= 30.0

    def test_extremes_clamped(self):
        camera = CameraModel()
        assert camera.preview_fps(Resolution(64, 64)) == 30.0
        assert camera.preview_fps(Resolution(4000, 3000)) == 10.0

    def test_frame_interval(self):
        camera = CameraModel()
        assert camera.frame_interval(R320x240) == pytest.approx(1 / 30)
