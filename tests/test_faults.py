"""Fault-injection subsystem tests.

Plan validation, injector scheduling, the signalling fabric's
perturbation/crash handling, and -- most importantly -- that the
control plane *terminates* under injected faults: lost messages end as
``timeout`` outcomes when retransmission is off, as ``retried-ok``
when it is on, and only the legacy no-policy fabric can deadlock
(which the engine then detects instead of hanging).
"""

import pytest

from repro.core.config import NetworkConfig, ResilienceConfig
from repro.core.events import SessionDegraded, SessionRestored
from repro.core.mrs import MecRegistrationServer
from repro.core.network import MobileNetwork
from repro.core.service import CIService
from repro.epc.messages import MessageType
from repro.epc.overhead import ControlLedger
from repro.epc.signalling import (ChannelPerturbation, RetryPolicy,
                                  SignallingFabric, SignallingTimeout)
from repro.faults import (ChannelDelaySpike, ChannelLoss, EntityCrash,
                          EntityRestart, FaultCleared, FaultInjected,
                          FaultInjector, FaultPlan, LinkDown, LinkFlap,
                          McServerOutage)
from repro.sim.engine import SimulationError, Simulator
from repro.sim.hooks import PacketDropped


def build(seed=0, **cfg):
    return MobileNetwork(NetworkConfig(seed=seed, **cfg))


def lossy(network, rate=1.0, channel="*"):
    """Drop every matching signalling delivery (deterministically)."""
    pert = ChannelPerturbation(kind="loss", rate=rate,
                               rng=network.ctx.rng("test.loss"))
    network.fabric.add_perturbation(channel, pert)
    return pert


# -- plan validation ------------------------------------------------------

class TestFaultPlan:
    def test_entries_must_be_specs(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan(("not a spec",))

    def test_negative_activation_time(self):
        with pytest.raises(ValueError, match="at must be >= 0"):
            LinkDown(link="s11", at=-1.0)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            ChannelLoss(rate=1.5)

    def test_flap_window_and_duty(self):
        with pytest.raises(ValueError, match="until"):
            LinkFlap(link="s11", period=1.0, at=2.0, until=1.0)
        with pytest.raises(ValueError, match="duty"):
            LinkFlap(link="s11", period=1.0, duty=1.0, until=5.0)

    def test_delay_spike_positive(self):
        with pytest.raises(ValueError, match="extra_delay"):
            ChannelDelaySpike(extra_delay=0.0)

    def test_durations_positive(self):
        for spec in (LinkDown, EntityCrash, McServerOutage):
            kwargs = ({"link": "x"} if spec is LinkDown else
                      {"entity": "x"} if spec is EntityCrash else
                      {"server": "x"})
            with pytest.raises(ValueError, match="duration"):
                spec(duration=0.0, **kwargs)

    def test_plan_is_iterable(self):
        plan = FaultPlan((LinkDown(link="s11"),))
        assert len(plan) == 1 and bool(plan)
        assert not FaultPlan()


# -- the injector ---------------------------------------------------------

class TestInjector:
    def test_unknown_link_fails_at_arm_time(self):
        network = build()
        injector = FaultInjector(network, FaultPlan((
            LinkDown(link="no-such-link"),)))
        with pytest.raises(KeyError, match="no-such-link"):
            injector.arm()

    def test_rearming_is_an_error(self):
        network = build()
        injector = FaultInjector(network, FaultPlan()).arm()
        with pytest.raises(RuntimeError, match="armed"):
            injector.arm()

    def test_link_down_window(self):
        network = build()
        network.add_server("srv", echo=True)
        link = network.links["sgi.srv"]
        events = []
        network.hooks.on(FaultInjected, lambda e: events.append(("in", e)))
        network.hooks.on(FaultCleared, lambda e: events.append(("out", e)))
        injector = FaultInjector(network, FaultPlan((
            LinkDown(link="sgi.srv", at=0.5, duration=1.0),))).arm()
        network.sim.schedule(0.6, lambda: events.append(("up?", link.up)))
        network.sim.run()
        assert link.up                       # recovered by end of run
        assert ("up?", False) in events      # and was down mid-window
        assert injector.injected == injector.cleared == 1
        kinds = [k for k, _ in events if k in ("in", "out")]
        assert kinds == ["in", "out"]

    def test_link_flap_cycles(self):
        network = build()
        network.add_server("srv", echo=True)
        injector = FaultInjector(network, FaultPlan((
            LinkFlap(link="sgi.srv", period=1.0, duty=0.5, until=3.0),
        ))).arm()
        network.sim.run()
        assert injector.injected == 3        # down at t=0, 1, 2
        assert injector.cleared == 3         # up at t=0.5, 1.5, 2.5
        assert network.links["sgi.srv"].up

    def test_signalling_link_resolution(self):
        network = build()
        link = FaultInjector(network, FaultPlan())._link("sig.s11")
        assert link is network.fabric.channels["s11"].link


# -- signalling under injected loss --------------------------------------

class TestSignallingUnderLoss:
    def test_lost_messages_time_out_without_retries(self):
        network = build(resilience=ResilienceConfig(enabled=False))
        drops = []
        network.hooks.on(PacketDropped, drops.append)
        lossy(network)
        ue = network.add_ue()                # returns: no deadlock
        assert not ue.attached
        result = ue.attach_result
        assert result.outcome == "timeout"
        assert result.retries == 0 and result.timer_expiries == 1
        assert "undelivered after 1 attempt" in result.failure
        assert network.fabric.drops == {"injected-loss": 1}
        assert [d.reason for d in drops] == ["injected-loss"]

    def test_retries_exhaust_to_timeout_under_total_loss(self):
        network = build(resilience=ResilienceConfig(max_retries=2))
        lossy(network)
        ue = network.add_ue()
        result = ue.attach_result
        assert result.outcome == "timeout"
        assert result.retries == 2 and result.timer_expiries == 3
        assert network.fabric.retransmissions == 2

    def test_retries_recover_partial_loss(self):
        network = build()
        # drop only the first delivery ever attempted
        first = iter([0.0] + [1.0] * 999)

        class Rng:
            def random(self):
                return next(first)

        network.fabric.add_perturbation(
            "*", ChannelPerturbation(kind="loss", rate=0.5, rng=Rng()))
        ue = network.add_ue()
        assert ue.attached
        assert ue.attach_result.outcome == "retried-ok"
        assert ue.attach_result.retries == 1
        assert network.fabric.retransmissions == 1

    def test_legacy_fabric_deadlocks_and_engine_detects_it(self):
        network = build()
        network.control_plane.retry_policy = None    # pre-resilience mode
        lossy(network)
        with pytest.raises(SimulationError, match="deadlock"):
            network.add_ue()

    def test_timeout_rejection_propagates_through_generators(self):
        sim = Simulator()
        fabric = SignallingFabric(sim, ControlLedger())
        fabric.open_channel("s11", "GTPv2", ["mme"], ["sgw-c"])
        fabric.add_perturbation("*", ChannelPerturbation(
            kind="loss", rate=1.0, rng=_always()))
        mtype = MessageType("GTPv2", "Probe", 100)
        policy = RetryPolicy(max_retries=1, default_timer=0.5)

        def proc():
            yield fabric.send_reliable(mtype, "mme", "sgw-c", policy=policy)

        with pytest.raises(SignallingTimeout) as exc:
            sim.run_until_complete(sim.spawn(proc()))
        assert exc.value.attempts == 2
        assert exc.value.mtype is mtype

    def test_delay_spike_duplicate_is_suppressed(self):
        sim = Simulator()
        fabric = SignallingFabric(sim, ControlLedger())
        fabric.open_channel("s11", "GTPv2", ["mme"], ["sgw-c"])
        # every delivery held back past the retransmission timer: the
        # original and the retry both arrive, the second is a duplicate
        fabric.add_perturbation("*", ChannelPerturbation(
            kind="delay", probability=1.0, extra_delay=1.0, rng=_always()))
        mtype = MessageType("GTPv2", "Probe", 100)
        policy = RetryPolicy(default_timer=0.5)
        delivered = []

        def proc():
            message = yield fabric.send_reliable(
                mtype, "mme", "sgw-c", policy=policy,
                on_deliver=delivered.append)
            return message

        sim.run_until_complete(sim.spawn(proc()))
        sim.run()            # drain the retry's still-in-flight delivery
        assert fabric.retransmissions == 1
        assert fabric.duplicates == 1
        assert len(delivered) == 1           # exactly-once side effects
        assert len(fabric.ledger) == 1       # duplicate never booked


class _always:
    """An 'rng' whose draws always fire the perturbation."""

    def random(self):
        return 0.0


# -- entity crashes -------------------------------------------------------

class TestEntityFaults:
    def test_crashed_party_drops_with_entity_down(self):
        network = build(resilience=ResilienceConfig(enabled=False))
        FaultInjector(network, FaultPlan((EntityCrash(entity="mme"),))).arm()
        network.sim.run()                    # crash fires at t=0
        ue = network.add_ue()
        assert not ue.attached
        assert ue.attach_result.outcome == "timeout"
        assert network.fabric.drops["entity-down"] >= 1

    def test_restart_heals_with_retries(self):
        network = build()
        FaultInjector(network, FaultPlan((
            EntityCrash(entity="mme", duration=2.0),))).arm()
        ue = network.add_ue()
        assert ue.attached
        assert ue.attach_result.outcome == "retried-ok"
        assert network.fabric.drops["entity-down"] >= 1

    def test_explicit_restart_spec(self):
        network = build()
        injector = FaultInjector(network, FaultPlan((
            EntityCrash(entity="mme"),
            EntityRestart(entity="mme", at=1.0),))).arm()
        network.sim.run()
        assert "mme" not in network.fabric.down_parties
        assert injector.injected == injector.cleared == 1


# -- MRS graceful degradation --------------------------------------------

class TestMrsDegradation:
    def build_mrs(self, two_sites):
        network = build()
        network.add_mec_site("mec-a")
        network.add_server("srv-a", site_name="mec-a", echo=True)
        mrs = MecRegistrationServer(network)
        mrs.register_service(CIService("svc", "svc-discovery"))
        mrs.deploy_instance("svc", "srv-a", "mec-a", serves_enbs={"enb0"})
        if two_sites:
            network.add_mec_site("mec-b")
            network.add_server("srv-b", site_name="mec-b", echo=True)
            mrs.deploy_instance("svc", "srv-b", "mec-b",
                                serves_enbs={"enb1"})
        ue = network.add_ue()
        mrs.request_connectivity(ue, "svc")
        events = []
        network.hooks.on(SessionDegraded, events.append)
        network.hooks.on(SessionRestored, events.append)
        return network, mrs, ue, events

    def test_outage_falls_back_to_central_then_restores(self):
        network, mrs, ue, events = self.build_mrs(two_sites=False)
        FaultInjector(network, FaultPlan((
            McServerOutage(server="srv-a", at=1.0, duration=2.0),))).arm()
        network.sim.run()
        degraded, restored = events
        assert isinstance(degraded, SessionDegraded)
        assert degraded.mode == "central-fallback"
        assert isinstance(restored, SessionRestored)
        assert not mrs.degraded
        session = mrs.session_for(ue, "svc")
        assert session.instance.server_name == "srv-a"
        assert [b for b in ue.bearers if not b.default]

    def test_outage_relocates_to_surviving_instance(self):
        network, mrs, ue, events = self.build_mrs(two_sites=True)
        FaultInjector(network, FaultPlan((
            McServerOutage(server="srv-a", at=1.0),))).arm()
        network.sim.run()
        assert [e.mode for e in events
                if isinstance(e, SessionDegraded)] == ["relocated"]
        session = mrs.session_for(ue, "svc")
        assert session.instance.server_name == "srv-b"
        assert mrs.degraded          # still degraded: no recovery scheduled

    def test_relocate_session_during_target_outage_falls_back(self):
        """relocate_session with the target's server down must pick a
        healthy instance instead of stranding the session."""
        network, mrs, ue, events = self.build_mrs(two_sites=True)
        network.add_enb("enb1")
        FaultInjector(network, FaultPlan((
            McServerOutage(server="srv-b", at=0.5),))).arm()
        network.sim.run()
        # the UE moves to enb1, whose closest instance (srv-b) is dead
        network.handover(ue, "enb1")
        session = mrs.relocate_session(ue, "svc")
        assert session is not None
        assert session is mrs.session_for(ue, "svc")
        assert session.instance.server_name == "srv-a"
        bearer = ue.bearers.bearers[session.ebi]
        assert bearer.active and bearer.gateway_site == "mec-a"

    def test_relocate_session_all_instances_down_keeps_session(self):
        network, mrs, ue, events = self.build_mrs(two_sites=True)
        network.add_enb("enb1")
        FaultInjector(network, FaultPlan((
            McServerOutage(server="srv-a", at=0.5),
            McServerOutage(server="srv-b", at=0.5),))).arm()
        network.sim.run()
        # both instances dead: the degradation path has already moved
        # the session to central fallback; relocate_session must not
        # crash or strand what remains
        network.handover(ue, "enb1")
        mrs.relocate_session(ue, "svc")
        assert (ue.imsi, "svc") in mrs.degraded

    def test_relocated_session_returns_home_on_recovery(self):
        network, mrs, ue, events = self.build_mrs(two_sites=True)
        FaultInjector(network, FaultPlan((
            McServerOutage(server="srv-a", at=1.0, duration=2.0),))).arm()
        network.sim.run()
        assert [type(e).__name__ for e in events] == [
            "SessionDegraded", "SessionRestored"]
        # srv-a serves enb0, so recovery moves the session back
        assert mrs.session_for(ue, "svc").instance.server_name == "srv-a"
        assert not mrs.degraded
