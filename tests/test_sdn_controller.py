"""Unit tests for the SDN controller."""

import pytest

from repro.epc.overhead import ControlLedger
from repro.sdn.controller import SdnController
from repro.sdn.openflow import FlowMatch, FlowRule, Output
from repro.sdn.switch import FlowSwitch
from repro.sim.engine import Simulator


def build():
    sim = Simulator()
    ledger = ControlLedger()
    controller = SdnController(ledger=ledger)
    switch = FlowSwitch(sim, "sgw-u.central", ip="172.16.0.1")
    controller.register(switch)
    return controller, switch, ledger


def rule(cookie=""):
    return FlowRule(FlowMatch(dst_ip="10.0.0.2"), [Output("out")],
                    cookie=cookie)


def test_install_adds_rule_and_records_message():
    controller, switch, ledger = build()
    controller.install_rule("sgw-u.central", rule())
    assert len(switch.table) == 1
    assert ledger.total_messages == 1
    assert ledger.messages[0].protocol == "OpenFlow"
    assert ledger.messages[0].size == 368


def test_remove_records_delete_message():
    controller, switch, ledger = build()
    controller.install_rule("sgw-u.central", rule(cookie="c"))
    count = controller.remove_rules("sgw-u.central", "c")
    assert count == 1
    assert switch.table == []
    assert ledger.messages[-1].size == 344
    assert "delete" in ledger.messages[-1].name


def test_unknown_switch_raises():
    controller, _, _ = build()
    with pytest.raises(KeyError):
        controller.install_rule("nope", rule())


def test_flow_mod_counter():
    controller, _, _ = build()
    controller.install_rule("sgw-u.central", rule(cookie="a"))
    controller.install_rule("sgw-u.central", rule(cookie="b"))
    controller.remove_rules("sgw-u.central", "a")
    assert controller.flow_mods_sent == 3


def test_default_ledger_created_when_absent():
    controller = SdnController()
    assert controller.ledger is not None
