"""(De)serialisation of fault specs and plans.

Every fault type round-trips through ``to_dict``/``from_dict``
exactly (a hypothesis property over generated specs), unknown fields
and unknown types fail with path-qualified messages, and whole plans
survive a JSON round-trip.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import (FAULT_TYPES, ChannelDelaySpike,
                               ChannelLoss, EntityCrash, EntityRestart,
                               FaultPlan, FaultSpec, FaultSpecError,
                               LinkDown, LinkFlap, McServerOutage)

_names = st.sampled_from(["s1.edge0.enb0", "wan.edge0.edge1", "mme",
                          "ci-edge1", "*", "rrc"])
_at = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
_positive = st.floats(min_value=1e-3, max_value=100.0,
                      allow_nan=False)
_maybe_duration = st.one_of(st.none(), _positive)
_rate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_duty = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)

#: One strategy per registered fault type -- a new fault type without
#: a strategy here fails test_every_fault_type_has_a_strategy.
#: Windowed specs (``until``) build from ``at`` plus a positive
#: extent, matching the constructors' ``until > at`` validation.
SPEC_STRATEGIES = {
    "link_down": st.builds(LinkDown, link=_names, at=_at,
                           duration=_maybe_duration),
    "link_flap": st.builds(
        lambda link, at, period, duty, extent: LinkFlap(
            link=link, at=at, period=period, duty=duty,
            until=at + extent),
        _names, _at, _positive, _duty, _positive),
    "channel_loss": st.builds(
        lambda channel, at, rate, extent: ChannelLoss(
            channel=channel, at=at, rate=rate,
            until=None if extent is None else at + extent),
        _names, _at, _rate, _maybe_duration),
    "channel_delay_spike": st.builds(
        lambda channel, at, probability, extra, extent:
            ChannelDelaySpike(
                channel=channel, at=at, probability=probability,
                extra_delay=extra,
                until=None if extent is None else at + extent),
        _names, _at, _rate, _positive, _maybe_duration),
    "entity_crash": st.builds(EntityCrash, entity=_names, at=_at,
                              duration=_maybe_duration),
    "entity_restart": st.builds(EntityRestart, entity=_names, at=_at),
    "mc_server_outage": st.builds(McServerOutage, server=_names,
                                  at=_at, duration=_maybe_duration),
}


def test_every_fault_type_has_a_strategy():
    assert sorted(SPEC_STRATEGIES) == sorted(FAULT_TYPES)


@settings(max_examples=60)
@given(spec=st.one_of(*SPEC_STRATEGIES.values()))
def test_spec_roundtrips_exactly(spec):
    data = spec.to_dict()
    assert data["type"] in FAULT_TYPES
    restored = FaultSpec.from_dict(data)
    assert restored == spec
    assert type(restored) is type(spec)
    # and survives an actual JSON encode/decode
    assert FaultSpec.from_dict(json.loads(json.dumps(data))) == spec


@settings(max_examples=20)
@given(specs=st.lists(st.one_of(*SPEC_STRATEGIES.values()),
                      max_size=6))
def test_plan_roundtrips_exactly(specs):
    plan = FaultPlan(tuple(specs))
    restored = FaultPlan.from_dict(
        json.loads(json.dumps(plan.to_dict())))
    assert restored == plan


@pytest.mark.parametrize("name,cls", sorted(FAULT_TYPES.items()))
def test_registry_names_are_stable(name, cls):
    assert FAULT_TYPES[name] is cls


def test_missing_type_discriminator():
    with pytest.raises(FaultSpecError) as excinfo:
        FaultSpec.from_dict({"link": "x"}, path="faults[0]")
    assert excinfo.value.path == "faults[0]"
    assert "type" in str(excinfo.value)


def test_unknown_type_lists_the_valid_ones():
    with pytest.raises(FaultSpecError) as excinfo:
        FaultSpec.from_dict({"type": "gremlin"}, path="faults[3]")
    message = str(excinfo.value)
    assert "faults[3]" in message
    for name in FAULT_TYPES:
        assert name in message


def test_unknown_field_is_rejected_with_path():
    with pytest.raises(FaultSpecError) as excinfo:
        FaultSpec.from_dict(
            {"type": "channel_loss", "rait": 0.5}, path="faults[2]")
    assert excinfo.value.path == "faults[2]"
    assert "rait" in str(excinfo.value)


def test_plan_accepts_bare_list_and_wrapped_forms():
    entries = [{"type": "link_down", "link": "s5.central"}]
    assert (FaultPlan.from_dict(entries)
            == FaultPlan.from_dict({"faults": entries}))


def test_plan_entry_errors_carry_their_index():
    with pytest.raises(FaultSpecError) as excinfo:
        FaultPlan.from_dict([
            {"type": "link_down", "link": "a"},
            {"type": "link_flap", "link": "b"},      # missing period
        ], path="faults")
    assert "faults[1]" in str(excinfo.value)


def test_json_ints_widen_to_float_fields():
    spec = FaultSpec.from_dict(
        {"type": "link_flap", "link": "a", "at": 3, "period": 2,
         "until": 9})
    assert spec == LinkFlap(link="a", at=3.0, period=2.0, until=9.0)
    assert isinstance(spec.period, float)
