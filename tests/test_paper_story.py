"""The paper's Section 5.1 narrative as one integration test.

Walks the full use case in order and asserts every claim the scenario
makes: staff publish sections over LTE-direct; a customer's interest
match raises a notification and creates MEC connectivity on demand;
localisation feeds the AR back-end; matching is pruned and correct;
closing the app releases everything.
"""

import numpy as np
import pytest

from repro.apps.retail import build_retail_database
from repro.apps.scenario import store_scenario
from repro.apps.workload import CheckpointWorkload
from repro.baselines import build_deployment
from repro.vision.camera import R720x480


@pytest.fixture(scope="module")
def story():
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=60)
    deployment = build_deployment("acacia", db, scenario, seed=77)
    checkpoint = scenario.checkpoints[8]
    section = scenario.section_of_subsection(checkpoint.subsection)

    network = deployment.network
    customer = deployment.customer
    customer.move_to(checkpoint.position)
    customer.open([section])
    network.sim.run(until=35.0)

    workload = CheckpointWorkload(scenario, db, seed=77,
                                  frames_per_object=5,
                                  resolution=R720x480)
    sample = workload.sample(checkpoint)
    session = deployment.new_session(iter(sample.frames),
                                     resolution=R720x480, max_frames=5)
    session.start(at=network.sim.now)
    network.sim.run(until=network.sim.now + 30.0)
    return (scenario, db, deployment, checkpoint, section, sample,
            session)


def test_staff_publishers_cover_the_store(story):
    scenario, db, deployment, *_ = story
    assert len(deployment.store.publishers) == 7
    for publisher in deployment.store.publishers.values():
        assert publisher.broadcasts_sent >= 2


def test_interest_match_notified_the_customer(story):
    *_, deployment, checkpoint, section, sample, session = \
        (story[0], story[1], story[2], story[3], story[4], story[5],
         story[6])
    customer = deployment.customer
    assert customer.notifications
    assert all(o.message.payload == f"section={section}"
               for o in customer.notifications)


def test_connectivity_created_on_demand_not_before(story):
    scenario, db, deployment, *_ = story
    session_rec = deployment.mrs.session_for(deployment.ue, "ar-retail")
    assert session_rec is not None
    # exactly one dedicated bearer despite repeated matches
    dedicated = [b for b in deployment.ue.bearers if not b.default]
    assert len(dedicated) == 1
    assert dedicated[0].gateway_site == "mec"
    assert deployment.mrs.requests_served == 1


def test_interest_filter_narrower_than_landmark_feed(story):
    """All retail broadcasts feed localisation (service-wide filter),
    but only the customer's *interest* raises notifications."""
    scenario, db, deployment, *_ = story
    modem = deployment.device_manager.modem
    assert modem.delivered >= 1
    notifications = len(deployment.customer.notifications)
    assert 1 <= notifications < modem.delivered


def test_localisation_close_to_the_checkpoint(story):
    scenario, db, deployment, checkpoint, *_ = story
    location = deployment.localization.location(
        deployment.customer.app_id, deployment.network.sim.now)
    assert location is not None
    error = np.hypot(location[0] - checkpoint.position[0],
                     location[1] - checkpoint.position[1])
    assert error < 6.0


def test_ar_session_matched_every_frame_with_pruning(story):
    *_, sample, session = story[-2], story[-1]
    assert len(session.records) == 5
    assert all(r.matched == sample.record.name for r in session.records)
    backend = None  # pruning evidence lives in the per-frame match time


def test_pruned_matching_beats_whole_floor(story):
    scenario, db, deployment, checkpoint, section, sample, session = story
    naive_time = deployment.backend.device.db_match_time(
        R720x480, db_objects=105,
        object_features=db.mean_nominal_features())
    mean_match = np.mean([r.match_time for r in session.records])
    assert mean_match < 0.5 * naive_time


def test_closing_the_app_releases_everything(story):
    scenario, db, deployment, *_ = story
    deployment.customer.close()
    assert deployment.mrs.session_for(deployment.ue, "ar-retail") is None
    assert [b for b in deployment.ue.bearers if not b.default] == []
    assert deployment.device_manager.modem.subscription_count == 0
