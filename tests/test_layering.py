"""Architecture tests: the layering rules of CONTRIBUTING.md."""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"

#: package -> packages it must never import at module scope
FORBIDDEN = {
    "sim": {"repro.epc", "repro.sdn", "repro.d2d", "repro.localization",
            "repro.vision", "repro.core", "repro.apps",
            "repro.baselines"},
    "epc": {"repro.core", "repro.apps", "repro.baselines"},
    "sdn": {"repro.core", "repro.apps", "repro.baselines"},
    "d2d": {"repro.core", "repro.apps", "repro.baselines"},
    "localization": {"repro.core", "repro.apps", "repro.baselines"},
    "vision": {"repro.core", "repro.apps", "repro.baselines"},
    "core": {"repro.baselines"},
    "apps": {"repro.baselines"},
}


def module_scope_imports(path: Path) -> set[str]:
    """Imports executed at import time (TYPE_CHECKING blocks excluded)."""
    tree = ast.parse(path.read_text())
    imports: set[str] = set()

    def visit(node, type_checking=False):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If):
                # skip `if TYPE_CHECKING:` bodies
                test = child.test
                is_tc = (isinstance(test, ast.Name)
                         and test.id == "TYPE_CHECKING") or (
                    isinstance(test, ast.Attribute)
                    and test.attr == "TYPE_CHECKING")
                visit(child, type_checking=type_checking or is_tc)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue    # lazy imports inside functions are fine
            if isinstance(child, ast.Import) and not type_checking:
                imports.update(alias.name for alias in child.names)
            elif isinstance(child, ast.ImportFrom) and not type_checking:
                if child.module:
                    imports.add(child.module)
            elif isinstance(child, (ast.ClassDef, ast.Try, ast.With)):
                visit(child, type_checking=type_checking)
    visit(tree)
    return imports


@pytest.mark.parametrize("package", sorted(FORBIDDEN))
def test_layer_does_not_reach_up(package):
    forbidden = FORBIDDEN[package]
    violations = []
    for path in (SRC / package).rglob("*.py"):
        for imported in module_scope_imports(path):
            for banned in forbidden:
                if imported == banned or imported.startswith(banned + "."):
                    violations.append(f"{path.name}: imports {imported}")
    assert violations == [], violations


def test_sim_is_fully_self_contained():
    """The simulator layer depends on nothing but stdlib and numpy."""
    allowed_prefixes = ("repro.sim",)
    for path in (SRC / "sim").rglob("*.py"):
        for imported in module_scope_imports(path):
            if imported.startswith("repro."):
                assert imported.startswith(allowed_prefixes), \
                    f"{path.name} imports {imported}"
