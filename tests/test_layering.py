"""Architecture tests: the layering rules of CONTRIBUTING.md."""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"

#: package -> packages it must never import at module scope
#:
#: ``repro.ops`` sits at the very top of the stack: it may import
#: anything below (sim/epc/vision/faults/core/scenario), but nothing
#: below it -- including the batch ``exp`` runner -- may import ops.
#: The operator runtime is strictly optional machinery layered over a
#: scenario run.
FORBIDDEN = {
    "sim": {"repro.epc", "repro.sdn", "repro.d2d", "repro.localization",
            "repro.vision", "repro.core", "repro.apps",
            "repro.baselines", "repro.scenario", "repro.ops"},
    "epc": {"repro.core", "repro.apps", "repro.baselines",
            "repro.scenario", "repro.ops"},
    "sdn": {"repro.core", "repro.apps", "repro.baselines",
            "repro.scenario", "repro.ops"},
    "d2d": {"repro.core", "repro.apps", "repro.baselines",
            "repro.scenario", "repro.ops"},
    "localization": {"repro.core", "repro.apps", "repro.baselines",
                     "repro.scenario", "repro.ops"},
    "vision": {"repro.core", "repro.apps", "repro.baselines",
               "repro.scenario", "repro.ops"},
    "faults": {"repro.core", "repro.apps", "repro.baselines",
               "repro.scenario", "repro.ops"},
    "core": {"repro.baselines", "repro.scenario", "repro.ops"},
    "apps": {"repro.baselines", "repro.scenario", "repro.ops"},
    "baselines": {"repro.scenario", "repro.exp", "repro.ops"},
    # presets are compiled *from* scenario documents, so the exp
    # package may import repro.scenario (see exp/presets.py) but the
    # scenario layer must never reach back into repro.exp at module
    # scope -- Scenario.compile() imports the spec lazily.
    "scenario": {"repro.exp", "repro.ops"},
    "exp": {"repro.ops"},
}


def module_scope_imports(path: Path) -> set[str]:
    """Imports executed at import time (TYPE_CHECKING blocks excluded)."""
    tree = ast.parse(path.read_text())
    imports: set[str] = set()

    def visit(node, type_checking=False):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If):
                # skip `if TYPE_CHECKING:` bodies
                test = child.test
                is_tc = (isinstance(test, ast.Name)
                         and test.id == "TYPE_CHECKING") or (
                    isinstance(test, ast.Attribute)
                    and test.attr == "TYPE_CHECKING")
                visit(child, type_checking=type_checking or is_tc)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue    # lazy imports inside functions are fine
            if isinstance(child, ast.Import) and not type_checking:
                imports.update(alias.name for alias in child.names)
            elif isinstance(child, ast.ImportFrom) and not type_checking:
                if child.module:
                    imports.add(child.module)
            elif isinstance(child, (ast.ClassDef, ast.Try, ast.With)):
                visit(child, type_checking=type_checking)
    visit(tree)
    return imports


@pytest.mark.parametrize("package", sorted(FORBIDDEN))
def test_layer_does_not_reach_up(package):
    forbidden = FORBIDDEN[package]
    violations = []
    for path in (SRC / package).rglob("*.py"):
        for imported in module_scope_imports(path):
            for banned in forbidden:
                if imported == banned or imported.startswith(banned + "."):
                    violations.append(f"{path.name}: imports {imported}")
    assert violations == [], violations


#: Attributes that used to be wired by rebinding at runtime
#: (``ue.on_downlink = probe`` and friends).  Cross-layer wiring must go
#: through the typed hook bus; only the owning object (``self``) may
#: still declare/initialise these names.
FORBIDDEN_REBINDS = {"assign_ip", "on_downlink", "miss_handler"}


def test_no_monkey_patched_wiring():
    violations = []
    for path in SRC.rglob("*.py"):
        for node in ast.walk(ast.parse(path.read_text())):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr in FORBIDDEN_REBINDS
                        and not (isinstance(target.value, ast.Name)
                                 and target.value.id == "self")):
                    violations.append(
                        f"{path.relative_to(SRC)}:{node.lineno}: "
                        f"rebinds .{target.attr}")
    assert violations == [], (
        "method-assignment wiring found; subscribe on the hook bus "
        f"instead: {violations}")


def test_sim_is_fully_self_contained():
    """The simulator layer depends on nothing but stdlib and numpy."""
    allowed_prefixes = ("repro.sim",)
    for path in (SRC / "sim").rglob("*.py"):
        for imported in module_scope_imports(path):
            if imported.startswith("repro."):
                assert imported.startswith(allowed_prefixes), \
                    f"{path.name} imports {imported}"


#: Scheduler/engine internals: the now lane, timer-wheel slots, the
#: fallback heap and the event pool are private to ``repro.sim``.
#: Everything else must go through ``Simulator.schedule()`` /
#: ``SimConfig.build_simulator()`` / ``Simulator.profile()``.
SCHEDULER_INTERNALS = {"_heap", "_now_lane", "_runlist", "_wheel",
                       "_wheel_heap", "_coarse", "_coarse_heap",
                       "_scheduler", "_schedule_internal"}


#: Fluid data-plane internals: entry tables, per-direction queue maps
#: and the rate solver are private to ``repro.sim.fluid``.  Other layers
#: compose fluid traffic only through the public ``FluidDomain`` /
#: ``FluidFlow`` / ``FluidLink`` surface (``attach`` is called by
#: ``FluidFlow`` itself).  ``core/network.py`` is the single sanctioned
#: wiring point outside ``repro.sim``.
FLUID_INTERNALS = {"_attach_fluid", "_entries", "_fluid_by_dir",
                   "_fluid_domain", "_solve_rates", "_accrue_drops",
                   "_rearm_flush", "_hops"}

FLUID_WIRING_FILES = {"core/network.py"}


def test_fluid_importable_only_from_sanctioned_layers():
    """Only ``repro.sim`` and ``core/network.py`` import the fluid module.

    Everything else selects the data plane declaratively through
    ``SimConfig.data_plane`` and never names ``repro.sim.fluid``.
    """
    violations = []
    for path in SRC.rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        if (SRC / "sim") in path.parents or rel in FLUID_WIRING_FILES:
            continue
        for imported in module_scope_imports(path):
            if imported == "repro.sim.fluid":
                violations.append(f"{rel}: imports {imported}")
    assert violations == [], (
        "repro.sim.fluid imported outside its sanctioned layers; select "
        f"the data plane via SimConfig.data_plane instead: {violations}")


def test_no_fluid_internals_outside_sim():
    """Nothing outside ``repro.sim`` (plus the network wiring point)
    touches fluid data-plane internals.  ``self.<name>`` is allowed for
    the same reason as the scheduler gate below."""
    violations = []
    for path in SRC.rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        if (SRC / "sim") in path.parents or rel in FLUID_WIRING_FILES:
            continue
        for node in ast.walk(ast.parse(path.read_text())):
            if (isinstance(node, ast.Attribute)
                    and node.attr in FLUID_INTERNALS
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id == "self")):
                violations.append(f"{rel}:{node.lineno}: "
                                  f"touches .{node.attr}")
    assert violations == [], (
        "fluid data-plane internals leaked; use the FluidDomain/"
        f"FluidFlow/FluidLink public surface instead: {violations}")


#: Session-relocation internals: the bearer re-steer/suspend machinery
#: and the raw context-transfer primitive belong to the control plane
#: (``repro.epc``) and its orchestrator (``core/mrs.py`` /
#: ``core/network.py``).  Application and experiment layers observe
#: relocation only through the hook-bus events
#: (``SessionRelocating`` / ``SessionRelocated``) and the MRS surface.
RELOCATION_INTERNALS = {"resteer_bearer", "resteer_bearer_async",
                        "_resteer_proc", "suspend_bearer_flows",
                        "suspend_bearer_flows_async", "_suspend_proc",
                        "context_transfer_async", "_relocate_proc",
                        "_maybe_relocate"}

RELOCATION_LAYERS = ("apps", "exp", "baselines")


@pytest.mark.parametrize("package", RELOCATION_LAYERS)
def test_no_relocation_internals_in_high_layers(package):
    """``apps``/``exp``/``baselines`` never drive relocation directly.

    They build fabrics and watch ``SessionRelocating``/``SessionRelocated``;
    the MRS decides when to move a session and the EPC control plane
    knows how.  ``self.<name>`` is allowed as in the gates above.
    """
    violations = []
    for path in (SRC / package).rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        for node in ast.walk(ast.parse(path.read_text())):
            if (isinstance(node, ast.Attribute)
                    and node.attr in RELOCATION_INTERNALS
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id == "self")):
                violations.append(f"{rel}:{node.lineno}: "
                                  f"touches .{node.attr}")
    assert violations == [], (
        "relocation internals leaked into a high layer; observe the "
        f"SessionRelocating/SessionRelocated events instead: {violations}")


def test_no_scheduler_internals_outside_sim():
    """Nothing outside ``repro.sim`` touches scheduler internals.

    ``self.<name>`` is allowed (a class may own an unrelated attribute
    of the same shape, e.g. a vision-layer ``_pool``); any other
    receiver means code is reaching into the engine's guts and would
    silently break when the scheduler implementation changes.
    """
    violations = []
    for path in SRC.rglob("*.py"):
        if (SRC / "sim") in path.parents:
            continue
        for node in ast.walk(ast.parse(path.read_text())):
            if (isinstance(node, ast.Attribute)
                    and node.attr in SCHEDULER_INTERNALS
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id == "self")):
                violations.append(
                    f"{path.relative_to(SRC)}:{node.lineno}: "
                    f"touches .{node.attr}")
    assert violations == [], (
        "scheduler internals leaked outside repro.sim; use the public "
        f"Simulator API instead: {violations}")


#: Sharded-execution internals: the window-protocol backends, the
#: per-shard worker loop and the coordinator's pending-envelope state
#: are private to ``repro.sim.shard``.  Higher layers select sharding
#: declaratively (``SimConfig.sharding``, the ``sharding`` workload
#: param) or assemble fleets through the public surface
#: (``ShardSpec``/``Conduit``/``ShardedSimulator``/``run_isolated``).
SHARD_INTERNALS = {"_InlineShard", "_ProcessShard", "_shard_worker",
                   "_advance", "_inject", "_drive", "_mp_context",
                   "_envelope_key", "_isolated_entry"}

#: The only modules outside ``repro.sim`` that may import
#: ``repro.sim.shard``: the exp runner (degenerate single-shard
#: isolation of monolithic trials) and the workload registry (fleet
#: assembly for ``shard_fabric``).  ``baselines`` ships the per-site
#: shard app but stays decoupled through the duck-typed port.
SHARD_WIRING_FILES = {"exp/runner.py", "exp/workloads.py"}


def test_shard_importable_only_from_sanctioned_layers():
    violations = []
    for path in SRC.rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        if (SRC / "sim") in path.parents or rel in SHARD_WIRING_FILES:
            continue
        for imported in module_scope_imports(path):
            if imported == "repro.sim.shard":
                violations.append(f"{rel}: imports {imported}")
    # lazy in-function imports count too for this gate: grep the AST
    # for any ImportFrom of the module anywhere in the file
    for path in SRC.rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        if (SRC / "sim") in path.parents or rel in SHARD_WIRING_FILES:
            continue
        for node in ast.walk(ast.parse(path.read_text())):
            if (isinstance(node, ast.ImportFrom)
                    and node.module == "repro.sim.shard") or (
                    isinstance(node, ast.Import)
                    and any(a.name == "repro.sim.shard"
                            for a in node.names)):
                violations.append(f"{rel}:{node.lineno}: "
                                  "imports repro.sim.shard")
    assert sorted(set(violations)) == [], (
        "repro.sim.shard imported outside its sanctioned layers; "
        "select sharding via SimConfig.sharding / the workload param "
        f"instead: {sorted(set(violations))}")


def test_no_shard_internals_outside_sim():
    """Nothing outside ``repro.sim`` touches shard-protocol internals.
    ``self.<name>`` is allowed as in the gates above."""
    violations = []
    for path in SRC.rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        if (SRC / "sim") in path.parents:
            continue
        for node in ast.walk(ast.parse(path.read_text())):
            if (isinstance(node, ast.Attribute)
                    and node.attr in SHARD_INTERNALS
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id == "self")):
                violations.append(f"{rel}:{node.lineno}: "
                                  f"touches .{node.attr}")
            elif (isinstance(node, ast.Name)
                    and node.id in SHARD_INTERNALS):
                violations.append(f"{rel}:{node.lineno}: "
                                  f"names {node.id}")
    assert violations == [], (
        "shard-protocol internals leaked outside repro.sim; use the "
        "ShardedSimulator/ShardSpec/Conduit public surface instead: "
        f"{violations}")


#: The one sanctioned entry point that turns a raw scenario-document
#: dict into a built deployment.  Only the scenario layer (which
#: validates documents first) and the baselines package itself (whose
#: legacy builders delegate to it) may call it; every other layer goes
#: through those two, so an unvalidated dict can never build a world.
RAW_DICT_BUILDERS = {"build_topology"}

RAW_DICT_BUILDER_LAYERS = ("scenario/", "baselines/")


def test_only_scenario_layer_builds_from_raw_dicts():
    violations = []
    for path in SRC.rglob("*.py"):
        rel = path.relative_to(SRC).as_posix()
        if rel.startswith(RAW_DICT_BUILDER_LAYERS):
            continue
        for node in ast.walk(ast.parse(path.read_text())):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            name = (fn.id if isinstance(fn, ast.Name)
                    else fn.attr if isinstance(fn, ast.Attribute)
                    else None)
            if name in RAW_DICT_BUILDERS:
                violations.append(f"{rel}:{node.lineno}: calls {name}")
    assert violations == [], (
        "raw-dict deployment construction outside the scenario layer; "
        f"go through repro.scenario documents instead: {violations}")
