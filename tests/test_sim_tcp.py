"""Tests for the Reno-lite TCP model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.tcp import TcpSink, TcpSource


def build(bandwidth=10e6, delay=0.005, queue_bytes=30_000, **source_kw):
    sim = Simulator()
    src = TcpSource(sim, "tcp", dst="10.0.0.2", ip="10.0.0.1",
                    **source_kw)
    sink = TcpSink(sim, "sink", ip="10.0.0.2")
    link = Link(sim, "l", bandwidth=bandwidth, delay=delay,
                queue_bytes=queue_bytes)
    src.attach("out", link)
    sink.attach("net", link)
    return sim, src, sink


def test_saturates_bottleneck():
    sim, src, sink = build(bandwidth=10e6)
    src.start()
    sim.run(until=5.0)
    src.stop()
    assert src.goodput(5.0) == pytest.approx(10e6, rel=0.15)


def test_slow_start_doubles_window_early():
    sim, src, sink = build(bandwidth=100e6, queue_bytes=10**6)
    src.start()
    sim.run(until=0.3)
    # several RTTs of exponential growth from cwnd=2
    assert src.cwnd > 16


def test_losses_trigger_backoff():
    """A shallow buffer forces drops; fast retransmit repairs them and
    the window shows the classic sawtooth."""
    sim, src, sink = build(bandwidth=5e6, queue_bytes=8_000)
    src.start()
    sim.run(until=10.0)
    src.stop()
    assert src.retransmits > 0
    cwnds = [c for _, c in src.cwnd_trace]
    decreases = sum(1 for a, b in zip(cwnds, cwnds[1:]) if b < a)
    assert decreases >= 3               # several multiplicative backoffs
    assert max(cwnds) > 4.0             # and growth in between


def test_all_segments_delivered_despite_losses():
    sim, src, sink = build(bandwidth=5e6, queue_bytes=8_000,
                           total_packets=200)
    src.start()
    sim.run(until=30.0)
    assert src.complete
    assert sink.received_seqs == set(range(200))


def test_rtt_estimator_tracks_path():
    # cap the window below the BDP so the flow never queues on itself
    sim, src, sink = build(bandwidth=50e6, delay=0.020,
                           queue_bytes=10**6, max_cwnd=32)
    src.start()
    sim.run(until=2.0)
    # srtt ~ 2 * 20 ms propagation (+ serialization)
    assert src.srtt == pytest.approx(0.0415, abs=0.01)
    assert src.rto < 1.0


def test_bufferbloat_inflates_srtt():
    """With a deep buffer and no window cap, the flow queues on itself
    and the measured RTT grows well beyond the propagation delay."""
    sim, src, sink = build(bandwidth=50e6, delay=0.020,
                           queue_bytes=10**6)
    src.start()
    sim.run(until=2.0)
    assert src.srtt > 0.08              # >> the 41.5 ms base RTT


def test_two_flows_share_bottleneck():
    sim = Simulator()
    sink = TcpSink(sim, "sink", ip="10.0.0.9")
    # both flows enter a common bottleneck through separate access links
    from repro.sdn.switch import FlowSwitch
    from repro.sdn.openflow import FlowMatch, FlowRule, Output
    mux = FlowSwitch(sim, "mux")
    bottleneck = Link(sim, "b", bandwidth=10e6, delay=0.005,
                      queue_bytes=40_000)
    mux.attach("down", bottleneck)
    sink.attach("net", bottleneck)
    mux.install(FlowRule(FlowMatch(dst_ip="10.0.0.9"), [Output("down")]))
    sources = []
    for i in range(2):
        src = TcpSource(sim, f"tcp{i}", dst="10.0.0.9",
                        ip=f"10.0.0.{i + 1}")
        access = Link(sim, f"a{i}", bandwidth=100e6, delay=0.001)
        src.attach("out", access)
        mux.attach(f"up{i}", access)
        mux.install(FlowRule(FlowMatch(dst_ip=f"10.0.0.{i + 1}"),
                             [Output(f"up{i}")]))
        sources.append(src)
    sources[0].start(at=0.0)
    sources[1].start(at=0.5)
    sim.run(until=20.0)
    g0 = sources[0].goodput(20.0)
    g1 = sources[1].goodput(20.0)
    total = g0 + g1
    assert total == pytest.approx(10e6, rel=0.2)
    # rough fairness: neither flow starves
    assert min(g0, g1) / max(g0, g1) > 0.25


def test_finite_transfer_stops():
    sim, src, sink = build(bandwidth=10e6, total_packets=50)
    src.start()
    sim.run(until=10.0)
    assert src.complete
    assert src.packets_sent >= 50
    assert sim.pending == 0             # no timers leak after completion
