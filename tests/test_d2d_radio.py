"""Unit tests for the D2D radio model."""

import numpy as np
import pytest

from repro.d2d.radio import SNR_SPAN_DB, RadioModel


@pytest.fixture()
def radio():
    return RadioModel()


def test_power_decreases_with_distance(radio):
    powers = [radio.mean_rx_power(d) for d in (1, 5, 10, 30, 60)]
    assert powers == sorted(powers, reverse=True)


def test_rx_power_span_covers_50db(radio):
    """Figure 6(c): rxPower spans roughly 50 dB over a store walk."""
    near = radio.mean_rx_power(1.0)
    far = radio.mean_rx_power(60.0)
    assert 45 <= near - far <= 60


def test_snr_clamped_to_25db_span(radio):
    assert radio.snr(-20.0) == SNR_SPAN_DB
    assert radio.snr(-200.0) == 0.0
    assert 0 < radio.snr(-85.0) < SNR_SPAN_DB


def test_snr_saturates_at_close_range(radio):
    """The paper's argument: SNR has poor dynamic range for ranging."""
    snr_1m = radio.snr(radio.mean_rx_power(1.0))
    snr_4m = radio.snr(radio.mean_rx_power(4.0))
    assert snr_1m == snr_4m == SNR_SPAN_DB


def test_near_field_clamp(radio):
    assert radio.mean_rx_power(0.0) == radio.mean_rx_power(radio.min_distance)


def test_shadowing_statistics(radio):
    rng = np.random.default_rng(3)
    samples = np.array([radio.rx_power(10.0, rng) for _ in range(4000)])
    assert samples.mean() == pytest.approx(radio.mean_rx_power(10.0), abs=0.3)
    assert samples.std() == pytest.approx(radio.shadowing_sigma, rel=0.1)


def test_decodable_threshold(radio):
    assert radio.decodable(radio.sensitivity)
    assert not radio.decodable(radio.sensitivity - 0.1)


def test_max_range_consistent(radio):
    r = radio.max_range()
    assert radio.mean_rx_power(r) == pytest.approx(radio.sensitivity, abs=0.1)


def test_distance_inversion_roundtrip(radio):
    for d in (1.0, 5.0, 20.0, 50.0):
        assert radio.distance_from_power(
            radio.mean_rx_power(d)) == pytest.approx(d, rel=1e-6)
