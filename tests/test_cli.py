"""Tests for the command-line interface."""

import pytest

from repro.cli import DEMOS, EXPERIMENTS, build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ACACIA" in out
    assert "experiments" in out


def test_experiments_lists_all(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_overhead_prints_calibrated_totals(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "15 messages" in out
    assert "2914 bytes" in out
    assert "2.58 MB" in out


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["run-experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_unknown_demo_fails_cleanly(capsys):
    assert main(["demo", "nope"]) == 2
    assert "unknown demo" in capsys.readouterr().err


def test_every_experiment_maps_to_an_existing_bench():
    from pathlib import Path
    bench_dir = Path(__file__).parent.parent / "benchmarks"
    for key, (filename, _) in EXPERIMENTS.items():
        assert (bench_dir / filename).exists(), f"{key} -> {filename}"


def test_every_demo_maps_to_an_existing_example():
    from pathlib import Path
    example_dir = Path(__file__).parent.parent / "examples"
    for name, script in DEMOS.items():
        assert (example_dir / script).exists(), f"{name} -> {script}"


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_exp_list_shows_every_preset(capsys):
    from repro.exp import PRESETS
    assert main(["exp", "list"]) == 0
    out = capsys.readouterr().out
    for name in PRESETS:
        assert name in out


def test_exp_show_prints_spec_json_digests_and_seed_table(capsys):
    import json

    from repro.exp import preset
    from repro.scenario import load
    assert main(["exp", "show", "smoke"]) == 0
    out = capsys.readouterr().out
    spec_json, _, rest = out.partition("\nspec digest: ")
    spec = json.loads(spec_json)
    assert spec["name"] == "smoke"
    assert spec["workload"] == "ping"
    assert preset("smoke").digest() in rest
    assert load("smoke").digest() in rest
    # the per-trial seed table pairs sweep cells on the base seed
    for trial in preset("smoke").trials():
        assert str(trial.seed) in rest
        assert f"  {trial.index:>3}  " in rest
    assert "paired" in rest


def test_exp_unknown_preset_fails_cleanly(capsys):
    assert main(["exp", "show", "fig99"]) == 2
    assert "unknown preset" in capsys.readouterr().err
    assert main(["exp", "run", "fig99"]) == 2


def test_exp_run_writes_canonical_results(capsys, monkeypatch, tmp_path):
    import json

    from repro.exp import ExperimentSpec, PRESETS, workload

    @workload("_cli_probe")
    def probe(trial):
        return {"x": trial.param_dict["x"]}

    monkeypatch.setitem(PRESETS, "_cli-probe", ExperimentSpec(
        name="_cli-probe", workload="_cli_probe", sweep={"x": (1, 2)}))
    out_file = tmp_path / "results.json"
    assert main(["exp", "run", "_cli-probe",
                 "--output", str(out_file)]) == 0
    data = json.loads(out_file.read_text())
    assert [t["metrics"]["x"] for t in data["trials"]] == [1, 2]
    assert all(t["status"] == "ok" for t in data["trials"])


def test_exp_run_reports_failures_with_nonzero_exit(capsys, monkeypatch):
    from repro.exp import ExperimentSpec, PRESETS, workload

    @workload("_cli_boom")
    def boom(trial):
        raise RuntimeError("kaput")

    monkeypatch.setitem(PRESETS, "_cli-boom", ExperimentSpec(
        name="_cli-boom", workload="_cli_boom"))
    assert main(["exp", "run", "_cli-boom"]) == 1
    assert "kaput" in capsys.readouterr().err


def test_scenario_list_shows_whole_catalogue(capsys):
    from repro.scenario import catalogue
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in catalogue():
        assert name in out


def test_scenario_show_prints_document_and_digest(capsys):
    import json

    from repro.scenario import load
    assert main(["scenario", "show", "quick_test"]) == 0
    out = capsys.readouterr().out
    document, _, rest = out.partition("\nscenario digest: ")
    assert json.loads(document)["scenario"]["name"] == "quick_test"
    assert load("quick_test").digest() in rest
    assert "compiles to" in rest


def test_scenario_validate_whole_catalogue(capsys):
    from repro.scenario import catalogue
    assert main(["scenario", "validate"]) == 0
    out = capsys.readouterr().out
    total = len(catalogue())
    assert f"{total}/{total} valid" in out


def test_scenario_validate_reports_bad_document(tmp_path, capsys):
    import json
    bad = {"scenario": {"name": "bad", "version": 1,
                        "description": "d"},
           "topology": {"sites": 0},
           "experiment": {"workload": "scenario", "seeds": [1]}}
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(bad))
    assert main(["scenario", "validate", str(path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "topology.sites" in out


def test_scenario_unknown_name_fails_cleanly(capsys):
    assert main(["scenario", "show", "no_such"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
    assert main(["scenario", "run", "no_such"]) == 2


def test_scenario_run_jsonl_embeds_digest(capsys):
    import json

    from repro.scenario import load
    assert main(["scenario", "run", "quick_test", "--jsonl"]) == 0
    out = capsys.readouterr().out
    lines = [json.loads(line) for line in out.strip().splitlines()]
    digest = load("quick_test").digest()
    assert len(lines) == 1
    for record in lines:
        assert record["status"] == "ok"
        assert record["provenance"]["scenario"] == "quick_test"
        assert record["provenance"]["scenario_digest"] == digest


def test_scenario_run_json_wraps_result_with_provenance(tmp_path,
                                                        capsys):
    import json

    from repro.scenario import load
    out_file = tmp_path / "result.json"
    assert main(["scenario", "run", "quick_test",
                 "--output", str(out_file)]) == 0
    data = json.loads(out_file.read_text())
    scenario = load("quick_test")
    assert data["scenario"]["name"] == "quick_test"
    assert data["scenario"]["digest"] == scenario.digest()
    assert (data["scenario"]["spec_digest"]
            == scenario.compile().digest())
    for trial in data["trials"]:
        assert trial["provenance"]["scenario_digest"] \
            == scenario.digest()
