"""Tests for the command-line interface."""

import pytest

from repro.cli import DEMOS, EXPERIMENTS, build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ACACIA" in out
    assert "experiments" in out


def test_experiments_lists_all(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_overhead_prints_calibrated_totals(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "15 messages" in out
    assert "2914 bytes" in out
    assert "2.58 MB" in out


def test_unknown_experiment_fails_cleanly(capsys):
    assert main(["run-experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_unknown_demo_fails_cleanly(capsys):
    assert main(["demo", "nope"]) == 2
    assert "unknown demo" in capsys.readouterr().err


def test_every_experiment_maps_to_an_existing_bench():
    from pathlib import Path
    bench_dir = Path(__file__).parent.parent / "benchmarks"
    for key, (filename, _) in EXPERIMENTS.items():
        assert (bench_dir / filename).exists(), f"{key} -> {filename}"


def test_every_demo_maps_to_an_existing_example():
    from pathlib import Path
    example_dir = Path(__file__).parent.parent / "examples"
    for name, script in DEMOS.items():
        assert (example_dir / script).exists(), f"{name} -> {script}"


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
