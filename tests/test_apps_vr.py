"""Tests for the VR split-rendering CI application."""

import numpy as np
import pytest

from repro.apps.vr import VRClient, VRRenderServer
from repro.core.mrs import MecRegistrationServer
from repro.core.network import MobileNetwork
from repro.core.service import CIService


def build(edge=True, tick_hz=60.0, max_poses=60, tile_bytes=20_000):
    network = MobileNetwork()
    server = VRRenderServer(network.sim, "vr-render",
                            tile_bytes=tile_bytes)
    if edge:
        network.add_mec_site("mec")
        network.add_server("vr-render", site_name="mec", node=server)
        mrs = MecRegistrationServer(network)
        mrs.register_service(CIService("vr", "vr-arena"))
        mrs.deploy_instance("vr", "vr-render", "mec")
        ue = network.add_ue()
        mrs.request_connectivity(ue, "vr")
    else:
        network.add_server("vr-render", site_name="central", node=server)
        ue = network.add_ue()
        network.route_via_default_bearer(ue, "vr-render")
    client = VRClient(network.sim, ue, server.ip, tick_hz=tick_hz,
                      max_poses=max_poses)
    return network, client, server


def test_edge_vr_meets_20ms_budget_mostly():
    """Pose -> render -> tile at the edge lands in the low tens of ms,
    the CI latency class the paper targets."""
    network, client, server = build(edge=True)
    client.start()
    network.sim.run(until=5.0)
    assert len(client.records) == 60
    median = float(np.median(client.motion_to_photon()))
    assert median < 0.040
    assert client.fraction_within(0.050) > 0.95


def test_cloud_vr_misses_the_budget():
    network, client, server = build(edge=False)
    client.start()
    network.sim.run(until=5.0)
    assert client.records
    median = float(np.median(client.motion_to_photon()))
    # ~70 ms of core RTT alone blows the VR budget
    assert median > 0.08
    assert client.fraction_within(0.050) == 0.0


def test_open_loop_keeps_tick_rate():
    network, client, server = build(edge=True, tick_hz=60.0,
                                    max_poses=120)
    client.start()
    network.sim.run(until=2.5)
    # 120 poses at 60 Hz = exactly 2 seconds of motion
    assert client.poses_sent == 120
    assert server.poses_rendered == 120


def test_gpu_serialisation_under_overload():
    """Ticks arriving faster than the render time queue up at the GPU
    and motion-to-photon grows steadily (the overload signature)."""
    network, client, server = build(edge=True, tick_hz=240.0,
                                    max_poses=200)
    server.render_time = 0.012          # 83 fps GPU vs 240 Hz ticks
    client.start()
    network.sim.run(until=4.0)
    samples = client.motion_to_photon()
    assert len(samples) > 100
    # latency at the end of the run is far above the start
    assert np.mean(samples[-20:]) > 3 * np.mean(samples[:20])


def test_stop_halts_poses():
    network, client, server = build(edge=True, max_poses=None)
    client.start()
    network.sim.run(until=0.5)
    client.stop()
    sent = client.poses_sent
    network.sim.run(until=2.0)
    assert client.poses_sent == sent


def test_big_tiles_are_downlink_limited():
    """Tile size pushes motion-to-photon up through the radio downlink
    serialization (12 Mbps): VR needs both latency and bandwidth."""
    network_small, client_small, _ = build(edge=True, tile_bytes=8_000,
                                           max_poses=40, tick_hz=30.0)
    client_small.start()
    network_small.sim.run(until=3.0)
    network_big, client_big, _ = build(edge=True, tile_bytes=60_000,
                                       max_poses=40, tick_hz=30.0)
    client_big.start()
    network_big.sim.run(until=5.0)
    small = float(np.median(client_small.motion_to_photon()))
    big = float(np.median(client_big.motion_to_photon()))
    # 52 KB more tile over the 30 Mbps downlink ~ 14 ms of serialization
    assert big > small + 0.010


def test_invalid_tick_rate():
    network = MobileNetwork()
    ue = network.add_ue()
    with pytest.raises(ValueError):
        VRClient(network.sim, ue, "1.2.3.4", tick_hz=0.0)
