"""The declarative scenario layer: schema, documents, loader, runtime.

Covers the published-schema validator's path-qualified errors, the
document cross-checks and digest, catalogue loading (including the
gated YAML path), compilation into experiment specs, the generic
workload's interpretation of every section, and determinism of a
full scenario run.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.scenario import (CATALOGUE_DIR, GENERIC_WORKLOAD, SCHEMA,
                            Scenario, ScenarioError,
                            ScenarioValidationError, canonical_json,
                            catalogue, load, load_path, parse_text,
                            validate)

ROOT = Path(__file__).parent.parent


def minimal(**extra):
    data = {
        "scenario": {"name": "t", "version": 1, "description": "d"},
        "experiment": {"workload": "scenario", "seeds": [1]},
    }
    data.update(extra)
    return data


# -- schema validation -------------------------------------------------------

def test_minimal_document_validates():
    validate(minimal())


def test_missing_required_section():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate({"scenario": {"name": "t", "version": 1,
                               "description": "d"}})
    assert "experiment" in str(excinfo.value)


def test_unknown_top_level_key_lists_valid_ones():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate(minimal(topologie={}))
    message = str(excinfo.value)
    assert "topologie" in message and "topology" in message


def test_bad_nested_value_is_path_qualified():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate(minimal(topology={"sites": 0}))
    assert excinfo.value.path == "topology.sites"


def test_bad_array_entry_is_index_qualified():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate(minimal(faults=[
            {"type": "link_down", "link": "a"},
            {"type": "gremlin"}]))
    assert excinfo.value.path == "faults[1].type"


def test_enum_violation_names_the_choices():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate(minimal(traffic={"ci": {"path": "sideways"}}))
    assert excinfo.value.path == "traffic.ci.path"
    assert "edge" in str(excinfo.value)


def test_bad_scenario_name_pattern():
    bad = minimal()
    bad["scenario"]["name"] = "no spaces allowed"
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate(bad)
    assert excinfo.value.path == "scenario.name"


def test_type_mismatch_reports_both_types():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate(minimal(run={"warmup": "soon"}))
    message = str(excinfo.value)
    assert "number" in message and "string" in message


def test_network_properties_are_generated_from_the_dataclasses():
    from dataclasses import fields
    from repro.core.config import NetworkConfig
    props = SCHEMA["properties"]["network"]["properties"]
    expected = {f.name for f in fields(NetworkConfig)} - {"seed"}
    assert set(props) == expected


# -- document cross-checks ---------------------------------------------------

def test_network_overlay_is_cross_validated():
    with pytest.raises(ScenarioValidationError) as excinfo:
        Scenario.from_dict(minimal(
            network={"continuity": {"policy": "teleport"}}))
    assert "network.continuity" in str(excinfo.value)


def test_faults_are_cross_validated_per_type():
    with pytest.raises(ScenarioValidationError) as excinfo:
        Scenario.from_dict(minimal(faults=[
            {"type": "channel_loss", "rait": 0.5}]))
    assert "faults[0]" in str(excinfo.value)
    assert "rait" in str(excinfo.value)


def test_interpreted_sections_require_the_generic_workload():
    doc = minimal(topology={"sites": 2})
    doc["experiment"]["workload"] = "ping"
    with pytest.raises(ScenarioValidationError) as excinfo:
        Scenario.from_dict(doc)
    assert "ping" in str(excinfo.value)


def test_empty_sweep_values_are_rejected():
    doc = minimal()
    doc["experiment"]["sweep"] = {"n_ues": []}
    with pytest.raises(ScenarioValidationError) as excinfo:
        Scenario.from_dict(doc)
    assert "experiment.sweep.n_ues" in str(excinfo.value)


def test_digest_is_stable_and_order_insensitive():
    a = Scenario.from_dict(minimal(topology={"sites": 2,
                                             "enbs_per_site": 1}))
    b = Scenario.from_dict(minimal(topology={"enbs_per_site": 1,
                                             "sites": 2}))
    assert a.digest() == b.digest()
    assert len(a.digest()) == 64
    c = Scenario.from_dict(minimal(topology={"sites": 3,
                                             "enbs_per_site": 1}))
    assert c.digest() != a.digest()


def test_document_is_deep_copied_in_and_out():
    raw = minimal(topology={"sites": 2})
    scenario = Scenario.from_dict(raw)
    raw["topology"]["sites"] = 99
    assert scenario.document["topology"]["sites"] == 2
    out = scenario.to_dict()
    out["topology"]["sites"] = 7
    assert scenario.document["topology"]["sites"] == 2


def test_compile_passes_sections_as_params():
    scenario = Scenario.from_dict(minimal(
        topology={"sites": 2}, run={"warmup": 1.0}))
    spec = scenario.compile()
    assert spec.workload == GENERIC_WORKLOAD
    params = dict(spec.params)
    assert params["topology"] == {"sites": 2}
    assert params["run"] == {"warmup": 1.0}


def test_compile_non_generic_keeps_only_experiment_params():
    doc = minimal()
    doc["experiment"] = {"workload": "ping", "seeds": [3],
                         "sweep": {"system": ["acacia"]},
                         "params": {"count": 2}}
    spec = Scenario.from_dict(doc).compile()
    assert spec.workload == "ping"
    assert dict(spec.params) == {"count": 2}
    assert spec.sweep == (("system", ("acacia",)),)


# -- loader ------------------------------------------------------------------

def test_load_path_enforces_stem_matches_name(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps(minimal()))
    with pytest.raises(ScenarioError) as excinfo:
        load_path(path)
    assert "stem" in str(excinfo.value)


def test_load_resolves_catalogue_then_path(tmp_path):
    doc = minimal()
    doc["scenario"]["name"] = "mine"
    path = tmp_path / "mine.json"
    path.write_text(json.dumps(doc))
    assert load(str(path)).name == "mine"
    with pytest.raises(ScenarioError) as excinfo:
        load("no_such_scenario")
    assert "quick_test" in str(excinfo.value)


def test_parse_text_rejects_bad_json():
    with pytest.raises(ScenarioError):
        parse_text("{not json", "json")


def test_yaml_is_gated_not_required(monkeypatch):
    monkeypatch.setitem(sys.modules, "yaml", None)
    # with the import poisoned, the error must explain the gate
    monkeypatch.delitem(sys.modules, "yaml")
    monkeypatch.setattr("builtins.__import__", _no_yaml_import)
    with pytest.raises(ScenarioError) as excinfo:
        parse_text("a: 1", "yaml")
    assert "PyYAML" in str(excinfo.value)


_real_import = __import__


def _no_yaml_import(name, *args, **kwargs):
    if name == "yaml":
        raise ImportError("No module named 'yaml'")
    return _real_import(name, *args, **kwargs)


# -- the shipped catalogue ---------------------------------------------------

def test_catalogue_is_complete_and_valid():
    entries = catalogue()
    assert CATALOGUE_DIR.is_dir()
    scenarios = {name: load(name) for name in entries}
    non_preset = [s for s in scenarios.values()
                  if "preset" not in s.tags]
    assert len(non_preset) >= 12
    for scenario in scenarios.values():
        scenario.compile()      # compiles without error


def test_schema_export_is_not_stale():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_scenario_schema
    finally:
        sys.path.pop(0)
    published = (ROOT / "docs" / "scenario.schema.json").read_text()
    assert published == gen_scenario_schema.render(), (
        "docs/scenario.schema.json is stale; regenerate with "
        "`PYTHONPATH=src python tools/gen_scenario_schema.py`")


# -- the generic workload ----------------------------------------------------

def run_document(doc):
    from repro.exp.runner import ExperimentRunner
    result = ExperimentRunner(Scenario.from_dict(doc).compile()).run()
    assert result.ok, [t.error for t in result.failures()]
    return result


def test_generic_workload_edge_sessions_and_mobility():
    doc = minimal(
        topology={"sites": 2, "enbs_per_site": 1},
        traffic={"ci": {"n_ues": 3, "path": "edge",
                        "ping_interval": 0.2}},
        mobility={"speed": 50.0, "stagger": 0.1},
        run={"warmup": 1.0, "tail": 3.0})
    metrics = run_document(doc).trials[0].metrics
    assert metrics["attached"] == 3
    assert metrics["sessions_alive"] == 3
    assert metrics["handovers"] >= 3
    assert metrics["relocations_completed"] >= 1
    assert metrics["pings_answered"] > 0
    assert metrics["pings_lost"] == 0


def test_generic_workload_central_path_has_no_sessions():
    doc = minimal(
        traffic={"ci": {"n_ues": 2, "path": "central",
                        "ping_interval": 0.5}},
        run={"duration": 3.0})
    metrics = run_document(doc).trials[0].metrics
    assert metrics["path"] == "central"
    assert metrics["sessions_alive"] == 0
    assert metrics["pings_answered"] > 0


def test_generic_workload_arms_faults():
    doc = minimal(
        topology={"sites": 1, "enbs_per_site": 1},
        traffic={"ci": {"n_ues": 2, "ping_interval": 0.2}},
        faults=[{"type": "channel_loss", "channel": "*",
                 "rate": 0.2, "at": 0.0, "until": 2.0}],
        run={"warmup": 5.0, "duration": 3.0})
    metrics = run_document(doc).trials[0].metrics
    assert metrics["faults_injected"] == 1
    assert metrics["faults_cleared"] == 1


def test_sweep_axes_override_document_scalars():
    doc = minimal(
        traffic={"ci": {"n_ues": 2, "ping_interval": 0.2}},
        run={"duration": 2.0})
    doc["experiment"]["sweep"] = {"n_ues": [1, 3]}
    result = run_document(doc)
    assert [t.metrics["n_ues"] for t in result.trials] == [1, 3]
    assert [t.metrics["attached"] for t in result.trials] == [1, 3]


def test_unknown_param_fails_loudly():
    from repro.exp.spec import TrialSpec
    from repro.scenario.runtime import execute
    trial = TrialSpec(experiment="t", index=0, workload="scenario",
                      base_seed=0, seed=0,
                      params=(("n_uesx", 3),))
    with pytest.raises(ValueError) as excinfo:
        execute(trial)
    assert "n_uesx" in str(excinfo.value)


def test_scenario_run_is_deterministic():
    from repro.exp.runner import ExperimentRunner
    spec = load("quick_test").compile()
    first = ExperimentRunner(spec).run().canonical_json()
    second = ExperimentRunner(spec).run().canonical_json()
    assert first == second


def test_canonical_json_is_compact_and_sorted():
    text = canonical_json({"b": 1, "a": [1.5, None]})
    assert text == '{"a":[1.5,null],"b":1}'
