"""Fluid data-plane tests: identity, equivalence, faults, accounting.

The fluid-bg data plane must be a drop-in for per-packet background
load: with it *off* (the default) nothing changes byte-for-byte; with
it *on*, foreground CI traffic must land in the same RTT regimes the
per-packet plane produces, at a small fraction of the event count,
and fluid byte drops must surface through the normal
``PacketDropped``/``drop_counts`` taxonomy.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, SimConfig
from repro.core.network import MobileNetwork, Pinger
from repro.epc.entities import ServicePolicy
from repro.exp.spec import TrialSpec
from repro.exp.workloads import run_ping
from repro.faults import FaultInjector, FaultPlan, LinkFlap
from repro.sim.context import SimContext
from repro.sim.engine import Simulator
from repro.sim.fluid import FluidDomain, FluidFlow, FluidLink, FluidQueue
from repro.sim.hooks import PacketDropped
from repro.sim.link import Link
from repro.sim.monitor import LatencyProbe, ThroughputMeter
from repro.sim.node import Node, PacketSink
from repro.sim.packet import Packet
from repro.sim.traffic import GreedySource, PoissonSource


def ping_trial(seed=17, **params):
    merged = {"system": "conventional", "rtt_ms": 70, "count": 4,
              "interval": 0.4, "warmup": 2.0, "tail": 3.0}
    merged.update(params)
    return TrialSpec(experiment="test-fluid", index=0, workload="ping",
                     base_seed=seed, seed=seed,
                     params=tuple(merged.items()))


# ---------------------------------------------------------------------------
# mode off: plumbing is a byte-identical no-op
# ---------------------------------------------------------------------------

def test_packet_mode_is_unchanged_by_the_plumbing():
    """data_plane="packet" (explicit or defaulted) gives identical
    results: the fluid wiring must be invisible when off."""
    base = run_ping(ping_trial(bg_mbps=2))
    explicit = run_ping(ping_trial(bg_mbps=2, data_plane="packet"))
    assert base == explicit


def test_fluid_mode_identical_without_background():
    """With zero background there are no fluid flows, so fluid-bg mode
    must reproduce packet mode exactly."""
    packet = run_ping(ping_trial(bg_mbps=0))
    fluid = run_ping(ping_trial(bg_mbps=0, data_plane="fluid-bg"))
    assert packet == fluid


def test_unknown_data_plane_rejected():
    with pytest.raises(ValueError, match="unknown data plane"):
        SimConfig(data_plane="quantum")


# ---------------------------------------------------------------------------
# fig 3(g): fluid vs packet equivalence across the load sweep
# ---------------------------------------------------------------------------

def _sweep_cell(bg_mbps, data_plane, system="conventional"):
    out = run_ping(ping_trial(bg_mbps=bg_mbps, data_plane=data_plane,
                              system=system))
    return out["median_rtt_ms"], out["answered"]


def test_fig3g_equivalence_below_saturation():
    """Under the CPU knee (80 of ~90 Mbit/s) both planes sit near the
    unloaded 70 ms RTT."""
    packet, _ = _sweep_cell(80, "packet")
    fluid, _ = _sweep_cell(80, "fluid-bg")
    assert packet < 150.0
    assert fluid < 150.0
    assert 0.25 < fluid / packet < 4.0


def test_fig3g_equivalence_beyond_saturation():
    """Past the knee both planes explode into the queue-bloat regime
    and agree within a small factor."""
    packet, answered_p = _sweep_cell(100, "packet")
    fluid, answered_f = _sweep_cell(100, "fluid-bg")
    assert packet > 300.0
    assert fluid > 300.0
    assert 0.25 < fluid / packet < 4.0
    assert answered_f == answered_p


def test_fig10b_acacia_isolated_from_fluid_background():
    """The MEC path doesn't share the central gateways: heavy fluid
    background must leave the ACACIA RTT at its ~14 ms floor, exactly
    as the per-packet plane shows."""
    packet, _ = _sweep_cell(80, "packet", system="acacia")
    fluid, _ = _sweep_cell(100, "fluid-bg", system="acacia")
    assert fluid < 20.0
    assert abs(fluid - packet) < 5.0


def test_fig3g_event_count_reduction():
    """The tentpole target: >= 20x fewer events on a background-heavy
    cell (the committed BENCH_scale.json gates the full sweep)."""
    def events(data_plane):
        from repro.core.config import NetworkConfig, SimConfig
        config = NetworkConfig(seed=17,
                               sim=SimConfig(data_plane=data_plane))
        network = MobileNetwork(config)
        ue = network.add_ue()
        network.add_background_load(rate=40e6).start()
        pinger = Pinger(network, ue, "internet", size=1000, interval=0.4)
        pinger.run(count=4, start=1.0)
        network.sim.run(until=4.0)
        pinger.close()
        return network.sim.events_run

    assert events("packet") / events("fluid-bg") >= 20.0


# ---------------------------------------------------------------------------
# faults: a flapping fluid link re-solves rates and books drops
# ---------------------------------------------------------------------------

def test_link_flap_over_fluid_background():
    network = MobileNetwork(NetworkConfig(
        seed=3, sim=SimConfig(data_plane="fluid-bg")))
    flow = network.add_background_load(rate=40e6).start()
    FaultInjector(network, FaultPlan((
        LinkFlap(link="s5.central", at=2.0, period=2.0, duty=0.5,
                 until=8.0),))).arm()
    network.sim.run(until=10.0)
    flow.sync()

    s5 = network.links["s5.central"]
    assert isinstance(s5, FluidLink)
    assert s5.up
    # 3 outage seconds out of 10: roughly 30% of the offered bytes die
    # on the down link, the rest are delivered
    offered = flow.bytes_offered
    assert offered == pytest.approx(40e6 / 8 * 10.0, rel=0.01)
    assert 0.2 * offered < flow.bytes_dropped < 0.4 * offered
    assert flow.bytes_delivered == pytest.approx(
        offered - flow.bytes_dropped, rel=0.01)
    # the aggregate drops surfaced in the packet-drop taxonomy
    assert s5.drop_counts.get("link-down", 0) > 0
    # back up: the re-solved delivery rate recovered to the full rate
    assert flow.delivered_rate == pytest.approx(40e6, rel=0.01)


def test_fluid_rates_resolve_on_link_state_change():
    sim = Simulator()
    a, b = Node(sim, "a", ip="10.0.0.1"), Node(sim, "b", ip="10.0.0.2")
    link = FluidLink(sim, "l", bandwidth=10e6, delay=0.001,
                     queue_bytes=100_000)
    a.attach("out", link)
    b.attach("in", link)
    domain = FluidDomain(sim)
    flow = FluidFlow(domain, "f", src_ip=a.ip, dst_ip=b.ip, rate=4e6)
    flow.add_link(link, a)
    flow.start()
    sim.run(until=1.0)
    assert flow.delivered_rate == pytest.approx(4e6)
    assert domain.resolves == 1
    link.set_up(False)
    assert flow.delivered_rate == 0.0
    sim.run(until=2.0)
    link.set_up(True)
    assert flow.delivered_rate == pytest.approx(4e6)
    flow.sync()
    # the down second's bytes died, the rest got through
    assert flow.bytes_dropped == pytest.approx(4e6 / 8, rel=0.01)


# ---------------------------------------------------------------------------
# drop taxonomy: fluid byte drops become aggregate PacketDropped events
# ---------------------------------------------------------------------------

def overloaded_link(rate=2e6, bandwidth=1e6, queue_bytes=50_000):
    sim = Simulator()
    a, b = Node(sim, "a", ip="10.0.0.1"), Node(sim, "b", ip="10.0.0.2")
    link = FluidLink(sim, "l", bandwidth=bandwidth, delay=0.001,
                     queue_bytes=queue_bytes)
    a.attach("out", link)
    b.attach("in", link)
    domain = FluidDomain(sim)
    flow = FluidFlow(domain, "f", src_ip=a.ip, dst_ip=b.ip, rate=rate)
    flow.add_link(link, a)
    return sim, link, flow


def test_fluid_overflow_drops_in_taxonomy():
    sim, link, flow = overloaded_link()
    drops = []
    sim.hooks.on(PacketDropped, drops.append)
    flow.start()
    sim.run(until=10.0)
    flow.sync()

    # 2 Mbit/s into 1 Mbit/s: after the 0.4 s buffer fill, half the
    # offered bytes overflow
    assert flow.bytes_dropped == pytest.approx(
        (10.0 - 0.4) * 1e6 / 8, rel=0.02)
    booked = link.drop_counts.get("queue-overflow", 0)
    assert booked * flow.packet_size == pytest.approx(
        flow.bytes_dropped, rel=0.02)
    assert drops, "aggregate PacketDropped events must be emitted"
    event = drops[0]
    assert event.reason == "queue-overflow"
    assert event.link is link
    assert event.packet.flow_id == flow.flow_id
    assert event.packet.meta["fluid_packets"] >= 1
    assert sum(e.packet.meta["fluid_packets"] for e in drops) == booked


def test_fluid_drop_events_weighted_in_latency_probe():
    sim, link, flow = overloaded_link()
    probe = LatencyProbe(sim).watch_drops()
    flow.start()
    sim.run(until=10.0)
    booked = link.drop_counts["queue-overflow"]
    assert probe.lost == booked
    assert probe.lost_reasons["queue-overflow"] == booked
    assert probe.flows[flow.flow_id].drops == booked


def test_per_packet_traffic_respects_fluid_occupancy():
    """A packet arriving at a fluid-saturated link shares its buffer
    with the fluid backlog: it is either delayed by the residual
    service or dropped at the full buffer."""
    sim, link, flow = overloaded_link()
    flow.start()
    sim.run(until=5.0)       # buffer is fluid-full by now
    a = link._endpoints[0]
    delivered = []
    sim.hooks.on(PacketDropped, delivered.append)
    link.transmit(a, Packet(src="10.0.0.1", dst="10.0.0.2", size=1400))
    assert delivered and delivered[0].reason == "queue-overflow"


def test_packet_wait_from_fluid_backlog():
    sim = Simulator()
    queue = FluidQueue(sim, capacity=1e6, buffer=8e6)   # units: bits
    domain = FluidDomain(sim)
    domain.register_queue(queue)
    flow = FluidFlow(domain, "f", src_ip="a", dst_ip="b", rate=2e6)
    entry = queue.attach(flow, scale=8.0, priority=9)
    flow._hops.append((queue, entry, 0.0))
    flow.start()
    sim.run(until=2.0)
    queue.advance(sim.now)
    # 2 s at +1 Mbit/s net: 2 Mbit of backlog
    assert queue.backlog == pytest.approx(2e6, rel=1e-6)
    # a better-priority packet (lower number) is not blocked by the
    # best-effort fluid; a FIFO arrival waits the full drain time
    assert queue.packet_wait(sim.now, priority=7) == pytest.approx(
        0.0, abs=1e-3)
    # FIFO arrival waits at least the backlog drain time (2 s), plus a
    # bounded stationary-queueing term for the overloaded server
    fifo_wait = queue.packet_wait(sim.now, priority=None)
    assert 2.0 <= fifo_wait <= 2.6
    # an equal-or-worse priority arrival is starved by the saturating
    # fluid: capped at the full-buffer drain time
    assert queue.packet_wait(sim.now, priority=100) == pytest.approx(
        8.0, rel=1e-6)


def test_fluid_queue_validation():
    sim = Simulator()
    with pytest.raises(ValueError, match="capacity"):
        FluidQueue(sim, capacity=0.0)
    domain = FluidDomain(sim)
    with pytest.raises(ValueError, match="rate"):
        FluidFlow(domain, "f", src_ip="a", dst_ip="b", rate=0.0)
    flow = FluidFlow(domain, "f", src_ip="a", dst_ip="b", rate=1.0)
    with pytest.raises(ValueError, match="rate"):
        flow.set_rate(-1.0)


# ---------------------------------------------------------------------------
# monitors: folding fluid counters into probe statistics
# ---------------------------------------------------------------------------

def test_throughput_meter_folds_fluid_series():
    sim = Simulator()
    a = Node(sim, "a", ip="10.0.0.1")
    b = Node(sim, "b", ip="10.0.0.2")
    link = FluidLink(sim, "l", bandwidth=10e6, delay=0.001,
                     queue_bytes=100_000)
    a.attach("out", link)
    b.attach("in", link)
    domain = FluidDomain(sim)
    flow = FluidFlow(domain, "f", src_ip=a.ip, dst_ip=b.ip, rate=4e6)
    flow.add_link(link, a)
    flow.start()
    sim.run(until=4.0)

    meter = ThroughputMeter(sim, window=1.0)
    meter.fold_fluid(flow)
    assert meter.total_bytes == pytest.approx(4e6 / 8 * 4.0, rel=0.01)
    times, bps = meter.series()
    assert len(bps) == 4
    assert bps[1] == pytest.approx(4e6, rel=0.01)
    assert meter.mean_throughput(skip_first=1) == pytest.approx(
        4e6, rel=0.01)
    # folding twice must not double-count
    meter.fold_fluid(flow)
    assert meter.total_bytes == pytest.approx(4e6 / 8 * 4.0, rel=0.01)
    # a later fold adds only the delta
    sim.run(until=6.0)
    meter.fold_fluid(flow)
    assert meter.total_bytes == pytest.approx(4e6 / 8 * 6.0, rel=0.01)


def test_latency_probe_folds_fluid_counters():
    sim = Simulator()
    domain = FluidDomain(sim)
    queue = FluidQueue(sim, capacity=1e9)
    domain.register_queue(queue)
    flow = FluidFlow(domain, "f", src_ip="a", dst_ip="b", rate=8e6)
    entry = queue.attach(flow, scale=8.0)
    flow._hops.append((queue, entry, 0.0))
    flow.start()
    sim.run(until=3.0)

    probe = LatencyProbe(sim)
    probe.fold_fluid(flow)
    stats = probe.flows[flow.flow_id]
    # 1 MB/s for 3 s of 1400 B packets
    assert stats.packets == int(3e6 // 1400)
    assert stats.bytes == pytest.approx(3e6, rel=0.01)
    probe.fold_fluid(flow)      # idempotent
    assert stats.packets == int(3e6 // 1400)


# ---------------------------------------------------------------------------
# RNG streams: sources draw from named SimContext streams
# ---------------------------------------------------------------------------

def test_poisson_source_uses_named_context_stream():
    def arrivals(source_ctx):
        ctx = SimContext(7)
        sim = ctx.sim
        sink = PacketSink(sim, "sink", ip="10.0.0.2")
        link = Link(sim, "l", bandwidth=1e9, delay=0.0)
        src = PoissonSource(sim, "src", dst=sink.ip, rate=8e6, ip="10.0.0.1",
                            **source_ctx(ctx))
        src.attach("out", link)
        sink.attach("in", link)
        src.start()
        sim.run(until=0.5)
        return src.packets_sent

    by_ctx = arrivals(lambda ctx: {"ctx": ctx})
    by_stream = arrivals(lambda ctx: {"ctx": ctx, "stream": "traffic.src"})
    by_rng = arrivals(lambda ctx: {"rng": ctx.rng("traffic.src")})
    assert by_ctx == by_stream == by_rng > 0


def test_poisson_source_rng_validation():
    ctx = SimContext(7)
    sim = ctx.sim
    with pytest.raises(ValueError, match="ctx"):
        PoissonSource(sim, "src", dst="d", rate=8e6)
    with pytest.raises(ValueError, match="not both"):
        PoissonSource(sim, "src", dst="d", rate=8e6, ctx=ctx,
                      rng=np.random.default_rng(0))
    with pytest.raises(ValueError, match="stream requires"):
        PoissonSource(sim, "src", dst="d", rate=8e6,
                      rng=np.random.default_rng(0), stream="traffic.x")


def test_greedy_source_deterministic_without_jitter():
    ctx = SimContext(7)
    sim = ctx.sim
    src = GreedySource(sim, "g", dst="d", ctx=ctx)
    assert src.rng is ctx.rng("traffic.g")
    with pytest.raises(ValueError, match="ack_jitter"):
        GreedySource(sim, "g2", dst="d", ack_jitter=0.001)
    with pytest.raises(ValueError, match="non-negative"):
        GreedySource(sim, "g3", dst="d", ctx=ctx, ack_jitter=-1.0)


def test_network_background_stream_names_unchanged():
    """The packet-mode bg source must keep drawing from net.bg.<i>:
    that stream identity is what the preset byte-identity gate pins."""
    network = MobileNetwork(NetworkConfig(seed=5))
    source = network.add_background_load(rate=1e6)
    assert source.rng is network.ctx.rng("net.bg.1")


# ---------------------------------------------------------------------------
# lifecycle: removal and re-addition in fluid mode
# ---------------------------------------------------------------------------

def test_fluid_background_add_remove():
    network = MobileNetwork(NetworkConfig(
        seed=11, sim=SimConfig(data_plane="fluid-bg")))
    flow = network.add_background_load(rate=20e6).start()
    assert network.background_loads() == ("bg1",)
    network.sim.run(until=1.0)
    network.remove_background_load(flow)
    assert network.background_loads() == ()
    assert not flow.active
    network.sim.run(until=2.0)
    flow.sync()
    assert flow.bytes_offered == pytest.approx(20e6 / 8, rel=0.01)
    # a second load gets a fresh name and runs independently
    flow2 = network.add_background_load(rate=10e6).start()
    assert flow2.name == "bg2"
    network.sim.run(until=3.0)
    flow2.sync()
    assert flow2.bytes_offered == pytest.approx(10e6 / 8, rel=0.01)
