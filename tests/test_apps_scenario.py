"""Tests for the store floor geometry and walk paths."""

import math

import pytest

from repro.apps.scenario import (FLOOR_HEIGHT, FLOOR_WIDTH, StoreScenario,
                                 WalkPath, figure6_scenario, store_scenario)


@pytest.fixture()
def scenario():
    return store_scenario()


class TestStoreScenario:
    def test_paper_dimensions(self, scenario):
        """Figure 9(a): 5 sections, 21 sub-sections, 7 landmarks,
        24 checkpoints."""
        assert scenario.n_subsections == 21
        assert len(scenario.sections) == 5
        assert len(scenario.landmarks) == 7
        assert len(scenario.checkpoints) == 24

    def test_every_subsection_has_a_section(self, scenario):
        for subsection in range(scenario.n_subsections):
            assert scenario.section_of_subsection(subsection) in \
                scenario.sections

    def test_subsection_at_and_center_consistent(self, scenario):
        for subsection in range(scenario.n_subsections):
            center = scenario.subsection_center(subsection)
            assert scenario.subsection_at(center) == subsection

    def test_positions_clamped_to_floor(self, scenario):
        assert scenario.subsection_at((-5.0, -5.0)) == 0
        assert scenario.subsection_at((1000.0, 1000.0)) == 20

    def test_invalid_subsection_center(self, scenario):
        with pytest.raises(ValueError):
            scenario.subsection_center(21)

    def test_checkpoints_inside_floor(self, scenario):
        for cp in scenario.checkpoints:
            assert 0 <= cp.position[0] <= FLOOR_WIDTH
            assert 0 <= cp.position[1] <= FLOOR_HEIGHT
            assert cp.subsection == scenario.subsection_at(cp.position)

    def test_checkpoints_cover_all_sections(self, scenario):
        covered = {scenario.section_of_subsection(cp.subsection)
                   for cp in scenario.checkpoints}
        assert covered == set(scenario.sections)

    def test_landmarks_spread_across_sections(self, scenario):
        sections = {scenario.section_of_landmark(name)
                    for name in scenario.landmarks}
        assert len(sections) >= 4

    def test_subsections_near_prunes_to_a_handful_of_cells(self, scenario):
        """Section 7.3 reports 2-6 of 21 sub-sections; our robust
        rectangle-distance rule lands in 3-8 at the checkpoints."""
        counts = [len(scenario.subsections_near(cp.position))
                  for cp in scenario.checkpoints]
        assert all(1 <= c <= 8 for c in counts)     # 1 in floor corners
        assert 2.0 <= sum(counts) / len(counts) <= 6.0

    def test_subsections_near_includes_own_cell(self, scenario):
        for cp in scenario.checkpoints:
            cells = scenario.subsections_near(cp.position)
            assert cp.subsection in cells

    def test_subsections_near_guarantees_radius_coverage(self, scenario):
        """Every object within the radius of an estimate stays in the
        search space: the cell containing any point at distance < r is
        selected."""
        import math
        position = (15.0, 9.0)
        radius = 4.5
        cells = scenario.subsections_near(position, radius=radius)
        for angle in range(0, 360, 30):
            point = (position[0] + (radius - 0.1) * math.cos(
                         math.radians(angle)),
                     position[1] + (radius - 0.1) * math.sin(
                         math.radians(angle)))
            assert scenario.subsection_at(point) in cells

    def test_subsections_near_never_empty(self, scenario):
        cells = scenario.subsections_near((0.1, 0.1), radius=0.0)
        assert cells == [0]


class TestWalkPath:
    def test_endpoints(self):
        walk = WalkPath([(0.0, 0.0), (10.0, 0.0)], speed=2.0)
        assert walk.position_at(0.0) == (0.0, 0.0)
        assert walk.position_at(5.0) == (10.0, 0.0)
        assert walk.position_at(100.0) == (10.0, 0.0)

    def test_interpolation(self):
        walk = WalkPath([(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)], speed=1.0)
        assert walk.position_at(5.0) == (5.0, 0.0)
        x, y = walk.position_at(15.0)
        assert x == pytest.approx(10.0)
        assert y == pytest.approx(5.0)

    def test_duration(self):
        walk = WalkPath([(0.0, 0.0), (30.0, 40.0)], speed=5.0)
        assert walk.duration == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WalkPath([(0.0, 0.0)])
        with pytest.raises(ValueError):
            WalkPath([(0.0, 0.0), (1.0, 0.0)], speed=0.0)


def test_figure6_scenario_shape():
    scenario, walk = figure6_scenario()
    assert len(scenario.landmarks) == 3
    # the paper's Figure 6 trace spans ~550 seconds
    assert 400 <= walk.duration <= 700
    # the walk starts near lm1 and ends near lm3
    start, end = walk.position_at(0), walk.position_at(walk.duration)
    assert math.dist(start, scenario.landmarks["lm1"]) < 5
    assert math.dist(end, scenario.landmarks["lm3"]) < 5
