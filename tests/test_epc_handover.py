"""Tests for multi-eNodeB deployments and X2 handover."""

import numpy as np
import pytest

from repro.core.network import MobileNetwork, Pinger
from repro.epc.entities import ServicePolicy
from repro.sim.packet import Packet


@pytest.fixture()
def network():
    net = MobileNetwork()
    net.add_enb("enb1")
    net.pcrf.configure(ServicePolicy("ar-retail", qci=7))
    net.add_mec_site("mec")
    net.add_server("ar-server", site_name="mec", echo=True)
    return net


class TestMultiEnb:
    def test_two_enbs_wired_to_all_sites(self, network):
        assert set(network.enbs) == {"enb0", "enb1"}
        for site in network.sites.values():
            assert set(site.enb_ports) == {"enb0", "enb1"}
            assert set(site.sgw_dl_ports) == {"enb0", "enb1"}

    def test_duplicate_enb_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_enb("enb0")

    def test_ue_attaches_via_named_enb(self, network):
        ue = network.add_ue(enb_name="enb1")
        assert network.mme.context(ue.imsi).enb.name == "enb1"
        replies = []
        ue.on_downlink = replies.append
        internet = network.servers["internet"]
        ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                           created_at=network.sim.now))
        network.sim.run(until=1.0)
        assert len(replies) == 1

    def test_unknown_site_link_raises(self, network):
        site = network.sgwc.site("central")
        with pytest.raises(KeyError, match="S1 link"):
            site.enb_port("enb9")


class TestHandover:
    def test_handover_moves_mme_context(self, network):
        ue = network.add_ue()
        network.handover(ue, "enb1")
        assert network.mme.context(ue.imsi).enb.name == "enb1"

    def test_handover_noop_for_same_cell(self, network):
        ue = network.add_ue()
        result = network.handover(ue, "enb0")
        assert result.message_count == 0

    def test_handover_requires_connected_ue(self, network):
        ue = network.add_ue()
        network.control_plane.release_to_idle(ue)
        with pytest.raises(RuntimeError, match="idle"):
            network.handover(ue, "enb1")

    def test_unknown_target_enb_names_the_cell(self, network):
        ue = network.add_ue()
        with pytest.raises(ValueError,
                           match=r"unknown target eNodeB 'enb9'"):
            network.handover(ue, "enb9")

    def test_unknown_target_lists_known_cells(self, network):
        ue = network.add_ue()
        with pytest.raises(ValueError, match=r"enb0.*enb1"):
            network.handover(ue, "enb7")

    def test_s1_handover_unknown_target_raises(self, network):
        ue = network.add_ue()
        with pytest.raises(ValueError,
                           match=r"unknown target eNodeB 'enb9'"):
            network.s1_handover(ue, "enb9")

    def test_handover_message_mix(self, network):
        ue = network.add_ue()
        result = network.handover(ue, "enb1")
        protocols = {}
        for msg in result.messages:
            protocols[msg.protocol] = protocols.get(msg.protocol, 0) + 1
        assert protocols["X2AP"] == 4
        assert protocols["RRC"] == 2
        assert protocols["SCTP"] == 2       # path switch req/ack
        assert protocols["GTPv2"] == 2      # modify bearer req/resp
        # one delete + one add per bearer at the SGW-U
        assert protocols["OpenFlow"] == 2
        assert 0 < result.elapsed < 0.1

    def test_traffic_flows_after_handover(self, network):
        ue = network.add_ue()
        network.handover(ue, "enb1")
        replies = []
        ue.on_downlink = replies.append
        internet = network.servers["internet"]
        ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                           created_at=network.sim.now))
        network.sim.run(until=1.0)
        assert len(replies) == 1
        # the target eNB carried the traffic, not the source
        assert network.enbs["enb1"].tx_count > 0

    def test_source_enb_state_cleaned_up(self, network):
        ue = network.add_ue()
        source = network.enbs["enb0"]
        network.handover(ue, "enb1")
        assert ue.ip not in source.radio_ports
        assert all(key[0] != ue.ip for key in source.ul_map)
        assert all(ip != ue.ip for ip in source.dl_map.values())

    def test_mec_bearer_survives_handover(self, network):
        """The SGW anchor keeps the dedicated bearer on its MEC site."""
        ue = network.add_ue()
        network.create_mec_bearer(ue, "ar-server")
        network.handover(ue, "enb1")
        dedicated = [b for b in ue.bearers if not b.default][0]
        assert dedicated.gateway_site == "mec"
        pinger = Pinger(network, ue, "ar-server", interval=0.1)
        pinger.run(count=10, start=network.sim.now)
        network.sim.run(until=network.sim.now + 3.0)
        assert len(pinger.rtts) == 10
        assert float(np.percentile(pinger.rtts, 95)) < 0.016

    def test_handover_back_and_forth(self, network):
        ue = network.add_ue()
        network.handover(ue, "enb1")
        network.handover(ue, "enb0")
        assert network.mme.context(ue.imsi).enb.name == "enb0"
        replies = []
        ue.on_downlink = replies.append
        internet = network.servers["internet"]
        ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                           created_at=network.sim.now))
        network.sim.run(until=network.sim.now + 1.0)
        assert len(replies) == 1

    def test_downlink_rerouted_to_target(self, network):
        """Packets sent by the server after handover reach the UE via
        the new SGW-U downlink rule."""
        ue = network.add_ue()
        network.create_mec_bearer(ue, "ar-server")
        server = network.servers["ar-server"]
        network.handover(ue, "enb1")
        replies = []
        ue.on_downlink = replies.append
        packet = Packet(src=server.ip, dst=ue.ip, size=200,
                        created_at=network.sim.now)
        server.send("net", packet)
        network.sim.run(until=network.sim.now + 1.0)
        assert len(replies) == 1


class TestS1Handover:
    def test_s1_handover_moves_context_and_traffic(self, network):
        ue = network.add_ue()
        result = network.s1_handover(ue, "enb1")
        assert result.name == "s1-handover"
        assert network.mme.context(ue.imsi).enb.name == "enb1"
        replies = []
        ue.on_downlink = replies.append
        internet = network.servers["internet"]
        ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                           created_at=network.sim.now))
        network.sim.run(until=1.0)
        assert len(replies) == 1

    def test_s1_costs_more_signalling_than_x2(self, network):
        ue1 = network.add_ue()
        ue2 = network.add_ue()
        x2 = network.handover(ue1, "enb1")
        s1 = network.s1_handover(ue2, "enb1")
        assert s1.message_count > x2.message_count
        assert s1.byte_count > x2.byte_count
        # both ways, MME coordination replaces the X2 messages
        assert all(msg.protocol != "X2AP" for msg in s1.messages)

    def test_s1_noop_and_idle_guard(self, network):
        ue = network.add_ue()
        assert network.s1_handover(ue, "enb0").message_count == 0
        network.control_plane.release_to_idle(ue)
        with pytest.raises(RuntimeError):
            network.s1_handover(ue, "enb1")

    def test_mec_bearer_survives_s1_handover(self, network):
        ue = network.add_ue()
        network.create_mec_bearer(ue, "ar-server")
        network.s1_handover(ue, "enb1")
        pinger = Pinger(network, ue, "ar-server", interval=0.1)
        pinger.run(count=8, start=network.sim.now)
        network.sim.run(until=network.sim.now + 2.0)
        assert len(pinger.rtts) == 8
