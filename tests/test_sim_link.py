"""Unit tests for links: serialization, propagation, queueing, QoS."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node, PacketSink
from repro.sim.packet import Packet


def wire(sim, bandwidth=1e6, delay=0.01, **kw):
    src = Node(sim, "src", ip="10.0.0.1")
    sink = PacketSink(sim, "dst", ip="10.0.0.2")
    link = Link(sim, "l0", bandwidth=bandwidth, delay=delay, **kw)
    src.attach("out", link)
    sink.attach("in", link)
    return src, sink, link


def pkt(size=1000, **kw):
    defaults = dict(src="10.0.0.1", dst="10.0.0.2", size=size)
    defaults.update(kw)
    return Packet(**defaults)


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    src, sink, _ = wire(sim, bandwidth=1e6, delay=0.01)
    src.send("out", pkt(size=1000))  # 8000 bits / 1e6 bps = 8 ms
    sim.run()
    assert sink.arrival_times == [pytest.approx(0.018)]


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    src, sink, _ = wire(sim, bandwidth=1e6, delay=0.0)
    src.send("out", pkt())
    src.send("out", pkt())
    sim.run()
    assert sink.arrival_times == [pytest.approx(0.008), pytest.approx(0.016)]


def test_queue_overflow_drops_tail():
    sim = Simulator()
    src, sink, link = wire(sim, bandwidth=1e6, delay=0.0, queue_bytes=2500)
    for _ in range(5):
        src.send("out", pkt(size=1000))
    sim.run()
    # first packet starts transmitting immediately; at most 2 more fit in
    # the 2500-byte queue, rest are dropped
    assert len(sink.received) == 3
    assert link.stats(src)["drops"] == 2


def test_duplex_directions_are_independent():
    sim = Simulator()
    a = PacketSink(sim, "a", ip="10.0.0.1")
    b = PacketSink(sim, "b", ip="10.0.0.2")
    link = Link(sim, "l", bandwidth=1e6, delay=0.001)
    a.attach("p", link)
    b.attach("p", link)
    a.send("p", pkt(src="10.0.0.1", dst="10.0.0.2"))
    b.send("p", pkt(src="10.0.0.2", dst="10.0.0.1"))
    sim.run()
    assert len(a.received) == 1
    assert len(b.received) == 1


def test_third_endpoint_rejected():
    sim = Simulator()
    link = Link(sim, "l", bandwidth=1e6, delay=0.0)
    Node(sim, "a").attach("p", link)
    Node(sim, "b").attach("p", link)
    with pytest.raises(ValueError):
        Node(sim, "c").attach("p", link)


def test_transmit_from_unattached_node_rejected():
    sim = Simulator()
    _, _, link = wire(sim)
    stranger = Node(sim, "stranger")
    with pytest.raises(ValueError):
        link.transmit(stranger, pkt())


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, "l", bandwidth=0, delay=0.0)
    with pytest.raises(ValueError):
        Link(sim, "l", bandwidth=1e6, delay=-1.0)


def test_send_via_unknown_port_raises():
    sim = Simulator()
    node = Node(sim, "n")
    with pytest.raises(KeyError):
        node.send("nope", pkt())


def test_qos_priority_queue_reorders_by_qci():
    sim = Simulator()
    src, sink, link = wire(sim, bandwidth=1e5, delay=0.0, qos_priority=True)
    link.set_qci_priority(5, 1)   # high priority
    link.set_qci_priority(9, 9)   # low priority
    # first packet occupies the transmitter; the rest queue up
    src.send("out", pkt(size=1000, qci=9))
    for _ in range(3):
        src.send("out", pkt(size=1000, qci=9))
    src.send("out", pkt(size=1000, qci=5))
    sim.run()
    qcis = [p.qci for p in sink.received]
    assert qcis[0] == 9           # already in flight
    assert qcis[1] == 5           # priority packet jumps the queue
    assert qcis[2:] == [9, 9, 9]


def test_packets_without_qci_are_best_effort():
    sim = Simulator()
    src, sink, link = wire(sim, bandwidth=1e5, delay=0.0, qos_priority=True)
    link.set_qci_priority(5, 1)
    src.send("out", pkt(size=1000))          # occupies transmitter
    src.send("out", pkt(size=1000))          # queued, best effort
    src.send("out", pkt(size=1000, qci=5))   # queued, high priority
    sim.run()
    assert [p.qci for p in sink.received] == [None, 5, None]


def test_echo_sink_returns_packet():
    sim = Simulator()
    src = PacketSink(sim, "src", ip="10.0.0.1")
    echo = PacketSink(sim, "echo", ip="10.0.0.2", echo=True)
    link = Link(sim, "l", bandwidth=1e6, delay=0.005)
    src.attach("p", link)
    echo.attach("p", link)
    src.send("p", pkt())
    sim.run()
    assert len(src.received) == 1
    reply = src.received[0]
    assert reply.src == "10.0.0.2" and reply.dst == "10.0.0.1"
    # RTT = 2 * (serialization + propagation)
    assert sim.now == pytest.approx(2 * (0.008 + 0.005))


def test_link_stats_counts_tx():
    sim = Simulator()
    src, _, link = wire(sim)
    src.send("out", pkt(size=1000))
    sim.run()
    stats = link.stats(src)
    assert stats["tx_packets"] == 1
    assert stats["tx_bytes"] == 1000
    assert stats["queued_bytes"] == 0


def test_asymmetric_bandwidth_per_direction():
    """First-attached endpoint's outbound direction gets `bandwidth`,
    the reverse gets `bandwidth_reverse` (the LTE UL/DL split)."""
    sim = Simulator()
    ue = PacketSink(sim, "ue", ip="10.0.0.1")
    enb = PacketSink(sim, "enb", ip="10.0.0.2")
    link = Link(sim, "radio", bandwidth=1e6, bandwidth_reverse=4e6,
                delay=0.0)
    ue.attach("p", link)
    enb.attach("p", link)
    ue.send("p", pkt(src="10.0.0.1", dst="10.0.0.2", size=1000))
    sim.run()
    uplink_time = enb.arrival_times[0]
    enb.send("p", pkt(src="10.0.0.2", dst="10.0.0.1", size=1000))
    sim.run()
    downlink_time = ue.arrival_times[0] - uplink_time
    assert uplink_time == pytest.approx(0.008)      # 8000 b / 1 Mbps
    assert downlink_time == pytest.approx(0.002)    # 8000 b / 4 Mbps


def test_invalid_reverse_bandwidth_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, "l", bandwidth=1e6, bandwidth_reverse=0.0, delay=0.0)
