"""Tests for the ACACIA core services: registry, MRS, device manager,
localisation manager and the search-space optimizer."""

import numpy as np
import pytest

from repro.apps.scenario import store_scenario
from repro.apps.retail import build_retail_database, landmark_map_for
from repro.core.device_manager import AcaciaDeviceManager, ServiceInfo
from repro.core.localization_manager import LocalizationManager
from repro.core.mrs import MecRegistrationServer
from repro.core.network import MobileNetwork
from repro.core.optimizer import SearchSpaceOptimizer
from repro.core.service import CIServerInstance, CIService, ServiceRegistry
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import DiscoveryMessage
from repro.localization.pathloss import PathLossRegression

NS = ExpressionNamespace()


class TestServiceRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        service = CIService("ar-retail", "acme-retail")
        registry.register(service)
        assert registry.get("ar-retail") is service
        assert registry.by_lte_direct_name("acme-retail") is service
        assert "ar-retail" in registry and len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ServiceRegistry()
        registry.register(CIService("s", "l"))
        with pytest.raises(ValueError):
            registry.register(CIService("s", "l2"))

    def test_unknown_lookups_raise(self):
        registry = ServiceRegistry()
        with pytest.raises(KeyError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.by_lte_direct_name("nope")

    def test_instance_selection_prefers_serving_enb(self):
        service = CIService("s", "l")
        far = CIServerInstance("srv-far", "central", "1.1.1.1",
                               serves_enbs=frozenset({"enb9"}))
        near = CIServerInstance("srv-near", "mec", "2.2.2.2",
                                serves_enbs=frozenset({"enb0"}))
        service.add_instance(far)
        service.add_instance(near)
        assert service.instance_for_enb("enb0") is near
        assert service.instance_for_enb("enb9") is far
        assert service.instance_for_enb("enb7") is far   # first fallback

    def test_no_instances_raises(self):
        with pytest.raises(LookupError):
            CIService("s", "l").instance_for_enb("enb0")

    def test_invalid_qci_rejected(self):
        with pytest.raises(KeyError):
            CIService("s", "l", qci=99)


@pytest.fixture()
def acacia_net():
    network = MobileNetwork()
    network.add_mec_site("mec")
    network.add_server("ar-server", site_name="mec", echo=True)
    mrs = MecRegistrationServer(network)
    mrs.register_service(CIService("ar-retail", "acme-retail"))
    mrs.deploy_instance("ar-retail", "ar-server", "mec")
    ue = network.add_ue()
    return network, mrs, ue


class TestMRS:
    def test_request_creates_dedicated_bearer(self, acacia_net):
        network, mrs, ue = acacia_net
        session = mrs.request_connectivity(ue, "ar-retail")
        assert session.instance.site_name == "mec"
        bearer = ue.bearers.bearers[session.ebi]
        assert not bearer.default
        assert bearer.gateway_site == "mec"

    def test_request_is_idempotent(self, acacia_net):
        """Repeated interest matches do not create extra bearers --
        the control-overhead saving of Section 5.3."""
        network, mrs, ue = acacia_net
        first = mrs.request_connectivity(ue, "ar-retail")
        ledger_size = len(network.ledger)
        second = mrs.request_connectivity(ue, "ar-retail")
        assert first is second
        assert len(network.ledger) == ledger_size
        assert len(ue.bearers) == 2     # default + one dedicated

    def test_release_tears_down(self, acacia_net):
        network, mrs, ue = acacia_net
        session = mrs.request_connectivity(ue, "ar-retail")
        result = mrs.release_connectivity(ue, "ar-retail")
        assert result is not None
        assert session.ebi not in ue.bearers.bearers
        assert mrs.session_for(ue, "ar-retail") is None

    def test_release_without_session_is_noop(self, acacia_net):
        _, mrs, ue = acacia_net
        assert mrs.release_connectivity(ue, "ar-retail") is None

    def test_policy_configured_in_pcrf(self, acacia_net):
        network, mrs, ue = acacia_net
        policy = network.pcrf.policy_for("ar-retail")
        assert policy.qci == 7


class TestDeviceManager:
    def make_manager(self, acacia_net):
        network, mrs, ue = acacia_net
        return network, mrs, ue, AcaciaDeviceManager(ue, mrs)

    def deliver(self, manager, offering="laptops", rx=-70.0):
        message = DiscoveryMessage(
            publisher_id="lm1", service_name="acme-retail",
            code=manager.namespace.code("acme-retail", offering),
            payload=f"section={offering}")
        return manager.modem.receive_broadcast(message, rx, 20.0, 1.0)

    def test_interest_match_triggers_connectivity(self, acacia_net):
        network, mrs, ue, manager = self.make_manager(acacia_net)
        seen, sessions = [], []
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", ["laptops"]),
            on_discovery=seen.append, on_connected=sessions.append)
        self.deliver(manager, "laptops")
        assert len(seen) == 1
        assert len(sessions) == 1
        assert mrs.session_for(ue, "ar-retail") is not None

    def test_non_matching_offering_does_nothing(self, acacia_net):
        network, mrs, ue, manager = self.make_manager(acacia_net)
        seen = []
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", ["laptops"]),
            on_discovery=seen.append)
        self.deliver(manager, "toys")
        assert seen == []
        assert mrs.session_for(ue, "ar-retail") is None

    def test_repeat_matches_connect_once(self, acacia_net):
        network, mrs, ue, manager = self.make_manager(acacia_net)
        sessions = []
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", ["laptops"]),
            on_discovery=lambda o: None, on_connected=sessions.append)
        for _ in range(5):
            self.deliver(manager)
        assert len(sessions) == 1
        assert manager.matches_seen == 5

    def test_unregister_releases_connectivity(self, acacia_net):
        network, mrs, ue, manager = self.make_manager(acacia_net)
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", ["laptops"]),
            on_discovery=lambda o: None)
        self.deliver(manager)
        manager.unregister_app("app")
        assert mrs.session_for(ue, "ar-retail") is None
        assert manager.modem.subscription_count == 0
        assert manager.registered_apps == []

    def test_add_interest_installs_filter(self, acacia_net):
        network, mrs, ue, manager = self.make_manager(acacia_net)
        seen = []
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", ["laptops"]),
            on_discovery=seen.append)
        self.deliver(manager, "toys")
        assert seen == []
        manager.add_interest("app", "toys")
        self.deliver(manager, "toys")
        assert len(seen) == 1

    def test_duplicate_app_rejected(self, acacia_net):
        network, mrs, ue, manager = self.make_manager(acacia_net)
        info = ServiceInfo("app", "ar-retail", "acme-retail", [])
        manager.register_app(info, on_discovery=lambda o: None)
        with pytest.raises(ValueError):
            manager.register_app(info, on_discovery=lambda o: None)


class TestOptimizerSchemes:
    @pytest.fixture()
    def setup(self):
        scenario = store_scenario()
        db = build_retail_database(scenario)
        optimizer = SearchSpaceOptimizer(db, scenario)
        return scenario, db, optimizer

    def test_naive_searches_all_105(self, setup):
        scenario, db, optimizer = setup
        space = optimizer.naive()
        assert space.size == 105
        assert space.scheme == "naive"

    def test_rxpower_restricts_to_sections(self, setup):
        scenario, db, optimizer = setup
        space = optimizer.rxpower(["lm1", "lm4"])
        assert space.scheme == "rxpower"
        assert 0 < space.size < 105
        sections = set(space.sections)
        assert all(r.section in sections for r in space.records)

    def test_rxpower_empty_falls_back_to_naive(self, setup):
        _, _, optimizer = setup
        assert optimizer.rxpower([]).scheme == "naive"

    def test_acacia_prunes_hardest(self, setup):
        scenario, db, optimizer = setup
        cp = scenario.checkpoints[5]
        space = optimizer.acacia(cp.position)
        assert space.scheme == "acacia"
        assert 1 <= len(space.subsections) <= 6
        # ACACIA's space is (much) smaller than a typical rxPower space
        assert space.size <= 30

    def test_acacia_without_location_degrades(self, setup):
        _, _, optimizer = setup
        assert optimizer.acacia(None, ["lm1"]).scheme == "rxpower"
        assert optimizer.acacia(None, []).scheme == "naive"

    def test_acacia_search_space_contains_nearby_objects(self, setup):
        scenario, db, optimizer = setup
        for cp in scenario.checkpoints:
            space = optimizer.acacia(cp.position)
            names = {r.name for r in space.records}
            nearest = min(db.all_records(),
                          key=lambda r: (r.position[0] - cp.position[0]) ** 2
                          + (r.position[1] - cp.position[1]) ** 2)
            assert nearest.name in names


class TestLocalizationManager:
    def make_manager(self):
        scenario = store_scenario()
        regression = PathLossRegression(alpha=-50.0, beta=-30.0)
        return scenario, LocalizationManager(
            landmark_map_for(scenario, regression))

    def test_per_user_trackers(self):
        scenario, manager = self.make_manager()
        manager.report("alice", "lm1", -60.0, 0.0)
        manager.report("bob", "lm2", -70.0, 0.0)
        assert set(manager.users) == {"alice", "bob"}

    def test_location_none_for_unknown_user(self):
        _, manager = self.make_manager()
        assert manager.location("ghost", now=0.0) is None

    def test_location_estimate_from_exact_powers(self):
        scenario, manager = self.make_manager()
        truth = (15.0, 9.0)
        regression = manager.map.regression
        for name, pos in scenario.landmarks.items():
            d = max(0.7, np.hypot(truth[0] - pos[0], truth[1] - pos[1]))
            manager.report("alice", name, regression.predict_rx_power(d),
                           0.0)
        estimate = manager.location("alice", now=1.0)
        assert estimate is not None
        assert np.hypot(estimate[0] - truth[0],
                        estimate[1] - truth[1]) < 1.0

    def test_strongest_landmarks_for_unknown_user(self):
        _, manager = self.make_manager()
        assert manager.strongest_landmarks("ghost", now=0.0) == []
