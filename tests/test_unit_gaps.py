"""Coverage fill: small units not exercised elsewhere."""

import pytest

from repro.core.config import NetworkConfig
from repro.epc import messages as m
from repro.epc.charging import UsageCollector
from repro.epc.messages import (REESTABLISH_SEQUENCE, RELEASE_SEQUENCE,
                                ControlMessage)
from repro.epc.overhead import ControlLedger
from repro.sim.engine import Simulator
from repro.sim.monitor import FlowStats
from repro.sim.packet import Packet


class TestMessageRegistry:
    def _all_message_types(self):
        return [value for value in vars(m).values()
                if isinstance(value, m.MessageType)]

    def test_all_sizes_positive(self):
        for mtype in self._all_message_types():
            assert mtype.size > 0, mtype.name

    def test_known_protocols_only(self):
        protocols = {mt.protocol for mt in self._all_message_types()}
        assert protocols <= {"SCTP", "GTPv2", "OpenFlow", "Diameter",
                             "RRC", "X2AP"}

    def test_release_sequence_calibration(self):
        assert len(RELEASE_SEQUENCE) == 7
        assert sum(mt.size for mt in RELEASE_SEQUENCE) == 1174

    def test_reestablish_sequence_calibration(self):
        assert len(REESTABLISH_SEQUENCE) == 8
        total = (sum(mt.size for mt in RELEASE_SEQUENCE)
                 + sum(mt.size for mt in REESTABLISH_SEQUENCE))
        assert total == 2914

    def test_control_message_wraps_type(self):
        msg = ControlMessage(m.CREATE_BEARER_REQUEST, "a", "b",
                             {"k": 1})
        assert msg.protocol == "GTPv2"
        assert msg.size == m.CREATE_BEARER_REQUEST.size
        assert msg.fields["k"] == 1


class TestControlLedger:
    def test_by_protocol_and_slice(self):
        ledger = ControlLedger()
        ledger.record(ControlMessage(m.CREATE_BEARER_REQUEST, "a", "b"))
        ledger.record(ControlMessage(m.ERAB_SETUP_REQUEST, "a", "b"))
        ledger.record(ControlMessage(m.CREATE_BEARER_RESPONSE, "b", "a"))
        summary = ledger.by_protocol()
        assert summary["GTPv2"].messages == 2
        assert summary["SCTP"].messages == 1
        view = ledger.slice_since(1)
        assert view.total_messages == 2
        assert len(ledger) == 3
        ledger.clear()
        assert ledger.total_bytes == 0


class TestFlowStats:
    def test_latency_percentiles(self):
        stats = FlowStats()
        for delay in (0.01, 0.02, 0.03, 0.04):
            packet = Packet(src="a", dst="b", size=10, created_at=0.0)
            stats.record(packet, now=delay)
        assert stats.packets == 4
        assert stats.mean_latency == pytest.approx(0.025)
        assert stats.percentile(50) == pytest.approx(0.025)
        assert FlowStats().mean_latency == 0.0
        assert FlowStats().percentile(95) == 0.0


class TestNetworkConfig:
    def test_one_way_delay_helpers(self):
        config = NetworkConfig()
        cloud = config.cloud_one_way_delay()
        mec = config.mec_one_way_delay()
        assert cloud == pytest.approx(0.033)
        assert mec < 0.006
        # the paper's ratios: ~70 ms vs <15 ms RTT
        assert 2 * cloud > 0.06
        assert 2 * mec < 0.015


class TestUsageCollectorParsing:
    def test_cookie_parsing(self):
        parse = UsageCollector._parse_cookie
        assert parse("imsi123:ebi6:ul") == ("imsi123", 6, "ul")
        assert parse("imsi123:ebi6:dl") == ("imsi123", 6, "dl")
        assert parse("bg") is None
        assert parse("a:b:c") is None
        assert parse("a:ebiX:ul") is None
        assert parse("sgi-route:imsi:srv") is None


class TestEngineDrain:
    def test_drain_cancels_collection(self):
        sim = Simulator()
        fired = []
        events = [sim.schedule(1.0, fired.append, i) for i in range(5)]
        sim.drain(events[1:4])
        sim.run()
        assert fired == [0, 4]
