"""Unit tests for OpenFlow matches, actions and rules."""

import pytest

from repro.epc.gtp import gtp_encapsulate
from repro.sdn.openflow import (FlowMatch, FlowRule, GtpDecap, GtpEncap,
                                Output)
from repro.sim.packet import Packet


def bare_packet(**kw):
    defaults = dict(src="10.45.0.2", dst="203.0.113.10", size=500,
                    protocol="UDP", src_port=40000, dst_port=9000)
    defaults.update(kw)
    return Packet(**defaults)


def tunneled_packet(teid=0x1001):
    return gtp_encapsulate(bare_packet(), teid, "192.168.1.1", "172.16.0.1")


class TestFlowMatch:
    def test_empty_match_is_wildcard(self):
        assert FlowMatch().matches(bare_packet())
        assert FlowMatch().matches(tunneled_packet())

    def test_teid_match(self):
        match = FlowMatch(teid=0x1001)
        assert match.matches(tunneled_packet(0x1001))
        assert not match.matches(tunneled_packet(0x9999))
        assert not match.matches(bare_packet())

    def test_inner_fields_visible_through_tunnel(self):
        match = FlowMatch(teid=0x1001, dst_ip="203.0.113.10")
        assert match.matches(tunneled_packet())

    def test_five_tuple_fields(self):
        match = FlowMatch(src_ip="10.45.0.2", protocol="UDP", dst_port=9000)
        assert match.matches(bare_packet())
        assert not match.matches(bare_packet(protocol="TCP"))
        assert not match.matches(bare_packet(dst_port=80))
        assert not match.matches(bare_packet(src="1.2.3.4"))

    def test_src_port_match(self):
        assert FlowMatch(src_port=40000).matches(bare_packet())
        assert not FlowMatch(src_port=1).matches(bare_packet())

    def test_describe(self):
        assert FlowMatch().describe() == "any"
        assert "teid=7" in FlowMatch(teid=7).describe()


class TestActions:
    def test_encap_then_decap(self):
        pkt = bare_packet()
        pkt = GtpEncap(teid=5, src="a", dst="b").apply(pkt)
        assert pkt.wire_size == 536
        pkt = GtpDecap().apply(pkt)
        assert pkt.wire_size == 500


class TestFlowRule:
    def test_requires_terminal_output(self):
        with pytest.raises(ValueError):
            FlowRule(FlowMatch(), [GtpDecap()])

    def test_output_must_be_last(self):
        with pytest.raises(ValueError):
            FlowRule(FlowMatch(), [Output("a"), GtpDecap()])

    def test_single_output_only(self):
        with pytest.raises(ValueError):
            FlowRule(FlowMatch(), [Output("a"), Output("b")])

    def test_output_port_property(self):
        rule = FlowRule(FlowMatch(), [GtpDecap(), Output("s5")])
        assert rule.output_port == "s5"

    def test_counters(self):
        rule = FlowRule(FlowMatch(), [Output("p")])
        rule.record(bare_packet())
        assert rule.packets == 1
        assert rule.bytes == 500
