"""Unit tests for bearers, packet filters and TFT classification."""

import pytest

from repro.epc.bearer import (Bearer, BearerRegistry, PacketFilter,
                              TrafficFlowTemplate)
from repro.sim.packet import Packet

UE_IP = "10.45.0.2"
SERVER_IP = "203.0.114.10"
OTHER_IP = "8.8.8.8"


def ul_packet(dst=SERVER_IP, protocol="UDP", dst_port=9000, src_port=40000):
    return Packet(src=UE_IP, dst=dst, size=100, protocol=protocol,
                  src_port=src_port, dst_port=dst_port)


def dl_packet(src=SERVER_IP, protocol="UDP", src_port=9000, dst_port=40000):
    return Packet(src=src, dst=UE_IP, size=100, protocol=protocol,
                  src_port=src_port, dst_port=dst_port)


class TestPacketFilter:
    def test_wildcard_matches_everything(self):
        f = PacketFilter()
        assert f.matches(ul_packet(), "uplink")
        assert f.matches(dl_packet(), "downlink")

    def test_remote_address_uplink(self):
        f = PacketFilter(remote_address=SERVER_IP)
        assert f.matches(ul_packet(dst=SERVER_IP), "uplink")
        assert not f.matches(ul_packet(dst=OTHER_IP), "uplink")

    def test_remote_address_downlink_is_source(self):
        f = PacketFilter(remote_address=SERVER_IP)
        assert f.matches(dl_packet(src=SERVER_IP), "downlink")
        assert not f.matches(dl_packet(src=OTHER_IP), "downlink")

    def test_direction_restriction(self):
        f = PacketFilter(direction="uplink")
        assert f.matches(ul_packet(), "uplink")
        assert not f.matches(dl_packet(), "downlink")

    def test_protocol_and_ports(self):
        f = PacketFilter(protocol="TCP", remote_port=9000)
        assert f.matches(ul_packet(protocol="TCP", dst_port=9000), "uplink")
        assert not f.matches(ul_packet(protocol="UDP", dst_port=9000), "uplink")
        assert not f.matches(ul_packet(protocol="TCP", dst_port=80), "uplink")

    def test_local_port_uplink_is_source_port(self):
        f = PacketFilter(local_port=40000)
        assert f.matches(ul_packet(src_port=40000), "uplink")
        assert not f.matches(ul_packet(src_port=40001), "uplink")


class TestTrafficFlowTemplate:
    def test_filters_sorted_by_precedence(self):
        tft = TrafficFlowTemplate([
            PacketFilter(precedence=20, remote_address=OTHER_IP),
            PacketFilter(precedence=5, remote_address=SERVER_IP),
        ])
        assert tft.filters[0].remote_address == SERVER_IP

    def test_add_maintains_order(self):
        tft = TrafficFlowTemplate()
        tft.add(PacketFilter(precedence=20))
        tft.add(PacketFilter(precedence=5, remote_address=SERVER_IP))
        assert tft.filters[0].precedence == 5

    def test_any_filter_matching_suffices(self):
        tft = TrafficFlowTemplate([
            PacketFilter(remote_address=OTHER_IP),
            PacketFilter(remote_address=SERVER_IP),
        ])
        assert tft.matches(ul_packet(dst=SERVER_IP), "uplink")


class TestBearer:
    def test_valid_ebi_range(self):
        with pytest.raises(ValueError):
            Bearer(ebi=4, qci=9, imsi="i", ue_ip=UE_IP)
        with pytest.raises(ValueError):
            Bearer(ebi=16, qci=9, imsi="i", ue_ip=UE_IP)

    def test_invalid_qci_rejected(self):
        with pytest.raises(KeyError):
            Bearer(ebi=5, qci=99, imsi="i", ue_ip=UE_IP)

    def test_default_bearer_matches_everything(self):
        bearer = Bearer(ebi=5, qci=9, imsi="i", ue_ip=UE_IP, default=True)
        assert bearer.matches_uplink(ul_packet(dst=OTHER_IP))
        assert bearer.matches_downlink(dl_packet(src=OTHER_IP))

    def test_dedicated_bearer_matches_only_tft(self):
        bearer = Bearer(ebi=6, qci=7, imsi="i", ue_ip=UE_IP)
        bearer.tft.add(PacketFilter(remote_address=SERVER_IP))
        assert bearer.matches_uplink(ul_packet(dst=SERVER_IP))
        assert not bearer.matches_uplink(ul_packet(dst=OTHER_IP))

    def test_qos_property(self):
        bearer = Bearer(ebi=5, qci=7, imsi="i", ue_ip=UE_IP)
        assert bearer.qos.qci == 7


class TestBearerRegistry:
    def make_registry(self):
        reg = BearerRegistry()
        default = Bearer(ebi=5, qci=9, imsi="i", ue_ip=UE_IP, default=True)
        dedicated = Bearer(ebi=6, qci=7, imsi="i", ue_ip=UE_IP)
        dedicated.tft.add(PacketFilter(remote_address=SERVER_IP))
        reg.add(default)
        reg.add(dedicated)
        return reg, default, dedicated

    def test_allocate_ebi_skips_used(self):
        reg, _, _ = self.make_registry()
        assert reg.allocate_ebi() == 7

    def test_ebi_exhaustion(self):
        reg = BearerRegistry()
        for ebi in range(5, 16):
            reg.add(Bearer(ebi=ebi, qci=9, imsi="i", ue_ip=UE_IP))
        with pytest.raises(RuntimeError):
            reg.allocate_ebi()

    def test_duplicate_ebi_rejected(self):
        reg, _, _ = self.make_registry()
        with pytest.raises(ValueError):
            reg.add(Bearer(ebi=5, qci=9, imsi="i", ue_ip=UE_IP))

    def test_classify_uplink_prefers_dedicated(self):
        reg, default, dedicated = self.make_registry()
        assert reg.classify_uplink(ul_packet(dst=SERVER_IP)) is dedicated
        assert reg.classify_uplink(ul_packet(dst=OTHER_IP)) is default

    def test_classify_downlink_prefers_dedicated(self):
        reg, default, dedicated = self.make_registry()
        assert reg.classify_downlink(dl_packet(src=SERVER_IP)) is dedicated
        assert reg.classify_downlink(dl_packet(src=OTHER_IP)) is default

    def test_inactive_dedicated_falls_back_to_default(self):
        reg, default, dedicated = self.make_registry()
        dedicated.active = False
        assert reg.classify_uplink(ul_packet(dst=SERVER_IP)) is default

    def test_no_default_no_match(self):
        reg = BearerRegistry()
        dedicated = Bearer(ebi=6, qci=7, imsi="i", ue_ip=UE_IP)
        dedicated.tft.add(PacketFilter(remote_address=SERVER_IP))
        reg.add(dedicated)
        assert reg.classify_uplink(ul_packet(dst=OTHER_IP)) is None

    def test_remove(self):
        reg, _, dedicated = self.make_registry()
        removed = reg.remove(6)
        assert removed is dedicated
        assert len(reg) == 1
