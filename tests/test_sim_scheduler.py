"""Differential tests: FastScheduler vs ReferenceScheduler.

The fast scheduler's entire contract is "same execution order as the
reference heap, cheaper".  These tests replay identical workloads on
both implementations and assert the *full* execution trace matches --
time, priority, sequence number and callback identity for every event
-- plus the pooling/reuse rules the engine layers on top.
"""

import random

import pytest

from repro.core.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.scheduler import (DEFAULT_SCHEDULER, SCHEDULER_NAMES,
                                 FastScheduler, ReferenceScheduler,
                                 build_scheduler)

BOTH = sorted(SCHEDULER_NAMES)


# ---------------------------------------------------------------------------
# construction / selection
# ---------------------------------------------------------------------------

def test_build_scheduler_names():
    assert isinstance(build_scheduler("fast"), FastScheduler)
    assert isinstance(build_scheduler("reference"), ReferenceScheduler)
    assert build_scheduler(None).name == DEFAULT_SCHEDULER
    with pytest.raises(ValueError):
        build_scheduler("quantum")


def test_build_scheduler_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", "reference")
    assert build_scheduler(None).name == "reference"
    monkeypatch.delenv("REPRO_SIM_SCHEDULER")
    assert build_scheduler(None).name == DEFAULT_SCHEDULER


def test_build_scheduler_passthrough_instance():
    sched = FastScheduler(granularity=1e-3, slots=64)
    assert build_scheduler(sched) is sched


def test_sim_config_builds_simulator():
    sim = SimConfig(scheduler="reference").build_simulator()
    assert sim.scheduler_name == "reference"
    assert SimConfig().build_simulator().scheduler_name == DEFAULT_SCHEDULER


def test_fast_scheduler_rejects_bad_geometry():
    with pytest.raises(ValueError):
        FastScheduler(granularity=0.0)
    with pytest.raises(ValueError):
        FastScheduler(slots=1)


# ---------------------------------------------------------------------------
# differential execution order
# ---------------------------------------------------------------------------

def _random_workload(sim, rng, n_roots=300):
    """Schedule a gnarly event mix and record the execution trace.

    Covers every lane and every boundary the fast scheduler has:
    zero-delay events (now lane), sub-granularity delays (heap
    fallback), fine-wheel delays, coarse-wheel delays beyond the fine
    span, non-default priorities, cancellations (before and after
    other events run), reschedules and handler-side nested scheduling.
    """
    trace = []
    pending = []

    def record(tag):
        trace.append((sim.now, tag))

    def nested(tag, depth):
        trace.append((sim.now, tag))
        if depth > 0:
            delay = rng.choice([0.0, 3.7e-5, 1.3e-3, 0.11])
            sim.schedule(delay, nested, f"{tag}/n{depth}", depth - 1)

    for i in range(n_roots):
        band = rng.random()
        if band < 0.3:
            delay = 0.0
        elif band < 0.5:
            delay = rng.random() * 9e-5          # sub-granularity
        elif band < 0.8:
            delay = rng.random() * 0.09          # fine wheel
        else:
            delay = 0.11 + rng.random() * 0.4    # coarse wheel
        priority = rng.choice([0, 0, 0, 0, -1, 1, 5])
        if rng.random() < 0.15:
            event = sim.schedule(delay, nested, f"r{i}", 2,
                                 priority=priority)
        else:
            event = sim.schedule(delay, record, f"r{i}", priority=priority)
        pending.append(event)
        # cancel a random earlier event now and then
        if pending and rng.random() < 0.2:
            pending.pop(rng.randrange(len(pending))).cancel()
    return trace


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_identical_execution_order_randomized(seed):
    traces = {}
    for name in BOTH:
        sim = Simulator(scheduler=name)
        rng = random.Random(seed)
        trace = _random_workload(sim, rng)
        sim.run()
        traces[name] = trace
    assert traces["fast"] == traces["reference"]
    assert len(traces["fast"]) > 300


@pytest.mark.parametrize("seed", [3, 99])
def test_identical_order_with_reschedules(seed):
    """Periodic reschedule + cancellation storm, both schedulers."""
    traces = {}
    for name in BOTH:
        sim = Simulator(scheduler=name)
        rng = random.Random(seed)
        trace = []
        timers = []

        def tick(tag, interval):
            trace.append((sim.now, tag))
            event = timers[int(tag)]
            if sim.now < 1.0:
                timers[int(tag)] = event.reschedule(interval)

        for i in range(40):
            interval = rng.choice([3e-4, 1e-3, 7.77e-3, 0.13])
            timers.append(sim.schedule(interval, tick, str(i), interval))
        guards = [sim.schedule(0.4 + rng.random(), trace.append,
                               (9.9, f"g{i}")) for i in range(60)]
        for i, guard in enumerate(guards):
            if i % 3:
                guard.cancel()
        sim.run(until=1.5)
        traces[name] = trace
    assert traces["fast"] == traces["reference"]


def test_slot_boundary_times_do_not_lose_events():
    """Regression: times that round differently under ``int(t/gran)``
    and ``slot*gran`` must neither reorder nor drop events.

    With granularity 1e-4 the time 0.0115 satisfies
    ``int(t/gran) == 114`` while ``115 * 1e-4 <= t`` -- exactly the
    float asymmetry that once made a flush discard a live run list.
    """
    for name in BOTH:
        sim = Simulator(scheduler=name)
        ran = []
        # cluster events tightly around many bucket boundaries
        for k in range(80, 200):
            base = k * 1e-4
            for eps in (-1e-12, 0.0, 1e-12, 5e-9):
                t = base + eps
                if t >= 0:
                    sim.schedule_at(t, ran.append, t)
        sim.run()
        assert len(ran) == len(sorted(ran))
        assert ran == sorted(ran), name
        assert sim.pending == 0


@pytest.mark.parametrize("scheduler", BOTH)
def test_priority_orders_simultaneous_events(scheduler):
    sim = Simulator(scheduler=scheduler)
    out = []
    sim.schedule(0.01, out.append, "late-low", priority=5)
    sim.schedule(0.01, out.append, "default")
    sim.schedule(0.01, out.append, "urgent", priority=-3)
    sim.run()
    assert out == ["urgent", "default", "late-low"]


@pytest.mark.parametrize("scheduler", BOTH)
def test_run_until_boundary_inclusive(scheduler):
    sim = Simulator(scheduler=scheduler)
    out = []
    sim.schedule(1.0, out.append, "at")
    sim.schedule(1.0 + 1e-9, out.append, "after")
    sim.run(until=1.0)
    assert out == ["at"]
    assert sim.now == 1.0
    sim.run()
    assert out == ["at", "after"]


# ---------------------------------------------------------------------------
# exp-layer byte identity
# ---------------------------------------------------------------------------

def test_smoke_preset_canonical_json_identical(monkeypatch):
    from repro.exp.presets import preset
    from repro.exp.runner import ExperimentRunner

    outputs = {}
    for name in BOTH:
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", name)
        outputs[name] = ExperimentRunner(preset("smoke")).run()
    monkeypatch.delenv("REPRO_SIM_SCHEDULER")
    assert (outputs["fast"].canonical_json()
            == outputs["reference"].canonical_json())


# ---------------------------------------------------------------------------
# event pooling
# ---------------------------------------------------------------------------

def test_internal_events_are_pooled_and_reused():
    sim = Simulator()

    def chain(n):
        if n > 0:
            sim._schedule_internal(0.001, chain, n - 1)

    sim._schedule_internal(0.001, chain, 50)
    sim.run()
    prof = sim.profile()
    assert prof["pool"]["hits"] >= 49
    assert prof["pool"]["hit_rate"] > 0.9
    assert prof["pool"]["free"] >= 1


def test_external_events_never_enter_pool():
    sim = Simulator()
    events = [sim.schedule(0.001 * i, lambda: None) for i in range(1, 20)]
    sim.run()
    assert sim.profile()["pool"]["free"] == 0
    # handles stay valid after running: stale cancel is harmless
    for event in events:
        event.cancel()
    assert sim.pending == 0


def test_pool_reuse_after_cancel():
    """A cancelled internal event is recycled once its slot is reached,
    and the recycled object carries none of the old state."""
    sim = Simulator(pool_size=4)
    ran = []
    sim._schedule_internal(0.01, ran.append, "dead")
    # cancel it through the engine-internal path: internal handles do
    # not escape, so emulate what Process teardown does
    sim._scheduler  # touch to keep parity with public surface
    # the only public cancel path for internal events is via drain of
    # the whole sim; instead assert recycling via a run-through
    sim.run()
    assert ran == ["dead"]
    free_before = sim.profile()["pool"]["free"]
    assert free_before >= 1
    sim._schedule_internal(0.01, ran.append, "reused")
    sim.run()
    assert ran == ["dead", "reused"]
    assert sim.profile()["pool"]["hits"] >= 1


def test_pool_respects_capacity():
    sim = Simulator(pool_size=2)
    for i in range(10):
        sim._schedule_internal(0.001 * (i + 1), lambda: None)
    sim.run()
    assert sim.profile()["pool"]["free"] <= 2


def test_reschedule_requires_popped_event():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    from repro.sim.engine import SimulationError
    with pytest.raises(SimulationError):
        event.reschedule(1.0)


# ---------------------------------------------------------------------------
# wheel mechanics
# ---------------------------------------------------------------------------

def test_cancelled_wheel_timers_cost_no_execution():
    sim = Simulator()
    ran = []
    guards = [sim.schedule(0.05 + i * 1e-3, ran.append, i)
              for i in range(100)]
    for guard in guards[:90]:
        guard.cancel()
    sim.schedule(5.0, ran.append, "far")        # coarse band
    sim.run()
    assert sorted(ran[:-1]) == list(range(90, 100))
    prof = sim.profile()
    assert prof["cancelled_discarded"] >= 90
    assert prof["wheel"]["flushes"] > 0


def test_coarse_band_cascades_into_fine():
    sim = Simulator(wheel_granularity=1e-4, wheel_slots=64)
    ran = []
    # 64 slots x 0.1ms = 6.4ms fine span; these must cascade
    for i in range(20):
        sim.schedule(0.05 + i * 1e-3, ran.append, i)
    sim.run()
    assert ran == list(range(20))
    assert sim.profile()["wheel"]["cascades"] >= 1


def test_heap_fallback_for_subslot_rearm():
    """An event landing in the bucket currently being consumed falls
    back to the tuple heap and still runs in exact order."""
    sim = Simulator(wheel_granularity=1e-3)
    out = []

    def first():
        out.append("first")
        sim.schedule(1e-5, out.append, "nested")   # same fine bucket

    sim.schedule(0.0105, first)
    sim.schedule(0.012, out.append, "later")
    sim.run()
    assert out == ["first", "nested", "later"]
    assert sim.profile()["lanes"]["heap"] >= 1


def test_profile_shape():
    sim = Simulator()
    sim.schedule(0.0, lambda: None)
    sim.schedule(0.01, lambda: None)
    sim.run()
    prof = sim.profile()
    assert prof["scheduler"] == "fast"
    assert prof["events_run"] == 2
    assert set(prof["lanes"]) == {"now", "wheel", "heap"}
    assert prof["pool"]["capacity"] == 1024
    ref = Simulator(scheduler="reference")
    ref.schedule(0.0, lambda: None)
    ref.run()
    assert ref.profile()["scheduler"] == "reference"
    assert "lanes" in ref.profile()
