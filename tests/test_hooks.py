"""Unit tests for the typed hook bus and SimContext RNG streams."""

from dataclasses import dataclass

import pytest

from repro.sim import HookBus, SimContext, derive_seed


@dataclass(frozen=True)
class Ping:
    value: int


@dataclass(frozen=True)
class Pong:
    value: int


# ---------------------------------------------------------------------------
# HookBus
# ---------------------------------------------------------------------------

def test_emit_dispatches_by_exact_type():
    bus = HookBus()
    seen = []
    bus.on(Ping, seen.append)
    assert bus.emit(Ping(1)) == 1
    assert bus.emit(Pong(2)) == 0
    assert seen == [Ping(1)]


def test_handlers_run_in_subscription_order():
    bus = HookBus()
    order = []
    bus.on(Ping, lambda e: order.append("first"))
    bus.on(Ping, lambda e: order.append("second"))
    bus.on(Ping, lambda e: order.append("third"))
    bus.emit(Ping(0))
    assert order == ["first", "second", "third"]


def test_subscription_close_detaches_and_is_idempotent():
    bus = HookBus()
    seen = []
    sub = bus.on(Ping, seen.append)
    bus.emit(Ping(1))
    sub.close()
    sub.close()     # second close is a no-op
    bus.emit(Ping(2))
    assert seen == [Ping(1)]
    assert not sub.active
    assert bus.subscriber_count(Ping) == 0


def test_has_reflects_live_subscribers():
    bus = HookBus()
    assert not bus.has(Ping)
    sub = bus.on(Ping, lambda e: None)
    assert bus.has(Ping)
    sub.close()
    assert not bus.has(Ping)


def test_subscriber_count_total_and_per_type():
    bus = HookBus()
    bus.on(Ping, lambda e: None)
    bus.on(Ping, lambda e: None)
    bus.on(Pong, lambda e: None)
    assert bus.subscriber_count(Ping) == 2
    assert bus.subscriber_count(Pong) == 1
    assert bus.subscriber_count() == 3


def test_bus_close_detaches_everyone():
    bus = HookBus()
    subs = [bus.on(Ping, lambda e: None), bus.on(Pong, lambda e: None)]
    bus.close()
    assert bus.subscriber_count() == 0
    assert all(not s.active for s in subs)
    assert bus.emit(Ping(0)) == 0


def test_handler_may_unsubscribe_itself_during_dispatch():
    bus = HookBus()
    seen = []

    def once(event):
        seen.append(event.value)
        sub.close()

    sub = bus.on(Ping, once)
    bus.emit(Ping(1))
    bus.emit(Ping(2))
    assert seen == [1]


def test_handler_subscribed_during_dispatch_misses_current_event():
    bus = HookBus()
    late = []

    def subscribe_late(event):
        bus.on(Ping, lambda e: late.append(e.value))

    bus.on(Ping, subscribe_late)
    bus.emit(Ping(1))   # snapshot: the late handler must not see this one
    assert late == []
    bus.emit(Ping(2))
    assert late == [2]


# ---------------------------------------------------------------------------
# Mutation during dispatch (regression: removal used to compact the
# subscriber list mid-walk, skipping the handler after the removed one)
# ---------------------------------------------------------------------------

def test_close_earlier_sub_mid_dispatch_does_not_skip_later_subs():
    bus = HookBus()
    seen = []
    first = bus.on(Ping, lambda e: (seen.append("first"),
                                    first.close()))
    bus.on(Ping, lambda e: seen.append("second"))
    bus.on(Ping, lambda e: seen.append("third"))
    assert bus.emit(Ping(1)) == 3
    # every *other* subscriber still ran exactly once
    assert seen == ["first", "second", "third"]
    assert bus.emit(Ping(2)) == 2
    assert seen == ["first", "second", "third", "second", "third"]


def test_close_later_sub_mid_dispatch_skips_it_without_double_serving():
    bus = HookBus()
    seen = []
    later_holder = []
    bus.on(Ping, lambda e: (seen.append("first"),
                            later_holder[0].close()))
    later_holder.append(bus.on(Ping, lambda e: seen.append("second")))
    bus.on(Ping, lambda e: seen.append("third"))
    bus.emit(Ping(1))
    # the closed-but-not-yet-visited handler must not run at all
    assert seen == ["first", "third"]
    bus.emit(Ping(2))
    assert seen == ["first", "third", "first", "third"]


def test_subscribe_during_dispatch_sees_only_subsequent_events():
    bus = HookBus()
    seen = []
    bus.on(Ping, lambda e: (seen.append(("outer", e.value)),
                            bus.on(Ping, lambda e2: seen.append(
                                ("inner", e2.value)))))
    bus.emit(Ping(1))
    assert seen == [("outer", 1)]       # new sub not served this event
    seen.clear()
    bus.emit(Ping(2))
    assert ("outer", 2) in seen and ("inner", 2) in seen


def test_self_close_mid_dispatch_is_idempotent_and_final():
    bus = HookBus()
    seen = []
    sub = bus.on(Ping, lambda e: (seen.append(e.value), sub.close(),
                                  sub.close()))
    bus.emit(Ping(1))
    bus.emit(Ping(2))
    assert seen == [1]
    assert bus.subscriber_count(Ping) == 0


def test_nested_emit_with_mid_dispatch_close():
    bus = HookBus()
    seen = []

    def outer(e):
        seen.append(("outer", e.value))
        if e.value == 1:
            pong_sub.close()            # removal during nested depth 0
            bus.emit(Pong(10))          # nested dispatch

    bus.on(Ping, outer)
    pong_sub = bus.on(Pong, lambda e: seen.append(("pong", e.value)))
    bus.on(Pong, lambda e: seen.append(("pong2", e.value)))
    bus.emit(Ping(1))
    # the closed Pong handler was dead before the nested emit started
    assert seen == [("outer", 1), ("pong2", 10)]
    # list compaction after the outermost emit leaves the bus coherent
    assert bus.subscriber_count(Pong) == 1
    bus.emit(Pong(11))
    assert seen[-1] == ("pong2", 11)


def test_bus_close_mid_dispatch_stops_remaining_handlers_cleanly():
    bus = HookBus()
    seen = []
    bus.on(Ping, lambda e: (seen.append("first"), bus.close()))
    bus.on(Ping, lambda e: seen.append("second"))
    bus.emit(Ping(1))
    assert seen == ["first"]
    assert bus.subscriber_count() == 0
    bus.emit(Ping(2))       # a closed bus is inert, not broken
    assert seen == ["first"]


def test_on_rejects_non_type():
    with pytest.raises(TypeError):
        HookBus().on("PacketDelivered", lambda e: None)


def test_emitted_counts_only_observed_events():
    bus = HookBus()
    bus.emit(Ping(1))               # nobody listening: not counted
    assert bus.emitted == 0
    bus.on(Ping, lambda e: None)
    bus.emit(Ping(2))
    assert bus.emitted == 1


# ---------------------------------------------------------------------------
# SimContext named RNG streams
# ---------------------------------------------------------------------------

def test_same_seed_same_stream_regardless_of_request_order():
    a = SimContext(seed=42)
    b = SimContext(seed=42)
    a.rng("net.jitter")     # materialise an unrelated stream first
    assert (a.rng("d2d.channel").random(8).tolist()
            == b.rng("d2d.channel").random(8).tolist())


def test_distinct_names_give_independent_streams():
    ctx = SimContext(seed=0)
    assert (ctx.rng("net.jitter").random(8).tolist()
            != ctx.rng("d2d.channel").random(8).tolist())


def test_rng_is_cached_per_name():
    ctx = SimContext(seed=0)
    assert ctx.rng("x") is ctx.rng("x")
    assert ctx.stream_names() == ("x",)


def test_derive_seed_is_stable_and_component_sensitive():
    assert derive_seed("exp", "ping", 0) == derive_seed("exp", "ping", 0)
    assert derive_seed("exp", "ping", 0) != derive_seed("exp", "ping", 1)
    assert derive_seed("exp", "ping", 0) != derive_seed("other", "ping", 0)
    assert 0 <= derive_seed("exp") < 2 ** 63


def test_child_context_derives_its_own_seed():
    ctx = SimContext(seed=7)
    child = ctx.child("replica")
    assert child.seed == derive_seed(7, "replica")
    assert child.sim is not ctx.sim
    assert child.hooks is not ctx.hooks


def test_context_owns_clock_and_bus():
    ctx = SimContext(seed=0)
    fired = []
    ctx.schedule(1.5, lambda: fired.append(ctx.now))
    ctx.run(until=2.0)
    assert fired == [1.5]
    assert ctx.hooks is ctx.sim.hooks
