"""Unit tests for the typed hook bus and SimContext RNG streams."""

from dataclasses import dataclass

import pytest

from repro.sim import HookBus, SimContext, derive_seed


@dataclass(frozen=True)
class Ping:
    value: int


@dataclass(frozen=True)
class Pong:
    value: int


# ---------------------------------------------------------------------------
# HookBus
# ---------------------------------------------------------------------------

def test_emit_dispatches_by_exact_type():
    bus = HookBus()
    seen = []
    bus.on(Ping, seen.append)
    assert bus.emit(Ping(1)) == 1
    assert bus.emit(Pong(2)) == 0
    assert seen == [Ping(1)]


def test_handlers_run_in_subscription_order():
    bus = HookBus()
    order = []
    bus.on(Ping, lambda e: order.append("first"))
    bus.on(Ping, lambda e: order.append("second"))
    bus.on(Ping, lambda e: order.append("third"))
    bus.emit(Ping(0))
    assert order == ["first", "second", "third"]


def test_subscription_close_detaches_and_is_idempotent():
    bus = HookBus()
    seen = []
    sub = bus.on(Ping, seen.append)
    bus.emit(Ping(1))
    sub.close()
    sub.close()     # second close is a no-op
    bus.emit(Ping(2))
    assert seen == [Ping(1)]
    assert not sub.active
    assert bus.subscriber_count(Ping) == 0


def test_has_reflects_live_subscribers():
    bus = HookBus()
    assert not bus.has(Ping)
    sub = bus.on(Ping, lambda e: None)
    assert bus.has(Ping)
    sub.close()
    assert not bus.has(Ping)


def test_subscriber_count_total_and_per_type():
    bus = HookBus()
    bus.on(Ping, lambda e: None)
    bus.on(Ping, lambda e: None)
    bus.on(Pong, lambda e: None)
    assert bus.subscriber_count(Ping) == 2
    assert bus.subscriber_count(Pong) == 1
    assert bus.subscriber_count() == 3


def test_bus_close_detaches_everyone():
    bus = HookBus()
    subs = [bus.on(Ping, lambda e: None), bus.on(Pong, lambda e: None)]
    bus.close()
    assert bus.subscriber_count() == 0
    assert all(not s.active for s in subs)
    assert bus.emit(Ping(0)) == 0


def test_handler_may_unsubscribe_itself_during_dispatch():
    bus = HookBus()
    seen = []

    def once(event):
        seen.append(event.value)
        sub.close()

    sub = bus.on(Ping, once)
    bus.emit(Ping(1))
    bus.emit(Ping(2))
    assert seen == [1]


def test_handler_subscribed_during_dispatch_misses_current_event():
    bus = HookBus()
    late = []

    def subscribe_late(event):
        bus.on(Ping, lambda e: late.append(e.value))

    bus.on(Ping, subscribe_late)
    bus.emit(Ping(1))   # snapshot: the late handler must not see this one
    assert late == []
    bus.emit(Ping(2))
    assert late == [2]


def test_on_rejects_non_type():
    with pytest.raises(TypeError):
        HookBus().on("PacketDelivered", lambda e: None)


def test_emitted_counts_only_observed_events():
    bus = HookBus()
    bus.emit(Ping(1))               # nobody listening: not counted
    assert bus.emitted == 0
    bus.on(Ping, lambda e: None)
    bus.emit(Ping(2))
    assert bus.emitted == 1


# ---------------------------------------------------------------------------
# SimContext named RNG streams
# ---------------------------------------------------------------------------

def test_same_seed_same_stream_regardless_of_request_order():
    a = SimContext(seed=42)
    b = SimContext(seed=42)
    a.rng("net.jitter")     # materialise an unrelated stream first
    assert (a.rng("d2d.channel").random(8).tolist()
            == b.rng("d2d.channel").random(8).tolist())


def test_distinct_names_give_independent_streams():
    ctx = SimContext(seed=0)
    assert (ctx.rng("net.jitter").random(8).tolist()
            != ctx.rng("d2d.channel").random(8).tolist())


def test_rng_is_cached_per_name():
    ctx = SimContext(seed=0)
    assert ctx.rng("x") is ctx.rng("x")
    assert ctx.stream_names() == ("x",)


def test_derive_seed_is_stable_and_component_sensitive():
    assert derive_seed("exp", "ping", 0) == derive_seed("exp", "ping", 0)
    assert derive_seed("exp", "ping", 0) != derive_seed("exp", "ping", 1)
    assert derive_seed("exp", "ping", 0) != derive_seed("other", "ping", 0)
    assert 0 <= derive_seed("exp") < 2 ** 63


def test_child_context_derives_its_own_seed():
    ctx = SimContext(seed=7)
    child = ctx.child("replica")
    assert child.seed == derive_seed(7, "replica")
    assert child.sim is not ctx.sim
    assert child.hooks is not ctx.hooks


def test_context_owns_clock_and_bus():
    ctx = SimContext(seed=0)
    fired = []
    ctx.schedule(1.5, lambda: fired.append(ctx.now))
    ctx.run(until=2.0)
    assert fired == [1.5]
    assert ctx.hooks is ctx.sim.hooks
