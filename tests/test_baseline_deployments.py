"""End-to-end tests of the CLOUD / MEC / ACACIA deployments."""

import numpy as np
import pytest

from repro.apps.retail import build_retail_database
from repro.apps.scenario import store_scenario
from repro.apps.workload import CheckpointWorkload
from repro.baselines import DEPLOYMENT_KINDS, build_deployment
from repro.vision.camera import R720x480


@pytest.fixture(scope="module")
def scenario_db():
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=60)
    return scenario, db


def run_session(deployment, scenario, db, n_frames=4,
                checkpoint_index=4):
    """Drive one AR session at a checkpoint; returns the session."""
    scenario_cp = scenario.checkpoints[checkpoint_index]
    workload = CheckpointWorkload(scenario, db, seed=9,
                                  frames_per_object=n_frames,
                                  resolution=R720x480)
    sample = workload.sample(scenario_cp)

    if deployment.kind == "acacia":
        # customer walks to the checkpoint, opens the app with a
        # matching interest, and discovery creates the bearer
        section = scenario.section_of_subsection(scenario_cp.subsection)
        deployment.customer.move_to(scenario_cp.position)
        deployment.customer.open([section])
        deployment.network.sim.run(until=12.0)   # one discovery period
        assert deployment.customer.session is not None, \
            "discovery did not trigger MEC connectivity"
    else:
        # the baselines have no localisation; naive search needs none
        pass

    session = deployment.new_session(iter(sample.frames),
                                     resolution=R720x480,
                                     max_frames=n_frames)
    session.start(at=deployment.network.sim.now)
    deployment.network.sim.run(until=deployment.network.sim.now + 60.0)
    return session, sample


def test_unknown_kind_rejected(scenario_db):
    scenario, db = scenario_db
    with pytest.raises(ValueError):
        build_deployment("edge", db, scenario)


@pytest.mark.parametrize("kind", DEPLOYMENT_KINDS)
def test_deployment_completes_frames(scenario_db, kind):
    scenario, db = scenario_db
    deployment = build_deployment(kind, db, scenario, seed=1)
    session, sample = run_session(deployment, scenario, db)
    assert len(session.records) == 4
    # every frame matched the right object
    assert all(r.matched == sample.record.name for r in session.records)


def test_cloud_network_latency_dominates(scenario_db):
    scenario, db = scenario_db
    cloud = build_deployment("cloud", db, scenario, seed=2)
    session, _ = run_session(cloud, scenario, db)
    breakdown = session.mean_breakdown()
    # ~70 ms RTT + ~50 ms upload of a ~86 KB frame at 12 Mbps
    assert breakdown["network"] > 0.08
    assert breakdown["total"] > breakdown["match"]


def test_mec_cuts_network_latency(scenario_db):
    scenario, db = scenario_db
    cloud = build_deployment("cloud", db, scenario, seed=3)
    mec = build_deployment("mec", db, scenario, seed=3)
    s_cloud, _ = run_session(cloud, scenario, db)
    s_mec, _ = run_session(mec, scenario, db)
    assert s_mec.mean_breakdown()["network"] < \
        0.7 * s_cloud.mean_breakdown()["network"]
    # but matching is unchanged: both search the whole floor
    assert s_mec.mean_breakdown()["match"] == pytest.approx(
        s_cloud.mean_breakdown()["match"], rel=0.05)


def test_acacia_cuts_both_network_and_match(scenario_db):
    scenario, db = scenario_db
    cloud = build_deployment("cloud", db, scenario, seed=4)
    acacia = build_deployment("acacia", db, scenario, seed=4)
    s_cloud, _ = run_session(cloud, scenario, db)
    s_acacia, _ = run_session(acacia, scenario, db)
    b_cloud = s_cloud.mean_breakdown()
    b_acacia = s_acacia.mean_breakdown()
    assert b_acacia["network"] < 0.6 * b_cloud["network"]
    assert b_acacia["match"] < 0.4 * b_cloud["match"]
    # the headline: a large end-to-end reduction
    assert b_acacia["total"] < 0.5 * b_cloud["total"]


def test_acacia_uses_dedicated_bearer_for_frames(scenario_db):
    scenario, db = scenario_db
    acacia = build_deployment("acacia", db, scenario, seed=5)
    session, _ = run_session(acacia, scenario, db)
    central = acacia.network.sgwc.site("central")
    mec = acacia.network.sgwc.site("mec")
    assert mec.sgw_u.rx_count > 0
    # frame traffic (big packets) never crossed the central SGW-U
    big_central = [r for r in central.sgw_u.table
                   if r.bytes > 50_000]
    assert big_central == []
