"""Second property-test batch: links, bearers, vision, codecs."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.epc.bearer import Bearer, BearerRegistry, PacketFilter
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node, PacketSink
from repro.sim.packet import Packet
from repro.vision.camera import Resolution
from repro.vision.codec import JPEG50, JPEG80, JPEG90, JPEG100, PNG
from repro.vision.costmodel import DEVICES
from repro.vision.features import expected_feature_count


# -- link conservation -------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(min_value=64, max_value=5000),
                      min_size=1, max_size=40),
       queue_kb=st.integers(min_value=2, max_value=64))
def test_link_conserves_packets(sizes, queue_kb):
    """Every transmitted packet is either delivered or counted as a
    drop; nothing vanishes."""
    sim = Simulator()
    src = Node(sim, "src", ip="a")
    sink = PacketSink(sim, "dst", ip="b")
    link = Link(sim, "l", bandwidth=1e6, delay=0.001,
                queue_bytes=queue_kb * 1000)
    src.attach("out", link)
    sink.attach("in", link)
    for size in sizes:
        src.send("out", Packet(src="a", dst="b", size=size))
    sim.run()
    stats = link.stats(src)
    assert len(sink.received) + stats["drops"] == len(sizes)
    assert stats["queued_bytes"] == 0


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=100, max_value=2000),
                      min_size=2, max_size=25))
def test_fifo_link_preserves_order(sizes):
    sim = Simulator()
    src = Node(sim, "src", ip="a")
    sink = PacketSink(sim, "dst", ip="b")
    link = Link(sim, "l", bandwidth=1e6, delay=0.002,
                queue_bytes=10**7)
    src.attach("out", link)
    sink.attach("in", link)
    for i, size in enumerate(sizes):
        src.send("out", Packet(src="a", dst="b", size=size,
                               meta={"i": i}))
    sim.run()
    order = [p.meta["i"] for p in sink.received]
    assert order == sorted(order)


# -- bearer classification ----------------------------------------------------

_ips = st.sampled_from(["10.45.0.1", "203.0.114.7", "8.8.8.8",
                        "203.0.113.9"])


@settings(max_examples=60)
@given(dst=_ips, server=_ips)
def test_dedicated_classification_iff_tft_match(dst, server):
    """classify_uplink picks the dedicated bearer exactly when the
    packet's remote matches the bearer's TFT; otherwise the default."""
    registry = BearerRegistry()
    default = Bearer(ebi=5, qci=9, imsi="i", ue_ip="10.45.0.1",
                     default=True)
    dedicated = Bearer(ebi=6, qci=7, imsi="i", ue_ip="10.45.0.1")
    dedicated.tft.add(PacketFilter(remote_address=server))
    registry.add(default)
    registry.add(dedicated)
    packet = Packet(src="10.45.0.1", dst=dst, size=10)
    chosen = registry.classify_uplink(packet)
    if dst == server:
        assert chosen is dedicated
    else:
        assert chosen is default


# -- vision scaling ------------------------------------------------------------

@settings(max_examples=40)
@given(w=st.integers(min_value=160, max_value=2000),
       h=st.integers(min_value=120, max_value=1500),
       scale=st.floats(min_value=1.1, max_value=3.0))
def test_feature_count_monotone_in_pixels(w, h, scale):
    small = Resolution(w, h)
    big = Resolution(int(w * scale), int(h * scale))
    assert expected_feature_count(big) > expected_feature_count(small)


@settings(max_examples=40)
@given(w=st.integers(min_value=160, max_value=1920),
       h=st.integers(min_value=120, max_value=1080),
       objects=st.integers(min_value=0, max_value=200),
       clients=st.integers(min_value=1, max_value=16))
def test_match_cost_scales_linearly_and_contends(w, h, objects, clients):
    device = DEVICES["i7-8core"]
    resolution = Resolution(w, h)
    single = device.db_match_time(resolution, objects)
    contended = device.db_match_time(resolution, objects,
                                     clients=clients)
    assert math.isclose(contended,
                        single * device.contention_factor(clients),
                        rel_tol=1e-9)
    doubled = device.db_match_time(resolution, 2 * objects)
    assert math.isclose(doubled, 2 * single, rel_tol=1e-9, abs_tol=1e-15)


@settings(max_examples=40)
@given(w=st.integers(min_value=160, max_value=1920),
       h=st.integers(min_value=120, max_value=1080),
       complexity=st.floats(min_value=0.2, max_value=2.0))
def test_codec_strength_ordering_holds_everywhere(w, h, complexity):
    resolution = Resolution(w, h)
    sizes = [codec.frame_bytes(resolution, complexity)
             for codec in (JPEG50, JPEG80, JPEG90, JPEG100, PNG)]
    assert sizes == sorted(sizes)
    assert all(size < resolution.pixels for size in sizes) or \
        complexity > 1.3    # extreme scenes may exceed raw for PNG


@settings(max_examples=40)
@given(surf_devices=st.permutations(["oneplus-one", "i7-1core",
                                     "i7-8core", "gpu-titan"]))
def test_device_speed_ordering_is_total(surf_devices):
    """Whatever order we ask in, the calibrated speed ranking holds."""
    resolution = Resolution(960, 720)
    ranked = sorted(surf_devices,
                    key=lambda name: DEVICES[name].surf_time(resolution))
    assert ranked == ["gpu-titan", "i7-8core", "i7-1core", "oneplus-one"]
