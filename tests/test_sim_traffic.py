"""Unit tests for traffic generators and measurement probes."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.monitor import LatencyProbe, ThroughputMeter
from repro.sim.node import PacketSink
from repro.sim.traffic import CBRSource, GreedySource, PoissonSource


def test_cbr_rate_is_accurate():
    sim = Simulator()
    src = CBRSource(sim, "cbr", dst="10.0.0.2", rate=8e6, packet_size=1000)
    sink = PacketSink(sim, "sink", ip="10.0.0.2")
    link = Link(sim, "l", bandwidth=100e6, delay=0.0)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=1.0)
    src.stop()
    # 8 Mbps at 8000 bits/packet -> 1000 packets/sec
    assert 995 <= len(sink.received) <= 1005


def test_cbr_stop_halts_traffic():
    sim = Simulator()
    src = CBRSource(sim, "cbr", dst="d", rate=8e6, packet_size=1000)
    sink = PacketSink(sim, "sink", ip="d")
    link = Link(sim, "l", bandwidth=100e6, delay=0.0)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=0.5)
    src.stop()
    count = len(sink.received)
    sim.run(until=1.0)
    assert len(sink.received) == count


def test_cbr_rejects_nonpositive_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        CBRSource(sim, "cbr", dst="d", rate=0)


def test_poisson_mean_rate():
    sim = Simulator()
    rng = np.random.default_rng(7)
    src = PoissonSource(sim, "poisson", dst="d", rate=8e6, rng=rng,
                        packet_size=1000)
    sink = PacketSink(sim, "sink", ip="d")
    link = Link(sim, "l", bandwidth=1e9, delay=0.0)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=5.0)
    src.stop()
    rate = sink.bytes_received * 8 / 5.0
    assert rate == pytest.approx(8e6, rel=0.1)


def test_greedy_source_saturates_bottleneck():
    sim = Simulator()
    src = GreedySource(sim, "greedy", dst="d", packet_size=1000, window=32,
                       ip="s")
    sink = PacketSink(sim, "sink", ip="d", echo=True)
    link = Link(sim, "l", bandwidth=10e6, delay=0.001,
                queue_bytes=64 * 1000)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=2.0)
    # payload goodput should be close to the 10 Mbps line rate
    assert src.goodput(2.0) == pytest.approx(10e6, rel=0.05)


def test_greedy_source_keeps_window_in_flight():
    sim = Simulator()
    src = GreedySource(sim, "greedy", dst="d", packet_size=1000, window=8,
                       ip="s")
    sink = PacketSink(sim, "sink", ip="d", echo=True)
    link = Link(sim, "l", bandwidth=10e6, delay=0.001, queue_bytes=10**6)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=1.0)
    in_flight = src.packets_sent - src.acks_received
    assert in_flight == 8


def test_latency_probe_collects_per_flow():
    sim = Simulator()
    probe = LatencyProbe(sim)
    src = CBRSource(sim, "cbr", dst="d", rate=1e6, packet_size=1000, ip="s")
    sink = PacketSink(sim, "sink", ip="d", on_packet=probe)
    link = Link(sim, "l", bandwidth=10e6, delay=0.005)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=0.1)
    src.stop()
    stats = probe.flow(src.flow_id)
    assert stats.packets > 0
    # one-way delay = 0.8 ms serialization + 5 ms propagation
    assert stats.mean_latency == pytest.approx(0.0058, rel=0.01)


def test_throughput_meter_series():
    sim = Simulator()
    meter = ThroughputMeter(sim, window=0.5)
    src = CBRSource(sim, "cbr", dst="d", rate=4e6, packet_size=1000, ip="s")
    sink = PacketSink(sim, "sink", ip="d", on_packet=meter)
    link = Link(sim, "l", bandwidth=100e6, delay=0.0)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.run(until=3.0)
    src.stop()
    _, bps = meter.series()
    assert len(bps) >= 5
    assert meter.mean_throughput() == pytest.approx(4e6, rel=0.05)


def test_throughput_meter_rejects_bad_window():
    sim = Simulator()
    with pytest.raises(ValueError):
        ThroughputMeter(sim, window=0.0)


def test_latency_probe_watch_drops_counts_per_flow():
    sim = Simulator()
    probe = LatencyProbe(sim).watch_drops()
    src = CBRSource(sim, "cbr", dst="d", rate=1e6, packet_size=1000, ip="s")
    sink = PacketSink(sim, "sink", ip="d", on_packet=probe)
    link = Link(sim, "l", bandwidth=10e6, delay=0.005)
    src.attach("out", link)
    sink.attach("in", link)
    src.start()
    sim.schedule(0.05, link.set_up, False)       # cut mid-run
    sim.run(until=0.1)
    src.stop()
    stats = probe.flow(src.flow_id)
    assert stats.packets > 0 and stats.drops > 0
    assert 0.0 < stats.loss_rate < 1.0
    assert probe.lost == stats.drops
    assert probe.lost_reasons == {"link-down": stats.drops}
    with pytest.raises(RuntimeError):
        probe.watch_drops()                      # double-watch is a bug
    probe.close()
    probe.close()                                # close is idempotent
