"""Tests for alternative proximity technologies (paper Section 8)."""

import numpy as np
import pytest

from repro.core.device_manager import AcaciaDeviceManager, ServiceInfo
from repro.core.mrs import MecRegistrationServer
from repro.core.network import MobileNetwork
from repro.core.service import CIService
from repro.d2d.beacons import (IBEACON, LTE_DIRECT, TECHNOLOGIES,
                               WIFI_AWARE, BeaconScanner)
from repro.d2d.channel import D2DChannel, Publisher, Subscriber
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import DiscoveryMessage
from repro.d2d.modem import LteDirectModem
from repro.sim.engine import Simulator

NS = ExpressionNamespace()


def make_message(offering="laptops"):
    return DiscoveryMessage(publisher_id="lm1", service_name="acme-retail",
                            code=NS.code("acme-retail", offering),
                            payload=f"section={offering}")


class TestTechnologyProfiles:
    def test_three_technologies_registered(self):
        assert set(TECHNOLOGIES) == {"lte-direct", "ibeacon", "wifi-aware"}

    def test_range_ordering(self):
        """LTE-direct's licensed-band power gives it the longest range."""
        assert LTE_DIRECT.radio.max_range() > WIFI_AWARE.radio.max_range() \
            > IBEACON.radio.max_range()

    def test_ibeacon_is_short_range(self):
        assert IBEACON.radio.max_range() < 25.0

    def test_only_lte_direct_filters_in_modem(self):
        assert LTE_DIRECT.modem_filtering
        assert not IBEACON.modem_filtering
        assert not WIFI_AWARE.modem_filtering

    def test_beacons_advertise_faster(self):
        assert IBEACON.advertise_period < WIFI_AWARE.advertise_period \
            < LTE_DIRECT.advertise_period


class TestBeaconScanner:
    def test_same_api_as_modem_delivers_matches(self):
        scanner = BeaconScanner("phone")
        seen = []
        scanner.subscribe("x", NS.offering_filter("acme-retail", "laptops"),
                          seen.append)
        scanner.receive_broadcast(make_message(), -60.0, 20.0, 1.0)
        assert len(seen) == 1

    def test_host_wakeups_count_every_broadcast(self):
        """The scalability difference: host-side filtering wakes the app
        processor on every decodable broadcast, matching or not."""
        scanner = BeaconScanner("phone")
        scanner.subscribe("x", NS.offering_filter("acme-retail", "laptops"),
                          lambda o: None)
        scanner.receive_broadcast(make_message("laptops"), -60, 20, 1.0)
        scanner.receive_broadcast(make_message("toys"), -60, 20, 2.0)
        scanner.receive_broadcast(make_message("shoes"), -60, 20, 3.0)
        assert scanner.host_wakeups == 3
        assert scanner.delivered == 1

        modem = LteDirectModem("phone")
        modem.subscribe("x", NS.offering_filter("acme-retail", "laptops"),
                        lambda o: None)
        modem.receive_broadcast(make_message("laptops"), -60, 20, 1.0)
        modem.receive_broadcast(make_message("toys"), -60, 20, 2.0)
        modem.receive_broadcast(make_message("shoes"), -60, 20, 3.0)
        assert modem.host_wakeups == 1       # only the match

    def test_unsubscribe_and_clear(self):
        scanner = BeaconScanner("phone")
        scanner.subscribe("x", NS.service_filter("acme-retail"),
                          lambda o: None)
        assert scanner.subscription_count == 1
        scanner.unsubscribe("x")
        assert scanner.subscription_count == 0

    def test_scanner_works_in_channel(self):
        """A Subscriber can carry a BeaconScanner instead of a modem."""
        sim = Simulator()
        channel = D2DChannel(sim, IBEACON.radio,
                             rng=np.random.default_rng(0))
        publisher = Publisher("beacon-1", (0.0, 0.0), make_message(),
                              period=IBEACON.advertise_period)
        scanner = BeaconScanner("phone")
        seen = []
        scanner.subscribe("x", NS.offering_filter("acme-retail", "laptops"),
                          seen.append)
        subscriber = Subscriber("phone", (5.0, 0.0), modem=scanner)
        channel.add_publisher(publisher, start=0.0)
        channel.add_subscriber(subscriber)
        sim.run(until=5.0)
        assert len(seen) >= 8        # 0.5 s advertising period


class TestLaunchTrigger:
    """Section 8: ACACIA without proximity discovery -- app launch as
    the connectivity trigger."""

    def build(self):
        network = MobileNetwork()
        network.add_mec_site("mec")
        network.add_server("ar-server", site_name="mec", echo=True)
        mrs = MecRegistrationServer(network)
        mrs.register_service(CIService("ar-retail", "acme-retail"))
        mrs.deploy_instance("ar-retail", "ar-server", "mec")
        ue = network.add_ue()
        return network, mrs, ue, AcaciaDeviceManager(ue, mrs)

    def test_connect_on_register_creates_bearer_immediately(self):
        network, mrs, ue, manager = self.build()
        sessions = []
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", []),
            on_discovery=lambda o: None, on_connected=sessions.append,
            connect_on_register=True)
        assert len(sessions) == 1
        assert mrs.session_for(ue, "ar-retail") is not None
        assert len(ue.bearers) == 2

    def test_discovery_after_launch_trigger_does_not_reconnect(self):
        network, mrs, ue, manager = self.build()
        sessions = []
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", ["laptops"]),
            on_discovery=lambda o: None, on_connected=sessions.append,
            connect_on_register=True)
        manager.modem.receive_broadcast(make_message("laptops"),
                                        -60, 20, 1.0)
        assert len(sessions) == 1

    def test_unregister_still_releases(self):
        network, mrs, ue, manager = self.build()
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", []),
            on_discovery=lambda o: None, connect_on_register=True)
        manager.unregister_app("app")
        assert mrs.session_for(ue, "ar-retail") is None

    def test_device_manager_over_beacon_scanner(self):
        """The device manager is technology-agnostic: swap the modem
        for a host-side beacon scanner and discovery still triggers
        connectivity."""
        network, mrs, ue, _ = self.build()
        scanner = BeaconScanner(ue.name)
        manager = AcaciaDeviceManager(ue, mrs, modem=scanner)
        sessions = []
        manager.register_app(
            ServiceInfo("app", "ar-retail", "acme-retail", ["laptops"]),
            on_discovery=lambda o: None, on_connected=sessions.append)
        scanner.receive_broadcast(make_message("laptops"), -60, 20, 1.0)
        assert len(sessions) == 1
        assert mrs.session_for(ue, "ar-retail") is not None
