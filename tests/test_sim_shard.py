"""Sharded execution: determinism, deadlock freedom, runner wiring.

The load-bearing property is byte-identity: a sharded run must produce
exactly the result of the single-process run, on every preset, under
either scheduler.  The differential tests here drive the same worlds
through both backends and compare canonical digests (plus the
execution-order cross-delivery traces embedded in them).
"""

import random

import pytest

from repro.core.network import wan_link_name
from repro.exp.runner import (ExperimentRunner, _wants_isolation, run_trial,
                              shard_width)
from repro.exp.spec import ExperimentSpec, TrialSpec
from repro.exp.workloads import get as get_workload
from repro.sim.context import SimContext
from repro.sim.shard import (Conduit, ShardSpec, ShardedSimulator,
                             canonical_digest, run_isolated)


# ---------------------------------------------------------------------------
# a minimal shard app (module-level: specs cross process boundaries)
# ---------------------------------------------------------------------------

class TickApp:
    """Sends a tick to each peer every ``interval``; counts arrivals."""

    def __init__(self, port, seed=0, interval=0.25, peers=(),
                 until=1e9):
        self.sim = SimContext(seed=seed).sim
        self.port = port
        self.received = []
        self.sent = 0

        def tick(k=0):
            if self.sim.now > until:
                return
            for peer in peers:
                self.port.send(peer, {"k": k})
                self.sent += 1
            self.sim.schedule(interval, tick, k + 1)

        self.sim.schedule(0.1, tick)

    def deliver(self, src, payload):
        self.received.append([round(self.sim.now, 9), src, payload["k"]])

    def collect(self):
        return {"sent": self.sent, "received": self.received,
                "events": self.sim.events_run, "now": self.sim.now}


def _pair(backend, peers_a=("b",), peers_b=("a",), delay=0.05):
    specs = [ShardSpec("a", TickApp,
                       {"seed": 1, "interval": 0.2, "peers": list(peers_a)}),
             ShardSpec("b", TickApp,
                       {"seed": 2, "interval": 0.3, "peers": list(peers_b)})]
    return ShardedSimulator(specs, [Conduit("a", "b", delay)],
                            backend=backend)


# ---------------------------------------------------------------------------
# protocol basics
# ---------------------------------------------------------------------------

def test_inline_and_process_backends_are_byte_identical():
    runs = {}
    for backend in ("inline", "process"):
        sharded = _pair(backend)
        runs[backend] = (sharded.run(until=3.0), sharded)
    r_inline, s_inline = runs["inline"]
    r_process, s_process = runs["process"]
    assert canonical_digest(r_inline) == canonical_digest(r_process)
    assert s_inline.rounds == s_process.rounds
    assert s_inline.envelopes_sent == s_process.envelopes_sent
    assert r_inline["a"]["received"], "cross traffic never arrived"


def test_envelopes_arrive_at_true_delivery_times():
    result = _pair("inline", delay=0.05).run(until=1.0)
    # a ticks at 0.1, 0.3, 0.5, ...; b receives each 50 ms later
    times = [entry[0] for entry in result["b"]["received"]]
    assert times == pytest.approx([0.15, 0.35, 0.55, 0.75, 0.95])
    ticks = [entry[2] for entry in result["b"]["received"]]
    assert ticks == sorted(ticks)


def test_zero_cross_traffic_pair_does_not_deadlock():
    sharded = _pair("process", peers_a=(), peers_b=())
    result = sharded.run(until=2.0)
    assert result["a"]["sent"] == 0 and result["b"]["sent"] == 0
    assert not result["a"]["received"] and not result["b"]["received"]
    assert result["a"]["now"] >= 2.0 or result["a"]["events"] > 0


def test_undeliverable_envelopes_drop_identically():
    counts = {}
    for backend in ("inline", "process"):
        sharded = _pair(backend)
        sharded.run(until=0.11)     # ticks at 0.1 deliver at 0.15 > horizon
        counts[backend] = (sharded.envelopes_sent, sharded.envelopes_dropped)
    assert counts["inline"] == counts["process"]
    assert counts["inline"][1] > 0


def test_shard_child_failure_surfaces_with_traceback():
    specs = [ShardSpec("a", TickApp, {"peers": ["missing"]}),
             ShardSpec("b", TickApp, {})]
    sharded = ShardedSimulator(specs, [Conduit("a", "b", 0.05)],
                               backend="process")
    with pytest.raises(RuntimeError, match="no conduit to 'missing'"):
        sharded.run(until=1.0)


def test_federation_validation():
    spec = ShardSpec("a", TickApp, {})
    with pytest.raises(ValueError, match="at least one shard"):
        ShardedSimulator([])
    with pytest.raises(ValueError, match="duplicate shard names"):
        ShardedSimulator([spec, ShardSpec("a", TickApp, {})])
    with pytest.raises(ValueError, match="not a shard"):
        ShardedSimulator([spec], [Conduit("a", "ghost", 0.1)])
    with pytest.raises(ValueError, match="unknown backend"):
        ShardedSimulator([spec], backend="thread")
    with pytest.raises(ValueError, match="positive delay"):
        Conduit("a", "b", 0.0)
    with pytest.raises(ValueError, match="endpoints must differ"):
        Conduit("a", "a", 0.1)


def test_no_conduits_means_one_window():
    specs = [ShardSpec("a", TickApp, {"seed": 1}),
             ShardSpec("b", TickApp, {"seed": 2})]
    sharded = ShardedSimulator(specs)           # infinite lookahead
    result = sharded.run(until=5.0)
    assert sharded.rounds == 1
    assert result["a"]["events"] > 0


# ---------------------------------------------------------------------------
# randomized differential: the fabric workload, off vs site, both
# schedulers
# ---------------------------------------------------------------------------

def _fabric_trial(sharding, seed, n_sites=3):
    return TrialSpec(experiment="diff", index=0, workload="shard_fabric",
                     base_seed=0, seed=seed,
                     params=(("sharding", sharding), ("n_sites", n_sites),
                             ("n_ues", 2), ("duration", 1.5),
                             ("wan_delay", 0.05), ("sync_interval", 0.4)))


@pytest.mark.parametrize("scheduler", ["fast", "reference"])
def test_shard_fabric_differential_randomized(scheduler, monkeypatch):
    """Same 3-site workload, sharding=off vs site, random seeds: the
    execution-order cross-delivery traces and full result digests must
    match exactly, under either scheduler."""
    monkeypatch.setenv("REPRO_SIM_SCHEDULER", scheduler)
    fn = get_workload("shard_fabric")
    for seed in random.Random(20260808).sample(range(10_000), 2):
        off = fn(_fabric_trial("off", seed))
        site = fn(_fabric_trial("site", seed))
        for name in off["sites"]:
            assert off["sites"][name]["sync_trace"] == \
                site["sites"][name]["sync_trace"]
        assert canonical_digest(off) == canonical_digest(site)
        assert off["sites"]["edge0"]["sync_received"] > 0
        assert off["sites"]["edge0"]["pings_answered"] > 0


def test_shard_fabric_scheduler_invariant(monkeypatch):
    digests = {}
    fn = get_workload("shard_fabric")
    for scheduler in ("fast", "reference"):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", scheduler)
        digests[scheduler] = canonical_digest(fn(_fabric_trial("off", 11)))
    assert digests["fast"] == digests["reference"]


def test_shard_fabric_result_carries_no_backend_marker():
    result = get_workload("shard_fabric")(_fabric_trial("off", 3))
    assert "sharding" not in result and "backend" not in result


# ---------------------------------------------------------------------------
# degenerate isolation + runner wiring
# ---------------------------------------------------------------------------

def _double(x):
    return {"doubled": 2 * x}


def _boom():
    raise RuntimeError("inner detail")


def test_run_isolated_returns_value_and_propagates_errors():
    assert run_isolated(_double, 21) == {"doubled": 42}
    with pytest.raises(RuntimeError, match="inner detail"):
        run_isolated(_boom)


def _scale_trial(extra=()):
    return TrialSpec(experiment="x", index=0, workload="scale",
                     base_seed=0, seed=5,
                     params=(("n_ues", 3), ("pings", 2)) + tuple(extra))


def test_runner_isolates_monolithic_site_trials():
    off = _scale_trial()
    site = _scale_trial((("sharding", "site"),))
    assert not _wants_isolation(off)
    assert _wants_isolation(site)
    r_off, r_site = run_trial(off), run_trial(site)
    assert r_off.status == "ok", r_off.error
    assert r_site.status == "ok", r_site.error
    assert canonical_digest(r_off.metrics) == canonical_digest(r_site.metrics)


def test_runner_never_isolates_the_shard_fleet_workload():
    assert not _wants_isolation(_fabric_trial("site", 0))


def test_worker_budget_divides_by_shard_width():
    assert shard_width(_fabric_trial("site", 0, n_sites=4)) == 4
    assert shard_width(_fabric_trial("off", 0, n_sites=4)) == 1
    assert shard_width(_scale_trial()) == 1
    spec = ExperimentSpec(name="b", workload="shard_fabric", seeds=(0,),
                          params={"sharding": "site", "n_sites": 4,
                                  "n_ues": 2, "duration": 0.5})
    runner = ExperimentRunner(spec, workers=8)
    assert runner.effective_workers(spec.trials()) == 2
    runner = ExperimentRunner(spec, workers=2)
    assert runner.effective_workers(spec.trials()) == 1


def test_sharding_config_validation():
    from repro.core.config import SimConfig
    assert SimConfig().sharding == "off"
    assert SimConfig(sharding="site").sharding == "site"
    with pytest.raises(ValueError, match="unknown sharding mode"):
        SimConfig(sharding="cell")


# ---------------------------------------------------------------------------
# satellite: precomputed WAN routing table
# ---------------------------------------------------------------------------

def test_wan_links_table_matches_named_links():
    from repro.baselines.deployments import build_edge_fabric
    network = build_edge_fabric(n_sites=3, enbs_per_site=1, seed=0).network
    sites = sorted(network.edge_sites)
    assert len(network.wan_links) == len(sites) * (len(sites) - 1)
    for a in sites:
        for b in sites:
            if a == b:
                assert (a, b) not in network.wan_links
                continue
            link = network.wan_links[(a, b)]
            assert link is network.wan_links[(b, a)]
            assert link is network.links[wan_link_name(a, b)]
    future = network.context_transfer_async("edge0", "edge2", 100_000)
    network.sim.run()
    assert future.done and future.value == 100_000
