"""Tests for walk-driven mobility and automatic handover."""

import pytest

from repro.apps.mobility import MobilityManager
from repro.apps.scenario import WalkPath
from repro.core.network import MobileNetwork, Pinger
from repro.sim.packet import Packet

#: Two cells at opposite ends of a 100 m corridor.
ENB_POSITIONS = {"enb0": (0.0, 0.0), "enb1": (100.0, 0.0)}


@pytest.fixture()
def setup():
    network = MobileNetwork()
    network.add_enb("enb1")
    manager = MobilityManager(network, ENB_POSITIONS,
                              update_interval=1.0, hysteresis=3.0)
    ue = network.add_ue()       # attaches at enb0
    return network, manager, ue


def walk_across(speed=5.0):
    return WalkPath([(0.0, 0.0), (100.0, 0.0)], speed=speed)


def test_walk_triggers_one_handover(setup):
    network, manager, ue = setup
    user = manager.add_mobile(ue, walk_across())
    network.sim.run(until=25.0)
    assert len(user.handovers) == 1
    _, source, target = user.handovers[0]
    assert (source, target) == ("enb0", "enb1")
    assert network.mme.context(ue.imsi).enb.name == "enb1"


def test_handover_happens_near_midpoint(setup):
    network, manager, ue = setup
    user = manager.add_mobile(ue, walk_across(speed=5.0))
    network.sim.run(until=25.0)
    ho_time = user.handovers[0][0]
    position = user.position_at(ho_time)
    # midpoint 50 m + 1.5 m hysteresis margin, quantised by the 1 s tick
    assert 50.0 <= position[0] <= 60.0


def test_no_pingpong_at_cell_edge(setup):
    """A user loitering at the midpoint must not bounce between cells."""
    network, manager, ue = setup
    loiter = WalkPath([(49.0, 0.0), (52.0, 0.0), (49.0, 0.0),
                       (52.0, 0.0), (49.0, 0.0)], speed=0.5)
    user = manager.add_mobile(ue, loiter)
    network.sim.run(until=loiter.duration + 2.0)
    assert len(user.handovers) <= 1


def test_db_hysteresis_blocks_marginal_handover(setup):
    """A dB margin stricter than the distance margin delays handover.

    Just past the midpoint the neighbour is barely closer, so its
    log-distance power advantage is well under 10 dB; a walker that
    stops there must stay on the serving cell.
    """
    network, _, ue = setup
    manager = MobilityManager(network, ENB_POSITIONS,
                              update_interval=1.0, hysteresis=3.0,
                              hysteresis_db=10.0)
    stop_short = WalkPath([(0.0, 0.0), (56.0, 0.0)], speed=5.0)
    user = manager.add_mobile(ue, stop_short)
    network.sim.run(until=stop_short.duration + 5.0)
    assert user.handovers == []
    assert network.mme.context(ue.imsi).enb.name == "enb0"


def test_db_hysteresis_allows_clear_winner(setup):
    network, _, ue = setup
    manager = MobilityManager(network, ENB_POSITIONS,
                              update_interval=1.0, hysteresis=3.0,
                              hysteresis_db=10.0)
    user = manager.add_mobile(ue, walk_across(speed=5.0))
    network.sim.run(until=30.0)
    assert len(user.handovers) == 1
    ho_time = user.handovers[0][0]
    position = user.position_at(ho_time)
    # 10 dB at exponent 3 needs d_serving/d_neighbour > 10**(1/3) ~ 2.15:
    # later than the distance-only midpoint crossing
    assert position[0] > 60.0


def test_db_hysteresis_default_preserves_distance_only(setup):
    network, _, ue = setup
    manager = MobilityManager(network, ENB_POSITIONS,
                              update_interval=1.0, hysteresis=3.0)
    assert manager.hysteresis_db == 0.0
    user = manager.add_mobile(ue, walk_across(speed=5.0))
    network.sim.run(until=25.0)
    position = user.position_at(user.handovers[0][0])
    assert 50.0 <= position[0] <= 60.0


def test_db_hysteresis_validation():
    network = MobileNetwork()
    with pytest.raises(ValueError, match="hysteresis_db"):
        MobilityManager(network, {"enb0": (0.0, 0.0)}, hysteresis_db=-1.0)
    with pytest.raises(ValueError, match="path_loss_exponent"):
        MobilityManager(network, {"enb0": (0.0, 0.0)},
                        path_loss_exponent=0.0)


def test_idle_ue_not_handed_over(setup):
    network, manager, ue = setup
    network.control_plane.release_to_idle(ue)
    user = manager.add_mobile(ue, walk_across())
    network.sim.run(until=25.0)
    assert user.handovers == []


def test_traffic_survives_the_walk(setup):
    network, manager, ue = setup
    manager.add_mobile(ue, walk_across(speed=5.0))
    pinger = Pinger(network, ue, "internet", interval=0.5)
    pinger.run(count=40)
    network.sim.run(until=25.0)
    # the handover may cost at most a ping or two in flight
    assert len(pinger.rtts) >= 38


def test_customer_position_follows_walk(setup):
    network, manager, ue = setup

    class FakeCustomer:
        def __init__(self):
            self.positions = []

        def move_to(self, position):
            self.positions.append(position)

    customer = FakeCustomer()
    manager.add_mobile(ue, walk_across(speed=10.0), customer=customer)
    network.sim.run(until=12.0)
    assert len(customer.positions) >= 10
    xs = [p[0] for p in customer.positions]
    assert xs == sorted(xs)
    assert xs[-1] == pytest.approx(100.0, abs=1.0)


def test_remove_mobile_stops_updates(setup):
    network, manager, ue = setup
    user = manager.add_mobile(ue, walk_across(speed=1.0))
    network.sim.run(until=3.0)
    manager.remove_mobile(ue.name)
    network.sim.run(until=30.0)
    assert user.handovers == []     # never reached the midpoint


def test_unknown_enb_position_rejected(setup):
    network, manager, ue = setup
    with pytest.raises(ValueError):
        MobilityManager(network, {"enb9": (0.0, 0.0)})


def test_invalid_interval_rejected(setup):
    network, manager, ue = setup
    with pytest.raises(ValueError):
        MobilityManager(network, ENB_POSITIONS, update_interval=0.0)
