"""Timing tests for the UE's RRC idle cycle through the simulator."""

import pytest

from repro.core.config import NetworkConfig
from repro.core.network import MobileNetwork
from repro.epc.overhead import LTE_IDLE_TIMEOUT
from repro.sim.packet import Packet


def build(idle_timeout=None):
    network = MobileNetwork(NetworkConfig(seed=3))
    ue = network.add_ue(manage_idle=True)
    if idle_timeout is not None:
        ue.idle_timeout = idle_timeout
    return network, ue


def send_one(network, ue):
    internet = network.servers["internet"]
    ue.send_app(Packet(src=ue.ip, dst=internet.ip, size=100,
                       created_at=network.sim.now))


def test_default_idle_timeout_matches_lte():
    network, ue = build()
    assert ue.idle_timeout == LTE_IDLE_TIMEOUT == 11.576


def test_ue_goes_idle_after_inactivity():
    network, ue = build(idle_timeout=2.0)
    send_one(network, ue)
    network.sim.run(until=1.0)
    assert ue.rrc_connected
    network.sim.run(until=5.0)
    assert not ue.rrc_connected
    assert network.mme.context(ue.imsi).state == "idle"


def test_activity_resets_idle_timer():
    network, ue = build(idle_timeout=2.0)
    # attach consumed measured signalling time, so offsets are from now
    t0 = network.sim.now
    for t in (0.0, 1.5, 3.0, 4.5):
        network.sim.schedule_at(t0 + t, send_one, network, ue)
    network.sim.run(until=t0 + 5.5)
    assert ue.rrc_connected          # gaps never exceeded 2 s
    network.sim.run(until=t0 + 9.0)
    assert not ue.rrc_connected


def test_downlink_traffic_keeps_ue_connected():
    network, ue = build(idle_timeout=3.0)
    # replies from the echo server arrive ~70 ms after each send; the
    # last reply restarts the timer too
    send_one(network, ue)
    network.sim.run(until=2.9)
    assert ue.rrc_connected


def test_idle_cycle_emits_calibrated_messages():
    network, ue = build(idle_timeout=2.0)
    send_one(network, ue)
    before = len(network.ledger)
    network.sim.run(until=20.0)          # goes idle
    release_msgs = network.ledger.messages[before:]
    assert len(release_msgs) == 7        # the calibrated release set
    send_one(network, ue)                # promotion
    assert ue.promotions == 1
    total = network.ledger.messages[before:]
    assert len(total) == 15
    assert sum(m.size for m in total) == 2914


def test_repeated_cycles_accumulate_overhead():
    network, ue = build(idle_timeout=1.0)
    t = network.sim.now                   # attach already consumed time
    for _ in range(3):
        network.sim.schedule_at(t, send_one, network, ue)
        t += 5.0                          # long gap -> idle in between
    before = len(network.ledger)
    network.sim.run(until=20.0)
    cycle_msgs = [m for m in network.ledger.messages[before:]]
    # 3 releases (7 each) + 2 promotions (8 each) = 37
    assert len(cycle_msgs) == 3 * 7 + 2 * 8
    assert ue.promotions == 2


def test_promotion_latency_applied():
    network, ue = build(idle_timeout=1.0)
    send_one(network, ue)
    network.sim.run(until=10.0)
    assert not ue.rrc_connected
    replies = []
    ue.on_downlink = lambda p: replies.append(network.sim.now)
    t0 = network.sim.now
    send_one(network, ue)
    network.sim.run(until=t0 + 2.0)
    assert len(replies) == 1
    rtt = replies[0] - t0
    assert rtt > ue.promotion_delay
    assert rtt == pytest.approx(ue.promotion_delay + 0.07, abs=0.03)
