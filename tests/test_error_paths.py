"""Error-path and edge-case coverage across the data plane."""

import pytest

from repro.core.network import MobileNetwork
from repro.epc.enodeb import ENodeB
from repro.epc.gtp import gtp_encapsulate
from repro.epc.identifiers import FTeid
from repro.epc.ue import UEDevice
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import PacketSink
from repro.sim.packet import Packet


class TestUEDeviceErrors:
    def test_send_before_attach_raises(self):
        sim = Simulator()
        ue = UEDevice(sim, "ue", imsi="310410000000001")
        with pytest.raises(RuntimeError, match="not attached"):
            ue.send_app(Packet(src="x", dst="y", size=1))

    def test_unrouted_uplink_counted(self):
        """A packet matching no bearer is dropped at the modem."""
        network = MobileNetwork()
        ue = network.add_ue()
        default = ue.bearers.default_bearer()
        default.active = False          # nothing to classify onto
        ue.rrc_connected = True         # avoid the promotion path
        ue.control_plane = None
        ue.send_app(Packet(src=ue.ip, dst="9.9.9.9", size=10))
        assert ue.unrouted_uplink == 1

    def test_remove_unknown_bearer_raises(self):
        network = MobileNetwork()
        ue = network.add_ue()
        with pytest.raises(KeyError):
            ue.remove_bearer(14)


class TestENodeBErrors:
    def build(self):
        sim = Simulator()
        enb = ENodeB(sim, "enb", ip="192.168.1.1")
        sink = PacketSink(sim, "sgw", ip="172.16.0.1")
        link = Link(sim, "s1", bandwidth=1e9, delay=0.0)
        enb.attach("s1", link)
        sink.attach("in", link)
        return sim, enb, sink

    def test_uplink_without_bearer_mapping_dropped(self):
        sim, enb, sink = self.build()
        packet = Packet(src="10.45.0.1", dst="x", size=10,
                        meta={"ebi": 5})
        enb.receive(packet, link=None)
        assert enb.unrouted == 1
        assert sink.received == []

    def test_uplink_without_ebi_meta_dropped(self):
        sim, enb, sink = self.build()
        enb.receive(Packet(src="10.45.0.1", dst="x", size=10), link=None)
        assert enb.unrouted == 1

    def test_downlink_unknown_teid_dropped(self):
        sim, enb, sink = self.build()
        packet = gtp_encapsulate(Packet(src="s", dst="10.45.0.1", size=10),
                                 0xdead, "172.16.0.1", enb.ip)
        enb.receive(packet, link=None)
        assert enb.unrouted == 1

    def test_setup_bearer_requires_registered_ue(self):
        sim, enb, sink = self.build()
        with pytest.raises(KeyError, match="not registered"):
            enb.setup_bearer("10.45.0.9", 5,
                             FTeid(1, "172.16.0.1"), "s1")

    def test_release_unknown_bearer_is_noop(self):
        sim, enb, sink = self.build()
        enb.release_bearer("10.45.0.9", 5)      # must not raise

    def test_downlink_to_unregistered_radio_dropped(self):
        sim, enb, sink = self.build()
        enb.radio_ports["10.45.0.1"] = "radio:x"
        fteid = enb.setup_bearer("10.45.0.1", 5,
                                 FTeid(7, "172.16.0.1"), "s1")
        del enb.radio_ports["10.45.0.1"]        # radio link went away
        packet = gtp_encapsulate(Packet(src="s", dst="10.45.0.1", size=10),
                                 fteid.teid, "172.16.0.1", enb.ip)
        enb.receive(packet, link=None)
        assert enb.unrouted == 1


class TestNetworkBuilderErrors:
    def test_unknown_server_route_rejected(self):
        network = MobileNetwork()
        ue = network.add_ue()
        with pytest.raises(KeyError):
            network.route_via_default_bearer(ue, "nope")

    def test_route_to_non_central_server_rejected(self):
        network = MobileNetwork()
        network.add_mec_site("mec")
        network.add_server("edge-server", site_name="mec")
        ue = network.add_ue()
        with pytest.raises(ValueError, match="central"):
            network.route_via_default_bearer(ue, "edge-server")

    def test_bearer_to_site_without_server_fails_loudly(self):
        from repro.epc.entities import ServicePolicy
        network = MobileNetwork()
        network.pcrf.configure(ServicePolicy("svc", qci=7))
        network.add_mec_site("empty-mec")       # no server attached
        ue = network.add_ue()
        with pytest.raises(RuntimeError, match="SGi destination"):
            network.control_plane.activate_dedicated_bearer(
                ue, "svc", "1.2.3.4", "empty-mec")

    def test_route_via_default_to_primary_server_is_noop(self):
        network = MobileNetwork()
        ue = network.add_ue()
        central = network.sgwc.site("central")
        before = len(central.pgw_u.table)
        network.route_via_default_bearer(ue, "internet")
        assert len(central.pgw_u.table) == before
