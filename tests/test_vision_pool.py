"""MatcherPool: deterministic parallel matching."""

import numpy as np
import pytest

from repro.vision.batch import CandidateMatrixCache
from repro.vision.camera import R480x360
from repro.vision.features import FeatureExtractor, ObjectModel
from repro.vision.pool import MatcherPool, build_pool_matcher


@pytest.fixture(scope="module")
def jobs():
    rng = np.random.default_rng(0)
    models = []
    for k in range(8):
        desc = rng.normal(size=(24, 64))
        desc /= np.linalg.norm(desc, axis=1, keepdims=True)
        models.append(ObjectModel(name=f"obj-{k}", descriptors=desc,
                                  keypoints=rng.uniform(0, 300, (24, 2)),
                                  seed=k))
    extractor = FeatureExtractor(np.random.default_rng(1))
    frames = [extractor.frame_of(models[k % len(models)], R480x360)
              for k in range(6)]
    return [(frame, models) for frame in frames]


def outcome_tuple(outcome):
    if outcome is None:
        return None
    return (outcome.object_name, outcome.good_matches,
            outcome.symmetric_matches, outcome.inliers, outcome.accepted)


def serial_expected(jobs, engine="batch", seed=1234):
    results = []
    for index, (frame, models) in enumerate(jobs):
        matcher = build_pool_matcher(engine, seed, index)
        results.append(matcher.match_frame(frame, models))
    return [outcome_tuple(o) for o in results]


def test_thread_pool_matches_serial(jobs):
    expected = serial_expected(jobs)
    with MatcherPool(workers=3, kind="thread") as pool:
        actual = [outcome_tuple(o) for o in pool.match_frames(jobs)]
    assert actual == expected


def test_results_independent_of_worker_count(jobs):
    with MatcherPool(workers=1, kind="thread") as one:
        first = [outcome_tuple(o) for o in one.match_frames(jobs)]
    with MatcherPool(workers=4, kind="thread") as four:
        second = [outcome_tuple(o) for o in four.match_frames(jobs)]
    assert first == second


def test_reference_engine_agrees_with_batch(jobs):
    assert (serial_expected(jobs, engine="batch")
            == serial_expected(jobs, engine="reference"))


def test_shared_cache_is_used(jobs):
    cache = CandidateMatrixCache()
    with MatcherPool(workers=2, kind="thread", cache=cache) as pool:
        pool.match_frames(jobs)
    stats = cache.stats()
    # concurrent first lookups may each miss (stacks build outside the
    # lock), but the single candidate set collapses to one entry and
    # later jobs hit it
    assert 1 <= stats["misses"] <= 2
    assert stats["entries"] == 1
    assert stats["hits"] >= len(jobs) - stats["misses"]


def test_process_pool_matches_serial(jobs):
    subset = jobs[:2]
    expected = serial_expected(subset)
    with MatcherPool(workers=2, kind="process") as pool:
        actual = [outcome_tuple(o) for o in pool.match_frames(subset)]
    assert actual == expected


def test_empty_jobs(jobs):
    with MatcherPool(workers=2) as pool:
        assert pool.match_frames([]) == []


# ---------------------------------------------------------------------------
# Lifecycle: drain / close / submit (regression: workers used to leak
# when a pool was abandoned without shutdown)
# ---------------------------------------------------------------------------

def test_no_worker_thread_survives_pool_shutdown(jobs):
    import threading
    before = {t.ident for t in threading.enumerate()}
    pool = MatcherPool(workers=3, kind="thread")
    pool.match_frames(jobs)
    during = [t for t in threading.enumerate() if t.ident not in before]
    assert during, "expected live worker threads while the pool is open"
    pool.close()
    leaked = [t for t in threading.enumerate()
              if t.ident not in before and t.is_alive()]
    assert leaked == [], f"threads survived close(): {leaked}"
    assert pool.closed


def test_drain_completes_inflight_and_pool_stays_usable(jobs):
    expected = serial_expected(jobs)
    pool = MatcherPool(workers=2, kind="thread")
    futures = [pool.submit(i, frame, models)
               for i, (frame, models) in enumerate(jobs)]
    pool.drain()
    assert pool.inflight == 0
    assert all(f.done() for f in futures)
    assert [outcome_tuple(f.result()) for f in futures] == expected
    # drained, not closed: new work is still accepted
    again = pool.match_frames(jobs)
    assert [outcome_tuple(o) for o in again] == expected
    pool.close()


def test_submit_matches_match_frames_determinism(jobs):
    expected = serial_expected(jobs)
    with MatcherPool(workers=3, kind="thread") as pool:
        futures = [pool.submit(i, frame, models)
                   for i, (frame, models) in enumerate(jobs)]
        actual = [outcome_tuple(f.result()) for f in futures]
    assert actual == expected


def test_close_is_idempotent_and_rejects_new_work(jobs):
    pool = MatcherPool(workers=2, kind="thread")
    pool.match_frames(jobs[:2])
    pool.close()
    pool.close()    # second close is a no-op
    with pytest.raises(RuntimeError, match="closed"):
        pool.match_frames(jobs[:1])
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(0, *jobs[0])


def test_close_without_ever_running_is_fine():
    pool = MatcherPool(workers=2, kind="thread")
    pool.close()
    assert pool.closed
    assert pool.inflight == 0


def test_invalid_kind_and_engine():
    with pytest.raises(ValueError, match="pool kind"):
        MatcherPool(kind="fiber")
    with pytest.raises(ValueError, match="pool engine"):
        MatcherPool(engine="gpu")
    with pytest.raises(ValueError, match="pool engine"):
        build_pool_matcher("gpu", 0, 0)
