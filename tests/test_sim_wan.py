"""Unit tests for empirical WAN (LTE-to-EC2) models."""

import numpy as np
import pytest

from repro.sim.wan import LTE_WAN_PROFILES, WANProfile, rtt_cdf


def test_profiles_cover_three_regions():
    assert set(LTE_WAN_PROFILES) == {
        "ec2-california", "ec2-oregon", "ec2-virginia"}


def test_california_median_near_70ms():
    profile = LTE_WAN_PROFILES["ec2-california"]
    assert profile.median_rtt() == pytest.approx(0.070, abs=0.005)


def test_region_ordering_matches_paper():
    """CA < OR < VA in median RTT; CA has the highest uplink."""
    ca = LTE_WAN_PROFILES["ec2-california"]
    om = LTE_WAN_PROFILES["ec2-oregon"]
    va = LTE_WAN_PROFILES["ec2-virginia"]
    assert ca.median_rtt() < om.median_rtt() < va.median_rtt()
    assert (ca.ul_bandwidth("excellent") > om.ul_bandwidth("excellent")
            > va.ul_bandwidth("excellent"))


def test_samples_respect_floor():
    profile = LTE_WAN_PROFILES["ec2-california"]
    rng = np.random.default_rng(0)
    samples = profile.sample_rtt(rng, 10_000)
    assert samples.min() > profile.base_rtt
    assert np.median(samples) == pytest.approx(profile.median_rtt(), rel=0.05)


def test_fair_signal_halves_bandwidth_roughly():
    for profile in LTE_WAN_PROFILES.values():
        ratio = profile.ul_bandwidth("fair") / profile.ul_bandwidth("excellent")
        assert 0.4 <= ratio <= 0.6


def test_unknown_signal_quality_rejected():
    profile = LTE_WAN_PROFILES["ec2-california"]
    with pytest.raises(ValueError):
        profile.ul_bandwidth("poor")


def test_rtt_cdf_shape():
    xs, ps = rtt_cdf(np.array([3.0, 1.0, 2.0]))
    assert list(xs) == [1.0, 2.0, 3.0]
    assert ps[-1] == 1.0
    assert np.all(np.diff(ps) > 0)


def test_wan_profile_is_frozen():
    profile = LTE_WAN_PROFILES["ec2-california"]
    with pytest.raises(AttributeError):
        profile.base_rtt = 0.0
