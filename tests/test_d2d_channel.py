"""Tests for modem filtering, resources and the broadcast channel."""

import numpy as np
import pytest

from repro.d2d.channel import D2DChannel, Publisher, Subscriber
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import DiscoveryMessage, Observation
from repro.d2d.modem import LteDirectModem
from repro.d2d.radio import RadioModel
from repro.d2d.resources import DiscoveryResourceConfig
from repro.sim.engine import Simulator

NS = ExpressionNamespace()


def make_message(offering="laptops", publisher="lm1"):
    return DiscoveryMessage(
        publisher_id=publisher, service_name="acme-retail",
        code=NS.code("acme-retail", offering),
        payload=f"section={offering}")


class TestModem:
    def test_matching_message_delivered(self):
        modem = LteDirectModem("ue1")
        seen = []
        modem.subscribe("laptops", NS.offering_filter("acme-retail",
                                                      "laptops"),
                        seen.append)
        result = modem.receive_broadcast(make_message(), -70.0, 20.0, 1.0)
        assert isinstance(result, Observation)
        assert len(seen) == 1
        assert seen[0].rx_power == -70.0
        assert seen[0].landmark == "lm1"

    def test_non_matching_filtered_in_modem(self):
        modem = LteDirectModem("ue1")
        seen = []
        modem.subscribe("toys", NS.offering_filter("acme-retail", "toys"),
                        seen.append)
        result = modem.receive_broadcast(make_message("laptops"),
                                         -70.0, 20.0, 1.0)
        assert result is None
        assert seen == []
        assert modem.filtered_out == 1
        assert modem.delivered == 0

    def test_multiple_filters_single_delivery(self):
        modem = LteDirectModem("ue1")
        a, b = [], []
        modem.subscribe("exact", NS.offering_filter("acme-retail",
                                                    "laptops"), a.append)
        modem.subscribe("service", NS.service_filter("acme-retail"),
                        b.append)
        modem.receive_broadcast(make_message(), -70.0, 20.0, 1.0)
        assert len(a) == 1 and len(b) == 1
        assert modem.delivered == 1   # one observation, two callbacks

    def test_unsubscribe(self):
        modem = LteDirectModem("ue1")
        seen = []
        modem.subscribe("x", NS.service_filter("acme-retail"), seen.append)
        modem.unsubscribe("x")
        modem.receive_broadcast(make_message(), -70.0, 20.0, 1.0)
        assert seen == []

    def test_payload_size_limit(self):
        with pytest.raises(ValueError):
            DiscoveryMessage("p", "s", NS.code("s"), payload="x" * 40)


class TestResources:
    def test_overhead_below_one_percent(self):
        """Section 3: discovery uses <1% of uplink resources."""
        cfg = DiscoveryResourceConfig()
        assert cfg.uplink_overhead_fraction() < 0.01

    def test_shorter_period_costs_more(self):
        slow = DiscoveryResourceConfig(period=10.0)
        fast = DiscoveryResourceConfig(period=5.0)
        assert fast.uplink_overhead_fraction() == \
            pytest.approx(2 * slow.uplink_overhead_fraction())

    def test_scales_to_hundreds_of_publishers(self):
        """Section 3: modem handling scales to hundreds of devices."""
        cfg = DiscoveryResourceConfig()
        assert cfg.supports_publishers(800)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryResourceConfig(period=0)
        with pytest.raises(ValueError):
            DiscoveryResourceConfig(pool_subframes=0)


class TestChannel:
    def build(self, distance=5.0, period=10.0):
        sim = Simulator()
        channel = D2DChannel(sim, RadioModel(),
                             rng=np.random.default_rng(1))
        publisher = Publisher("lm1", (0.0, 0.0), make_message(),
                              period=period)
        subscriber = Subscriber("ue1", (distance, 0.0))
        seen = []
        subscriber.modem.subscribe(
            "laptops", NS.offering_filter("acme-retail", "laptops"),
            seen.append)
        channel.add_publisher(publisher, start=0.0)
        channel.add_subscriber(subscriber)
        return sim, channel, publisher, subscriber, seen

    def test_periodic_broadcasts_received(self):
        sim, channel, publisher, _, seen = self.build(period=10.0)
        sim.run(until=35.0)
        assert publisher.broadcasts_sent == 4   # t = 0, 10, 20, 30
        assert len(seen) == 4

    def test_out_of_range_subscriber_hears_nothing(self):
        sim, channel, _, subscriber, seen = self.build(distance=5000.0)
        sim.run(until=25.0)
        assert seen == []
        assert channel.undecodable > 0

    def test_rx_power_decreases_with_distance(self):
        sim, channel, _, subscriber, seen = self.build(distance=2.0)
        sim.run(until=55.0)
        near = np.mean([o.rx_power for o in seen])
        seen.clear()
        subscriber.move_to((40.0, 0.0))
        sim.run(until=115.0)
        far = np.mean([o.rx_power for o in seen])
        assert near > far + 20

    def test_moving_subscriber_callable_position(self):
        sim = Simulator()
        channel = D2DChannel(sim, rng=np.random.default_rng(2))
        publisher = Publisher("lm1", (0.0, 0.0), make_message(), period=1.0)
        positions = iter([(float(i), 0.0) for i in range(1, 100)])
        subscriber = Subscriber("ue1", lambda: next(positions))
        seen = []
        subscriber.modem.subscribe(
            "laptops", NS.offering_filter("acme-retail", "laptops"),
            seen.append)
        channel.add_publisher(publisher, start=0.0)
        channel.add_subscriber(subscriber)
        sim.run(until=10.5)
        assert len(seen) >= 5

    def test_duplicate_registration_rejected(self):
        sim, channel, publisher, subscriber, _ = self.build()
        with pytest.raises(ValueError):
            channel.add_publisher(Publisher("lm1", (0, 0), make_message()))
        with pytest.raises(ValueError):
            channel.add_subscriber(Subscriber("ue1", (0, 0)))

    def test_remove_publisher_stops_broadcasts(self):
        sim, channel, publisher, _, seen = self.build(period=1.0)
        sim.run(until=2.5)
        count = len(seen)
        channel.remove_publisher("lm1")
        sim.run(until=10.0)
        assert len(seen) == count
