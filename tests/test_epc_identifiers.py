"""Unit tests for identifier allocators."""

import pytest

from repro.epc.identifiers import FTeid, ImsiAllocator, IpPool, TeidAllocator


class TestTeidAllocator:
    def test_allocations_are_unique(self):
        alloc = TeidAllocator()
        teids = {alloc.allocate() for _ in range(1000)}
        assert len(teids) == 1000

    def test_release_and_reuse(self):
        alloc = TeidAllocator()
        teid = alloc.allocate()
        alloc.release(teid)
        assert alloc.allocate() == teid

    def test_release_unallocated_raises(self):
        alloc = TeidAllocator()
        with pytest.raises(KeyError):
            alloc.release(0xdead)

    def test_start_offset(self):
        alloc = TeidAllocator(start=0x8000)
        assert alloc.allocate() == 0x8000


class TestImsiAllocator:
    def test_imsi_is_15_digits_with_plmn_prefix(self):
        alloc = ImsiAllocator(mcc="310", mnc="410")
        imsi = alloc.allocate()
        assert len(imsi) == 15
        assert imsi.startswith("310410")

    def test_imsis_unique(self):
        alloc = ImsiAllocator()
        assert len({alloc.allocate() for _ in range(100)}) == 100

    def test_invalid_mcc_rejected(self):
        with pytest.raises(ValueError):
            ImsiAllocator(mcc="31", mnc="410")

    def test_invalid_mnc_rejected(self):
        with pytest.raises(ValueError):
            ImsiAllocator(mcc="310", mnc="4")


class TestIpPool:
    def test_allocates_from_subnet(self):
        pool = IpPool("10.45.0.0/24")
        address = pool.allocate()
        assert address in pool
        assert address.startswith("10.45.0.")

    def test_allocations_unique(self):
        pool = IpPool("10.45.0.0/24")
        addrs = {pool.allocate() for _ in range(100)}
        assert len(addrs) == 100

    def test_exhaustion_raises(self):
        pool = IpPool("10.45.0.0/30")   # 2 usable hosts
        pool.allocate()
        pool.allocate()
        with pytest.raises(RuntimeError):
            pool.allocate()

    def test_membership(self):
        pool = IpPool("10.45.0.0/16")
        assert "10.45.3.7" in pool
        assert "192.168.1.1" not in pool


def test_fteid_str():
    fteid = FTeid(teid=0x1001, address="172.16.0.1")
    assert str(fteid) == "172.16.0.1/teid=0x1001"
