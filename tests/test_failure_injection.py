"""Failure-injection tests: links down, landmarks silent, MEC
relocation after mobility."""

import numpy as np
import pytest

from repro.core.network import MobileNetwork, Pinger
from repro.core.mrs import MecRegistrationServer
from repro.core.service import CIService
from repro.d2d.channel import D2DChannel, Publisher, Subscriber
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import DiscoveryMessage
from repro.localization.landmarks import Landmark, LandmarkMap
from repro.localization.pathloss import PathLossRegression
from repro.localization.tracker import LocationTracker
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import PacketSink
from repro.sim.packet import Packet
from repro.sim.tcp import TcpSink, TcpSource


class TestLinkFailure:
    def test_down_link_drops_and_counts(self):
        sim = Simulator()
        a = PacketSink(sim, "a", ip="1")
        b = PacketSink(sim, "b", ip="2")
        link = Link(sim, "l", bandwidth=1e6, delay=0.001)
        a.attach("p", link)
        b.attach("p", link)
        link.set_up(False)
        a.send("p", Packet(src="1", dst="2", size=100))
        sim.run()
        assert b.received == []
        assert link.dropped_while_down == 1

    def test_in_flight_packets_still_arrive(self):
        sim = Simulator()
        a = PacketSink(sim, "a", ip="1")
        b = PacketSink(sim, "b", ip="2")
        link = Link(sim, "l", bandwidth=1e6, delay=0.010)
        a.attach("p", link)
        b.attach("p", link)
        a.send("p", Packet(src="1", dst="2", size=100))
        sim.schedule(0.005, link.set_up, False)     # cut mid-flight
        sim.run()
        assert len(b.received) == 1

    def test_recovery_restores_traffic(self):
        sim = Simulator()
        a = PacketSink(sim, "a", ip="1")
        b = PacketSink(sim, "b", ip="2")
        link = Link(sim, "l", bandwidth=1e6, delay=0.001)
        a.attach("p", link)
        b.attach("p", link)
        link.set_up(False)
        a.send("p", Packet(src="1", dst="2", size=100))
        link.set_up(True)
        a.send("p", Packet(src="1", dst="2", size=100))
        sim.run()
        assert len(b.received) == 1

    def test_tcp_rides_out_a_short_outage(self):
        """Retransmission machinery recovers every segment lost to a
        200 ms link outage."""
        sim = Simulator()
        src = TcpSource(sim, "tcp", dst="2", ip="1", total_packets=2000)
        sink = TcpSink(sim, "sink", ip="2")
        link = Link(sim, "l", bandwidth=20e6, delay=0.005,
                    queue_bytes=10**6)
        src.attach("out", link)
        sink.attach("net", link)
        src.start()
        sim.schedule(0.3, link.set_up, False)   # mid-transfer outage
        sim.schedule(0.5, link.set_up, True)
        sim.run(until=60.0)
        assert src.complete
        assert sink.received_seqs == set(range(2000))
        assert src.retransmits > 0


class TestLandmarkFailure:
    def test_silent_landmark_degrades_not_breaks(self):
        """Localisation keeps working with the remaining landmarks and
        recovers once the stale reading expires."""
        lmap = LandmarkMap(
            landmarks=[Landmark("lm1", 0, 0), Landmark("lm2", 20, 0),
                       Landmark("lm3", 0, 20), Landmark("lm4", 20, 20)],
            regression=PathLossRegression(alpha=-50, beta=-30))
        tracker = LocationTracker(lmap, staleness=10.0)
        truth = (8.0, 9.0)
        model = lmap.regression

        def observe(names, now):
            for name in names:
                lm = lmap.get(name)
                d = max(0.7, np.hypot(truth[0] - lm.x, truth[1] - lm.y))
                tracker.observe(name, model.predict_rx_power(d), now)

        observe(["lm1", "lm2", "lm3", "lm4"], now=0.0)
        assert tracker.estimate(now=1.0) is not None
        # lm4 dies; the others keep reporting
        for t in (5.0, 10.0, 15.0):
            observe(["lm1", "lm2", "lm3"], now=t)
        estimate = tracker.estimate(now=16.0)   # lm4 reading now stale
        assert estimate is not None
        assert np.hypot(estimate[0] - truth[0],
                        estimate[1] - truth[1]) < 1.0
        assert len(tracker.fresh_readings(16.0)) == 3

    def test_publisher_failure_stops_broadcasts_only(self):
        sim = Simulator()
        ns = ExpressionNamespace()
        channel = D2DChannel(sim, rng=np.random.default_rng(0))
        heard = []
        subscriber = Subscriber("u", (3.0, 0.0))
        subscriber.modem.subscribe("all", ns.service_filter("s"),
                                   heard.append)
        channel.add_subscriber(subscriber)
        for i, name in enumerate(("lm1", "lm2")):
            message = DiscoveryMessage(name, "s", ns.code("s", name))
            channel.add_publisher(Publisher(name, (float(i), 0.0),
                                            message, period=1.0), start=0.0)
        sim.run(until=2.5)
        channel.remove_publisher("lm1")
        sim.run(until=6.5)
        landmarks = [o.landmark for o in heard if o.timestamp > 2.5]
        assert set(landmarks) == {"lm2"}


class TestMecRelocation:
    def build(self):
        network = MobileNetwork()            # enb0
        network.add_enb("enb1")
        network.add_mec_site("mec-a")
        network.add_mec_site("mec-b")
        network.add_server("srv-a", site_name="mec-a", echo=True)
        network.add_server("srv-b", site_name="mec-b", echo=True)
        mrs = MecRegistrationServer(network)
        mrs.register_service(CIService("ar-retail", "acme-retail"))
        mrs.deploy_instance("ar-retail", "srv-a", "mec-a",
                            serves_enbs={"enb0"})
        mrs.deploy_instance("ar-retail", "srv-b", "mec-b",
                            serves_enbs={"enb1"})
        ue = network.add_ue()                # attaches at enb0
        return network, mrs, ue

    def test_initial_session_uses_cell_local_instance(self):
        network, mrs, ue = self.build()
        session = mrs.request_connectivity(ue, "ar-retail")
        assert session.instance.server_name == "srv-a"

    def test_relocation_after_handover(self):
        network, mrs, ue = self.build()
        mrs.request_connectivity(ue, "ar-retail")
        network.handover(ue, "enb1")
        session = mrs.relocate_session(ue, "ar-retail")
        assert session.instance.server_name == "srv-b"
        dedicated = [b for b in ue.bearers if not b.default]
        assert len(dedicated) == 1
        assert dedicated[0].gateway_site == "mec-b"

    def test_relocation_noop_when_already_best(self):
        network, mrs, ue = self.build()
        first = mrs.request_connectivity(ue, "ar-retail")
        assert mrs.relocate_session(ue, "ar-retail") is first

    def test_relocation_without_session_is_none(self):
        network, mrs, ue = self.build()
        assert mrs.relocate_session(ue, "ar-retail") is None

    def test_relocated_path_is_fast(self):
        network, mrs, ue = self.build()
        mrs.request_connectivity(ue, "ar-retail")
        network.handover(ue, "enb1")
        mrs.relocate_session(ue, "ar-retail")
        pinger = Pinger(network, ue, "srv-b", interval=0.1)
        pinger.run(count=10, start=network.sim.now)
        network.sim.run(until=network.sim.now + 3.0)
        assert len(pinger.rtts) == 10
        assert float(np.median(pinger.rtts)) < 0.016
