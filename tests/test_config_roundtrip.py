"""Round-trip (de)serialisation of the core config dataclasses.

The uniform ``to_dict``/``from_dict`` surface added for the scenario
layer: every config round-trips exactly, unknown keys are rejected
with path-qualified messages, JSON-authored ints widen to float
fields, and data-plane profiles collapse to their registry names.
"""

import pytest

from repro.core.config import (ConfigError, ContinuityConfig,
                               DATA_PLANE_PROFILES, MatcherConfig,
                               NetworkConfig, ResilienceConfig,
                               SignallingConfig, SimConfig)
from repro.sdn.dataplane import ACACIA_OVS_PROFILE, DataPlaneProfile


CONFIG_CLASSES = [NetworkConfig, SignallingConfig, ResilienceConfig,
                  ContinuityConfig, SimConfig, MatcherConfig]


@pytest.mark.parametrize("cls", CONFIG_CLASSES,
                         ids=lambda c: c.__name__)
def test_default_config_roundtrips(cls):
    config = cls()
    assert cls.from_dict(config.to_dict()) == config


def test_nested_overrides_roundtrip():
    config = NetworkConfig(
        seed=99,
        backhaul_delay=0.27,
        signalling=SignallingConfig(rrc_delay=0.004),
        resilience=ResilienceConfig(enabled=False),
        continuity=ContinuityConfig(policy="break-before-make",
                                    context_size_bytes=123456),
        sim=SimConfig(data_plane="fluid-bg"),
    )
    data = config.to_dict()
    assert data["continuity"]["policy"] == "break-before-make"
    assert NetworkConfig.from_dict(data) == config


def test_profiles_serialise_as_registry_names():
    config = NetworkConfig(mec_profile=ACACIA_OVS_PROFILE)
    data = config.to_dict()
    assert data["mec_profile"] == "acacia-ovs"
    assert NetworkConfig.from_dict(data) == config
    assert data["central_profile"] in DATA_PLANE_PROFILES


def test_profile_accepts_inline_object():
    custom = DataPlaneProfile(name="bench", slow_path_cost=1e-4,
                              fast_path_cost=1e-6,
                              has_fast_path=True)
    restored = NetworkConfig.from_dict(
        {"mec_profile": {"name": "bench", "slow_path_cost": 1e-4,
                         "fast_path_cost": 1e-6,
                         "has_fast_path": True}})
    assert restored.mec_profile == custom


def test_unknown_top_level_key_is_path_qualified():
    with pytest.raises(ConfigError) as excinfo:
        NetworkConfig.from_dict({"bandwith": 1.0}, path="network")
    assert excinfo.value.path == "network"
    assert "bandwith" in str(excinfo.value)
    assert "valid keys" in str(excinfo.value)


def test_unknown_nested_key_names_the_nested_path():
    with pytest.raises(ConfigError) as excinfo:
        NetworkConfig.from_dict(
            {"signalling": {"rrc_latency": 0.1}}, path="network")
    assert excinfo.value.path == "network.signalling"


def test_constructor_validation_surfaces_as_config_error():
    with pytest.raises(ConfigError) as excinfo:
        NetworkConfig.from_dict(
            {"continuity": {"policy": "teleport"}}, path="network")
    assert "network.continuity" in str(excinfo.value)


def test_json_ints_widen_to_float_fields():
    config = NetworkConfig.from_dict({"radio_ul_bandwidth": 3})
    assert config.radio_ul_bandwidth == 3.0
    assert isinstance(config.radio_ul_bandwidth, float)


def test_bool_is_not_accepted_as_number():
    # bools are ints in python; the widening must not turn True into 1.0
    config = NetworkConfig.from_dict(
        {"resilience": {"enabled": True}})
    assert config.resilience.enabled is True
