"""Scale tests: many UEs, concurrent AR clients, resource uniqueness."""

import numpy as np
import pytest

from repro.apps.retail import build_retail_database, landmark_map_for
from repro.apps.scenario import store_scenario
from repro.apps.workload import CheckpointWorkload
from repro.apps.ar_backend import ARBackend, ARServerNode
from repro.apps.ar_frontend import ARFrontend, ARSession
from repro.core.localization_manager import LocalizationManager
from repro.core.network import MobileNetwork, Pinger
from repro.d2d.radio import RadioModel
from repro.epc.entities import ServicePolicy
from repro.localization.pathloss import calibrate_from_radio
from repro.vision.camera import R720x480


def test_twenty_ues_attach_with_unique_resources():
    network = MobileNetwork()
    ues = [network.add_ue() for _ in range(20)]
    assert len({ue.ip for ue in ues}) == 20
    assert len({ue.imsi for ue in ues}) == 20
    # every default bearer got distinct tunnel endpoints
    teids = [ue.bearers.default_bearer().sgw_s1_fteid.teid for ue in ues]
    assert len(set(teids)) == 20
    assert network.mme.connected_count() == 20


def test_twenty_ues_ping_concurrently():
    network = MobileNetwork()
    pingers = []
    for _ in range(20):
        ue = network.add_ue()
        pinger = Pinger(network, ue, "internet", interval=0.25)
        pinger.run(count=8)
        pingers.append(pinger)
    network.sim.run(until=10.0)
    for pinger in pingers:
        assert len(pinger.rtts) == 8
        assert float(np.median(pinger.rtts)) < 0.12


def test_five_hundred_ue_attach_storm_completes_quickly():
    """500 concurrent attaches finish with unique resources, and the
    fast scheduler keeps the whole storm well inside a generous
    wall-clock budget (measures ~1 s on the CI baseline; the 30 s
    ceiling only catches pathological regressions)."""
    import time

    t0 = time.perf_counter()
    network = MobileNetwork()
    procs = [network.add_ue_async() for _ in range(500)]
    network.sim.run()
    wall = time.perf_counter() - t0

    assert network.mme.connected_count() == 500
    ues = []
    for proc in procs:
        assert proc.finished and proc.error is None, proc.error
        assert proc.value.attached
        ues.append(proc.value)
    assert len({ue.ip for ue in ues}) == 500
    assert len({ue.imsi for ue in ues}) == 500
    assert wall < 30.0


def test_multiple_mec_bearers_share_local_gateways():
    network = MobileNetwork()
    network.pcrf.configure(ServicePolicy("ar-retail", qci=7))
    network.add_mec_site("mec")
    network.add_server("ar-server", site_name="mec", echo=True)
    ues = [network.add_ue() for _ in range(8)]
    for ue in ues:
        network.create_mec_bearer(ue, "ar-server")
    pingers = []
    for ue in ues:
        pinger = Pinger(network, ue, "ar-server", interval=0.2)
        pinger.run(count=6)
        pingers.append(pinger)
    network.sim.run(until=6.0)
    for pinger in pingers:
        assert len(pinger.rtts) == 6
        assert float(np.percentile(pinger.rtts, 95)) < 0.02


def test_concurrent_ar_sessions_contend_at_the_server():
    """Two simultaneous AR clients slow each other down at the match
    stage (the Figure 12 effect, end to end)."""
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=40)
    network = MobileNetwork()
    network.pcrf.configure(ServicePolicy("ar-retail", qci=7))
    network.add_mec_site("mec")
    regression = calibrate_from_radio(RadioModel(),
                                      np.random.default_rng(1))
    localization = LocalizationManager(landmark_map_for(scenario,
                                                        regression))
    backend = ARBackend(db, scenario, localization)
    server = ARServerNode(network.sim, "ar-server", backend,
                          scheme="naive")
    network.add_server("ar-server", site_name="mec", node=server)

    workload = CheckpointWorkload(scenario, db, seed=2,
                                  frames_per_object=6,
                                  resolution=R720x480)
    sessions = []
    for i in range(2):
        ue = network.add_ue()
        network.create_mec_bearer(ue, "ar-server")
        sample = workload.sample(scenario.checkpoints[i])
        frontend = ARFrontend(R720x480)
        session = ARSession(network.sim, ue, server.ip, frontend,
                            iter(sample.frames), max_frames=6)
        session.start()
        sessions.append(session)
    network.sim.run(until=60.0)
    for session in sessions:
        assert len(session.records) == 6
    # overlapping frames saw contention: some match times exceed the
    # single-client cost
    single = backend.device.db_match_time(R720x480, db_objects=105,
                                          object_features=500.0)
    contended = [r.match_time for s in sessions for r in s.records]
    assert max(contended) > 1.5 * single
