#!/usr/bin/env python3
"""Quickstart: build a mobile network, attach a phone, go to the edge.

Walks the core ACACIA flow in ~60 lines:

1. build an LTE/EPC network with one eNodeB and central gateways;
2. deploy a mobile edge cloud (MEC) site with local split GW-Us;
3. attach a UE -- it gets a default bearer to the internet;
4. register a CI service at the MEC Registration Server and request
   connectivity: a dedicated bearer is steered onto the edge gateways;
5. compare ping RTTs: cloud path vs MEC path.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CIService, MecRegistrationServer, MobileNetwork, Pinger


def main() -> None:
    # 1-2. the network: central EPC + one MEC site next to the eNodeB
    network = MobileNetwork()
    network.add_mec_site("mec")
    network.add_server("ar-server", site_name="mec", echo=True)

    # 3. attach a phone: always-on default bearer through the core
    ue = network.add_ue("my-phone")
    print(f"attached {ue.name}: imsi={ue.imsi} ip={ue.ip}")
    print(f"attach used {ue.attach_result.message_count} control messages "
          f"({ue.attach_result.byte_count} bytes)")

    # 4. the operator registers a CI service; the MRS provisions the
    #    dedicated bearer onto the local gateways on request
    mrs = MecRegistrationServer(network)
    mrs.register_service(CIService(service_id="ar-retail",
                                   lte_direct_service="acme-retail"))
    mrs.deploy_instance("ar-retail", "ar-server", "mec")
    session = mrs.request_connectivity(ue, "ar-retail")
    bearer = session.setup_result.bearer
    print(f"\ndedicated bearer: ebi={bearer.ebi} qci={bearer.qci} "
          f"site={bearer.gateway_site}")
    print(f"setup took {session.setup_result.elapsed * 1e3:.1f} ms of "
          f"signalling ({session.setup_result.message_count} messages)")

    # 5. measure both paths
    cloud_ping = Pinger(network, ue, "internet", interval=0.2)
    cloud_ping.run(count=20)
    network.sim.run(until=10.0)
    mec_ping = Pinger(network, ue, "ar-server", interval=0.2)
    mec_ping.run(count=20, start=network.sim.now)
    network.sim.run(until=network.sim.now + 10.0)

    cloud_ms = np.median(cloud_ping.rtts) * 1e3
    mec_ms = np.median(mec_ping.rtts) * 1e3
    print(f"\nmedian RTT to cloud server: {cloud_ms:.1f} ms")
    print(f"median RTT to MEC server:   {mec_ms:.1f} ms")
    print(f"network latency reduction:  {1 - mec_ms / cloud_ms:.0%}")


if __name__ == "__main__":
    main()
