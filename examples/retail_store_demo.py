#!/usr/bin/env python3
"""The paper's Section 5.1 use case, end to end.

A retail store runs ACACIA's service framework: sales staff phones
publish their sections over LTE-direct; a customer interested in
electronics walks in, gets notified near the laptop section, and an AR
session streams camera frames to the CI server on the mobile edge
cloud, which prunes its 105-object database by the customer's
trilaterated position.

Run:  python examples/retail_store_demo.py
"""

from repro.apps.retail import build_retail_database
from repro.apps.scenario import store_scenario
from repro.apps.workload import CheckpointWorkload
from repro.baselines import build_deployment
from repro.vision.camera import R720x480


def main() -> None:
    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=60)
    print(f"store: {len(db)} objects over {scenario.n_subsections} "
          f"sub-sections, {len(scenario.landmarks)} LTE-direct landmarks")

    deployment = build_deployment("acacia", db, scenario, seed=42)
    network = deployment.network
    customer = deployment.customer

    # the customer walks to checkpoint C5 (electronics) and opens the
    # retail app with their interest selected
    checkpoint = scenario.checkpoints[4]
    section = scenario.section_of_subsection(checkpoint.subsection)
    customer.move_to(checkpoint.position)
    customer.open([section])
    print(f"\ncustomer at {checkpoint.name} {checkpoint.position}, "
          f"interested in {section!r}")

    # browse for a few discovery periods: the interest match triggers
    # the notification and the MEC connectivity
    network.sim.run(until=32.0)
    assert customer.notifications, "no discovery match -- move closer!"
    first = customer.notifications[0]
    print(f"notification: {first.message.payload} from {first.landmark} "
          f"(rxPower {first.rx_power:.1f} dBm)")
    print(f"MEC session: bearer ebi={customer.session.ebi} via "
          f"{customer.session.instance.site_name!r} site")

    location = deployment.localization.location(customer.app_id,
                                                network.sim.now)
    print(f"server-side location estimate: "
          f"({location[0]:.1f}, {location[1]:.1f}) "
          f"vs truth {checkpoint.position}")

    # the AR session: stream frames of the object at the checkpoint
    workload = CheckpointWorkload(scenario, db, seed=42,
                                  frames_per_object=6,
                                  resolution=R720x480)
    sample = workload.sample(checkpoint)
    session = deployment.new_session(iter(sample.frames),
                                     resolution=R720x480, max_frames=6)
    session.start(at=network.sim.now)
    network.sim.run(until=network.sim.now + 30.0)

    print(f"\nAR session: {len(session.records)} frames processed")
    for record in session.records[:3]:
        print(f"  frame {record.frame_seq}: matched {record.matched!r} in "
              f"{record.total_time * 1e3:.0f} ms "
              f"(match {record.match_time * 1e3:.0f}, "
              f"network {record.network_time * 1e3:.0f}, "
              f"compute {record.compute_time * 1e3:.0f})")
    breakdown = session.mean_breakdown()
    print(f"\nmean per-frame latency: {breakdown['total'] * 1e3:.0f} ms")
    print(f"  match   {breakdown['match'] * 1e3:6.0f} ms")
    print(f"  compute {breakdown['compute'] * 1e3:6.0f} ms")
    print(f"  network {breakdown['network'] * 1e3:6.0f} ms")
    print(f"\nthe tag shown to the customer: "
          f"{db.get(session.records[0].matched).tag!r}")

    # the customer finishes: connectivity is torn down on-demand
    customer.close()
    print(f"\napp closed; MEC sessions remaining: "
          f"{len(deployment.mrs.sessions)}")


if __name__ == "__main__":
    main()
