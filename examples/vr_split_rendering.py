#!/usr/bin/env python3
"""VR split rendering over the mobile edge — a second CI application.

The paper's introduction names VR alongside AR as the continuous
interactive class that needs edge computing.  This example streams
head poses at 60 Hz to a render server and measures motion-to-photon
latency with the server (a) on an ACACIA edge site reached through a
dedicated bearer, and (b) behind the conventional core.

Run:  python examples/vr_split_rendering.py
"""

import numpy as np

from repro.apps.vr import VRClient, VRRenderServer
from repro.core import CIService, MecRegistrationServer, MobileNetwork


def run(edge: bool, poses: int = 120):
    network = MobileNetwork()
    server = VRRenderServer(network.sim, "vr-render")
    if edge:
        network.add_mec_site("mec")
        network.add_server("vr-render", site_name="mec", node=server)
        mrs = MecRegistrationServer(network)
        mrs.register_service(CIService("vr", "vr-arena"))
        mrs.deploy_instance("vr", "vr-render", "mec")
        ue = network.add_ue()
        mrs.request_connectivity(ue, "vr")
    else:
        network.add_server("vr-render", site_name="central", node=server)
        ue = network.add_ue()
        network.route_via_default_bearer(ue, "vr-render")
    client = VRClient(network.sim, ue, server.ip, max_poses=poses)
    client.start()
    network.sim.run(until=poses / 60.0 + 3.0)
    return client


def describe(label: str, client: VRClient) -> None:
    samples = client.motion_to_photon() * 1e3
    print(f"{label}:")
    print(f"  motion-to-photon: median {np.median(samples):.1f} ms, "
          f"p95 {np.percentile(samples, 95):.1f} ms")
    print(f"  poses within the 50 ms comfort budget: "
          f"{client.fraction_within(0.050):.0%}")


def main() -> None:
    print("streaming 120 head poses at 60 Hz, 20 KB rendered tiles\n")
    describe("ACACIA edge rendering", run(edge=True))
    print()
    describe("cloud rendering (conventional EPC)", run(edge=False))
    print("\nonly the edge deployment fits the VR comfort budget -- the "
          "core network RTT\nalone exceeds it, which is the paper's "
          "opening argument.")


if __name__ == "__main__":
    main()
