#!/usr/bin/env python3
"""Mobility end to end: a customer walks between cells mid-session.

Two eNodeBs cover a long mall corridor, each with its own MEC site and
AR server instance.  A customer walks the corridor while pinging the
CI server: the mobility manager hands the UE over near the midpoint
(X2 handover, SGW-anchored, session survives), and the MRS then
relocates the session to the edge site serving the new cell.

Run:  python examples/store_walk_mobility.py
"""

import numpy as np

from repro.apps.mobility import MobilityManager
from repro.apps.scenario import WalkPath
from repro.core import (CIService, MecRegistrationServer, MobileNetwork,
                        Pinger)


def main() -> None:
    network = MobileNetwork()
    network.add_enb("enb1")
    network.add_mec_site("mec-west")
    network.add_mec_site("mec-east")
    network.add_server("ar-west", site_name="mec-west", echo=True)
    network.add_server("ar-east", site_name="mec-east", echo=True)

    mrs = MecRegistrationServer(network)
    mrs.register_service(CIService("ar-mall", "mall-guide"))
    mrs.deploy_instance("ar-mall", "ar-west", "mec-west",
                        serves_enbs={"enb0"})
    mrs.deploy_instance("ar-mall", "ar-east", "mec-east",
                        serves_enbs={"enb1"})

    ue = network.add_ue("shopper")
    session = mrs.request_connectivity(ue, "ar-mall")
    print(f"session starts on {session.instance.server_name!r} "
          f"(site {session.instance.site_name!r})")

    manager = MobilityManager(network,
                              {"enb0": (0.0, 0.0), "enb1": (200.0, 0.0)},
                              update_interval=1.0, hysteresis=5.0)
    walk = WalkPath([(5.0, 0.0), (195.0, 0.0)], speed=10.0)
    user = manager.add_mobile(ue, walk)

    # ping the *current* session's server throughout the walk
    west = Pinger(network, ue, "ar-west", interval=0.5)
    west.run(count=18)
    network.sim.run(until=walk.duration + 2.0)

    assert user.handovers, "expected a handover mid-walk"
    ho_time, source, target = user.handovers[0]
    print(f"handover at t={ho_time:.0f}s: {source} -> {target}")

    session = mrs.relocate_session(ue, "ar-mall")
    print(f"MRS relocated the session to {session.instance.server_name!r}")

    east = Pinger(network, ue, "ar-east", interval=0.2)
    east.run(count=10, start=network.sim.now)
    network.sim.run(until=network.sim.now + 5.0)

    print(f"\nRTT to the west server during the walk:   "
          f"median {np.median(west.rtts) * 1e3:.1f} ms "
          f"({len(west.rtts)} replies)")
    print(f"RTT to the east server after relocation:  "
          f"median {np.median(east.rtts) * 1e3:.1f} ms")
    print("\nthe SGW anchor kept the session alive across the cell "
          "change; relocation\nrestored edge-local latency at the new "
          "cell.")


if __name__ == "__main__":
    main()
