#!/usr/bin/env python3
"""Traffic isolation: why ACACIA's dedicated bearer matters (Fig 10(b)).

Loads the central gateways with competing background traffic and
compares the latency a CI application sees on (a) the conventional
shared path and (b) an ACACIA dedicated bearer terminating on local
edge gateways.

Run:  python examples/traffic_isolation.py
"""

import numpy as np

from repro.core import MobileNetwork, Pinger
from repro.epc.entities import ServicePolicy

BG_RATES_MBPS = [0, 60, 100]


def shared_path_latency(bg_mbps: float) -> float:
    network = MobileNetwork()
    ue = network.add_ue()
    if bg_mbps:
        network.add_background_load(rate=bg_mbps * 1e6).start()
    pinger = Pinger(network, ue, "internet", size=1000, interval=0.4)
    pinger.run(count=8, start=6.0)
    network.sim.run(until=18.0)
    return float(np.median(pinger.rtts)) if pinger.rtts else float("inf")


def acacia_latency(bg_mbps: float) -> float:
    network = MobileNetwork()
    network.pcrf.configure(ServicePolicy("ci", qci=7))
    network.add_mec_site("mec")
    network.add_server("ci-server", site_name="mec", echo=True)
    ue = network.add_ue()
    network.create_mec_bearer(ue, "ci-server", service_id="ci")
    if bg_mbps:
        network.add_background_load(rate=bg_mbps * 1e6).start()
    pinger = Pinger(network, ue, "ci-server", size=1000, interval=0.4)
    pinger.run(count=8, start=6.0)
    network.sim.run(until=18.0)
    return float(np.median(pinger.rtts)) if pinger.rtts else float("inf")


def fmt(seconds: float) -> str:
    return "   (lost)" if seconds == float("inf") \
        else f"{seconds * 1e3:8.1f}"


def main() -> None:
    print(f"{'bg load':>10}  {'shared path (ms)':>18}  "
          f"{'ACACIA bearer (ms)':>18}")
    for bg in BG_RATES_MBPS:
        shared = shared_path_latency(bg)
        acacia = acacia_latency(bg)
        print(f"{bg:>7} Mbps  {fmt(shared):>18}  {fmt(acacia):>18}")
    print("\nthe dedicated bearer's data plane never touches the loaded "
          "central gateways,\nso CI latency stays flat while the shared "
          "path collapses at saturation.")


if __name__ == "__main__":
    main()
