#!/usr/bin/env python3
"""LTE-direct indoor localisation, step by step (Sections 5.5, 7.1).

1. calibrate the environment's path-loss regression (one-time);
2. walk a subscriber past three landmarks, collecting rxPower/SNR;
3. show why rxPower (50 dB span) beats SNR (25 dB clamp) for ranging;
4. trilaterate live positions along the Figure 9(a) store floor and
   report the error statistics.

Run:  python examples/localization_walkthrough.py
"""

import math

import numpy as np

from repro.apps.scenario import figure6_scenario, store_scenario
from repro.d2d.radio import RadioModel
from repro.localization.pathloss import calibrate_from_radio
from repro.localization.trilateration import trilaterate

rng = np.random.default_rng(1)
radio = RadioModel()


def calibrate():
    print("=== one-time calibration ===")
    regression = calibrate_from_radio(radio, rng)
    print(f"fitted rxPower = {regression.alpha:.1f} "
          f"{regression.beta:+.1f} * log10(d)")
    print(f"(radio truth: alpha={radio.tx_power - radio.pl0:.1f}, "
          f"beta={-10 * radio.exponent:.1f})")
    return regression


def walk_trace():
    print("\n=== Figure 6 walk: rxPower vs SNR ===")
    scenario, walk = figure6_scenario()
    times = np.arange(0, walk.duration, 10.0)
    rx_all, snr_all, logd_all = [], [], []
    for t in times:
        position = walk.position_at(t)
        for name, lm in scenario.landmarks.items():
            d = max(0.5, math.dist(position, lm))
            rx = radio.rx_power(d, rng)
            if not radio.decodable(rx):
                continue
            rx_all.append(rx)
            snr_all.append(radio.snr(rx))
            logd_all.append(math.log10(d))
    rx_all, snr_all = np.array(rx_all), np.array(snr_all)
    print(f"rxPower span: {rx_all.max() - rx_all.min():.1f} dB, "
          f"corr with log-distance "
          f"{np.corrcoef(rx_all, logd_all)[0, 1]:+.2f}")
    print(f"SNR span:     {snr_all.max() - snr_all.min():.1f} dB, "
          f"corr with log-distance "
          f"{np.corrcoef(snr_all, logd_all)[0, 1]:+.2f}")
    print("-> ACACIA ranges on rxPower")


def localize(regression):
    print("\n=== trilateration over the store floor ===")
    scenario = store_scenario()
    anchors = {name: pos for name, pos in scenario.landmarks.items()}
    errors = []
    for checkpoint in scenario.checkpoints:
        names, ranges = [], []
        for name, lm in anchors.items():
            d = max(0.5, math.dist(checkpoint.position, lm))
            rx = radio.rx_power(d, rng)
            if radio.decodable(rx):
                names.append(name)
                ranges.append(regression.predict_distance(rx,
                                                          max_distance=50))
        estimate = trilaterate([anchors[n] for n in names], ranges,
                               bounds=((0, 42), (0, 18)))
        error = math.dist(estimate, checkpoint.position)
        errors.append(error)
        if checkpoint.name in ("C1", "C12", "C24"):
            print(f"  {checkpoint.name}: truth {checkpoint.position} "
                  f"estimate ({estimate[0]:.1f}, {estimate[1]:.1f}) "
                  f"error {error:.1f} m  ({len(names)} landmarks heard)")
    print(f"over all 24 checkpoints: mean error {np.mean(errors):.2f} m, "
          f"worst {np.max(errors):.2f} m")
    print("(the paper reports ~3 m mean with 7 landmarks)")


def main() -> None:
    regression = calibrate()
    walk_trace()
    localize(regression)


if __name__ == "__main__":
    main()
