# ACACIA reproduction -- developer entry points

PYTHON ?= python

.PHONY: test lint bench bench-matcher bench-resilience bench-sim bench-sim-smoke bench-sim-quick bench-scale bench-scale-smoke bench-continuity bench-continuity-smoke bench-shard bench-shard-smoke examples quick exp-smoke scenario-validate ops-soak-smoke all clean-results

test:
	$(PYTHON) -m pytest tests/ -q

lint:   ## same gate as CI (needs ruff on PATH: pip install ruff)
	ruff check src/ tests/ benchmarks/ tools/ examples/

exp-smoke:   ## tiny 2-seed experiment spec end-to-end through the parallel runner
	PYTHONPATH=src $(PYTHON) -m repro exp run smoke --workers 2

scenario-validate:   ## validate the whole scenario catalogue, then run the CI smoke scenario
	PYTHONPATH=src $(PYTHON) -m repro scenario validate
	PYTHONPATH=src $(PYTHON) -m repro scenario run quick_test --serial --output /tmp/quick_test_result.json

ops-soak-smoke:   ## compressed diurnal soak through the operator runtime: 0 dropped sessions, autoscaler active, byte-identical reruns
	PYTHONPATH=src $(PYTHON) tools/ops_soak_smoke.py --duration 600

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-matcher:   ## engine comparison on the Fig 11a workload -> BENCH_matcher.json
	PYTHONPATH=src $(PYTHON) tools/bench_matcher.py

bench-resilience:   ## chaos sweep: control-plane success under signalling loss
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_resilience_chaos.py --benchmark-only -q

bench-sim:   ## scheduler comparison (fast vs reference) -> BENCH_sim.json
	PYTHONPATH=src $(PYTHON) tools/bench_sim.py

bench-sim-smoke:   ## quick drift + determinism gate, no committed output
	PYTHONPATH=src $(PYTHON) tools/bench_sim.py --smoke --out /tmp/BENCH_sim_smoke.json

bench-sim-quick:   ## 1-repeat reduced flood for local iteration, no committed output
	PYTHONPATH=src $(PYTHON) tools/bench_sim.py --quick --out /tmp/BENCH_sim_quick.json

bench-scale:   ## fluid vs packet data plane + 100k-UE scenario -> BENCH_scale.json
	PYTHONPATH=src $(PYTHON) tools/bench_scale.py

bench-scale-smoke:   ## quick fluid-plane gates, no committed output
	PYTHONPATH=src $(PYTHON) tools/bench_scale.py --smoke --out /tmp/BENCH_scale_smoke.json

bench-continuity:   ## relocation policies across the edge fabric -> BENCH_continuity.json
	PYTHONPATH=src $(PYTHON) tools/bench_continuity.py

bench-continuity-smoke:   ## quick continuity + determinism gates, no committed output
	PYTHONPATH=src $(PYTHON) tools/bench_continuity.py --smoke --out /tmp/BENCH_continuity_smoke.json

bench-shard:   ## sharded vs single-process: identity on all presets + 4-site speedup -> BENCH_shard.json
	PYTHONPATH=src $(PYTHON) tools/bench_shard.py

bench-shard-smoke:   ## 2-site digest identity + speedup floor, no committed output
	PYTHONPATH=src $(PYTHON) tools/bench_shard.py --smoke --out /tmp/BENCH_shard_smoke.json

quick:   ## tests + the sub-second benchmarks only
	$(PYTHON) -m pytest tests/ -q
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q \
	    --ignore=benchmarks/test_fig3g_background_traffic.py \
	    --ignore=benchmarks/test_fig10a_qci_rtt.py \
	    --ignore=benchmarks/test_fig10b_isolation.py

examples:
	@for script in examples/*.py; do \
	    echo "=== $$script ==="; \
	    $(PYTHON) $$script || exit 1; \
	done

all: test bench examples

clean-results:
	rm -rf benchmarks/results .benchmarks
