"""ACACIA core: the service abstraction framework.

Ties the substrates together: the network builder assembles the LTE/EPC
+ SDN testbed; the MEC Registration Server (MRS) and the on-device
ACACIA device manager implement the context-aware traffic redirection of
Sections 5.3/5.4; the localization manager and the application optimiser
implement the context-aware application optimisation of Section 5.5.
"""

from repro.core.config import MatcherConfig, NetworkConfig
from repro.core.device_manager import AcaciaDeviceManager, ServiceInfo
from repro.core.localization_manager import LocalizationManager
from repro.core.mrs import MecRegistrationServer
from repro.core.network import MobileNetwork, Pinger
from repro.core.optimizer import SearchSpace, SearchSpaceOptimizer
from repro.core.service import CIServerInstance, CIService, ServiceRegistry

__all__ = [
    "AcaciaDeviceManager",
    "CIServerInstance",
    "CIService",
    "LocalizationManager",
    "MatcherConfig",
    "MecRegistrationServer",
    "MobileNetwork",
    "NetworkConfig",
    "Pinger",
    "SearchSpace",
    "SearchSpaceOptimizer",
    "ServiceInfo",
    "ServiceRegistry",
]
