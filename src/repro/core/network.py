"""Testbed builder: assembles the full simulated mobile network.

:class:`MobileNetwork` wires the pieces the paper's testbeds provide:
one eNodeB, a central gateway site (the conventional EPC data path to
the internet), optional MEC sites with local split GW-Us next to CI
servers, the control-plane entities, the SDN controller and the shared
control ledger.  Experiments then attach UEs, servers and background
load, and use :class:`Pinger` for RTT measurements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import NetworkConfig
from repro.epc.entities import (GatewaySite, HSS, MME, PCRF, PGWC, SGWC,
                                SubscriberProfile)
from repro.epc.enodeb import ENodeB
from repro.epc.events import DownlinkDelivered, UeIpAssigned
from repro.sim.hooks import PacketDropped
from repro.epc.identifiers import ImsiAllocator
from repro.epc.overhead import ControlLedger
from repro.epc.paging import PagingManager
from repro.epc.procedures import EPCControlPlane, ProcedureResult
from repro.epc.qos import apply_qci_priorities
from repro.epc.signalling import SignallingFabric
from repro.epc.ue import UEDevice
from repro.sdn.controller import SdnController
from repro.sdn.dataplane import DataPlaneProfile
from repro.sdn.openflow import FlowMatch, FlowRule, GtpDecap, Output
from repro.sdn.switch import FlowSwitch
from repro.sim.context import SimContext
from repro.sim.engine import Future
from repro.sim.fluid import FluidDomain, FluidFlow, FluidLink
from repro.sim.link import Link
from repro.sim.node import Node, PacketSink
from repro.sim.packet import Packet
from repro.sim.traffic import PoissonSource


def wan_link_name(site_a: str, site_b: str) -> str:
    """Canonical (order-independent) name of an inter-site WAN link."""
    first, second = sorted((site_a, site_b))
    return f"wan.{first}.{second}"


@dataclass
class EdgeSite:
    """One deployment site of the multi-site edge fabric.

    Wraps the :class:`~repro.epc.entities.GatewaySite` (local split
    SGW-U/PGW-U pair plus MEC server pods behind the shared SDN
    controller) with the fabric-level state the continuity machinery
    needs: which eNodeBs call this site *home* (drive auto-relocation
    on handover), the site's MEC I/O endpoint for application-context
    transfer, and its ports onto the inter-site WAN mesh.
    """

    name: str
    site: GatewaySite
    #: eNodeBs whose UEs are served from this site by default
    home_enbs: set[str] = field(default_factory=set)
    #: context-transfer endpoint (one per site, on the WAN mesh)
    transfer: Optional[PacketSink] = None
    #: peer site name -> this site's transfer-node port toward it
    wan_ports: dict[str, str] = field(default_factory=dict)


class MobileNetwork:
    """A complete LTE/EPC network with optional MEC sites.

    The network draws all of its randomness from a
    :class:`~repro.sim.context.SimContext` (one may be passed in to
    share streams with a larger experiment; otherwise a private context
    is derived from ``config.seed``).
    """

    def __init__(self, config: Optional[NetworkConfig] = None,
                 ctx: Optional[SimContext] = None) -> None:
        self.config = config or NetworkConfig()
        self.ctx = (ctx if ctx is not None
                    else SimContext(self.config.seed,
                                    sim=self.config.sim.build_simulator()))
        self.sim = self.ctx.sim
        self.hooks = self.ctx.hooks
        self.rng = self.ctx.rng("net.jitter")
        #: fluid-flow domain; present only in the "fluid-bg" data plane
        #: (see :mod:`repro.sim.fluid`), where background load becomes
        #: aggregated rates instead of per-packet traffic
        self.fluid: Optional[FluidDomain] = (
            FluidDomain(self.ctx.sim)
            if self.config.sim.data_plane == "fluid-bg" else None)
        self.ledger = ControlLedger()
        self.controller = SdnController(ledger=self.ledger)
        self.mme = MME()
        self.hss = HSS()
        self.pcrf = PCRF()
        self.sgwc = SGWC()
        self.pgwc = PGWC()
        # the signalling fabric carries every control message as a
        # simulated packet; its transports come from config.signalling
        self.fabric = SignallingFabric(
            self.sim, self.ledger,
            specs=self.config.signalling.transports())
        self.control_plane = EPCControlPlane(
            self.sim, self.mme, self.hss, self.pcrf, self.sgwc, self.pgwc,
            self.controller, ledger=self.ledger, fabric=self.fabric,
            retry_policy=self.config.resilience.policy())
        self.paging = PagingManager(self.control_plane)
        self.imsis = ImsiAllocator()
        self.enbs: dict[str, ENodeB] = {}
        self.ues: dict[str, UEDevice] = {}
        self.servers: dict[str, Node] = {}
        self.sites: dict[str, GatewaySite] = {}
        #: first-class edge-fabric sites by name (see :meth:`add_edge_site`)
        self.edge_sites: dict[str, EdgeSite] = {}
        #: eNodeB name -> its home edge site (drives auto-relocation)
        self._enb_home: dict[str, str] = {}
        self._edge_site_count = itertools.count(0)
        #: every data-plane link by name (the fault layer targets these)
        self.links: dict[str, Link] = {}
        #: inter-site WAN routing table: (src site, dst site) -> the
        #: mesh link, resolved once at :meth:`add_edge_site` time (both
        #: orders present) so the per-transfer/per-packet hot path is a
        #: single tuple lookup instead of a sorted-string build
        self.wan_links: dict[tuple[str, str], Link] = {}
        #: per-site S1 wiring parameters, for attaching later eNodeBs
        self._site_params: dict[str, tuple[float, float, int]] = {}
        self._ue_count = itertools.count(1)
        self._enb_count = itertools.count(0)
        self._server_ips = itertools.count(10)
        self._bg_count = itertools.count(1)
        # name -> (source-or-flow, site name, flow-rule cookie or None)
        self._bg_loads: dict[str, tuple[object, str, Optional[str]]] = {}
        self.enb = self.add_enb("enb0")     # the default base station
        self._build_central_site()

    # -- topology construction -------------------------------------------

    def _make_link(self, name: str, bandwidth: float, delay: float,
                   queue_bytes: int, jitter: float = 0.0,
                   qos: bool = True) -> Link:
        # each jittered link draws from its own named stream, so one
        # link's traffic volume cannot perturb another link's jitter
        link_cls = Link if self.fluid is None else FluidLink
        link = link_cls(self.sim, name, bandwidth=bandwidth, delay=delay,
                        queue_bytes=queue_bytes, qos_priority=qos,
                        jitter=jitter,
                        rng=self.ctx.rng(f"net.link.{name}") if jitter > 0
                        else None)
        if qos:
            apply_qci_priorities(link)
        self.links[name] = link
        return link

    def add_enb(self, name: Optional[str] = None) -> ENodeB:
        """Deploy another base station, wired to every gateway site."""
        index = next(self._enb_count)
        name = name or f"enb{index}"
        if name in self.enbs:
            raise ValueError(f"eNodeB {name!r} already exists")
        enb = ENodeB(self.sim, name, ip=f"192.168.1.{index + 1}")
        self.enbs[name] = enb
        self.control_plane.register_enb(enb)
        for site in self.sites.values():
            self._wire_enb_to_site(enb, site)
        return enb

    def _wire_enb_to_site(self, enb: ENodeB, site: GatewaySite) -> None:
        backhaul_delay, bandwidth, queue_bytes = self._site_params[site.name]
        s1 = self._make_link(f"s1.{site.name}.{enb.name}", bandwidth,
                             backhaul_delay, queue_bytes)
        enb_port = f"s1:{site.name}"
        sgw_port = f"s1:{enb.name}"
        enb.attach(enb_port, s1)
        site.sgw_u.attach(sgw_port, s1)
        site.enb_ports[enb.name] = enb_port
        site.sgw_dl_ports[enb.name] = sgw_port

    def _build_site(self, name: str, backhaul_delay: float,
                    core_delay: float, bandwidth: float, queue_bytes: int,
                    profile: DataPlaneProfile) -> GatewaySite:
        sgw_u = FlowSwitch(self.sim, f"sgw-u.{name}", profile=profile,
                           ip=f"172.16.{len(self.sites)}.1")
        pgw_u = FlowSwitch(self.sim, f"pgw-u.{name}", profile=profile,
                           ip=f"172.16.{len(self.sites)}.2")
        s5 = self._make_link(f"s5.{name}", bandwidth, core_delay,
                             queue_bytes)
        sgw_u.attach("s5", s5)
        pgw_u.attach("s5", s5)
        site = GatewaySite(
            name=name, sgw_u=sgw_u, pgw_u=pgw_u, enb_ports={},
            sgw_dl_ports={}, sgw_ul_port="s5", pgw_dl_port="s5",
            pgw_ul_port="")      # set when the first server attaches
        self.sites[name] = site
        self._site_params[name] = (backhaul_delay, bandwidth, queue_bytes)
        for enb in self.enbs.values():
            self._wire_enb_to_site(enb, site)
        self.control_plane.add_site(site)
        self.paging.attach_to_site(site)
        return site

    def _build_central_site(self) -> None:
        cfg = self.config
        self._build_site("central", cfg.backhaul_delay, cfg.core_delay,
                         cfg.core_bandwidth, cfg.core_queue_bytes,
                         cfg.central_profile)
        self.add_server("internet", site_name="central",
                        delay=cfg.internet_delay, echo=True)

    def add_mec_site(self, name: str = "mec",
                     profile: Optional[DataPlaneProfile] = None,
                     ) -> GatewaySite:
        """Deploy local split GW-Us one hop from the eNodeB."""
        cfg = self.config
        return self._build_site(
            name, cfg.mec_backhaul_delay, cfg.mec_core_delay,
            cfg.mec_bandwidth, cfg.mec_queue_bytes,
            profile or cfg.mec_profile)

    # -- edge fabric (multi-site session continuity) -----------------------

    def add_edge_site(self, name: str,
                      home_enbs: tuple[str, ...] = (),
                      profile: Optional[DataPlaneProfile] = None,
                      ) -> EdgeSite:
        """Deploy a first-class edge-fabric site.

        Builds the local split GW-Us (exactly like :meth:`add_mec_site`)
        plus the continuity machinery: a MEC I/O endpoint for
        application-context transfer and one inter-site WAN link to
        every existing edge site (a full mesh, parameters from
        ``config.continuity``).  ``home_enbs`` maps eNodeBs to this
        site; a handover onto one of them makes the MRS consider this
        site the session's natural anchor.
        """
        if name in self.edge_sites:
            raise ValueError(f"edge site {name!r} already exists")
        site = self.add_mec_site(name, profile=profile)
        cfg = self.config.continuity
        index = next(self._edge_site_count)
        transfer = PacketSink(self.sim, f"mecio.{name}",
                              ip=f"10.200.{index}.1",
                              on_packet=self._on_context_chunk)
        edge = EdgeSite(name=name, site=site, transfer=transfer)
        for peer_name, peer in self.edge_sites.items():
            wan = self._make_link(wan_link_name(name, peer_name),
                                  cfg.wan_bandwidth, cfg.wan_delay,
                                  cfg.wan_queue_bytes)
            transfer.attach(f"wan:{peer_name}", wan)
            peer.transfer.attach(f"wan:{name}", wan)
            edge.wan_ports[peer_name] = f"wan:{peer_name}"
            peer.wan_ports[name] = f"wan:{name}"
            self.wan_links[(name, peer_name)] = wan
            self.wan_links[(peer_name, name)] = wan
        self.edge_sites[name] = edge
        for enb_name in home_enbs:
            self.set_home_site(enb_name, name)
        return edge

    def set_home_site(self, enb_name: str, site_name: str) -> None:
        """Declare an eNodeB's home edge site (re-homing is allowed)."""
        if enb_name not in self.enbs:
            raise ValueError(f"unknown eNodeB {enb_name!r}; known: "
                             f"{sorted(self.enbs)}")
        if site_name not in self.edge_sites:
            raise ValueError(f"unknown edge site {site_name!r}; known: "
                             f"{sorted(self.edge_sites)}")
        previous = self._enb_home.get(enb_name)
        if previous is not None:
            self.edge_sites[previous].home_enbs.discard(enb_name)
        self._enb_home[enb_name] = site_name
        self.edge_sites[site_name].home_enbs.add(enb_name)

    def home_site_of(self, enb_name: str) -> Optional[str]:
        """The edge site an eNodeB is homed to (None outside the fabric)."""
        return self._enb_home.get(enb_name)

    def context_transfer_async(self, src_site: str, dst_site: str,
                               nbytes: int,
                               chunk_bytes: Optional[int] = None) -> Future:
        """Move application context between edge sites as real traffic.

        The state-transfer cost model: ``nbytes`` of context cross the
        inter-site WAN link as chunked packets paced at the link rate,
        so the transfer takes (roughly) ``size / throughput`` plus the
        propagation delay -- and genuinely contends with anything else
        riding the same link.  Returns a
        :class:`~repro.sim.engine.Future` resolving to the transferred
        byte count when the last chunk arrives at the target site.
        """
        for site_name in (src_site, dst_site):
            if site_name not in self.edge_sites:
                raise ValueError(f"unknown edge site {site_name!r}; known: "
                                 f"{sorted(self.edge_sites)}")
        src = self.edge_sites[src_site]
        dst = self.edge_sites[dst_site]
        future = Future(self.sim)
        if nbytes <= 0:
            future.resolve(0)
            return future
        port = src.wan_ports.get(dst_site)
        if port is None:
            raise ValueError(f"no WAN link between {src_site!r} and "
                             f"{dst_site!r}")
        wan = self.wan_links[(src_site, dst_site)]
        chunk = chunk_bytes or self.config.continuity.chunk_bytes
        remaining = int(nbytes)
        offset = 0.0
        while remaining > 0:
            size = min(chunk, remaining)
            remaining -= size
            packet = Packet(src=src.transfer.ip, dst=dst.transfer.ip,
                            size=size, protocol="MECIO",
                            created_at=self.sim.now)
            if remaining <= 0:
                packet.meta["transfer_future"] = future
                packet.meta["transfer_bytes"] = int(nbytes)
            # source-paced at the link rate: the queue never builds
            # beyond a chunk, so deep bursts cannot overflow the WAN
            self.sim.schedule(offset, src.transfer.send, port, packet)
            offset += packet.wire_size * 8.0 / wan.bandwidth
        return future

    @staticmethod
    def _on_context_chunk(packet: Packet) -> None:
        future = packet.meta.get("transfer_future")
        if future is not None:
            future.resolve(packet.meta.get("transfer_bytes", 0))

    def add_server(self, name: str, site_name: str = "central",
                   delay: Optional[float] = None, echo: bool = False,
                   node: Optional[Node] = None,
                   on_packet: Optional[Callable[[Packet], None]] = None,
                   ) -> Node:
        """Attach a server to a site's PGW-U (its SGi network).

        The first server attached to a site becomes the site's default
        uplink destination port.
        """
        if name in self.servers:
            raise ValueError(f"server {name!r} already exists")
        site = self.sgwc.site(site_name)
        cfg = self.config
        if delay is None:
            delay = (cfg.mec_server_delay if site_name != "central"
                     else cfg.internet_delay)
        ip = f"203.0.{113 if site_name == 'central' else 114}.{next(self._server_ips)}"
        if node is None:
            node = PacketSink(self.sim, name, ip=ip, echo=echo,
                              on_packet=on_packet)
        elif node.ip is None or node.ip == node.name:
            # custom nodes built without an address get one here
            node.ip = ip
        bandwidth = (cfg.core_bandwidth if site_name == "central"
                     else cfg.mec_bandwidth)
        queue = (cfg.core_queue_bytes if site_name == "central"
                 else cfg.mec_queue_bytes)
        link = self._make_link(f"sgi.{name}", bandwidth, delay, queue)
        port = f"sgi:{name}"
        site.pgw_u.attach(port, link)
        node.attach("net", link)
        if not site.pgw_ul_port:
            site.pgw_ul_port = port
        self.servers[name] = node
        return node

    def add_ue(self, name: Optional[str] = None,
               manage_idle: bool = False,
               ul_bandwidth: Optional[float] = None,
               enb_name: Optional[str] = None) -> UEDevice:
        """Create a UE, wire its radio link, provision it and attach it."""
        return self.sim.run_until_complete(
            self.add_ue_async(name, manage_idle, ul_bandwidth, enb_name))

    def add_ue_async(self, name: Optional[str] = None,
                     manage_idle: bool = False,
                     ul_bandwidth: Optional[float] = None,
                     enb_name: Optional[str] = None):
        """Create a UE and start its attach as a process.

        Returns the :class:`~repro.sim.engine.Process`; its value is
        the attached :class:`UEDevice`.  Many UEs can attach
        concurrently, contending on the cell's shared RRC channel and
        the core signalling paths.
        """
        index = next(self._ue_count)
        name = name or f"ue{index}"
        if name in self.ues:
            raise ValueError(f"UE {name!r} already exists")
        enb = self.enbs[enb_name] if enb_name is not None else self.enb
        ue = UEDevice(self.sim, name, imsi=self.imsis.allocate(),
                      manage_idle=manage_idle)
        port = self._wire_radio(ue, enb, ul_bandwidth)
        self.hss.provision(SubscriberProfile(imsi=ue.imsi))
        self.ues[name] = ue
        return self.sim.spawn(self._attach_proc(ue, enb, port),
                              name=f"add-ue:{name}")

    def _attach_proc(self, ue: UEDevice, enb: ENodeB, radio_port: str):
        # IP allocation happens inside the procedure; the control plane
        # announces it (synchronously) as UeIpAssigned before validating
        # the bearer, so a transient subscription registers the radio
        # port at exactly the right moment
        def register(event: UeIpAssigned) -> None:
            if event.ue is ue:
                enb.register_ue(event.address, radio_port)

        subscription = self.hooks.on(UeIpAssigned, register)
        try:
            result = yield self.control_plane.attach_async(ue, enb)
        finally:
            subscription.close()
        ue.attach_result = result
        if ue.attached:
            self.paging.track(ue)
        return ue

    def _wire_radio(self, ue: UEDevice, enb: ENodeB,
                    ul_bandwidth: Optional[float] = None) -> str:
        cfg = self.config
        radio = Link(
            self.sim, f"radio.{ue.name}.{enb.name}",
            bandwidth=ul_bandwidth or cfg.radio_ul_bandwidth,
            bandwidth_reverse=cfg.radio_dl_bandwidth,
            delay=cfg.radio_delay, queue_bytes=cfg.radio_queue_bytes,
            qos_priority=True, jitter=cfg.radio_jitter,
            rng=self.ctx.rng(f"net.radio.{ue.name}.{enb.name}"))
        apply_qci_priorities(radio)
        self.links[radio.name] = radio
        # the UE attaches first: its outbound direction is the uplink
        ue.ports.pop("radio", None)     # drop any previous cell's link
        ue.attach("radio", radio)
        port = f"radio:{ue.name}"
        enb.attach(port, radio)
        # RRC signalling now contends on the (new) cell's shared channel
        self.control_plane.join_cell(ue.name, enb.name)
        return port

    def handover(self, ue: UEDevice, target_enb_name: str
                 ) -> ProcedureResult:
        """Move a UE to another base station (X2 handover).

        Wires a fresh radio link at the target cell, then runs the
        control-plane handover: the SGW-Us re-point each bearer's
        downlink at the target while the S5 legs (and any MEC-site
        anchoring) stay put.
        """
        return self.sim.run_until_complete(
            self.handover_async(ue, target_enb_name))

    def _target_enb(self, target_enb_name: str) -> ENodeB:
        """Resolve a handover target, failing loudly on unknown names."""
        enb = self.enbs.get(target_enb_name)
        if enb is None:
            raise ValueError(
                f"unknown target eNodeB {target_enb_name!r}; known "
                f"eNodeBs: {sorted(self.enbs)}")
        return enb

    def handover_async(self, ue: UEDevice, target_enb_name: str):
        """Wire the target-cell radio and start the X2 handover as a
        process (its value is the :class:`ProcedureResult`)."""
        target = self._target_enb(target_enb_name)
        port = self._wire_radio(ue, target)
        return self.control_plane.handover_async(ue, target, radio_port=port)

    def s1_handover(self, ue: UEDevice, target_enb_name: str
                    ) -> ProcedureResult:
        """MME-coordinated handover variant (no X2 between the cells)."""
        target = self._target_enb(target_enb_name)
        port = self._wire_radio(ue, target)
        return self.control_plane.s1_handover(ue, target, radio_port=port)

    # -- ACACIA / baseline wiring ------------------------------------------

    def create_mec_bearer(self, ue: UEDevice, server_name: str,
                          service_id: str = "ar-retail",
                          site_name: str = "mec") -> ProcedureResult:
        """Dedicated bearer from a UE to a MEC server (the ACACIA path)."""
        server = self.servers[server_name]
        return self.control_plane.activate_dedicated_bearer(
            ue, service_id, server.ip, site_name)

    def route_via_default_bearer(self, ue: UEDevice,
                                 server_name: str) -> None:
        """SGi routing so the default bearer can reach a central-attached
        server (the CLOUD and non-split MEC baselines)."""
        server = self.servers[server_name]
        site = self.sgwc.site("central")
        bearer = ue.bearers.default_bearer()
        if bearer is None:
            raise RuntimeError(f"{ue.name} has no default bearer")
        port = f"sgi:{server_name}"
        if port not in site.pgw_u.ports:
            raise ValueError(f"{server_name!r} is not attached to the "
                             f"central PGW-U")
        if port == site.pgw_ul_port:
            return      # the catch-all uplink rule already goes there
        site.pgw_u.install(FlowRule(
            FlowMatch(teid=bearer.pgw_fteid.teid, dst_ip=server.ip),
            [GtpDecap(), Output(port)],
            priority=150, cookie=f"sgi-route:{ue.imsi}:{server_name}"))

    def add_background_load(self, rate: float, site_name: str = "central",
                            sink_server: str = "internet"):
        """Inject background traffic through a site's GW-Us.

        Models the competing traffic of other users sharing the central
        gateways (Figures 3(g) and 10(b)).  In the default ``"packet"``
        data plane this builds a per-packet :class:`PoissonSource`; in
        ``"fluid-bg"`` mode it builds an equivalent
        :class:`~repro.sim.fluid.FluidFlow` along the same path.  Both
        expose ``start()``/``stop()``/``name`` and can be torn down
        independently with :meth:`remove_background_load`.

        Each packet source draws from its own named RNG stream and
        installs rules under its own cookie.
        """
        site = self.sgwc.site(site_name)
        sink = self.servers[sink_server]
        index = next(self._bg_count)
        cfg = self.config
        if self.fluid is not None:
            return self._add_fluid_background(rate, site, sink,
                                              site_name, sink_server, index)
        cookie = f"bg:{index}"
        source = PoissonSource(self.sim, f"bg{index}", dst=sink.ip,
                               rate=rate, ctx=self.ctx,
                               stream=f"net.bg.{index}",
                               ip=f"198.18.0.{index}", qci=9)
        # fast ingress so the offered load fully reaches the shared GW-Us
        link = self._make_link(f"bg{index}", 10 * cfg.core_bandwidth, 0.001,
                               cfg.core_queue_bytes)
        source.attach("out", link)
        site.sgw_u.attach(cookie, link)
        site.sgw_u.install(FlowRule(
            FlowMatch(src_ip=source.ip),
            [Output(site.sgw_ul_port)], priority=50, cookie=cookie))
        site.pgw_u.install(FlowRule(
            FlowMatch(src_ip=source.ip),
            [Output(f"sgi:{sink_server}")], priority=50, cookie=cookie))
        self._bg_loads[source.name] = (source, site_name, cookie)
        return source

    def _fluid_cpu(self, switch) -> object:
        """The fluid CPU server for a gateway switch, wired on first use
        so per-packet arrivals at that switch wait behind it."""
        queue = self.fluid.cpu_queue(switch.name)
        switch.set_fluid_cpu(queue)
        return queue

    def _add_fluid_background(self, rate: float, site, sink: Node,
                              site_name: str, sink_server: str,
                              index: int) -> FluidFlow:
        """Fluid-mode twin of the packet background source: the same
        GW-U path, as an aggregated rate (no per-packet events).

        The hops mirror what every packet of the Poisson source pays in
        packet mode: the SGW-U CPU, the S5 link, the PGW-U CPU and the
        SGi link; when the sink echoes (the ``internet`` sink does),
        the replies load the SGi reverse direction too, then die at the
        PGW-U table miss -- which in packet mode costs no CPU, so the
        echo leg ends there.  Steady-state CPU cost per packet is the
        cached (fast-path) cost, since a long-lived flow's first packet
        is the only slow-path hit.
        """
        flow = FluidFlow(self.fluid, f"bg{index}", src_ip=f"198.18.0.{index}",
                         dst_ip=sink.ip, rate=rate, qci=9)
        sgw_cost = site.sgw_u.profile.cost_for(cached=True)
        if sgw_cost > 0.0:
            flow.add_server(self._fluid_cpu(site.sgw_u), sgw_cost)
        s5 = self.links[f"s5.{site_name}"]
        flow.add_link(s5, site.sgw_u)
        pgw_cost = site.pgw_u.profile.cost_for(cached=True)
        if pgw_cost > 0.0:
            flow.add_server(self._fluid_cpu(site.pgw_u), pgw_cost)
        sgi = self.links[f"sgi.{sink_server}"]
        flow.add_link(sgi, site.pgw_u)
        if getattr(sink, "echo", False):
            flow.add_link(sgi, sink)
        self._bg_loads[flow.name] = (flow, site_name, None)
        return flow

    def remove_background_load(self, source) -> None:
        """Tear down one background load (by source or name): stop its
        arrivals and remove its flow rules from the site's GW-Us."""
        name = source if isinstance(source, str) else source.name
        entry = self._bg_loads.pop(name, None)
        if entry is None:
            raise KeyError(f"no background load named {name!r}")
        bg, site_name, cookie = entry
        bg.stop()
        if cookie is not None:
            site = self.sgwc.site(site_name)
            site.sgw_u.remove(cookie)
            site.pgw_u.remove(cookie)

    def background_loads(self) -> tuple[str, ...]:
        """Names of the currently-installed background loads."""
        return tuple(self._bg_loads)


class Pinger:
    """ICMP-style RTT measurement from a UE to an echoing server.

    Subscribes to the UE's :class:`~repro.epc.events.DownlinkDelivered`
    events on the hook bus; any number of pingers (and other observers)
    can therefore watch the same UE concurrently.  ``close()`` detaches
    the subscription and books still-outstanding pings as ``lost``.

    Mid-flight drops are counted *as they happen*: the pinger also
    watches :class:`~repro.sim.hooks.PacketDropped` and books a loss
    (with its reason, in ``lost_reasons``) the moment a ping -- or its
    echo -- dies on a link, instead of only discovering the gap at
    ``close()``.
    """

    def __init__(self, network: MobileNetwork, ue: UEDevice,
                 server_name: str, size: int = 64,
                 interval: float = 0.2) -> None:
        self.network = network
        self.ue = ue
        self.server = network.servers[server_name]
        self.size = size
        self.interval = interval
        self.rtts: list[float] = []
        self.lost = 0
        self.lost_reasons: dict[str, int] = {}
        self._sent: dict[int, float] = {}
        self._subscription = network.hooks.on(DownlinkDelivered,
                                              self._on_downlink)
        self._drop_subscription = network.hooks.on(PacketDropped,
                                                   self._on_drop)

    def _on_downlink(self, event: DownlinkDelivered) -> None:
        if event.ue is not self.ue:
            return
        original = event.packet.meta.get("echo_of")
        sent_at = self._sent.pop(original, None)
        if sent_at is not None:
            self.rtts.append(self.network.sim.now - sent_at)

    def _on_drop(self, event: PacketDropped) -> None:
        # the outbound ping itself, or the server's echo of it (GTP
        # encap/decap mutates the same Packet object, so packet_id
        # survives the tunnels)
        packet_id = event.packet.packet_id
        if packet_id not in self._sent:
            packet_id = event.packet.meta.get("echo_of")
            if packet_id not in self._sent:
                return
        self._sent.pop(packet_id)
        self.lost += 1
        self.lost_reasons[event.reason] = \
            self.lost_reasons.get(event.reason, 0) + 1

    def close(self) -> None:
        """Detach from the bus; unanswered pings count as lost.

        Idempotent: a second close neither re-counts losses nor
        touches the bus again.
        """
        if self._subscription is None:
            return
        self._subscription.close()
        self._subscription = None
        self._drop_subscription.close()
        if self._sent:
            self.lost += len(self._sent)
            self.lost_reasons["unanswered"] = \
                self.lost_reasons.get("unanswered", 0) + len(self._sent)
            self._sent.clear()

    def run(self, count: int, start: float = 0.0) -> None:
        """Schedule ``count`` pings starting at absolute sim time
        ``start`` (or now, if that is already past); call ``sim.run()``
        afterwards."""
        now = self.network.sim.now
        for i in range(count):
            at = max(now, start) + i * self.interval
            self.network.sim.schedule(at - now, self._send_one)

    def _send_one(self) -> None:
        packet = Packet(src=self.ue.ip, dst=self.server.ip, size=self.size,
                        protocol="ICMP", created_at=self.network.sim.now)
        self._sent[packet.packet_id] = self.network.sim.now
        self.ue.send_app(packet)
