"""Context-aware search-space optimisation.

Implements the three database-pruning strategies the paper evaluates
(Section 7.3):

* **Naive** -- search the whole floor (all objects);
* **rxPower** -- search the sections of the landmarks with the highest
  and second-highest received power;
* **ACACIA** -- trilaterate the user and search only the sub-sections
  within a radius of the estimate (2-6 of 21 cells in practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.vision.database import ObjectDatabase, ObjectRecord

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle through repro.apps
    from repro.apps.scenario import StoreScenario


@dataclass
class SearchSpace:
    """A pruned candidate set plus provenance for reporting."""

    scheme: str
    records: list[ObjectRecord]
    subsections: Optional[list[int]] = None
    sections: Optional[list[str]] = None

    @property
    def size(self) -> int:
        return len(self.records)


class SearchSpaceOptimizer:
    """Maps user context onto database subsets."""

    def __init__(self, db: ObjectDatabase, scenario: StoreScenario,
                 acacia_radius: float = 3.5) -> None:
        self.db = db
        self.scenario = scenario
        self.acacia_radius = acacia_radius

    def naive(self) -> SearchSpace:
        """The whole floor."""
        return SearchSpace(scheme="naive", records=self.db.all_records())

    def rxpower(self, strongest_landmarks: list[str]) -> SearchSpace:
        """Sections of the two strongest landmarks.

        Falls back to the whole floor when no landmarks were heard
        (e.g. before the first discovery period).
        """
        if not strongest_landmarks:
            return self.naive()
        sections = []
        for name in strongest_landmarks:
            section = self.scenario.section_of_landmark(name)
            if section not in sections:
                sections.append(section)
        return SearchSpace(scheme="rxpower",
                           records=self.db.in_sections(sections),
                           sections=sections)

    def acacia(self, location: Optional[tuple[float, float]],
               fallback_landmarks: Optional[list[str]] = None
               ) -> SearchSpace:
        """Sub-sections around the trilaterated location.

        Before a location fix exists, degrade gracefully to the rxPower
        scheme (and from there to naive).
        """
        if location is None:
            return self.rxpower(fallback_landmarks or [])
        subsections = self.scenario.subsections_near(
            location, radius=self.acacia_radius)
        return SearchSpace(scheme="acacia",
                           records=self.db.in_subsections(subsections),
                           subsections=subsections)
