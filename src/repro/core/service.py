"""CI service definitions and the carrier's service registry.

A *CI service* is the operator-facing unit the MRS manages: a service
id (matching the PCRF policy and the LTE-direct service name), the set
of CI server instances deployed across mobile edge clouds, and the QoS
class its dedicated bearers get.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.epc.qos import MEC_BEARER_QCI, qos_for


@dataclass(frozen=True)
class CIServerInstance:
    """One deployment of a CI server on an edge cloud site."""

    server_name: str        # node name in the MobileNetwork
    site_name: str          # gateway site whose GW-Us serve it
    server_ip: str
    #: eNodeBs this instance is "close" to; the MRS uses this for
    #: closest-instance selection.
    serves_enbs: frozenset[str] = frozenset()


@dataclass
class CIService:
    """A registered continuous-interactive service."""

    service_id: str
    lte_direct_service: str          # discovery service name
    qci: int = MEC_BEARER_QCI
    instances: list[CIServerInstance] = field(default_factory=list)

    def __post_init__(self) -> None:
        qos_for(self.qci)

    def add_instance(self, instance: CIServerInstance) -> None:
        self.instances.append(instance)

    def instance_for_enb(self, enb_name: str) -> CIServerInstance:
        """Pick the closest instance: one that lists the UE's eNodeB,
        else the first registered (the 'central' fallback)."""
        if not self.instances:
            raise LookupError(
                f"service {self.service_id!r} has no deployed instances")
        for instance in self.instances:
            if enb_name in instance.serves_enbs:
                return instance
        return self.instances[0]


class ServiceRegistry:
    """The MRS's catalogue of CI services."""

    def __init__(self) -> None:
        self._services: dict[str, CIService] = {}
        self._by_lte_direct: dict[str, str] = {}

    def register(self, service: CIService) -> None:
        if service.service_id in self._services:
            raise ValueError(
                f"service {service.service_id!r} already registered")
        self._services[service.service_id] = service
        self._by_lte_direct[service.lte_direct_service] = service.service_id

    def get(self, service_id: str) -> CIService:
        try:
            return self._services[service_id]
        except KeyError:
            raise KeyError(f"unknown CI service {service_id!r}") from None

    def by_lte_direct_name(self, lte_direct_service: str) -> CIService:
        try:
            return self.get(self._by_lte_direct[lte_direct_service])
        except KeyError:
            raise KeyError(
                f"no CI service for LTE-direct service "
                f"{lte_direct_service!r}") from None

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._services

    def __len__(self) -> int:
        return len(self._services)
