"""Hook-bus events published by the core orchestration layer.

Currently the MRS's graceful-degradation signals: emitted when a MEC
outage forces a session off its CI server instance and when the
session later returns to a healthy dedicated path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SessionDegraded:
    """A session lost its CI server instance to a fault.

    ``mode`` is ``"relocated"`` (moved to a surviving instance on
    another site) or ``"central-fallback"`` (dedicated bearer torn
    down; traffic rides the default bearer through the central
    gateways until recovery).
    """

    imsi: str
    service_id: str
    mode: str
    time: float


@dataclass(frozen=True)
class SessionRestored:
    """A degraded session got a healthy dedicated MEC path back."""

    imsi: str
    service_id: str
    time: float


@dataclass(frozen=True)
class SessionRelocating:
    """A CI session started moving to another edge site.

    Emitted by the MRS when a handover carries the UE across a site
    boundary (or relocation is requested explicitly) and the
    application-context transfer begins.  ``policy`` is the
    :class:`~repro.core.config.ContinuityConfig` relocation policy in
    force (``"make-before-break"`` / ``"break-before-make"``).
    """

    imsi: str
    service_id: str
    from_site: str
    to_site: str
    policy: str
    time: float


@dataclass(frozen=True)
class SessionRelocated:
    """A CI session finished moving to another edge site.

    ``interruption`` is the measured CI-session interruption in
    simulated seconds: for make-before-break, the bearer switchover
    plus the delta-sync; for break-before-make, the whole
    withdraw-transfer-reinstall window.  ``transferred_bytes`` is the
    application context actually moved over the inter-site WAN and
    ``duration`` the end-to-end relocation time including any
    pre-copy.
    """

    imsi: str
    service_id: str
    from_site: str
    to_site: str
    policy: str
    interruption: float
    transferred_bytes: int
    duration: float
    time: float
