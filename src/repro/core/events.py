"""Hook-bus events published by the core orchestration layer.

Currently the MRS's graceful-degradation signals: emitted when a MEC
outage forces a session off its CI server instance and when the
session later returns to a healthy dedicated path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SessionDegraded:
    """A session lost its CI server instance to a fault.

    ``mode`` is ``"relocated"`` (moved to a surviving instance on
    another site) or ``"central-fallback"`` (dedicated bearer torn
    down; traffic rides the default bearer through the central
    gateways until recovery).
    """

    imsi: str
    service_id: str
    mode: str
    time: float


@dataclass(frozen=True)
class SessionRestored:
    """A degraded session got a healthy dedicated MEC path back."""

    imsi: str
    service_id: str
    time: float
