"""Network topology configuration.

Latency defaults are calibrated to the paper's measurements:

* UE -> cloud server through the conventional core: ~70 ms RTT (the
  Figure 3(c) California median), decomposed into radio + backhaul +
  core + internet hops;
* eNodeB -> MEC server: ~1.6 ms RTT (Section 7.2), so the UE -> MEC RTT
  lands under 15 ms for 95% of pings (Figure 10(a));
* central core links: 100 Mbps with deep buffers, saturating around
  90-100 Mbps of background traffic exactly where Figures 3(g)/10(b)
  show the latency explosion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sdn.dataplane import (ACACIA_OVS_PROFILE,
                                 OPENEPC_USERSPACE_PROFILE, DataPlaneProfile)


@dataclass
class NetworkConfig:
    """All tunables of the simulated mobile network."""

    # radio access
    radio_ul_bandwidth: float = 12e6       # Figure 3(d) peak uplink
    radio_dl_bandwidth: float = 30e6       # typical LTE downlink
    radio_delay: float = 0.004             # one-way UE <-> eNB
    radio_jitter: float = 0.003            # HARQ/scheduling variability
    radio_queue_bytes: int = 300_000

    # central (conventional core) path
    backhaul_delay: float = 0.010          # eNB <-> central SGW-U
    core_delay: float = 0.010              # SGW-U <-> PGW-U
    internet_delay: float = 0.009          # PGW-U <-> cloud server
    core_bandwidth: float = 100e6          # the shared 100 Mbps bottleneck
    core_queue_bytes: int = 25_000_000     # deep buffers -> seconds of bloat

    # MEC (edge) path
    mec_backhaul_delay: float = 0.0004     # eNB <-> local SGW-U
    mec_core_delay: float = 0.0002         # local SGW-U <-> local PGW-U
    mec_server_delay: float = 0.0002       # local PGW-U <-> CI server
    mec_bandwidth: float = 1e9
    mec_queue_bytes: int = 1_500_000

    # gateway data planes
    central_profile: DataPlaneProfile = field(
        default_factory=lambda: OPENEPC_USERSPACE_PROFILE)
    mec_profile: DataPlaneProfile = field(
        default_factory=lambda: ACACIA_OVS_PROFILE)

    # control plane
    seed: int = 0

    def cloud_one_way_delay(self) -> float:
        """Nominal UE -> cloud one-way propagation (no queueing/jitter)."""
        return (self.radio_delay + self.backhaul_delay + self.core_delay
                + self.internet_delay)

    def mec_one_way_delay(self) -> float:
        """Nominal UE -> MEC one-way propagation."""
        return (self.radio_delay + self.mec_backhaul_delay
                + self.mec_core_delay + self.mec_server_delay)


#: Available object-matching engines (see :mod:`repro.vision.batch`).
MATCH_ENGINES = ("batch", "reference")


@dataclass
class MatcherConfig:
    """Selects and parameterises the AR back-end's matching engine.

    ``engine="batch"`` (the default) builds the vectorized
    :class:`~repro.vision.batch.BatchObjectMatcher` with an LRU
    candidate-matrix cache; ``engine="reference"`` builds the
    loop-based :class:`~repro.vision.matcher.ObjectMatcher`.  Both are
    decision-equivalent for the same seed, so switching engines changes
    wall-clock only, never results.
    """

    engine: str = "batch"
    cache_capacity: int = 32
    ratio_threshold: float = 0.75
    ransac_iterations: int = 50
    ransac_inlier_radius: float = 3.0
    min_inliers: int = 8
    seed: int = 1234

    def build(self):
        """Construct the configured matcher.

        Imports lazily so the config layer stays importable without
        pulling the vision stack in at module scope.
        """
        import numpy as np

        from repro.vision.batch import (BatchObjectMatcher,
                                        CandidateMatrixCache)
        from repro.vision.matcher import ObjectMatcher

        if self.engine not in MATCH_ENGINES:
            raise ValueError(f"unknown matcher engine {self.engine!r}; "
                             f"expected one of {MATCH_ENGINES}")
        kwargs = dict(ratio_threshold=self.ratio_threshold,
                      ransac_iterations=self.ransac_iterations,
                      ransac_inlier_radius=self.ransac_inlier_radius,
                      min_inliers=self.min_inliers,
                      rng=np.random.default_rng(self.seed))
        if self.engine == "reference":
            return ObjectMatcher(**kwargs)
        return BatchObjectMatcher(
            cache=CandidateMatrixCache(self.cache_capacity), **kwargs)
