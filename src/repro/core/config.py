"""Network topology configuration.

Latency defaults are calibrated to the paper's measurements:

* UE -> cloud server through the conventional core: ~70 ms RTT (the
  Figure 3(c) California median), decomposed into radio + backhaul +
  core + internet hops;
* eNodeB -> MEC server: ~1.6 ms RTT (Section 7.2), so the UE -> MEC RTT
  lands under 15 ms for 95% of pings (Figure 10(a));
* central core links: 100 Mbps with deep buffers, saturating around
  90-100 Mbps of background traffic exactly where Figures 3(g)/10(b)
  show the latency explosion.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.sdn.dataplane import (ACACIA_OVS_PROFILE, IDEAL_PROFILE,
                                 OPENEPC_USERSPACE_PROFILE, DataPlaneProfile)

#: Named gateway data-plane profiles a config document may reference.
DATA_PLANE_PROFILES: dict[str, DataPlaneProfile] = {
    profile.name: profile
    for profile in (OPENEPC_USERSPACE_PROFILE, ACACIA_OVS_PROFILE,
                    IDEAL_PROFILE)
}


class ConfigError(ValueError):
    """A config document failed to deserialise.

    ``path`` qualifies exactly which key is wrong
    (``"network.signalling.rrc_delay"``), so errors from deeply nested
    scenario documents point at the offending line.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


def _value_to_dict(value: Any) -> Any:
    if isinstance(value, DataPlaneProfile):
        # known profiles serialise by name; ad-hoc ones in full
        for name, profile in DATA_PLANE_PROFILES.items():
            if value == profile:
                return name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _value_to_dict(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, (list, tuple)):
        return [_value_to_dict(v) for v in value]
    return value


def _profile_from(value: Any, path: str) -> DataPlaneProfile:
    if isinstance(value, DataPlaneProfile):
        return value
    if isinstance(value, str):
        try:
            return DATA_PLANE_PROFILES[value]
        except KeyError:
            raise ConfigError(
                path, f"unknown data-plane profile {value!r}; expected one "
                f"of {sorted(DATA_PLANE_PROFILES)}") from None
    if isinstance(value, Mapping):
        return _fields_from(DataPlaneProfile, value, path)
    raise ConfigError(path, "expected a profile name or object, "
                            f"got {type(value).__name__}")


def _fields_from(cls, data: Mapping[str, Any], path: str):
    """Strictly construct dataclass ``cls`` from a mapping.

    Unknown keys are rejected; nested config objects recurse with a
    qualified path; ints quietly widen to float where the field default
    is a float (JSON authors write ``0`` for ``0.0``).
    """
    if not isinstance(data, Mapping):
        raise ConfigError(path, f"expected an object, "
                                f"got {type(data).__name__}")
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise ConfigError(path, f"unknown key(s) {unknown}; "
                                f"valid keys: {sorted(fields)}")
    nested = NESTED_CONFIG_FIELDS.get(cls, {})
    kwargs: dict[str, Any] = {}
    for key, raw in data.items():
        sub_path = f"{path}.{key}" if path else key
        if key in nested:
            nested_cls = nested[key]
            if nested_cls is DataPlaneProfile:
                kwargs[key] = _profile_from(raw, sub_path)
            elif isinstance(raw, nested_cls):
                kwargs[key] = raw
            else:
                kwargs[key] = _fields_from(nested_cls, raw, sub_path)
            continue
        f = fields[key]
        if (f.default is not dataclasses.MISSING
                and isinstance(f.default, float)
                and isinstance(raw, int) and not isinstance(raw, bool)):
            raw = float(raw)
        kwargs[key] = raw
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ConfigError(path, str(exc)) from None


class ConfigMapping:
    """Uniform dict round-tripping for the config dataclasses.

    ``to_dict`` serialises every field (nested configs recurse, known
    data-plane profiles collapse to their names); ``from_dict``
    reconstructs strictly -- unknown keys raise :class:`ConfigError`
    with the full dotted path -- so
    ``cls.from_dict(cfg.to_dict()) == cfg`` for every config class.
    """

    def to_dict(self) -> dict[str, Any]:
        return _value_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, path: str = ""):
        return _fields_from(cls, data, path)


@dataclass
class NetworkConfig(ConfigMapping):
    """All tunables of the simulated mobile network."""

    # radio access
    radio_ul_bandwidth: float = 12e6       # Figure 3(d) peak uplink
    radio_dl_bandwidth: float = 30e6       # typical LTE downlink
    radio_delay: float = 0.004             # one-way UE <-> eNB
    radio_jitter: float = 0.003            # HARQ/scheduling variability
    radio_queue_bytes: int = 300_000

    # central (conventional core) path
    backhaul_delay: float = 0.010          # eNB <-> central SGW-U
    core_delay: float = 0.010              # SGW-U <-> PGW-U
    internet_delay: float = 0.009          # PGW-U <-> cloud server
    core_bandwidth: float = 100e6          # the shared 100 Mbps bottleneck
    core_queue_bytes: int = 25_000_000     # deep buffers -> seconds of bloat

    # MEC (edge) path
    mec_backhaul_delay: float = 0.0004     # eNB <-> local SGW-U
    mec_core_delay: float = 0.0002         # local SGW-U <-> local PGW-U
    mec_server_delay: float = 0.0002       # local PGW-U <-> CI server
    mec_bandwidth: float = 1e9
    mec_queue_bytes: int = 1_500_000

    # gateway data planes
    central_profile: DataPlaneProfile = field(
        default_factory=lambda: OPENEPC_USERSPACE_PROFILE)
    mec_profile: DataPlaneProfile = field(
        default_factory=lambda: ACACIA_OVS_PROFILE)

    # control plane
    seed: int = 0
    signalling: "SignallingConfig" = field(
        default_factory=lambda: SignallingConfig())
    resilience: "ResilienceConfig" = field(
        default_factory=lambda: ResilienceConfig())

    # multi-site edge fabric / session continuity
    continuity: "ContinuityConfig" = field(
        default_factory=lambda: ContinuityConfig())

    # discrete-event engine
    sim: "SimConfig" = field(default_factory=lambda: SimConfig())

    def cloud_one_way_delay(self) -> float:
        """Nominal UE -> cloud one-way propagation (no queueing/jitter)."""
        return (self.radio_delay + self.backhaul_delay + self.core_delay
                + self.internet_delay)

    def mec_one_way_delay(self) -> float:
        """Nominal UE -> MEC one-way propagation."""
        return (self.radio_delay + self.mec_backhaul_delay
                + self.mec_core_delay + self.mec_server_delay)


@dataclass
class SignallingConfig(ConfigMapping):
    """Transport parameters for the control-plane signalling fabric.

    Replaces the old fixed per-hop delay table: each protocol now gets
    a one-way propagation delay *and* a serialisation bandwidth, so a
    control message's latency is measured on a queued link and grows
    under concurrent signalling load (see
    :mod:`repro.epc.signalling`).  Defaults are calibrated so a lone
    procedure's latency lands where the old constants put it.
    """

    rrc_delay: float = 0.008           # over the air
    rrc_bandwidth: float = 1e6         # shared per-cell PDCCH/PUCCH budget
    sctp_delay: float = 0.0015         # S1-MME backhaul hop
    sctp_bandwidth: float = 20e6
    gtpc_delay: float = 0.0015         # S11 / S5-C core control hop
    gtpc_bandwidth: float = 20e6
    diameter_delay: float = 0.0015     # Gx / Rx hop
    diameter_bandwidth: float = 20e6
    openflow_delay: float = 0.001      # controller -> switch
    openflow_bandwidth: float = 100e6
    x2_delay: float = 0.002            # inter-eNodeB backhaul hop
    x2_bandwidth: float = 50e6
    queue_bytes: int = 2_000_000       # reliable transports queue, not drop

    def transports(self):
        """Per-protocol :class:`~repro.epc.signalling.ChannelSpec` map.

        Imports lazily so the config layer stays importable without
        pulling the EPC stack in at module scope.
        """
        from repro.epc.signalling import ChannelSpec

        q = self.queue_bytes
        return {
            "RRC": ChannelSpec(self.rrc_delay, self.rrc_bandwidth, q),
            "SCTP": ChannelSpec(self.sctp_delay, self.sctp_bandwidth, q),
            "GTPv2": ChannelSpec(self.gtpc_delay, self.gtpc_bandwidth, q),
            "Diameter": ChannelSpec(self.diameter_delay,
                                    self.diameter_bandwidth, q),
            "OpenFlow": ChannelSpec(self.openflow_delay,
                                    self.openflow_bandwidth, q),
            "X2AP": ChannelSpec(self.x2_delay, self.x2_bandwidth, q),
        }


@dataclass
class ResilienceConfig(ConfigMapping):
    """Retransmission timers for the control plane (3GPP-flavoured).

    Timer names follow the NAS/GTP timers they stand in for: T3410
    guards attach-family NAS exchanges on the air interface, T3450
    the S1AP leg, T3485 the GTP-C bearer-management requests.  Values
    are generous relative to lone-procedure latency so a timer only
    fires when a message was genuinely lost (or queued behind a
    pathological signalling storm), never on healthy runs -- with zero
    injected loss the timers arm and cancel without changing a single
    message count.

    ``enabled=False`` keeps the timers armed but performs no
    retransmissions: a lost message then surfaces as a terminal
    ``timeout`` procedure outcome instead of a simulator deadlock.
    """

    enabled: bool = True
    t3410: float = 3.0          # RRC / NAS air-interface exchanges
    t3450: float = 3.0          # S1AP (SCTP) leg
    t3485: float = 3.0          # GTP-C / Diameter bearer management
    openflow_timer: float = 1.0  # controller -> switch flow-mods
    x2_timer: float = 2.0       # inter-eNodeB handover signalling
    backoff: float = 2.0
    max_retries: int = 4

    def policy(self):
        """Build the :class:`~repro.epc.signalling.RetryPolicy`.

        Imports lazily so the config layer stays importable without
        pulling the EPC stack in at module scope.
        """
        from repro.epc.signalling import RetryPolicy

        return RetryPolicy(
            enabled=self.enabled,
            timers={
                "RRC": self.t3410,
                "SCTP": self.t3450,
                "GTPv2": self.t3485,
                "Diameter": self.t3485,
                "OpenFlow": self.openflow_timer,
                "X2AP": self.x2_timer,
            },
            default_timer=self.t3485,
            backoff=self.backoff,
            max_retries=self.max_retries,
        )


#: Application-context relocation policies (see :mod:`repro.core.mrs`).
CONTINUITY_POLICIES = ("make-before-break", "break-before-make")


@dataclass
class ContinuityConfig(ConfigMapping):
    """Parameters of the multi-site edge fabric and session continuity.

    Governs the inter-site WAN links created between
    :class:`~repro.core.network.EdgeSite` deployments and the
    application-context relocation the MRS performs when a handover
    carries a UE across a site boundary:

    * ``policy`` -- ``"make-before-break"`` pre-copies the CI
      application context to the target site while the old path keeps
      serving, switches the bearer, then delta-syncs what changed
      during the copy; ``"break-before-make"`` withdraws the old path
      first and transfers the full context during the outage.
    * ``context_size_bytes`` -- size of one session's application
      context (the state-transfer cost model is context size x
      inter-site link throughput, transferred as simulated traffic).
    * ``delta_fraction`` -- fraction of the context re-sent by the
      make-before-break delta-sync step.
    * ``wan_delay`` / ``wan_bandwidth`` / ``wan_queue_bytes`` -- the
      inter-site WAN link parameters (one duplex link per site pair).
    """

    policy: str = "make-before-break"
    context_size_bytes: int = 2_000_000       # ~2 MB of session state
    chunk_bytes: int = 64_000                 # transfer segment size
    delta_fraction: float = 0.05              # MBB delta-sync share
    wan_delay: float = 0.002                  # one-way inter-site hop
    wan_bandwidth: float = 1e9                # metro fibre between sites
    wan_queue_bytes: int = 4_000_000          # deep enough for a burst

    def __post_init__(self) -> None:
        if self.policy not in CONTINUITY_POLICIES:
            raise ValueError(f"unknown continuity policy {self.policy!r}; "
                             f"expected one of {CONTINUITY_POLICIES}")
        if self.context_size_bytes < 0:
            raise ValueError("context size must be non-negative")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        if not (0.0 <= self.delta_fraction <= 1.0):
            raise ValueError("delta fraction must be in [0, 1]")
        if self.wan_bandwidth <= 0:
            raise ValueError("WAN bandwidth must be positive")
        if self.wan_delay < 0:
            raise ValueError("WAN delay must be non-negative")


#: Available data-plane models (see :mod:`repro.sim.fluid`).
DATA_PLANES = ("packet", "fluid-bg")

#: Available sharding modes (see :mod:`repro.sim.shard`).
SHARDING_MODES = ("off", "site")


@dataclass
class SimConfig(ConfigMapping):
    """Selects and parameterises the discrete-event scheduler.

    ``scheduler=None`` (the default) defers to the
    ``REPRO_SIM_SCHEDULER`` environment variable and then to the fast
    two-lane/timer-wheel scheduler; ``"reference"`` forces the original
    single binary heap.  Both implement the identical
    ``(time, priority, seq)`` total order, so switching schedulers
    changes wall-clock only, never event order or results.

    ``data_plane`` selects how background load traverses the network:
    ``"packet"`` (the default) simulates every background packet;
    ``"fluid-bg"`` aggregates background flows into piecewise-constant
    fluid rates (:mod:`repro.sim.fluid`) while foreground CI/AR and
    signalling traffic stays per-packet.  ``"packet"`` mode is
    byte-identical to a build without the fluid subsystem.

    ``sharding`` selects the execution layout: ``"off"`` (the default)
    runs everything in one process; ``"site"`` partitions a multi-site
    deployment into per-edge-site shard processes synchronized by
    conservative WAN-lookahead windows (:mod:`repro.sim.shard`).
    Sharded runs are byte-identical to single-process runs -- the
    setting changes wall-clock only, never results.
    """

    scheduler: str | None = None
    wheel_granularity: float = 1e-4
    wheel_slots: int = 1024
    pool_size: int = 1024
    data_plane: str = "packet"
    sharding: str = "off"

    def __post_init__(self) -> None:
        if self.data_plane not in DATA_PLANES:
            raise ValueError(f"unknown data plane {self.data_plane!r}; "
                             f"expected one of {DATA_PLANES}")
        if self.sharding not in SHARDING_MODES:
            raise ValueError(f"unknown sharding mode {self.sharding!r}; "
                             f"expected one of {SHARDING_MODES}")

    def build_simulator(self):
        """Construct a :class:`~repro.sim.engine.Simulator`.

        Imports lazily so the config layer stays importable without
        pulling the sim stack in at module scope.
        """
        from repro.sim.engine import Simulator

        return Simulator(scheduler=self.scheduler,
                         wheel_granularity=self.wheel_granularity,
                         wheel_slots=self.wheel_slots,
                         pool_size=self.pool_size)


#: Available object-matching engines (see :mod:`repro.vision.batch`).
MATCH_ENGINES = ("batch", "reference")


@dataclass
class MatcherConfig(ConfigMapping):
    """Selects and parameterises the AR back-end's matching engine.

    ``engine="batch"`` (the default) builds the vectorized
    :class:`~repro.vision.batch.BatchObjectMatcher` with an LRU
    candidate-matrix cache; ``engine="reference"`` builds the
    loop-based :class:`~repro.vision.matcher.ObjectMatcher`.  Both are
    decision-equivalent for the same seed, so switching engines changes
    wall-clock only, never results.
    """

    engine: str = "batch"
    cache_capacity: int = 32
    ratio_threshold: float = 0.75
    ransac_iterations: int = 50
    ransac_inlier_radius: float = 3.0
    min_inliers: int = 8
    seed: int = 1234

    def build(self):
        """Construct the configured matcher.

        Imports lazily so the config layer stays importable without
        pulling the vision stack in at module scope.
        """
        import numpy as np

        from repro.vision.batch import (BatchObjectMatcher,
                                        CandidateMatrixCache)
        from repro.vision.matcher import ObjectMatcher

        if self.engine not in MATCH_ENGINES:
            raise ValueError(f"unknown matcher engine {self.engine!r}; "
                             f"expected one of {MATCH_ENGINES}")
        kwargs = dict(ratio_threshold=self.ratio_threshold,
                      ransac_iterations=self.ransac_iterations,
                      ransac_inlier_radius=self.ransac_inlier_radius,
                      min_inliers=self.min_inliers,
                      rng=np.random.default_rng(self.seed))
        if self.engine == "reference":
            return ObjectMatcher(**kwargs)
        return BatchObjectMatcher(
            cache=CandidateMatrixCache(self.cache_capacity), **kwargs)


#: Which fields of which config class hold nested config objects --
#: drives the recursive strict deserialisation in ``_fields_from``.
NESTED_CONFIG_FIELDS: dict[type, dict[str, type]] = {
    NetworkConfig: {
        "signalling": SignallingConfig,
        "resilience": ResilienceConfig,
        "continuity": ContinuityConfig,
        "sim": SimConfig,
        "central_profile": DataPlaneProfile,
        "mec_profile": DataPlaneProfile,
    },
}
