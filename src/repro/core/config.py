"""Network topology configuration.

Latency defaults are calibrated to the paper's measurements:

* UE -> cloud server through the conventional core: ~70 ms RTT (the
  Figure 3(c) California median), decomposed into radio + backhaul +
  core + internet hops;
* eNodeB -> MEC server: ~1.6 ms RTT (Section 7.2), so the UE -> MEC RTT
  lands under 15 ms for 95% of pings (Figure 10(a));
* central core links: 100 Mbps with deep buffers, saturating around
  90-100 Mbps of background traffic exactly where Figures 3(g)/10(b)
  show the latency explosion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sdn.dataplane import (ACACIA_OVS_PROFILE,
                                 OPENEPC_USERSPACE_PROFILE, DataPlaneProfile)


@dataclass
class NetworkConfig:
    """All tunables of the simulated mobile network."""

    # radio access
    radio_ul_bandwidth: float = 12e6       # Figure 3(d) peak uplink
    radio_dl_bandwidth: float = 30e6       # typical LTE downlink
    radio_delay: float = 0.004             # one-way UE <-> eNB
    radio_jitter: float = 0.003            # HARQ/scheduling variability
    radio_queue_bytes: int = 300_000

    # central (conventional core) path
    backhaul_delay: float = 0.010          # eNB <-> central SGW-U
    core_delay: float = 0.010              # SGW-U <-> PGW-U
    internet_delay: float = 0.009          # PGW-U <-> cloud server
    core_bandwidth: float = 100e6          # the shared 100 Mbps bottleneck
    core_queue_bytes: int = 25_000_000     # deep buffers -> seconds of bloat

    # MEC (edge) path
    mec_backhaul_delay: float = 0.0004     # eNB <-> local SGW-U
    mec_core_delay: float = 0.0002         # local SGW-U <-> local PGW-U
    mec_server_delay: float = 0.0002       # local PGW-U <-> CI server
    mec_bandwidth: float = 1e9
    mec_queue_bytes: int = 1_500_000

    # gateway data planes
    central_profile: DataPlaneProfile = field(
        default_factory=lambda: OPENEPC_USERSPACE_PROFILE)
    mec_profile: DataPlaneProfile = field(
        default_factory=lambda: ACACIA_OVS_PROFILE)

    # control plane
    seed: int = 0

    def cloud_one_way_delay(self) -> float:
        """Nominal UE -> cloud one-way propagation (no queueing/jitter)."""
        return (self.radio_delay + self.backhaul_delay + self.core_delay
                + self.internet_delay)

    def mec_one_way_delay(self) -> float:
        """Nominal UE -> MEC one-way propagation."""
        return (self.radio_delay + self.mec_backhaul_delay
                + self.mec_core_delay + self.mec_server_delay)
