"""The ACACIA device manager.

An always-running service on the mobile device (an Android Service in
the prototype, Section 6.2) with two roles:

* a proxy between CI applications and the LTE modem: apps register
  their interests, the device manager installs the corresponding
  code/mask filters in the modem and relays matching discovery
  observations back to the app;
* the network-connectivity manager: on the *first* interest match for a
  CI application it asks the MRS to create the dedicated bearer to the
  closest CI server; when the user finishes the app, it asks the MRS to
  delete the connectivity and unregisters the app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import Observation
from repro.d2d.modem import LteDirectModem

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mrs import ActiveSession, MecRegistrationServer
    from repro.epc.ue import UEDevice


@dataclass
class ServiceInfo:
    """The app <-> device-manager exchange record (the prototype's
    Parcelable ServiceInfo class)."""

    app_id: str
    service_id: str                  # CI service at the MRS
    lte_direct_service: str          # discovery service name
    interests: list[str] = field(default_factory=list)


@dataclass
class _Registration:
    info: ServiceInfo
    on_discovery: Callable[[Observation], None]
    on_connected: Optional[Callable[["ActiveSession"], None]]
    connected: bool = False


class AcaciaDeviceManager:
    """Per-device orchestration of apps, modem and MEC connectivity."""

    def __init__(self, ue: "UEDevice", mrs: "MecRegistrationServer",
                 modem: Optional[LteDirectModem] = None,
                 namespace: Optional[ExpressionNamespace] = None) -> None:
        self.ue = ue
        self.mrs = mrs
        self.modem = modem if modem is not None else LteDirectModem(ue.name)
        self.namespace = namespace if namespace is not None \
            else ExpressionNamespace()
        self._registrations: dict[str, _Registration] = {}
        self.matches_seen = 0

    # -- app lifecycle ------------------------------------------------------

    def register_app(self, info: ServiceInfo,
                     on_discovery: Callable[[Observation], None],
                     on_connected: Optional[
                         Callable[["ActiveSession"], None]] = None,
                     connect_on_register: bool = False) -> None:
        """A CI application connects and declares its interests.

        ``connect_on_register=True`` is the paper's Section 8 variant
        for environments without proximity discovery: launching the
        application itself triggers the MEC connectivity request,
        instead of waiting for the first interest match.
        """
        if info.app_id in self._registrations:
            raise ValueError(f"app {info.app_id!r} already registered")
        registration = _Registration(info, on_discovery, on_connected)
        self._registrations[info.app_id] = registration
        for interest in info.interests:
            self._install_filter(registration, interest)
        if connect_on_register:
            self._connect(registration)

    def add_interest(self, app_id: str, interest: str) -> None:
        """The user selects another interest in the app's UI."""
        registration = self._registration(app_id)
        if interest not in registration.info.interests:
            registration.info.interests.append(interest)
            self._install_filter(registration, interest)

    def unregister_app(self, app_id: str) -> None:
        """The user finishes the CI app: tear down connectivity and
        remove all of the app's modem filters."""
        registration = self._registrations.pop(app_id, None)
        if registration is None:
            return
        for interest in registration.info.interests:
            self.modem.unsubscribe(self._filter_name(app_id, interest))
        if registration.connected:
            self.mrs.release_connectivity(self.ue,
                                          registration.info.service_id)

    @property
    def registered_apps(self) -> list[str]:
        return list(self._registrations)

    # -- modem plumbing -------------------------------------------------------

    @staticmethod
    def _filter_name(app_id: str, interest: str) -> str:
        return f"{app_id}:{interest}"

    def _install_filter(self, registration: _Registration,
                        interest: str) -> None:
        expression_filter = self.namespace.offering_filter(
            registration.info.lte_direct_service, interest)
        self.modem.subscribe(
            self._filter_name(registration.info.app_id, interest),
            expression_filter,
            lambda obs, reg=registration: self._on_match(reg, obs))

    def _connect(self, registration: _Registration,
                 discovery_payload: str = "") -> None:
        session = self.mrs.request_connectivity(
            self.ue, registration.info.service_id,
            discovery_payload=discovery_payload)
        registration.connected = True
        if registration.on_connected is not None:
            registration.on_connected(session)

    def _on_match(self, registration: _Registration,
                  observation: Observation) -> None:
        """A discovery message matched one of the app's interests."""
        self.matches_seen += 1
        if not registration.connected:
            self._connect(registration,
                          discovery_payload=observation.message.payload)
        registration.on_discovery(observation)

    def _registration(self, app_id: str) -> _Registration:
        try:
            return self._registrations[app_id]
        except KeyError:
            raise KeyError(f"app {app_id!r} is not registered") from None
