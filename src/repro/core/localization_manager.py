"""The CI-server-side LTE-direct localisation manager.

Receives (landmark name, rxPower) updates forwarded by clients'
localisation handlers, runs trilateration per user, and exposes the
current estimate to the AR back-end for search-space pruning
(Sections 5.5 and 6.3).
"""

from __future__ import annotations

from typing import Optional

from repro.d2d.messages import Observation
from repro.localization.landmarks import LandmarkMap
from repro.localization.tracker import LocationTracker


class LocalizationManager:
    """Per-user location tracking on the CI server."""

    def __init__(self, landmark_map: LandmarkMap,
                 staleness: float = 30.0, min_landmarks: int = 3) -> None:
        self.map = landmark_map
        self.staleness = staleness
        self.min_landmarks = min_landmarks
        self._trackers: dict[str, LocationTracker] = {}

    def tracker_for(self, user_id: str) -> LocationTracker:
        tracker = self._trackers.get(user_id)
        if tracker is None:
            tracker = LocationTracker(self.map, staleness=self.staleness,
                                      min_landmarks=self.min_landmarks)
            self._trackers[user_id] = tracker
        return tracker

    def report(self, user_id: str, landmark_name: str, rx_power: float,
               timestamp: float) -> None:
        """One rxPower update from a user's localisation handler."""
        self.tracker_for(user_id).observe(landmark_name, rx_power,
                                          timestamp)

    def report_observation(self, user_id: str,
                           observation: Observation) -> None:
        """Convenience: feed a whole discovery observation."""
        self.report(user_id, observation.landmark, observation.rx_power,
                    observation.timestamp)

    def location(self, user_id: str,
                 now: float) -> Optional[tuple[float, float]]:
        tracker = self._trackers.get(user_id)
        if tracker is None:
            return None
        return tracker.estimate(now)

    def strongest_landmarks(self, user_id: str, now: float,
                            count: int = 2) -> list[str]:
        tracker = self._trackers.get(user_id)
        if tracker is None:
            return []
        return tracker.strongest_landmarks(now, count)

    @property
    def users(self) -> list[str]:
        return list(self._trackers)
