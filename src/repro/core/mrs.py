"""MEC Registration Server (MRS).

The MRS is ACACIA's core-network component (an Application Function in
3GPP terms, Section 5.3): it manages CI services and creates/deletes
the network connectivity between CI applications and their CI servers
in the mobile edge clouds.  The first service discovery message a
device manager forwards is used to locate the closest CI server; the
MRS then drives the PCRF to trigger the network-initiated dedicated
bearer (Section 5.4, step 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.service import CIServerInstance, CIService, ServiceRegistry
from repro.epc.entities import ServicePolicy
from repro.epc.procedures import ProcedureResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import MobileNetwork
    from repro.epc.ue import UEDevice


@dataclass
class ActiveSession:
    """One UE's live connectivity to a CI service."""

    imsi: str
    service_id: str
    instance: CIServerInstance
    ebi: int
    setup_result: ProcedureResult


class MecRegistrationServer:
    """Manages CI services and on-demand MEC connectivity."""

    def __init__(self, network: "MobileNetwork", name: str = "mrs") -> None:
        self.network = network
        self.name = name
        self.registry = ServiceRegistry()
        self.sessions: dict[tuple[str, str], ActiveSession] = {}
        self.requests_served = 0

    # -- service management (operator-facing) ------------------------------

    def register_service(self, service: CIService) -> None:
        """Register a CI service and configure its PCRF policy."""
        self.registry.register(service)
        self.network.pcrf.configure(ServicePolicy(
            service_id=service.service_id, qci=service.qci))

    def deploy_instance(self, service_id: str, server_name: str,
                        site_name: str,
                        serves_enbs: Optional[set[str]] = None) -> None:
        """Record a CI server deployment on an edge site."""
        service = self.registry.get(service_id)
        server = self.network.servers[server_name]
        service.add_instance(CIServerInstance(
            server_name=server_name, site_name=site_name,
            server_ip=server.ip,
            serves_enbs=frozenset(serves_enbs or {self.network.enb.name})))

    # -- connectivity lifecycle (device-manager-facing) ----------------------

    def request_connectivity(self, ue: "UEDevice", service_id: str,
                             discovery_payload: str = "") -> ActiveSession:
        """Create the dedicated bearer to the closest CI server.

        Idempotent per (UE, service): repeated interest matches while a
        session is live do not create extra bearers -- this is exactly
        the control-overhead saving of Section 5.3.
        """
        key = (ue.imsi, service_id)
        if key in self.sessions:
            return self.sessions[key]
        service = self.registry.get(service_id)
        # closest instance to the UE's *current* cell
        enb_name = self.network.mme.context(ue.imsi).enb.name
        instance = service.instance_for_enb(enb_name)
        result = self.network.control_plane.activate_dedicated_bearer(
            ue, service_id, instance.server_ip, instance.site_name,
            requested_by=self.name)
        session = ActiveSession(
            imsi=ue.imsi, service_id=service_id, instance=instance,
            ebi=result.bearer.ebi, setup_result=result)
        self.sessions[key] = session
        self.requests_served += 1
        return session

    def release_connectivity(self, ue: "UEDevice",
                             service_id: str) -> Optional[ProcedureResult]:
        """Tear down the dedicated bearer when the CI app finishes."""
        session = self.sessions.pop((ue.imsi, service_id), None)
        if session is None:
            return None
        return self.network.control_plane.deactivate_dedicated_bearer(
            ue, session.ebi, requested_by=self.name)

    def session_for(self, ue: "UEDevice",
                    service_id: str) -> Optional[ActiveSession]:
        return self.sessions.get((ue.imsi, service_id))

    def relocate_session(self, ue: "UEDevice",
                         service_id: str) -> Optional[ActiveSession]:
        """Re-anchor a session onto the closest CI server instance.

        After a handover, the UE's eNodeB may be served by a different
        edge site.  The SGW anchor keeps the old bearer working, but
        latency-wise the session should move: this tears the old
        dedicated bearer down and builds a new one to the instance
        closest to the current cell.  No-op when the current instance
        is already the best one.  Returns the (possibly new) session.
        """
        session = self.sessions.get((ue.imsi, service_id))
        if session is None:
            return None
        service = self.registry.get(service_id)
        enb_name = self.network.mme.context(ue.imsi).enb.name
        best = service.instance_for_enb(enb_name)
        if best is session.instance:
            return session
        self.release_connectivity(ue, service_id)
        return self.request_connectivity(ue, service_id)
