"""MEC Registration Server (MRS).

The MRS is ACACIA's core-network component (an Application Function in
3GPP terms, Section 5.3): it manages CI services and creates/deletes
the network connectivity between CI applications and their CI servers
in the mobile edge clouds.  The first service discovery message a
device manager forwards is used to locate the closest CI server; the
MRS then drives the PCRF to trigger the network-initiated dedicated
bearer (Section 5.4, step 1-2).

Graceful degradation: the MRS watches the fault layer's
:class:`~repro.faults.events.FaultInjected` / ``FaultCleared`` events.
When a :class:`~repro.faults.plan.McServerOutage` (or a
``LinkDown`` of a site's S5 core link) kills the server behind a live
session, the MRS tears the dedicated bearer down and either
*relocates* the session to a surviving instance or *falls back* to
the central gateway path (default bearer only), emitting
:class:`~repro.core.events.SessionDegraded`; when the fault clears,
degraded sessions get their dedicated MEC path rebuilt and
:class:`~repro.core.events.SessionRestored` fires.

Session continuity: on an edge fabric (multiple
:meth:`~repro.core.network.MobileNetwork.add_edge_site` sites) the MRS
also watches :class:`~repro.epc.events.HandoverCompleted`.  A handover
into a cell homed on a different site triggers application-context
relocation -- the context is shipped over the inter-site WAN and the
dedicated bearer re-steered to the target site's gateways -- under the
make-before-break or break-before-make policy selected by
:class:`~repro.core.config.ContinuityConfig`, emitting
``SessionRelocating`` / ``SessionRelocated`` with the measured
CI-session interruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.events import (SessionDegraded, SessionRelocated,
                               SessionRelocating, SessionRestored)
from repro.core.service import CIServerInstance, CIService, ServiceRegistry
from repro.epc.entities import ServicePolicy
from repro.epc.events import HandoverCompleted
from repro.epc.procedures import ProcedureResult
from repro.faults.events import FaultCleared, FaultInjected
from repro.faults.plan import LinkDown, McServerOutage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import MobileNetwork
    from repro.epc.ue import UEDevice


@dataclass
class ActiveSession:
    """One UE's live connectivity to a CI service."""

    imsi: str
    service_id: str
    instance: CIServerInstance
    ebi: int
    setup_result: ProcedureResult


@dataclass
class DegradedSession:
    """Bookkeeping for a session knocked off its CI server by a fault."""

    imsi: str
    service_id: str
    mode: str                   # "relocated" | "central-fallback"


class MecRegistrationServer:
    """Manages CI services and on-demand MEC connectivity."""

    def __init__(self, network: "MobileNetwork", name: str = "mrs") -> None:
        self.network = network
        self.name = name
        self.registry = ServiceRegistry()
        self.sessions: dict[tuple[str, str], ActiveSession] = {}
        self.requests_served = 0
        #: sessions currently running degraded, by (imsi, service_id)
        self.degraded: dict[tuple[str, str], DegradedSession] = {}
        self._down_servers: set[str] = set()
        self._down_sites: set[str] = set()
        #: sessions with an application-context relocation in flight
        self._relocating: set[tuple[str, str]] = set()
        self.relocations_started = 0
        self.relocations_completed = 0
        self.relocations_skipped_fault = 0
        network.hooks.on(FaultInjected, self._on_fault)
        network.hooks.on(FaultCleared, self._on_fault_cleared)
        network.hooks.on(HandoverCompleted, self._on_handover)

    # -- service management (operator-facing) ------------------------------

    def register_service(self, service: CIService) -> None:
        """Register a CI service and configure its PCRF policy."""
        self.registry.register(service)
        self.network.pcrf.configure(ServicePolicy(
            service_id=service.service_id, qci=service.qci))

    def deploy_instance(self, service_id: str, server_name: str,
                        site_name: str,
                        serves_enbs: Optional[set[str]] = None) -> None:
        """Record a CI server deployment on an edge site."""
        service = self.registry.get(service_id)
        server = self.network.servers[server_name]
        service.add_instance(CIServerInstance(
            server_name=server_name, site_name=site_name,
            server_ip=server.ip,
            serves_enbs=frozenset(serves_enbs or {self.network.enb.name})))

    # -- connectivity lifecycle (device-manager-facing) ----------------------

    def request_connectivity(self, ue: "UEDevice", service_id: str,
                             discovery_payload: str = "") -> ActiveSession:
        """Create the dedicated bearer to the closest CI server.

        Idempotent per (UE, service): repeated interest matches while a
        session is live do not create extra bearers -- this is exactly
        the control-overhead saving of Section 5.3.
        """
        key = (ue.imsi, service_id)
        if key in self.sessions:
            return self.sessions[key]
        service = self.registry.get(service_id)
        # closest *healthy* instance to the UE's current cell
        enb_name = self.network.mme.context(ue.imsi).enb.name
        instance = self._select_instance(service, enb_name)
        if instance is None:
            raise LookupError(
                f"service {service_id!r} has no healthy instances")
        result = self.network.control_plane.activate_dedicated_bearer(
            ue, service_id, instance.server_ip, instance.site_name,
            requested_by=self.name)
        session = ActiveSession(
            imsi=ue.imsi, service_id=service_id, instance=instance,
            ebi=result.bearer.ebi, setup_result=result)
        self.sessions[key] = session
        self.requests_served += 1
        return session

    def release_connectivity(self, ue: "UEDevice",
                             service_id: str) -> Optional[ProcedureResult]:
        """Tear down the dedicated bearer when the CI app finishes."""
        session = self.sessions.pop((ue.imsi, service_id), None)
        if session is None:
            return None
        return self.network.control_plane.deactivate_dedicated_bearer(
            ue, session.ebi, requested_by=self.name)

    def session_for(self, ue: "UEDevice",
                    service_id: str) -> Optional[ActiveSession]:
        return self.sessions.get((ue.imsi, service_id))

    def relocate_session(self, ue: "UEDevice",
                         service_id: str) -> Optional[ActiveSession]:
        """Re-anchor a session onto the closest CI server instance.

        After a handover, the UE's eNodeB may be served by a different
        edge site.  The SGW anchor keeps the old bearer working, but
        latency-wise the session should move: this tears the old
        dedicated bearer down and builds a new one to the instance
        closest to the current cell.  No-op when the current instance
        is already the best one.  Returns the (possibly new) session.
        """
        session = self.sessions.get((ue.imsi, service_id))
        if session is None:
            return None
        service = self.registry.get(service_id)
        enb_name = self.network.mme.context(ue.imsi).enb.name
        best = self._select_instance(service, enb_name)
        if best is session.instance:
            return session
        self.release_connectivity(ue, service_id)
        return self.request_connectivity(ue, service_id)

    # -- application-context relocation (edge-fabric mobility) -------------

    def _on_handover(self, event: HandoverCompleted) -> None:
        """Follow the UE across a site boundary.

        When the target cell's home edge site differs from the site
        anchoring a live session, start an application-context
        relocation per the configured
        :class:`~repro.core.config.ContinuityConfig` policy.  Cells
        without a home site (single-site deployments) never trigger
        this, so existing topologies behave exactly as before.
        """
        to_site = self.network.home_site_of(event.target.name)
        if to_site is None:
            return
        for session in list(self.sessions.values()):
            if session.imsi == event.ue.imsi:
                self._maybe_relocate(event.ue, session, to_site)

    def _maybe_relocate(self, ue: "UEDevice", session: ActiveSession,
                        to_site: str) -> None:
        key = (session.imsi, session.service_id)
        if key in self._relocating:
            return          # a relocation for this session is in flight
        from_site = session.instance.site_name
        if from_site == to_site:
            return
        service = self.registry.get(session.service_id)
        target = next(
            (i for i in service.instances
             if i.site_name == to_site
             and i.server_name not in self._down_servers
             and i.site_name not in self._down_sites), None)
        if target is None:
            # the target site has no healthy instance: stay anchored at
            # the current site (the SGW keeps the old bearer working)
            # rather than stranding the session mid-move
            self.relocations_skipped_fault += 1
            return
        self._relocating.add(key)
        self.relocations_started += 1
        self.network.sim.spawn(
            self._relocate_proc(ue, session, target),
            name=f"relocate:{session.imsi}:{session.service_id}")

    def _relocate_proc(self, ue: "UEDevice", session: ActiveSession,
                       target: CIServerInstance):
        """Move a session's application context between edge sites.

        *make-before-break*: pre-copy the bulk of the context while the
        old path still serves traffic, re-steer the bearer, then
        delta-sync what changed during the pre-copy -- the session is
        only interrupted for the re-steer plus the delta.

        *break-before-make*: withdraw the bearer's flow rules first,
        transfer the whole context, then re-steer -- simpler, but the
        session is down for the entire transfer.

        The measured interruption (and the bytes actually moved over
        the inter-site WAN) are published on
        :class:`~repro.core.events.SessionRelocated`.
        """
        key = (session.imsi, session.service_id)
        net = self.network
        cfg = net.config.continuity
        cp = net.control_plane
        from_site = session.instance.site_name
        started_at = net.sim.now
        self._emit(SessionRelocating, imsi=session.imsi,
                   service_id=session.service_id, from_site=from_site,
                   to_site=target.site_name, policy=cfg.policy,
                   time=started_at)
        try:
            if cfg.policy == "make-before-break":
                delta = int(cfg.context_size_bytes * cfg.delta_fraction)
                precopy = cfg.context_size_bytes - delta
                yield net.context_transfer_async(from_site, target.site_name,
                                                 precopy)
                break_at = net.sim.now
                yield cp.resteer_bearer_async(ue, session.ebi,
                                              target.site_name,
                                              target.server_ip)
                yield net.context_transfer_async(from_site, target.site_name,
                                                 delta)
            else:   # break-before-make
                break_at = net.sim.now
                yield cp.suspend_bearer_flows_async(ue, session.ebi)
                yield net.context_transfer_async(from_site, target.site_name,
                                                 cfg.context_size_bytes)
                yield cp.resteer_bearer_async(ue, session.ebi,
                                              target.site_name,
                                              target.server_ip)
            session.instance = target
            self.relocations_completed += 1
            self._emit(SessionRelocated, imsi=session.imsi,
                       service_id=session.service_id, from_site=from_site,
                       to_site=target.site_name, policy=cfg.policy,
                       interruption=net.sim.now - break_at,
                       transferred_bytes=cfg.context_size_bytes,
                       duration=net.sim.now - started_at,
                       time=net.sim.now)
        finally:
            self._relocating.discard(key)

    # -- graceful degradation (fault-layer driven) -------------------------

    def _select_instance(self, service: CIService,
                         enb_name: str) -> Optional[CIServerInstance]:
        """Closest instance among those not behind a known fault."""
        alive = [i for i in service.instances
                 if i.server_name not in self._down_servers
                 and i.site_name not in self._down_sites]
        if not alive:
            return None
        for instance in alive:
            if enb_name in instance.serves_enbs:
                return instance
        return alive[0]

    def _on_fault(self, event: FaultInjected) -> None:
        spec = event.spec
        if isinstance(spec, McServerOutage):
            self._down_servers.add(spec.server)
            self._degrade_where(
                lambda s: s.instance.server_name == spec.server)
        elif isinstance(spec, LinkDown) and spec.link.startswith("s5."):
            site = spec.link[len("s5."):]
            self._down_sites.add(site)
            self._degrade_where(lambda s: s.instance.site_name == site)

    def _on_fault_cleared(self, event: FaultCleared) -> None:
        spec = event.spec
        if isinstance(spec, McServerOutage):
            self._down_servers.discard(spec.server)
        elif isinstance(spec, LinkDown) and spec.link.startswith("s5."):
            self._down_sites.discard(spec.link[len("s5."):])
        else:
            return
        self._restore_degraded()

    def _degrade_where(self, affected) -> None:
        """Move every session matching ``affected`` off its dead path.

        Relocation reuses the ordinary release + request cycle, so the
        dedicated bearer is properly torn down (flow rules deleted)
        before the fallback takes over.
        """
        for session in [s for s in self.sessions.values() if affected(s)]:
            key = (session.imsi, session.service_id)
            ue = self.network.mme.context(session.imsi).ue
            service = self.registry.get(session.service_id)
            enb_name = self.network.mme.context(session.imsi).enb.name
            self.release_connectivity(ue, session.service_id)
            if self._select_instance(service, enb_name) is not None:
                self.request_connectivity(ue, session.service_id)
                mode = "relocated"
            else:
                # no healthy instance anywhere: the default bearer
                # through the central gateways carries the service
                # until the fault clears
                mode = "central-fallback"
            self.degraded[key] = DegradedSession(
                imsi=session.imsi, service_id=session.service_id, mode=mode)
            self._emit(SessionDegraded, imsi=session.imsi,
                       service_id=session.service_id, mode=mode,
                       time=self.network.sim.now)

    def _restore_degraded(self) -> None:
        """Rebuild the dedicated MEC path for recoverable sessions."""
        for key, degraded in list(self.degraded.items()):
            imsi, service_id = key
            ue = self.network.mme.context(imsi).ue
            service = self.registry.get(service_id)
            enb_name = self.network.mme.context(imsi).enb.name
            if self._select_instance(service, enb_name) is None:
                continue        # still nothing healthy to return to
            if degraded.mode == "central-fallback":
                self.request_connectivity(ue, service_id)
            else:
                self.relocate_session(ue, service_id)
            del self.degraded[key]
            self._emit(SessionRestored, imsi=imsi, service_id=service_id,
                       time=self.network.sim.now)

    def _emit(self, event_type, **fields) -> None:
        hooks = self.network.hooks
        if hooks.has(event_type):
            hooks.emit(event_type(**fields))
