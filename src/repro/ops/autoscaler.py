"""Per-site matcher autoscaling with hysteresis and cooldown.

Runs entirely in *simulated* time -- evaluation is a periodic sim
event, not an asyncio task -- so a paced soak and an unpaced
deterministic run make byte-identical scaling decisions.

Policy per site, each ``interval`` simulated seconds:

* **up** when queue depth exceeds ``high_queue`` *or* p99 match
  latency exceeds ``high_p99_ms`` for ``sustain`` consecutive
  evaluations (and the cooldown has elapsed): grow by ``step`` up to
  ``max_workers``;
* **down** when depth is below ``low_queue`` *and* p99 below
  ``low_p99_ms`` for ``sustain`` consecutive evaluations: shrink by
  ``step`` down to ``min_workers`` (graceful -- see
  :meth:`~repro.ops.matchsvc.SiteMatcherService.scale_to`);
* anything in between resets both streaks (hysteresis band).

Decisions are emitted as typed :class:`~repro.ops.events.ScaleUp` /
:class:`~repro.ops.events.ScaleDown` events on the hook bus.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.ops.config import AutoscalerConfig
from repro.ops.events import ScaleDown, ScaleUp

if TYPE_CHECKING:  # pragma: no cover
    from repro.ops.matchsvc import SiteMatcherService
    from repro.sim.context import SimContext


class Autoscaler:
    """Scales every site's :class:`SiteMatcherService` fleet."""

    def __init__(self, ctx: "SimContext",
                 services: Mapping[str, "SiteMatcherService"],
                 config: AutoscalerConfig) -> None:
        self.ctx = ctx
        self.services = services
        self.config = config
        self._up_streak: dict[str, int] = {s: 0 for s in services}
        self._down_streak: dict[str, int] = {s: 0 for s in services}
        self._last_action: dict[str, float] = {}
        self.scale_ups = 0
        self.scale_downs = 0
        self._running = False

    def start(self, until: float) -> None:
        """Begin periodic evaluation (sim events) until sim time
        ``until``."""
        if not self.config.enabled or self._running:
            return
        self._running = True
        self.ctx.sim.schedule(self.config.interval, self._tick, until)

    def _tick(self, until: float) -> None:
        self.evaluate()
        if self.ctx.now + self.config.interval <= until:
            self.ctx.sim.schedule(self.config.interval, self._tick,
                                  until)
        else:
            self._running = False

    # -- policy ------------------------------------------------------------

    def evaluate(self) -> None:
        """One evaluation pass over every site (sorted order)."""
        for site in sorted(self.services):
            self._evaluate_site(site, self.services[site])

    def _evaluate_site(self, site: str,
                       svc: "SiteMatcherService") -> None:
        cfg = self.config
        depth = svc.queue_depth
        p99 = svc.p99_ms()
        hot = depth > cfg.high_queue or p99 > cfg.high_p99_ms
        cold = depth < cfg.low_queue and p99 < cfg.low_p99_ms

        self._up_streak[site] = self._up_streak[site] + 1 if hot else 0
        self._down_streak[site] = (self._down_streak[site] + 1
                                   if cold else 0)

        last = self._last_action.get(site)
        cooling = (last is not None
                   and self.ctx.now - last < cfg.cooldown)
        if cooling:
            return

        if (self._up_streak[site] >= cfg.sustain
                and svc.workers < cfg.max_workers):
            target = min(cfg.max_workers, svc.workers + cfg.step)
            before = svc.workers
            svc.scale_to(target)
            self.scale_ups += 1
            self._last_action[site] = self.ctx.now
            self._up_streak[site] = 0
            self.ctx.hooks.emit(ScaleUp(
                site=site, from_workers=before, to_workers=target,
                queue_depth=depth, p99_ms=p99, time=self.ctx.now))
        elif (self._down_streak[site] >= cfg.sustain
                and svc.workers > cfg.min_workers):
            target = max(cfg.min_workers, svc.workers - cfg.step)
            before = svc.workers
            svc.scale_to(target)
            self.scale_downs += 1
            self._last_action[site] = self.ctx.now
            self._down_streak[site] = 0
            self.ctx.hooks.emit(ScaleDown(
                site=site, from_workers=before, to_workers=target,
                queue_depth=depth, p99_ms=p99, time=self.ctx.now))
