"""Operator-runtime configuration (the scenario ``ops`` section).

Deserialised with the same strict, path-qualified rules as the network
config (:mod:`repro.core.config`): unknown keys raise
:class:`~repro.core.config.ConfigError` naming the exact offending
document line.  The scenario schema carries a *literal* copy of this
shape (``scenario`` must stay importable without ``ops``); a test pins
the two together so they cannot drift.

All rates and times in the ``load`` section are expressed against the
scenario's ``run.duration``: ``peak_at`` and flash-crowd ``at`` /
``duration`` are fractions of the run, so one document describes a
24-hour soak *and* its 10-minute CI smoke compression -- shortening
the run compresses the diurnal day rather than truncating it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.config import ConfigError, ConfigMapping, _fields_from


@dataclass
class PacerConfig(ConfigMapping):
    """Wall-clock pacing of the simulator.

    ``rtf`` is the real-time factor: simulated seconds per wall
    second.  ``0`` means as-fast-as-possible (no sleeping, still
    yielding to the event loop every quantum); ``1`` is real time,
    ``10`` runs the soak at 10x.  ``quantum`` is the simulated-time
    slice the pacer advances per asyncio turn.
    """

    rtf: float = 0.0
    quantum: float = 0.25

    def __post_init__(self) -> None:
        if self.rtf < 0:
            raise ValueError("pacer rtf must be >= 0 (0 = unpaced)")
        if self.quantum <= 0:
            raise ValueError("pacer quantum must be > 0")


@dataclass
class TelemetryConfig(ConfigMapping):
    """Streaming telemetry: gauge cadence and latency window size."""

    gauge_interval: float = 5.0     # simulated seconds between gauges
    window: int = 256               # match-latency samples per site

    def __post_init__(self) -> None:
        if self.gauge_interval <= 0:
            raise ValueError("telemetry gauge_interval must be > 0")
        if self.window <= 0:
            raise ValueError("telemetry window must be > 0")


@dataclass
class MatcherServiceConfig(ConfigMapping):
    """The simulated per-site matcher fleet.

    ``service_time`` is the mean simulated seconds one worker spends
    matching one frame (the paper's ~20-30 ms CV pipeline);
    ``jitter`` the +/- uniform spread around it.
    """

    service_time: float = 0.025
    jitter: float = 0.01

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise ValueError("matcher service_time must be > 0")
        if not (0 <= self.jitter < self.service_time):
            raise ValueError("matcher jitter must be in "
                             "[0, service_time)")


@dataclass
class AutoscalerConfig(ConfigMapping):
    """Per-site worker scaling from queue depth and p99 latency.

    Scale **up** when queue depth > ``high_queue`` *or* p99 match
    latency > ``high_p99_ms`` for ``sustain`` consecutive evaluations;
    scale **down** when depth < ``low_queue`` *and* p99 <
    ``low_p99_ms`` for the same streak.  ``cooldown`` simulated
    seconds must pass between actions on one site.
    """

    enabled: bool = True
    min_workers: int = 1
    max_workers: int = 8
    high_queue: float = 8.0
    low_queue: float = 1.0
    high_p99_ms: float = 250.0
    low_p99_ms: float = 60.0
    sustain: int = 3
    cooldown: float = 60.0
    step: int = 1
    interval: float = 10.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("autoscaler min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("autoscaler max_workers must be >= "
                             "min_workers")
        if self.low_queue > self.high_queue:
            raise ValueError("autoscaler low_queue must be <= high_queue")
        if self.low_p99_ms > self.high_p99_ms:
            raise ValueError("autoscaler low_p99_ms must be <= "
                             "high_p99_ms")
        if self.sustain < 1:
            raise ValueError("autoscaler sustain must be >= 1")
        if self.cooldown < 0:
            raise ValueError("autoscaler cooldown must be >= 0")
        if self.step < 1:
            raise ValueError("autoscaler step must be >= 1")
        if self.interval <= 0:
            raise ValueError("autoscaler interval must be > 0")


@dataclass(frozen=True)
class FlashCrowd(ConfigMapping):
    """A transient surge: ``rps`` extra requests/sec for ``duration``
    (fraction of the run) starting at ``at`` (fraction of the run)."""

    at: float
    duration: float = 0.02
    rps: float = 20.0

    def __post_init__(self) -> None:
        if not (0 <= self.at <= 1):
            raise ValueError("flash crowd at must be in [0, 1]")
        if not (0 <= self.duration <= 1):
            raise ValueError("flash crowd duration must be in [0, 1]")
        if self.rps < 0:
            raise ValueError("flash crowd rps must be >= 0")


@dataclass
class LoadConfig(ConfigMapping):
    """Diurnal match-request load offered to every edge site.

    The rate follows a raised cosine between ``base_rps`` (trough)
    and ``peak_rps`` (crest at ``peak_at``, a fraction of the run),
    plus any active :class:`FlashCrowd` surges.
    """

    base_rps: float = 2.0
    peak_rps: float = 20.0
    peak_at: float = 0.5
    flash_crowds: tuple[FlashCrowd, ...] = ()

    def __post_init__(self) -> None:
        if self.base_rps < 0:
            raise ValueError("load base_rps must be >= 0")
        if self.peak_rps < self.base_rps:
            raise ValueError("load peak_rps must be >= base_rps")
        if not (0 <= self.peak_at <= 1):
            raise ValueError("load peak_at must be in [0, 1]")
        if not isinstance(self.flash_crowds, tuple):
            self.flash_crowds = tuple(self.flash_crowds)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *,
                  path: str = "") -> "LoadConfig":
        if not isinstance(data, Mapping):
            raise ConfigError(path, "expected an object, "
                                    f"got {type(data).__name__}")
        data = dict(data)
        crowds_raw = data.pop("flash_crowds", None)
        cfg = _fields_from(cls, data, path)
        if crowds_raw is not None:
            if not isinstance(crowds_raw, (list, tuple)):
                raise ConfigError(
                    f"{path}.flash_crowds" if path else "flash_crowds",
                    f"expected an array, got {type(crowds_raw).__name__}")
            sub = f"{path}.flash_crowds" if path else "flash_crowds"
            cfg.flash_crowds = tuple(
                _fields_from(FlashCrowd, c, f"{sub}[{i}]")
                for i, c in enumerate(crowds_raw))
        return cfg


#: ops sub-section name -> config class (drives ``OpsConfig.from_dict``
#: and the schema-pinning test).
OPS_SECTIONS: dict[str, type] = {
    "pacer": PacerConfig,
    "telemetry": TelemetryConfig,
    "matcher": MatcherServiceConfig,
    "autoscaler": AutoscalerConfig,
    "load": LoadConfig,
}


@dataclass
class OpsConfig(ConfigMapping):
    """The whole operator-runtime configuration."""

    pacer: PacerConfig = field(default_factory=PacerConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    matcher: MatcherServiceConfig = field(
        default_factory=MatcherServiceConfig)
    autoscaler: AutoscalerConfig = field(
        default_factory=AutoscalerConfig)
    load: LoadConfig = field(default_factory=LoadConfig)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | None, *,
                  path: str = "ops") -> "OpsConfig":
        if data is None:
            return cls()
        if not isinstance(data, Mapping):
            raise ConfigError(path, "expected an object, "
                                    f"got {type(data).__name__}")
        unknown = sorted(set(data) - set(OPS_SECTIONS))
        if unknown:
            raise ConfigError(path, f"unknown key(s) {unknown}; valid "
                                    f"keys: {sorted(OPS_SECTIONS)}")
        kwargs = {}
        for name, section_cls in OPS_SECTIONS.items():
            if name in data:
                sub = f"{path}.{name}" if path else name
                kwargs[name] = section_cls.from_dict(data[name],
                                                     path=sub)
        return cls(**kwargs)


def ops_field_names(section: str) -> set[str]:
    """Field names of one ops sub-section (schema-pinning helper)."""
    return {f.name for f in dataclasses.fields(OPS_SECTIONS[section])}
