"""Diurnal match-request load generation.

:class:`DiurnalLoadModel` is the deterministic rate curve -- a raised
cosine between trough and crest plus flash-crowd surges, all phased as
*fractions of the run* so a 24-hour soak document and its 10-minute CI
smoke compression share one description.  :class:`MatchLoadGenerator`
turns the curve into arrivals per edge site by thinning a homogeneous
Poisson process drawn from the dedicated ``ops.load`` stream:
arrival *candidates* tick at the peak rate and are accepted with
probability ``rate(t) / peak``, so the number of RNG draws -- and
therefore every other stream in the run -- is independent of the curve
shape.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping

from repro.ops.config import LoadConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.ops.matchsvc import SiteMatcherService
    from repro.sim.context import SimContext


class DiurnalLoadModel:
    """Deterministic offered-rate curve over one run."""

    def __init__(self, config: LoadConfig, period: float) -> None:
        if period <= 0:
            raise ValueError("load period must be > 0")
        self.config = config
        self.period = period

    def base_rate(self, t: float) -> float:
        """The diurnal component alone (requests/sec) at sim time ``t``."""
        cfg = self.config
        phase = (t / self.period) - cfg.peak_at
        # raised cosine: 1 at the crest, 0 half a period away
        shape = 0.5 * (1.0 + math.cos(2.0 * math.pi * phase))
        return cfg.base_rps + (cfg.peak_rps - cfg.base_rps) * shape

    def surge_rate(self, t: float) -> float:
        """Extra requests/sec from flash crowds active at ``t``."""
        frac = t / self.period
        return sum(c.rps for c in self.config.flash_crowds
                   if c.at <= frac < c.at + c.duration)

    def rate(self, t: float) -> float:
        return self.base_rate(t) + self.surge_rate(t)

    @property
    def max_rate(self) -> float:
        """Upper bound of :meth:`rate` (the thinning envelope)."""
        return (self.config.peak_rps
                + sum(c.rps for c in self.config.flash_crowds))


class MatchLoadGenerator:
    """Offers the diurnal load to every site's matcher service.

    Arrival candidates are generated site-by-site (sorted order) from
    one named stream; each candidate is accepted with probability
    ``rate(t) / max_rate`` (Poisson thinning), which keeps the stream's
    draw count independent of the curve -- a reshaped document cannot
    shift any other randomness in the run.
    """

    def __init__(self, ctx: "SimContext",
                 services: Mapping[str, "SiteMatcherService"],
                 model: DiurnalLoadModel, start: float,
                 end: float) -> None:
        self.ctx = ctx
        self.services = services
        self.model = model
        self.start = start
        self.end = end
        self.rng = ctx.rng("ops.load")
        self.offered = 0
        self._started = False

    def start_generation(self) -> None:
        if self._started:
            raise RuntimeError("load generator already started")
        self._started = True
        if self.model.max_rate <= 0:
            return
        for site in sorted(self.services):
            self._schedule_next(site, self.start)

    def _schedule_next(self, site: str, after: float) -> None:
        gap = float(self.rng.exponential(1.0 / self.model.max_rate))
        at = after + gap
        if at >= self.end:
            return
        self.ctx.sim.schedule_at(at, self._candidate, site, at)

    def _candidate(self, site: str, at: float) -> None:
        accept = (float(self.rng.random())
                  < self.model.rate(at - self.start) / self.model.max_rate)
        if accept:
            self.offered += 1
            self.services[site].submit()
        self._schedule_next(site, at)
