"""The operator control plane: JSON-RPC over TCP or a unix socket.

Wire protocol (newline-delimited JSON, both directions):

    -> {"id": 1, "method": "status", "params": {}}
    <- {"id": 1, "result": {...}}
    <- {"id": 2, "error": "no such method 'frobnicate'"}

``subscribe`` flips the connection into streaming mode: after the
ack, every telemetry record is pushed as one raw JSONL line (the same
bytes the file sink gets) until the client disconnects.

Handlers execute on the service's asyncio loop *between* pacer slices
(the loop is single-threaded), so control mutations -- attaching a UE,
injecting a fault -- always see a quiescent simulator and schedule
their work as ordinary sim events.

:class:`ControlClient` is the blocking, stdlib-socket counterpart used
by the ``python -m repro ops`` CLI from a second process.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.ops.service import OpsService


class ControlError(RuntimeError):
    """A control call failed (server-side error response)."""


def parse_endpoint(endpoint: str) -> tuple:
    """``"unix:/path"`` or ``"tcp:host:port"`` -> typed tuple."""
    if endpoint.startswith("unix:"):
        path = endpoint[len("unix:"):]
        if not path:
            raise ValueError("unix endpoint needs a socket path")
        return ("unix", path)
    if endpoint.startswith("tcp:"):
        rest = endpoint[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(f"bad tcp endpoint {endpoint!r}; "
                             f"expected tcp:host:port")
        return ("tcp", host, int(port))
    raise ValueError(f"bad endpoint {endpoint!r}; expected "
                     f"unix:<path> or tcp:<host>:<port>")


class ControlServer:
    """Serves the control API for one :class:`OpsService`."""

    def __init__(self, service: "OpsService", endpoint: str) -> None:
        self.service = service
        self.endpoint = parse_endpoint(endpoint)
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections = 0

    async def start(self) -> None:
        if self.endpoint[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.endpoint[1])
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.endpoint[1],
                port=self.endpoint[2])

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await self._send(writer, {"id": None,
                                              "error": f"bad JSON: {exc}"})
                    continue
                req_id = request.get("id")
                method = request.get("method")
                params = request.get("params") or {}
                if method == "subscribe":
                    await self._send(writer, {"id": req_id,
                                              "result": "subscribed"})
                    await self._stream(writer)
                    break
                try:
                    result = self.service.dispatch(method, params)
                    await self._send(writer, {"id": req_id,
                                              "result": result})
                except Exception as exc:
                    await self._send(writer, {"id": req_id,
                                              "error": str(exc)})
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _stream(self, writer: asyncio.StreamWriter) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=512)
        self.service.telemetry.subscribe(queue)
        try:
            while True:
                line = await queue.get()
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.service.telemetry.unsubscribe(queue)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


class ControlClient:
    """Blocking client for the control API (stdlib sockets only)."""

    def __init__(self, endpoint: str, timeout: float = 10.0) -> None:
        parsed = parse_endpoint(endpoint)
        if parsed[0] == "unix":
            self._sock = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(parsed[1])
        else:
            self._sock = socket.create_connection(
                (parsed[1], parsed[2]), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def call(self, method: str, **params: Any) -> Any:
        """One request/response round trip; raises
        :class:`ControlError` on an error response."""
        self._next_id += 1
        request = {"id": self._next_id, "method": method,
                   "params": params}
        self._file.write(json.dumps(request).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ControlError("server closed the connection")
        response = json.loads(line)
        if "error" in response:
            raise ControlError(response["error"])
        return response.get("result")

    def stream(self) -> Iterator[dict]:
        """Subscribe and yield telemetry records until the server
        closes (or the caller stops iterating)."""
        self.call("subscribe")
        for line in self._file:
            yield json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
