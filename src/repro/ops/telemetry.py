"""Streaming telemetry: hook-bus events out, JSONL + gauges + digest.

The streamer subscribes the existing bus events (packet drops,
signalling procedures, relocations, faults, autoscaler actions) and
renders each as one flat JSON record -- ``{"t": <sim time>, "type":
<name>, ...}`` -- fanned out to an optional JSONL file sink and to any
number of connected subscriber queues (drop-oldest under
backpressure, so a slow tail client never stalls the simulator).
Periodic *gauge* records aggregate what individual events cannot:
per-site matcher queue depth and latency percentiles, attach success
rate, and fluid background throughput.

Every record carries **simulated** time only; the running sha256
digest over the canonical JSON stream is therefore byte-identical
across reruns with the pacer off and a fixed seed (the determinism
contract the soak smoke asserts).  Per-match completion events are
deliberately *not* recorded individually -- at peak diurnal load they
would dominate the stream; their aggregates ride in the gauges.
"""

from __future__ import annotations

import hashlib
import json
from typing import IO, TYPE_CHECKING, Any, Callable, Mapping, Optional

from repro.core.events import (SessionDegraded, SessionRelocated,
                               SessionRestored)
from repro.epc.events import ProcedureCompleted, UeAttached
from repro.faults.events import FaultCleared, FaultInjected
from repro.ops.events import MatchDropped, ScaleDown, ScaleUp
from repro.sim.hooks import PacketDropped

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import MobileNetwork
    from repro.ops.matchsvc import SiteMatcherService

#: Queue slots per connected subscriber before drop-oldest kicks in.
SUBSCRIBER_BUFFER = 512


def canonical(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _name_of(obj: Any) -> Optional[str]:
    for attr in ("imsi", "name"):
        value = getattr(obj, attr, None)
        if isinstance(value, str):
            return value
    return None


class TelemetryStreamer:
    """Fans bus events out as JSONL records; aggregates gauges."""

    def __init__(self, network: "MobileNetwork",
                 services: Mapping[str, "SiteMatcherService"],
                 sink: Optional[IO[str]] = None) -> None:
        self.network = network
        self.services = services
        self.sink = sink
        self.records = 0
        self.attach_attempts = 0
        self.attach_successes = 0
        self.packet_drops: dict[str, int] = {}
        self._digest = hashlib.sha256()
        self._subscribers: list[Any] = []   # asyncio.Queue, duck-typed
        self._subscriptions = []
        self._gauge_running = False
        hooks = network.hooks
        for event_type, render in self._renderers().items():
            self._subscriptions.append(
                hooks.on(event_type, self._make_handler(render)))

    # -- event rendering ---------------------------------------------------

    def _renderers(self) -> dict[type, Callable[[Any], dict]]:
        return {
            UeAttached: self._render_attach,
            ProcedureCompleted: self._render_procedure,
            PacketDropped: self._render_drop,
            SessionRelocated: self._render_relocated,
            SessionDegraded: self._render_degraded,
            SessionRestored: self._render_restored,
            FaultInjected: self._render_fault_injected,
            FaultCleared: self._render_fault_cleared,
            MatchDropped: self._render_match_dropped,
            ScaleUp: self._render_scale_up,
            ScaleDown: self._render_scale_down,
        }

    def _make_handler(self, render: Callable[[Any], dict]):
        def handler(event: Any) -> None:
            self.record(render(event))
        return handler

    def _render_attach(self, e: UeAttached) -> dict:
        outcome = e.result.outcome if e.result is not None else "none"
        self.attach_attempts += 1
        if outcome in ("ok", "retried-ok"):
            self.attach_successes += 1
        return {"type": "ue_attached", "ue": _name_of(e.ue),
                "enb": _name_of(e.enb), "outcome": outcome}

    def _render_procedure(self, e: ProcedureCompleted) -> dict:
        return {"type": "procedure", "name": e.name,
                "subject": _name_of(e.subject),
                "outcome": e.result.outcome,
                "elapsed_ms": e.result.elapsed * 1e3,
                "retries": e.result.retries}

    def _render_drop(self, e: PacketDropped) -> dict:
        self.packet_drops[e.reason] = \
            self.packet_drops.get(e.reason, 0) + 1
        return {"type": "packet_dropped", "reason": e.reason,
                "link": _name_of(e.link),
                "sender": _name_of(e.sender),
                "size": getattr(e.packet, "size", None)}

    def _render_relocated(self, e: SessionRelocated) -> dict:
        return {"type": "session_relocated", "ue": e.imsi,
                "service": e.service_id, "from": e.from_site,
                "to": e.to_site, "policy": e.policy,
                "interruption_ms": e.interruption * 1e3,
                "duration_ms": e.duration * 1e3,
                "transferred_bytes": e.transferred_bytes}

    def _render_degraded(self, e: SessionDegraded) -> dict:
        return {"type": "session_degraded", "ue": e.imsi,
                "service": e.service_id, "mode": e.mode}

    def _render_restored(self, e: SessionRestored) -> dict:
        return {"type": "session_restored", "ue": e.imsi,
                "service": e.service_id}

    def _render_fault_injected(self, e: FaultInjected) -> dict:
        return {"type": "fault_injected", "spec": e.spec.to_dict()}

    def _render_fault_cleared(self, e: FaultCleared) -> dict:
        return {"type": "fault_cleared", "spec": e.spec.to_dict()}

    def _render_match_dropped(self, e: MatchDropped) -> dict:
        return {"type": "match_dropped", "site": e.site,
                "queue_depth": e.queue_depth}

    def _render_scale_up(self, e: ScaleUp) -> dict:
        return {"type": "scale_up", "site": e.site,
                "from_workers": e.from_workers,
                "to_workers": e.to_workers,
                "queue_depth": e.queue_depth, "p99_ms": e.p99_ms}

    def _render_scale_down(self, e: ScaleDown) -> dict:
        return {"type": "scale_down", "site": e.site,
                "from_workers": e.from_workers,
                "to_workers": e.to_workers,
                "queue_depth": e.queue_depth, "p99_ms": e.p99_ms}

    # -- record fan-out ----------------------------------------------------

    def record(self, payload: dict) -> None:
        """Stamp, digest and fan one record out."""
        record = {"t": round(self.network.sim.now, 9), **payload}
        line = canonical(record)
        self.records += 1
        self._digest.update(line.encode("utf-8"))
        self._digest.update(b"\n")
        if self.sink is not None:
            self.sink.write(line + "\n")
        for queue in self._subscribers:
            try:
                queue.put_nowait(line)
            except Exception:       # asyncio.QueueFull: drop oldest
                try:
                    queue.get_nowait()
                    queue.put_nowait(line)
                except Exception:   # pragma: no cover - raced empty
                    pass

    def digest(self) -> str:
        """sha256 over every record streamed so far."""
        return self._digest.hexdigest()

    def subscribe(self, queue: Any) -> None:
        """Attach a subscriber queue (anything with ``put_nowait`` /
        ``get_nowait``)."""
        self._subscribers.append(queue)

    def unsubscribe(self, queue: Any) -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    # -- gauges ------------------------------------------------------------

    def attach_success_rate(self) -> float:
        if self.attach_attempts == 0:
            return 1.0
        return self.attach_successes / self.attach_attempts

    def fluid_mbps(self) -> float:
        fluid = self.network.fluid
        if fluid is None:
            return 0.0
        return sum(f.delivered_rate for f in fluid.flows) / 1e6

    def gauge_record(self) -> dict:
        return {
            "type": "gauge",
            "sites": {site: svc.gauges()
                      for site, svc in sorted(self.services.items())},
            "attach_attempts": self.attach_attempts,
            "attach_success_rate": self.attach_success_rate(),
            "packet_drops": dict(sorted(self.packet_drops.items())),
            "fluid_mbps": self.fluid_mbps(),
        }

    def start_gauges(self, interval: float, until: float) -> None:
        """Schedule periodic gauge records as **sim** events (so the
        gauge stream is part of the deterministic record)."""
        if self._gauge_running:
            raise RuntimeError("gauge ticks already started")
        self._gauge_running = True
        self.network.sim.schedule(interval, self._gauge_tick, interval,
                                  until)

    def _gauge_tick(self, interval: float, until: float) -> None:
        self.record(self.gauge_record())
        if self.network.sim.now + interval <= until:
            self.network.sim.schedule(interval, self._gauge_tick,
                                      interval, until)
        else:
            self._gauge_running = False

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        for sub in self._subscriptions:
            sub.close()
        self._subscriptions.clear()
        if self.sink is not None:
            self.sink.flush()
