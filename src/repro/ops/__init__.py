"""Live MEC operator runtime over the batch reproduction.

The ``ops`` layer wraps a compiled scenario in a long-lived service:
wall-clock pacing (:mod:`repro.ops.pacer`), a JSON-RPC control plane
(:mod:`repro.ops.control`), streaming telemetry with aggregated
gauges (:mod:`repro.ops.telemetry`), simulated per-site matcher
fleets under diurnal load (:mod:`repro.ops.matchsvc`,
:mod:`repro.ops.load`) and a hysteresis autoscaler
(:mod:`repro.ops.autoscaler`).

Layering is one-directional: ``ops`` may import ``sim`` / ``epc`` /
``vision`` / ``scenario`` (and everything below them); nothing below
may import ``ops``.  A test gate enforces this.
"""

from repro.ops.autoscaler import Autoscaler
from repro.ops.config import (AutoscalerConfig, FlashCrowd, LoadConfig,
                              MatcherServiceConfig, OpsConfig,
                              PacerConfig, TelemetryConfig)
from repro.ops.control import ControlClient, ControlError, ControlServer
from repro.ops.events import (MatchCompleted, MatchDropped, ScaleDown,
                              ScaleUp)
from repro.ops.load import DiurnalLoadModel, MatchLoadGenerator
from repro.ops.matchsvc import SiteMatcherService
from repro.ops.pacer import Pacer
from repro.ops.service import OpsService, load_service
from repro.ops.telemetry import TelemetryStreamer

__all__ = [
    "Autoscaler", "AutoscalerConfig", "ControlClient", "ControlError",
    "ControlServer", "DiurnalLoadModel", "FlashCrowd", "LoadConfig",
    "MatchCompleted", "MatchDropped", "MatchLoadGenerator",
    "MatcherServiceConfig", "OpsConfig", "OpsService", "Pacer",
    "PacerConfig", "ScaleDown", "ScaleUp", "SiteMatcherService",
    "TelemetryConfig", "TelemetryStreamer", "load_service",
]
