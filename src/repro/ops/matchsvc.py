"""Simulated per-site MEC matcher fleets.

Each edge site runs a :class:`SiteMatcherService`: a FIFO queue of
match requests drained by ``workers`` parallel simulated workers whose
per-job service time is drawn from the site's own named RNG stream
(``ops.match.<site>``), so ops-layer load never perturbs the network
simulation's draws and two runs with the same seed serve identical
latencies.

Scaling follows the :class:`~repro.vision.pool.MatcherPool` lifecycle
contract: growing takes effect immediately (idle capacity starts
draining the queue in the same event), shrinking is graceful -- a
retired worker finishes its in-flight job and simply is not refilled,
the simulated analogue of ``MatcherPool.drain()`` before teardown.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.ops.config import MatcherServiceConfig, TelemetryConfig
from repro.ops.events import MatchCompleted, MatchDropped

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.context import SimContext

#: Requests queued beyond this are shed (and counted in ``dropped``).
DEFAULT_MAX_QUEUE = 256


class SiteMatcherService:
    """One edge site's simulated matcher fleet."""

    def __init__(self, ctx: "SimContext", site: str,
                 config: Optional[MatcherServiceConfig] = None,
                 workers: int = 1, window: int = 256,
                 max_queue: int = DEFAULT_MAX_QUEUE) -> None:
        self.ctx = ctx
        self.site = site
        self.config = config or MatcherServiceConfig()
        self.workers = workers
        self.max_queue = max_queue
        self.rng: np.random.Generator = ctx.rng(f"ops.match.{site}")
        self._queue: deque[float] = deque()     # arrival sim-times
        self._busy = 0
        self.latencies: deque[float] = deque(maxlen=window)
        self.submitted = 0
        self.completed = 0
        self.dropped = 0

    # -- queue -------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> int:
        return self._busy

    def submit(self) -> bool:
        """Offer one match request; returns False if it was shed."""
        self.submitted += 1
        if len(self._queue) >= self.max_queue:
            self.dropped += 1
            if self.ctx.hooks.has(MatchDropped):
                self.ctx.hooks.emit(MatchDropped(
                    site=self.site, queue_depth=len(self._queue),
                    time=self.ctx.now))
            return False
        self._queue.append(self.ctx.now)
        self._dispatch()
        return True

    def _dispatch(self) -> None:
        while self._busy < self.workers and self._queue:
            arrival = self._queue.popleft()
            self._busy += 1
            cfg = self.config
            service = cfg.service_time
            if cfg.jitter > 0:
                service += float(self.rng.uniform(-cfg.jitter,
                                                  cfg.jitter))
            started = self.ctx.now
            self.ctx.sim.schedule(service, self._complete, arrival,
                                  started)

    def _complete(self, arrival: float, started: float) -> None:
        self._busy -= 1
        self.completed += 1
        latency = self.ctx.now - arrival
        self.latencies.append(latency)
        if self.ctx.hooks.has(MatchCompleted):
            self.ctx.hooks.emit(MatchCompleted(
                site=self.site, latency=latency,
                queued=started - arrival, time=self.ctx.now))
        self._dispatch()

    # -- scaling -----------------------------------------------------------

    def scale_to(self, workers: int) -> None:
        """Set the fleet size.  Growth drains the queue immediately;
        shrink retires workers as their in-flight jobs complete."""
        if workers < 1:
            raise ValueError("a site keeps at least one matcher worker")
        self.workers = workers
        self._dispatch()

    # -- health ------------------------------------------------------------

    def p50_ms(self) -> float:
        if not self.latencies:
            return 0.0
        return float(np.median(self.latencies)) * 1e3

    def p99_ms(self) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, 99)) * 1e3

    def load(self) -> float:
        """0..1 pressure signal for load-aware admission: 0 when idle,
        1 when the queue is at the shedding threshold."""
        if self.max_queue <= 0:
            return 0.0
        return min(1.0, len(self._queue) / self.max_queue)

    def gauges(self) -> dict:
        return {"site": self.site, "workers": self.workers,
                "busy": self._busy, "queue_depth": len(self._queue),
                "p50_ms": self.p50_ms(), "p99_ms": self.p99_ms(),
                "completed": self.completed, "dropped": self.dropped}


def build_services(ctx: "SimContext", sites, config: MatcherServiceConfig,
                   telemetry: TelemetryConfig,
                   workers: int = 1) -> dict[str, SiteMatcherService]:
    """One service per edge site, in sorted site order (so stream
    creation order -- and thus nothing at all -- depends on dict
    iteration order)."""
    return {site: SiteMatcherService(ctx, site, config, workers=workers,
                                     window=telemetry.window)
            for site in sorted(sites)}
