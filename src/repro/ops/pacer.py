"""Wall-clock pacing of the discrete-event simulator.

The pacer advances the simulator in ``quantum``-sized simulated-time
slices, sleeping on the asyncio loop between slices so that simulated
time tracks wall time at the configured real-time factor (``rtf``
simulated seconds per wall second).  ``rtf=0`` is as-fast-as-possible:
no sleeping, but still one ``await`` per slice so control connections
and telemetry subscribers are serviced *between* slices -- control
mutations therefore always land at a quiescent simulator, never
mid-event, and the single-threaded loop needs no locking.

Idle gaps are skipped, not slept through slice-by-slice: each slice
targets just past :meth:`~repro.sim.engine.Simulator.next_event_time`
(an O(1) scheduler lower bound), so a soak that is 99% idle costs
wall time proportional to its *events* when unpaced, and exactly the
scaled gap when paced.

Drift accounting: after each paced slice the pacer records how far
behind its wall-clock target the slice finished.  Sustained positive
drift means the host cannot keep up with the requested ``rtf``.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Optional

from repro.ops.config import PacerConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Longest single wall-clock sleep (seconds).  Paced sleeps are chunked
#: so that events armed *mid-sleep* by control callbacks (which run
#: between chunks on the asyncio loop and may drive the simulator
#: reentrantly via ``run_until_complete``/``spawn``) are noticed within
#: one chunk instead of after the full -- possibly seconds-long -- gap
#: to the previously known next event.  A module constant, not a
#: ``PacerConfig`` field: it bounds staleness of an internal cache and
#: has no effect on simulated behaviour.
_MAX_SLEEP = 0.05


class Pacer:
    """Advances a :class:`Simulator` against wall time."""

    def __init__(self, sim: "Simulator",
                 config: Optional[PacerConfig] = None) -> None:
        self.sim = sim
        self.config = config or PacerConfig()
        self._anchor_wall: Optional[float] = None
        self._anchor_sim = 0.0
        self.slices = 0
        self.drift = 0.0        # last slice's lag behind wall target (s)
        self.max_drift = 0.0
        self.stop_requested = False

    @property
    def paced(self) -> bool:
        return self.config.rtf > 0

    def rebase(self) -> None:
        """Drop the wall-clock anchor (e.g. after an AFAP fast-forward
        or a drain pause) so pacing restarts from here instead of
        sprinting to catch up."""
        self._anchor_wall = None

    def stats(self) -> dict:
        return {"rtf": self.config.rtf, "quantum": self.config.quantum,
                "slices": self.slices, "drift_s": self.drift,
                "max_drift_s": self.max_drift}

    async def advance(self, until: float) -> None:
        """Run the simulator to sim time ``until`` (clock parks there),
        yielding to the event loop every quantum."""
        loop = asyncio.get_running_loop()
        cfg = self.config
        while self.sim.now < until and not self.stop_requested:
            nxt = self.sim.next_event_time()
            if nxt is None or nxt > until:
                if not self.paced:
                    self.sim.run(until=until)   # nothing left: park
                    break
                target = until
            else:
                target = min(until, max(self.sim.now, nxt) + cfg.quantum)
            wall_target = None
            if self.paced:
                if self._anchor_wall is None:
                    self._anchor_wall = loop.time()
                    self._anchor_sim = self.sim.now
                wall_target = (self._anchor_wall
                               + (target - self._anchor_sim) / cfg.rtf)
                # chunked sleep: re-sample the next-event bound whenever
                # something was armed mid-sleep, and re-target the slice
                # if the new work is due before the current target
                retarget = False
                while not self.stop_requested:
                    delay = wall_target - loop.time()
                    if delay <= 0:
                        break
                    epoch = self.sim.arm_epoch
                    await asyncio.sleep(min(delay, _MAX_SLEEP))
                    if self.sim.arm_epoch == epoch:
                        continue
                    nxt = self.sim.next_event_time()
                    if (nxt is not None
                            and max(self.sim.now, nxt) + cfg.quantum
                            < target):
                        retarget = True
                        break
                if retarget:
                    continue
            self.sim.run(until=target)
            self.slices += 1
            if wall_target is not None:
                self.drift = loop.time() - wall_target
                self.max_drift = max(self.max_drift, self.drift)
            else:
                await asyncio.sleep(0)
