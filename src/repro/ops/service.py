"""The operator service: one scenario run as a live, steerable system.

:class:`OpsService` compiles a scenario document into a
:class:`~repro.scenario.runtime.ScenarioRun` and layers the operator
machinery on top: per-site simulated matcher fleets fed by the diurnal
load generator, the telemetry streamer, the autoscaler, and (when
admission control is enabled on the EPC) a load-aware admission signal
that sheds new GBR bearers from overloaded sites.

Two drive modes share identical sim-time behaviour:

* :meth:`run_batch` -- synchronous, no asyncio, no pacing: the
  deterministic reference used by the smoke test and the CLI's
  ``ops run``.  With a fixed seed its telemetry digest is
  byte-identical across reruns;
* :meth:`serve` -- asyncio: the pacer advances the simulator against
  wall time while the control server handles JSON-RPC mutations
  between slices.

All operator machinery (gauge ticks, load arrivals, autoscaler
evaluations, matcher completions) runs as **sim-time events** drawing
only from dedicated ``ops.*`` RNG streams, so it never perturbs the
underlying network simulation: a scenario's batch metrics are
unchanged (bar the event count) by running it under the operator
runtime.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
from typing import IO, Any, Optional

from repro.faults import FaultInjector, FaultPlan
from repro.ops.config import OpsConfig
from repro.ops.autoscaler import Autoscaler
from repro.ops.control import ControlServer
from repro.ops.load import DiurnalLoadModel, MatchLoadGenerator
from repro.ops.matchsvc import build_services
from repro.ops.pacer import Pacer
from repro.ops.telemetry import TelemetryStreamer, canonical
from repro.scenario.document import Scenario
from repro.scenario.runtime import ScenarioRun
from repro.sim.context import derive_seed

#: Control methods the server will dispatch (closed set -- the RPC
#: layer must not reach arbitrary attributes).
CONTROL_METHODS = ("ping", "status", "site_load", "attach_ue",
                   "detach_ue", "start_session", "stop_session",
                   "inject_fault", "clear_fault", "snapshot", "drain",
                   "shutdown")


class OpsService:
    """A live operator runtime around one scenario run."""

    def __init__(self, scenario: Scenario,
                 seed: Optional[int] = None,
                 duration: Optional[float] = None,
                 rtf: Optional[float] = None,
                 sink: Optional[IO[str]] = None) -> None:
        self.scenario = scenario
        spec = scenario.compile()
        trial = spec.trials()[0]
        if seed is not None:
            trial = dataclasses.replace(
                trial, base_seed=int(seed),
                seed=derive_seed(spec.name, spec.workload, int(seed)))
        if duration is not None:
            trial = dataclasses.replace(
                trial, params=trial.params + (("duration",
                                               float(duration)),))
        self.trial = trial
        self.run = ScenarioRun(trial)
        self.config = OpsConfig.from_dict(self.run.ops_section)
        if rtf is not None:
            self.config.pacer.rtf = float(rtf)

        network = self.run.network
        ctx = network.ctx
        self.services = build_services(
            ctx, network.edge_sites, self.config.matcher,
            self.config.telemetry,
            workers=self.config.autoscaler.min_workers)
        self.telemetry = TelemetryStreamer(network, self.services,
                                           sink=sink)
        self.pacer = Pacer(network.sim, self.config.pacer)
        # the "day" spans session start to run end; shortening
        # run.duration compresses the diurnal curve into the new span
        period = max(self.run.end_time - self.run.start_at, 1e-9)
        self.load_model = DiurnalLoadModel(self.config.load, period)
        self.load = MatchLoadGenerator(ctx, self.services,
                                       self.load_model,
                                       start=self.run.start_at,
                                       end=self.run.end_time)
        self.autoscaler = Autoscaler(ctx, self.services,
                                     self.config.autoscaler)
        admission = network.control_plane.admission
        if admission is not None:
            admission.set_load_signal(self.site_pressure)

        # everything ops schedules is a sim event: identical under
        # batch and paced drive modes
        self.telemetry.start_gauges(self.config.telemetry.gauge_interval,
                                    until=self.run.end_time)
        self.load.start_generation()
        self.autoscaler.start(until=self.run.end_time)

        self._live_injectors: list[FaultInjector] = []
        self._ops_ue_seq = 0
        self._milestone = 0
        self._finished = False
        self.server: Optional[ControlServer] = None

    # -- load signal -------------------------------------------------------

    def site_pressure(self, site_name: str) -> float:
        """0..1 matcher-queue pressure (the admission load signal)."""
        svc = self.services.get(site_name)
        return svc.load() if svc is not None else 0.0

    # -- drive modes -------------------------------------------------------

    def run_batch(self) -> dict[str, Any]:
        """Drive the whole timeline synchronously (no pacing)."""
        for time, callback in self.run.milestones()[self._milestone:]:
            self.run.sim.run(until=time)
            callback()
            self._milestone += 1
        self._finished = True
        self.telemetry.close()
        return self.summary()

    async def serve(self, endpoint: Optional[str] = None
                    ) -> dict[str, Any]:
        """Drive the timeline under the pacer, serving the control
        API at ``endpoint`` (if given) between slices."""
        if endpoint is not None:
            self.server = ControlServer(self, endpoint)
            await self.server.start()
        try:
            for time, callback in self.run.milestones()[self._milestone:]:
                await self.pacer.advance(time)
                if self.pacer.stop_requested and self.run.sim.now < time:
                    break
                callback()
                self._milestone += 1
            self._finished = self._milestone >= len(self.run.milestones())
        finally:
            if self.server is not None:
                await self.server.stop()
                self.server = None
        self.telemetry.close()
        return self.summary()

    # -- results -----------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Scenario metrics plus the operator-layer aggregates."""
        metrics = self.run.collect()
        dropped = (metrics["attached"] - metrics["sessions_alive"]
                   if self.run.path == "edge" else 0)
        admission = self.run.network.control_plane.admission
        ops = {
            "ci_sessions_dropped": dropped,
            "scale_ups": self.autoscaler.scale_ups,
            "scale_downs": self.autoscaler.scale_downs,
            "load_offered": self.load.offered,
            "match_submitted": sum(s.submitted
                                   for s in self.services.values()),
            "match_completed": sum(s.completed
                                   for s in self.services.values()),
            "match_dropped": sum(s.dropped
                                 for s in self.services.values()),
            "sites": {site: svc.gauges()
                      for site, svc in sorted(self.services.items())},
            "attach_success_rate": self.telemetry.attach_success_rate(),
            "live_faults_injected": sum(i.injected
                                        for i in self._live_injectors),
            "rejected_overload": (admission.rejected_overload
                                  if admission is not None else 0),
            "telemetry_records": self.telemetry.records,
            "telemetry_digest": self.telemetry.digest(),
        }
        return {**metrics, "ops": ops}

    def metrics_digest(self, summary: Optional[dict] = None) -> str:
        """sha256 over the canonical summary, wall-clock-free (the
        byte-identical-rerun contract)."""
        data = dict(summary if summary is not None else self.summary())
        return hashlib.sha256(
            canonical(data).encode("utf-8")).hexdigest()

    # -- control API -------------------------------------------------------

    def dispatch(self, method: Optional[str], params: dict) -> Any:
        if method not in CONTROL_METHODS:
            raise ValueError(f"no such method {method!r}; valid: "
                             f"{list(CONTROL_METHODS)}")
        return getattr(self, f"_rpc_{method}")(**params)

    def _rpc_ping(self) -> str:
        return "pong"

    def _rpc_status(self) -> dict:
        network = self.run.network
        return {
            "scenario": self.scenario.name,
            "seed": self.trial.seed,
            "sim_now": network.sim.now,
            "end_time": self.run.end_time,
            "milestone": self._milestone,
            "finished": self._finished,
            "ues": len(network.ues),
            "sessions": len(self.run.mrs.sessions),
            "pacer": self.pacer.stats(),
            "telemetry_records": self.telemetry.records,
            "scale_ups": self.autoscaler.scale_ups,
            "scale_downs": self.autoscaler.scale_downs,
            "workers": {site: svc.workers
                        for site, svc in sorted(self.services.items())},
        }

    def _rpc_site_load(self, site: Optional[str] = None) -> dict:
        sites = ([site] if site is not None
                 else sorted(self.services))
        admission = self.run.network.control_plane.admission
        out = {}
        for name in sites:
            svc = self.services.get(name)
            if svc is None:
                raise ValueError(f"no such edge site {name!r}; sites: "
                                 f"{sorted(self.services)}")
            entry: dict[str, Any] = {"matcher": svc.gauges(),
                                     "pressure": svc.load()}
            if admission is not None:
                try:
                    entry["admission"] = \
                        admission.site_load(name).to_dict()
                except KeyError:
                    pass        # no GBR pool registered for this site
            out[name] = entry
        return out

    def _rpc_attach_ue(self, enb: str = "enb0") -> dict:
        name = f"opsue{self._ops_ue_seq}"
        self._ops_ue_seq += 1
        self.run.network.add_ue_async(name=name, enb_name=enb)
        return {"ue": name, "enb": enb}

    def _ue(self, ue: str):
        device = self.run.network.ues.get(ue)
        if device is None:
            raise ValueError(f"no such UE {ue!r}")
        return device

    def _rpc_detach_ue(self, ue: str) -> dict:
        device = self._ue(ue)
        self.run.network.control_plane.release_to_idle_async(device)
        return {"ue": ue, "released": True}

    def _rpc_start_session(self, ue: str) -> dict:
        device = self._ue(ue)
        self.run.sim.schedule(0.0, self.run.request_session, device)
        return {"ue": ue, "service": self.run.fabric.service_id}

    def _rpc_stop_session(self, ue: str) -> dict:
        device = self._ue(ue)
        self.run.sim.schedule(
            0.0, self.run.mrs.release_connectivity, device,
            self.run.fabric.service_id)
        return {"ue": ue, "released": True}

    def _rpc_inject_fault(self, spec: dict) -> dict:
        now = self.run.sim.now
        data = dict(spec)
        at = float(data.get("at", 0.0))
        data["at"] = max(at, now)
        # keep documented end times relative to the (shifted) start
        delta = data["at"] - at
        if delta > 0 and isinstance(data.get("until"), (int, float)):
            data["until"] = float(data["until"]) + delta
        plan = FaultPlan.from_dict([data], path="inject_fault")
        injector = FaultInjector(self.run.network, plan)
        injector.arm()
        self._live_injectors.append(injector)
        return {"armed": data}

    def _rpc_clear_fault(self, link: str) -> dict:
        network = self.run.network
        target = network.links.get(link)
        if target is None and link.startswith("sig."):
            channel = network.fabric.channels.get(link[len("sig."):])
            if channel is not None:
                target = channel.link
        if target is None:
            channels = sorted(f"sig.{name}"
                              for name in network.fabric.channels)
            raise ValueError(f"no link named {link!r}; signalling "
                             f"channels: {channels}")
        self.run.sim.schedule(0.0, target.set_up, True)
        return {"link": link, "up": True}

    def _rpc_snapshot(self) -> dict:
        return self.summary()

    def _rpc_drain(self) -> dict:
        """Stop offering new load; queues drain naturally."""
        self.load.end = self.run.sim.now
        return {"draining": True,
                "queues": {site: svc.queue_depth
                           for site, svc in sorted(
                               self.services.items())}}

    def _rpc_shutdown(self) -> dict:
        self.pacer.stop_requested = True
        return {"stopping": True}


def load_service(path_or_name: str, **kwargs: Any) -> OpsService:
    """Build an :class:`OpsService` from a scenario file path or
    catalogue name (the CLI entry point)."""
    from repro.scenario.loader import load
    return OpsService(load(path_or_name), **kwargs)


def summary_json(summary: dict) -> str:
    return json.dumps(summary, indent=2, sort_keys=True)
