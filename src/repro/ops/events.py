"""Hook-bus events published by the operator runtime.

Kept dependency-free (like :mod:`repro.faults.events`) so telemetry
subscribers anywhere can import the event types without pulling the
asyncio machinery in.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MatchCompleted:
    """One simulated match request finished at an edge site.

    ``latency`` is queueing + service time in simulated seconds.
    """

    site: str
    latency: float
    queued: float
    time: float


@dataclass(frozen=True)
class MatchDropped:
    """A match request was shed (site queue at capacity)."""

    site: str
    queue_depth: int
    time: float


@dataclass(frozen=True)
class ScaleUp:
    """The autoscaler grew a site's matcher fleet."""

    site: str
    from_workers: int
    to_workers: int
    queue_depth: int
    p99_ms: float
    time: float


@dataclass(frozen=True)
class ScaleDown:
    """The autoscaler shrank a site's matcher fleet."""

    site: str
    from_workers: int
    to_workers: int
    queue_depth: int
    p99_ms: float
    time: float
