"""ACACIA reproduction: context-aware edge computing for continuous
interactive applications over mobile networks (CoNEXT 2016).

The package is layered bottom-up:

``repro.sim``
    Discrete-event network simulator (engine, packets, links, traffic).
``repro.epc``
    LTE/EPC substrate: UEs, eNodeBs, MME/HSS/PCRF, split S/P-GWs, GTP
    tunnels, default/dedicated bearers, TFTs and QCI QoS.
``repro.sdn``
    OpenFlow-style switches and controller (the Ryu/OVS analog) that
    realise the GW user planes.
``repro.d2d``
    LTE-direct device-to-device proximity discovery with a radio model.
``repro.localization``
    Path-loss regression + trilateration indoor localisation.
``repro.vision``
    Simulated SURF feature extraction, the matching pipeline, geo-tagged
    object database and calibrated device cost models.
``repro.core``
    The ACACIA framework itself: device manager, MEC Registration
    Server, bearer orchestration and context-aware optimisation.
``repro.apps``
    The AR retail application (front-end/back-end) and store scenarios.
``repro.baselines``
    CLOUD / MEC / Naive / rxPower comparison points from the paper.
"""

__version__ = "1.0.0"

__all__ = [
    "sim", "epc", "sdn", "d2d", "localization", "vision", "core",
    "apps", "baselines",
]
