"""Preset experiment specs for the paper's figures.

Every preset is a scenario document shipped in the repository-root
``scenarios/`` catalogue (tagged ``preset``) and compiled here into a
ready-to-run :class:`~repro.exp.spec.ExperimentSpec` -- the documents
are the single source of truth, this module is just the compiled
view.  ``python -m repro exp run <name>`` executes one from the
command line, the figure benchmarks drive the same specs through
:class:`~repro.exp.runner.ExperimentRunner`, and ``python -m repro
scenario run <name>`` goes through the very same compiled spec, so
every entry point measures exactly the same thing.

This module may import :mod:`repro.scenario` (the dependency points
preset -> scenario, never back); the layering gates in
``tests/test_layering.py`` hold the line.
"""

from __future__ import annotations

from repro.exp.spec import ExperimentSpec
from repro.scenario import catalogue, load

#: The scenario documents compiled into presets, in catalogue order.
PRESET_TAG = "preset"

PRESETS: dict[str, ExperimentSpec] = {
    name: scenario.compile()
    for name, scenario in ((name, load(name)) for name in catalogue())
    if PRESET_TAG in scenario.tags
}


def preset(name: str) -> ExperimentSpec:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; available: "
                       f"{sorted(PRESETS)}") from None
