"""Preset experiment specs for the paper's figures.

Each preset is a ready-to-run :class:`~repro.exp.spec.ExperimentSpec`;
``python -m repro exp run <name>`` executes one from the command line,
and the figure benchmarks drive the same specs through
:class:`~repro.exp.runner.ExperimentRunner` so the CLI and the test
suite measure exactly the same thing.
"""

from __future__ import annotations

from repro.exp.spec import ExperimentSpec

PRESETS: dict[str, ExperimentSpec] = {}


def _preset(spec: ExperimentSpec) -> ExperimentSpec:
    PRESETS[spec.name] = spec
    return spec


def preset(name: str) -> ExperimentSpec:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; available: "
                       f"{sorted(PRESETS)}") from None


#: Tiny two-seed ping sweep: the CI smoke test for the runner itself.
SMOKE = _preset(ExperimentSpec(
    name="smoke",
    workload="ping",
    seeds=(0, 1),
    sweep={"system": ("conventional", "acacia")},
    params={"count": 3, "warmup": 1.0, "tail": 2.0, "interval": 0.2},
))

#: Figure 3(g): latency vs background load at three emulated RTTs.
FIG3G = _preset(ExperimentSpec(
    name="fig3g",
    workload="ping",
    seeds=(17,),
    sweep={"rtt_ms": (70, 18, 8), "bg_mbps": (0, 40, 80, 90, 100)},
))

#: Figure 10(b): the three designs under background load.
FIG10B = _preset(ExperimentSpec(
    name="fig10b",
    workload="ping",
    seeds=(23,),
    sweep={"system": ("conventional", "mec-shared", "acacia"),
           "bg_mbps": (0, 40, 80, 100)},
))

#: Bearer-setup latency vs concurrent signalling load: sweeps how many
#: UEs activate dedicated MEC bearers at once (Section 5.4 under load).
BEARER_SETUP = _preset(ExperimentSpec(
    name="bearer-setup",
    workload="bearer_setup",
    seeds=(41,),
    sweep={"n_ues": (1, 5, 10, 25, 50)},
))

#: Resilience under signalling loss: attach/bearer success rates and
#: added latency vs injected loss rate, with and without retransmission.
CHAOS = _preset(ExperimentSpec(
    name="chaos",
    workload="chaos",
    seeds=(29,),
    sweep={"loss": (0.0, 0.02, 0.05, 0.10), "retries": (True, False)},
    params={"n_ues": 20},
))

#: Attach-storm scale sweep: whole-network behaviour (and simulator
#: event counts) as the UE population grows.
SCALE = _preset(ExperimentSpec(
    name="scale",
    workload="scale",
    seeds=(37,),
    sweep={"n_ues": (10, 50, 100, 200)},
    params={"pings": 5, "bg_mbps": 10},
))

#: Session continuity across a three-site edge fabric: relocation
#: interruption and overhead per policy as walkers sweep every site.
CONTINUITY = _preset(ExperimentSpec(
    name="continuity",
    workload="continuity",
    seeds=(43,),
    sweep={"policy": ("make-before-break", "break-before-make"),
           "n_ues": (8, 32)},
    params={"n_sites": 3, "enbs_per_site": 2, "tail": 4.0},
))

#: Figure 11(a): matching time by scheme/resolution on two machines.
FIG11A = _preset(ExperimentSpec(
    name="fig11a",
    workload="search_space",
    seeds=(31,),
    sweep={"machine": ("i7-8core", "xeon-32core")},
))

#: Figure 13: end-to-end breakdown for the three deployments.
FIG13 = _preset(ExperimentSpec(
    name="fig13",
    workload="end_to_end",
    seeds=(13,),
    sweep={"kind": ("acacia", "mec", "cloud")},
))
