"""Trial executor: serial or process-parallel, byte-identical either way.

:func:`run_trial` is a module-level function (hence picklable) building
the trial's entire world from its spec; :class:`ExperimentRunner` maps
it over the spec's trials, optionally through a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Results keep trial
order regardless of worker scheduling, and the canonical JSON contains
no wall-clock timestamps, so ``canonical_json()`` is reproducible
bit-for-bit across runs, machines and worker counts.
"""

from __future__ import annotations

import json
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.exp import workloads
from repro.exp.spec import ExperimentSpec, TrialSpec


@dataclass
class TrialResult:
    """One trial's outcome, with full provenance of what produced it."""

    trial: TrialSpec
    status: str                     # "ok" | "error"
    metrics: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        data = {"provenance": self.trial.provenance(),
                "status": self.status, "metrics": self.metrics}
        if self.error is not None:
            data["error"] = self.error
        return data


def _wants_isolation(trial: TrialSpec) -> bool:
    """Should this trial run in a dedicated shard process?

    ``sharding="site"`` means per-edge-site shard processes; a
    workload that manages its own shard fleet (``shard_fabric``)
    honours the mode itself, and a monolithic workload -- one shared
    control plane, so there is no site boundary to partition along --
    degenerates to a single shard: the whole trial in one child
    process, trivially byte-identical.  Inside a shard child the mode
    is already satisfied, so never recurse.
    """
    if trial.workload == "shard_fabric":
        return False
    from repro.sim import shard
    if shard.in_shard_child():
        return False
    p = trial.param_dict
    if p.get("sharding") == "site":
        return True
    # scenario documents carry the mode in their network section
    network = p.get("network")
    if isinstance(network, dict):
        return network.get("sim", {}).get("sharding") == "site"
    return False


def shard_width(trial: TrialSpec) -> int:
    """How many OS processes the trial occupies while running (its
    shard fleet, or 1 when unsharded) -- the worker-budget currency."""
    if trial.workload == "shard_fabric" \
            and trial.param_dict.get("sharding") == "site":
        return max(1, int(trial.param_dict.get("n_sites", 3)))
    return 1


def run_trial(trial: TrialSpec) -> TrialResult:
    """Execute one trial; failures are captured, not raised, so a bad
    sweep cell cannot take down the whole experiment."""
    try:
        fn = workloads.get(trial.workload)
        if _wants_isolation(trial):
            from repro.sim.shard import run_isolated
            metrics = run_isolated(fn, trial)
        else:
            metrics = fn(trial)
        return TrialResult(trial=trial, status="ok", metrics=metrics)
    except Exception:
        return TrialResult(trial=trial, status="error",
                           error=traceback.format_exc())


@dataclass
class ExperimentResult:
    """All trial results for one spec, in trial order."""

    spec: ExperimentSpec
    trials: list[TrialResult]

    @property
    def ok(self) -> bool:
        return all(t.status == "ok" for t in self.trials)

    def failures(self) -> list[TrialResult]:
        return [t for t in self.trials if t.status != "ok"]

    def metrics_by(self, *axes: str) -> dict[tuple, dict[str, Any]]:
        """Index ok-trial metrics by the values of sweep axes (plus
        ``base_seed`` if listed), e.g. ``metrics_by("system", "bg_mbps")``."""
        indexed = {}
        for result in self.trials:
            if result.status != "ok":
                continue
            params = result.trial.param_dict
            params["base_seed"] = result.trial.base_seed
            indexed[tuple(params[a] for a in axes)] = result.metrics
        return indexed

    def to_dict(self) -> dict[str, Any]:
        return {"spec": self.spec.to_dict(),
                "trials": [t.to_dict() for t in self.trials]}

    def canonical_json(self) -> str:
        """Deterministic serialisation: sorted keys, no timestamps.

        A serial run and a process-parallel run of the same spec
        produce byte-identical output.
        """
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


class ExperimentRunner:
    """Fans a spec's trials out over worker processes.

    ``workers=None`` or ``1`` runs serially in-process; ``workers=N``
    uses a :class:`ProcessPoolExecutor`.  Trials are independent by
    construction (each builds its own :class:`SimContext` world from
    its derived seed), so scheduling cannot affect results.
    """

    def __init__(self, spec: ExperimentSpec,
                 workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.workers = workers

    def effective_workers(self, trials: list[TrialSpec]) -> int:
        """Pool size after the intra-trial sharding budget.

        A sharded trial occupies :func:`shard_width` processes, so
        running ``workers`` of them at once would oversubscribe the
        host ``width``-fold.  The budget divides the requested worker
        count by the widest trial, keeping the total process count
        (pool workers x shards each) within the original grant.
        """
        assert self.workers is not None
        width = max((shard_width(t) for t in trials), default=1)
        return max(1, self.workers // width)

    def run(self) -> ExperimentResult:
        trials = self.spec.trials()
        workers = (None if self.workers is None or len(trials) <= 1
                   else self.effective_workers(trials))
        if workers is None or workers == 1:
            results = [run_trial(trial) for trial in trials]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # map preserves input order regardless of completion order
                results = list(pool.map(run_trial, trials))
        return ExperimentResult(spec=self.spec, trials=results)
