"""Trial executor: serial or process-parallel, byte-identical either way.

:func:`run_trial` is a module-level function (hence picklable) building
the trial's entire world from its spec; :class:`ExperimentRunner` maps
it over the spec's trials, optionally through a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Results keep trial
order regardless of worker scheduling, and the canonical JSON contains
no wall-clock timestamps, so ``canonical_json()`` is reproducible
bit-for-bit across runs, machines and worker counts.
"""

from __future__ import annotations

import json
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.exp import workloads
from repro.exp.spec import ExperimentSpec, TrialSpec


@dataclass
class TrialResult:
    """One trial's outcome, with full provenance of what produced it."""

    trial: TrialSpec
    status: str                     # "ok" | "error"
    metrics: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        data = {"provenance": self.trial.provenance(),
                "status": self.status, "metrics": self.metrics}
        if self.error is not None:
            data["error"] = self.error
        return data


def run_trial(trial: TrialSpec) -> TrialResult:
    """Execute one trial; failures are captured, not raised, so a bad
    sweep cell cannot take down the whole experiment."""
    try:
        fn = workloads.get(trial.workload)
        metrics = fn(trial)
        return TrialResult(trial=trial, status="ok", metrics=metrics)
    except Exception:
        return TrialResult(trial=trial, status="error",
                           error=traceback.format_exc())


@dataclass
class ExperimentResult:
    """All trial results for one spec, in trial order."""

    spec: ExperimentSpec
    trials: list[TrialResult]

    @property
    def ok(self) -> bool:
        return all(t.status == "ok" for t in self.trials)

    def failures(self) -> list[TrialResult]:
        return [t for t in self.trials if t.status != "ok"]

    def metrics_by(self, *axes: str) -> dict[tuple, dict[str, Any]]:
        """Index ok-trial metrics by the values of sweep axes (plus
        ``base_seed`` if listed), e.g. ``metrics_by("system", "bg_mbps")``."""
        indexed = {}
        for result in self.trials:
            if result.status != "ok":
                continue
            params = result.trial.param_dict
            params["base_seed"] = result.trial.base_seed
            indexed[tuple(params[a] for a in axes)] = result.metrics
        return indexed

    def to_dict(self) -> dict[str, Any]:
        return {"spec": self.spec.to_dict(),
                "trials": [t.to_dict() for t in self.trials]}

    def canonical_json(self) -> str:
        """Deterministic serialisation: sorted keys, no timestamps.

        A serial run and a process-parallel run of the same spec
        produce byte-identical output.
        """
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


class ExperimentRunner:
    """Fans a spec's trials out over worker processes.

    ``workers=None`` or ``1`` runs serially in-process; ``workers=N``
    uses a :class:`ProcessPoolExecutor`.  Trials are independent by
    construction (each builds its own :class:`SimContext` world from
    its derived seed), so scheduling cannot affect results.
    """

    def __init__(self, spec: ExperimentSpec,
                 workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.workers = workers

    def run(self) -> ExperimentResult:
        trials = self.spec.trials()
        if self.workers is None or self.workers == 1 or len(trials) <= 1:
            results = [run_trial(trial) for trial in trials]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                # map preserves input order regardless of completion order
                results = list(pool.map(run_trial, trials))
        return ExperimentResult(spec=self.spec, trials=results)
