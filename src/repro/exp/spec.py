"""Experiment and trial specifications.

Both are frozen, picklable value objects: a :class:`TrialSpec` crosses a
worker-process boundary intact, and an :class:`ExperimentSpec` can be
round-tripped through JSON for provenance.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.sim.context import derive_seed


def _freeze_sweep(sweep) -> tuple[tuple[str, tuple], ...]:
    """Normalise a sweep (mapping or pair sequence) to nested tuples."""
    if sweep is None:
        return ()
    items = sweep.items() if isinstance(sweep, Mapping) else sweep
    return tuple((str(axis), tuple(values)) for axis, values in items)


@dataclass(frozen=True)
class TrialSpec:
    """One unit of work: a workload at a seed with concrete parameters.

    ``seed`` is derived (:func:`~repro.sim.context.derive_seed`) from
    the experiment name, workload and ``base_seed`` -- stable across
    processes, and identical for every sweep cell sharing a base seed,
    so sweep axes stay *paired* comparisons.
    """

    experiment: str
    index: int
    workload: str
    base_seed: int
    seed: int
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def provenance(self) -> dict[str, Any]:
        """The who/what/why of this trial, embedded in its result."""
        return {
            "experiment": self.experiment,
            "index": self.index,
            "workload": self.workload,
            "base_seed": self.base_seed,
            "seed": self.seed,
            "params": self.param_dict,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment: workload x sweep axes x seeds.

    ``sweep`` maps axis name -> values; the trial list is the cartesian
    product of the axes (in declaration order) with the seeds innermost,
    so trial order -- and therefore result order -- is deterministic.
    ``params`` are fixed parameters shared by every trial.
    """

    name: str
    workload: str
    seeds: tuple = (0,)
    sweep: tuple = ()
    params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "sweep", _freeze_sweep(self.sweep))
        params = self.params
        if isinstance(params, Mapping):
            params = params.items()
        object.__setattr__(self, "params",
                           tuple((str(k), v) for k, v in params))

    # -- trial expansion ---------------------------------------------------

    def cells(self) -> list[tuple[tuple[str, Any], ...]]:
        """The sweep's cartesian product, declaration-ordered."""
        cells: list[tuple[tuple[str, Any], ...]] = [()]
        for axis, values in self.sweep:
            cells = [cell + ((axis, value),)
                     for cell in cells for value in values]
        return cells

    def trials(self) -> list[TrialSpec]:
        trials = []
        for cell in self.cells():
            for base_seed in self.seeds:
                trials.append(TrialSpec(
                    experiment=self.name,
                    index=len(trials),
                    workload=self.workload,
                    base_seed=int(base_seed),
                    seed=derive_seed(self.name, self.workload,
                                     int(base_seed)),
                    params=self.params + cell))
        return trials

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload,
            "seeds": list(self.seeds),
            "sweep": [[axis, list(values)] for axis, values in self.sweep],
            "params": dict(self.params),
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON form of the spec.

        Stable across processes and sessions: two specs with the same
        digest expand to the same trial list and, run through the same
        code, the same canonical result bytes.
        """
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(name=data["name"], workload=data["workload"],
                   seeds=tuple(data.get("seeds", (0,))),
                   sweep=tuple((axis, tuple(values))
                               for axis, values in data.get("sweep", ())),
                   params=tuple(dict(data.get("params", {})).items()))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))
