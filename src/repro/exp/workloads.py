"""Workload implementations the experiment runner can dispatch to.

A workload is a plain function ``fn(trial: TrialSpec) -> dict`` whose
return value is JSON-serialisable.  Workloads build their entire world
from ``trial.seed`` and ``trial.params`` -- no ambient state -- which is
what makes serial and process-parallel runs byte-identical.

Three workloads cover the paper's latency/matching experiments:

``ping``
    Median RTT from a UE through one of the three system designs
    (``conventional``, ``mec-shared``, ``acacia``) under background
    load -- the Figure 3(g)/10(b) measurement.
``search_space``
    Mean matching time and pruning accuracy per search scheme --
    the Figure 11(a) measurement.
``end_to_end``
    Per-frame latency breakdown of a full AR session for one
    deployment kind -- the Figure 13 measurement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.exp.spec import TrialSpec

WORKLOADS: Dict[str, Callable[[TrialSpec], dict]] = {}

#: One-way (backhaul, core, internet) delays emulating a server RTT,
#: keyed by the nominal RTT in milliseconds (Figure 3(g)).
RTT_PROFILES = {
    70: (0.010, 0.010, 0.009),
    18: (0.0025, 0.0015, 0.001),
    8: (0.0, 0.0, 0.0),
}


def workload(name: str):
    """Register a workload function under ``name``."""
    def register(fn):
        WORKLOADS[name] = fn
        return fn
    return register


def get(name: str) -> Callable[[TrialSpec], dict]:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: "
                       f"{sorted(WORKLOADS)}") from None


# ---------------------------------------------------------------------------
# ping: RTT under background load (Figures 3(g) and 10(b))
# ---------------------------------------------------------------------------

@workload("ping")
def run_ping(trial: TrialSpec) -> dict[str, Any]:
    """Median RTT through one system design under background load.

    Parameters (``trial.params``):

    * ``system`` -- ``conventional`` | ``mec-shared`` | ``acacia``;
    * ``rtt_ms`` -- optional nominal server RTT selecting a delay
      profile from :data:`RTT_PROFILES` (conventional only);
    * ``bg_mbps`` -- background offered load in Mbit/s;
    * ``data_plane`` -- ``packet`` (default) or ``fluid-bg``
      (aggregated background, see :mod:`repro.sim.fluid`);
    * ``count`` / ``interval`` / ``size`` / ``warmup`` / ``tail`` --
      ping train shape.
    """
    from repro.core.config import NetworkConfig, SimConfig
    from repro.core.network import MobileNetwork, Pinger
    from repro.epc.entities import ServicePolicy

    p = trial.param_dict
    system = p.get("system", "conventional")
    bg_mbps = float(p.get("bg_mbps", 0))
    data_plane = p.get("data_plane", "packet")
    count = int(p.get("count", 8))
    interval = float(p.get("interval", 0.4))
    size = int(p.get("size", 1000))
    warmup = float(p.get("warmup", 6.0))
    tail = float(p.get("tail", 8.0))

    delays = {}
    if "rtt_ms" in p:
        backhaul, core, internet = RTT_PROFILES[int(p["rtt_ms"])]
        delays = dict(backhaul_delay=backhaul, core_delay=core,
                      internet_delay=internet)
    elif system == "mec-shared":
        delays = dict(backhaul_delay=0.0006, core_delay=0.0004,
                      internet_delay=0.0002)
    config = NetworkConfig(seed=trial.seed,
                           sim=SimConfig(data_plane=data_plane), **delays)
    network = MobileNetwork(config)

    if system == "acacia":
        network.pcrf.configure(ServicePolicy("ar", qci=7))
        network.add_mec_site("mec")
        network.add_server("mec-server", site_name="mec", echo=True)
        ue = network.add_ue()
        network.create_mec_bearer(ue, "mec-server", service_id="ar")
        server_name = "mec-server"
    elif system in ("conventional", "mec-shared"):
        ue = network.add_ue()
        server_name = "internet"
    else:
        raise ValueError(f"unknown system {system!r}")

    if bg_mbps > 0:
        network.add_background_load(rate=bg_mbps * 1e6).start()

    pinger = Pinger(network, ue, server_name, size=size, interval=interval)
    pinger.run(count=count, start=warmup)
    network.sim.run(until=warmup + count * interval + tail)
    pinger.close()

    if pinger.rtts:
        median = float(np.median(pinger.rtts))
    else:
        median = warmup + tail      # replies trapped behind the queue
    return {
        "median_rtt_ms": median * 1e3,
        "rtts_ms": [r * 1e3 for r in pinger.rtts],
        "answered": len(pinger.rtts),
        "lost": pinger.lost,
    }


# ---------------------------------------------------------------------------
# bearer_setup: dedicated-bearer latency vs concurrent signalling load
# ---------------------------------------------------------------------------

@workload("bearer_setup")
def run_bearer_setup(trial: TrialSpec) -> dict[str, Any]:
    """Dedicated-bearer setup latency under concurrent signalling load.

    Attaches ``n_ues`` UEs, then activates one dedicated MEC bearer per
    UE *simultaneously*: every procedure runs as a simulator process, so
    the setups contend on the shared RRC channel and the core
    signalling paths.  Reports the distribution of measured per-bearer
    setup latencies -- the control-plane analog of the paper's Section
    5.4 sequence under load.

    Parameters (``trial.params``):

    * ``n_ues`` -- number of UEs activating concurrently;
    * ``qci`` -- QCI of the dedicated bearers (default 3).
    """
    from repro.core.config import NetworkConfig
    from repro.core.network import MobileNetwork
    from repro.epc.entities import ServicePolicy

    p = trial.param_dict
    n_ues = int(p.get("n_ues", 10))
    qci = int(p.get("qci", 3))

    network = MobileNetwork(NetworkConfig(seed=trial.seed))
    network.add_mec_site("mec")
    network.add_server("ci", site_name="mec", echo=True)
    network.pcrf.configure(ServicePolicy(service_id="svc", qci=qci))
    server_ip = network.servers["ci"].ip
    cp = network.control_plane

    ues = [network.add_ue() for _ in range(n_ues)]    # sequential attach
    procs = [cp.activate_dedicated_bearer_async(ue, "svc", server_ip, "mec")
             for ue in ues]
    network.sim.run()

    latencies = [proc.value.elapsed for proc in procs
                 if proc.finished and proc.error is None]
    assert len(latencies) == n_ues
    return {
        "n_ues": n_ues,
        "setup_ms": [lat * 1e3 for lat in latencies],
        "mean_ms": float(np.mean(latencies)) * 1e3,
        "p95_ms": float(np.percentile(latencies, 95)) * 1e3,
        "max_ms": float(np.max(latencies)) * 1e3,
    }


# ---------------------------------------------------------------------------
# chaos: control-plane success rates under injected signalling loss
# ---------------------------------------------------------------------------

@workload("chaos")
def run_chaos(trial: TrialSpec) -> dict[str, Any]:
    """Attach/bearer success and latency under injected signalling loss.

    Builds a network with a MEC site, arms a
    :class:`~repro.faults.plan.ChannelLoss` fault on *every* signalling
    channel, then attaches ``n_ues`` UEs concurrently and activates one
    dedicated MEC bearer per attached UE.  With retries enabled the
    retransmission timers recover lost messages; with them disabled,
    losses surface as terminal ``timeout`` outcomes -- either way every
    procedure terminates, so the workload never deadlocks.

    Parameters (``trial.params``):

    * ``loss`` -- per-delivery drop probability on signalling channels;
    * ``retries`` -- whether retransmission is enabled
      (:class:`~repro.core.config.ResilienceConfig` ``enabled``);
    * ``n_ues`` -- UEs attaching (then activating bearers) concurrently;
    * ``qci`` -- QCI of the dedicated bearers (default 3).
    """
    from repro.core.config import NetworkConfig, ResilienceConfig
    from repro.core.network import MobileNetwork
    from repro.epc.entities import ServicePolicy
    from repro.faults import ChannelLoss, FaultInjector, FaultPlan

    p = trial.param_dict
    loss = float(p.get("loss", 0.05))
    retries = bool(p.get("retries", True))
    n_ues = int(p.get("n_ues", 20))
    qci = int(p.get("qci", 3))

    config = NetworkConfig(seed=trial.seed,
                           resilience=ResilienceConfig(enabled=retries))
    network = MobileNetwork(config)
    network.add_mec_site("mec")
    network.add_server("ci", site_name="mec", echo=True)
    network.pcrf.configure(ServicePolicy(service_id="svc", qci=qci))
    server_ip = network.servers["ci"].ip
    cp = network.control_plane

    if loss > 0:
        FaultInjector(network, FaultPlan((
            ChannelLoss(channel="*", rate=loss),))).arm()

    attach_procs = [network.add_ue_async() for _ in range(n_ues)]
    network.sim.run()
    attach_results = []
    for proc in attach_procs:
        assert proc.finished and proc.error is None, proc.error
        attach_results.append(proc.value.attach_result)

    attached_ues = [proc.value for proc in attach_procs
                    if proc.value.attached]
    bearer_procs = [
        cp.activate_dedicated_bearer_async(ue, "svc", server_ip, "mec")
        for ue in attached_ues]
    network.sim.run()
    bearer_results = []
    for proc in bearer_procs:
        assert proc.finished and proc.error is None, proc.error
        bearer_results.append(proc.value)

    def outcome_histogram(results):
        histogram: dict[str, int] = {}
        for result in results:
            histogram[result.outcome] = histogram.get(result.outcome, 0) + 1
        return histogram

    def success_stats(results):
        good = [r for r in results if r.outcome in ("ok", "retried-ok")]
        rate = len(good) / len(results) if results else 0.0
        mean_ms = (float(np.mean([r.elapsed for r in good])) * 1e3
                   if good else 0.0)
        return rate, mean_ms, good

    attach_rate, attach_mean_ms, _ = success_stats(attach_results)
    bearer_rate, bearer_mean_ms, _ = success_stats(bearer_results)
    return {
        "loss": loss,
        "retries": retries,
        "n_ues": n_ues,
        "attach_success_rate": attach_rate,
        "attach_outcomes": outcome_histogram(attach_results),
        "attach_mean_ms": attach_mean_ms,
        "bearer_success_rate": bearer_rate,
        "bearer_outcomes": outcome_histogram(bearer_results),
        "bearer_mean_ms": bearer_mean_ms,
        "retransmissions": network.fabric.retransmissions,
        "duplicates": network.fabric.duplicates,
        "signalling_drops": dict(sorted(network.fabric.drops.items())),
    }


# ---------------------------------------------------------------------------
# scale: attach storm + data plane at growing UE counts
# ---------------------------------------------------------------------------

@workload("scale")
def run_scale(trial: TrialSpec) -> dict[str, Any]:
    """Whole-network behaviour as the UE population grows.

    Attaches ``n_ues`` UEs *concurrently* (an attach storm contending
    on the shared signalling channels), then exercises the data plane:
    optional background CBR load plus a short ping train from the
    first attached UE to a MEC server.  Reports attach success/latency
    statistics, the ping median RTT, and the simulator's event count
    -- the event count is scheduler-invariant, so it doubles as a
    determinism probe for the throughput benchmarks.

    Parameters (``trial.params``):

    * ``n_ues`` -- UEs attaching concurrently;
    * ``bg_mbps`` -- background offered load in Mbit/s (default 0);
    * ``data_plane`` -- ``packet`` (default) or ``fluid-bg``;
    * ``pings`` -- ping-train length (default 5; 0 disables).
    """
    from repro.core.config import NetworkConfig, SimConfig
    from repro.core.network import MobileNetwork, Pinger

    p = trial.param_dict
    n_ues = int(p.get("n_ues", 100))
    bg_mbps = float(p.get("bg_mbps", 0))
    data_plane = p.get("data_plane", "packet")
    pings = int(p.get("pings", 5))

    network = MobileNetwork(NetworkConfig(
        seed=trial.seed, sim=SimConfig(data_plane=data_plane)))
    network.add_mec_site("mec")
    network.add_server("ci", site_name="mec", echo=True)

    attach_procs = [network.add_ue_async() for _ in range(n_ues)]
    network.sim.run()
    attach_results = []
    attached = []
    for proc in attach_procs:
        assert proc.finished and proc.error is None, proc.error
        attach_results.append(proc.value.attach_result)
        if proc.value.attached:
            attached.append(proc.value)

    good = [r for r in attach_results if r.outcome in ("ok", "retried-ok")]
    latencies = [r.elapsed for r in good]

    median_rtt_ms = None
    if pings > 0 and attached:
        if bg_mbps > 0:
            network.add_background_load(rate=bg_mbps * 1e6).start()
        start = network.sim.now
        pinger = Pinger(network, attached[0], "ci", size=256, interval=0.1)
        pinger.run(count=pings, start=1.0)
        network.sim.run(until=start + 1.0 + pings * 0.1 + 2.0)
        pinger.close()
        if pinger.rtts:
            median_rtt_ms = float(np.median(pinger.rtts)) * 1e3

    return {
        "n_ues": n_ues,
        "attach_success_rate": len(good) / n_ues if n_ues else 0.0,
        "attach_mean_ms": (float(np.mean(latencies)) * 1e3
                           if latencies else 0.0),
        "attach_p95_ms": (float(np.percentile(latencies, 95)) * 1e3
                          if latencies else 0.0),
        "median_rtt_ms": median_rtt_ms,
        "events_run": network.sim.events_run,
    }


# ---------------------------------------------------------------------------
# continuity: session survival while UEs sweep a multi-site edge fabric
# ---------------------------------------------------------------------------

@workload("continuity")
def run_continuity(trial: TrialSpec) -> dict[str, Any]:
    """CI-session continuity while UEs sweep across edge sites.

    Builds an ``n_sites``-site edge fabric (one CI echo server per
    site), attaches ``n_ues`` UEs in the first cell, gives each a
    dedicated-bearer CI session and walks them down the whole line of
    cells.  Every cross-boundary handover triggers application-context
    relocation under the configured policy; each UE pings its CI
    server throughout (retargeted to the new site's instance on
    :class:`~repro.core.events.SessionRelocated`), so the measured
    interruption and any ping loss are real data-plane effects.

    Parameters (``trial.params``):

    * ``policy`` -- ``make-before-break`` | ``break-before-make``;
    * ``n_ues`` -- walkers (scales to hundreds/thousands);
    * ``n_sites`` / ``enbs_per_site`` -- fabric shape;
    * ``context_kb`` -- application-context size per session (KB);
    * ``speed`` -- walk speed in m/s; ``cell_spacing`` -- metres
      between cells; ``stagger`` -- per-UE walk start offset (s);
    * ``hysteresis`` (m) and ``hysteresis_db`` (dB) -- handover
      margins; ``update_interval`` -- mobility tick (s);
    * ``bg_mbps`` -- central background load; ``data_plane`` --
      ``packet`` (default) or ``fluid-bg``;
    * ``ping_interval`` / ``ping_size`` -- probe-train shape
      (``ping_interval`` 0 disables probing);
    * ``tail`` -- settle time after the last walk ends (s).
    """
    from repro.apps.mobility import MobilityManager
    from repro.apps.scenario import WalkPath
    from repro.baselines.deployments import build_edge_fabric
    from repro.core.config import ContinuityConfig
    from repro.core.events import SessionRelocated
    from repro.core.network import Pinger

    p = trial.param_dict
    policy = p.get("policy", "make-before-break")
    n_ues = int(p.get("n_ues", 24))
    n_sites = int(p.get("n_sites", 3))
    enbs_per_site = int(p.get("enbs_per_site", 2))
    context_kb = float(p.get("context_kb", 2000))
    speed = float(p.get("speed", 25.0))
    cell_spacing = float(p.get("cell_spacing", 100.0))
    stagger = float(p.get("stagger", 0.05))
    hysteresis = float(p.get("hysteresis", 3.0))
    hysteresis_db = float(p.get("hysteresis_db", 0.0))
    update_interval = float(p.get("update_interval", 0.5))
    bg_mbps = float(p.get("bg_mbps", 0))
    data_plane = p.get("data_plane", "packet")
    ping_interval = float(p.get("ping_interval", 0.2))
    ping_size = int(p.get("ping_size", 256))
    tail = float(p.get("tail", 5.0))

    fabric = build_edge_fabric(
        n_sites=n_sites, enbs_per_site=enbs_per_site, seed=trial.seed,
        continuity=ContinuityConfig(
            policy=policy, context_size_bytes=int(context_kb * 1000)),
        data_plane=data_plane, cell_spacing=cell_spacing)
    network = fabric.network
    mrs = fabric.mrs

    relocated: list[SessionRelocated] = []
    pingers: dict[str, Pinger] = {}

    def on_relocated(event: SessionRelocated) -> None:
        relocated.append(event)
        pinger = pingers.get(event.imsi)
        if pinger is not None:
            server_name = fabric.server_of_site[event.to_site]
            pinger.server = network.servers[server_name]

    network.hooks.on(SessionRelocated, on_relocated)

    # attach storm in the first cell, then one CI session per UE
    attach_procs = [network.add_ue_async(enb_name="enb0")
                    for _ in range(n_ues)]
    network.sim.run()
    ues = []
    for proc in attach_procs:
        assert proc.finished and proc.error is None, proc.error
        if proc.value.attached:
            ues.append(proc.value)
    for ue in ues:
        mrs.request_connectivity(ue, fabric.service_id)

    if bg_mbps > 0:
        network.add_background_load(rate=bg_mbps * 1e6).start()

    # walk the whole line of cells, staggered so handovers overlap but
    # do not all fire in the same tick
    manager = MobilityManager(network, fabric.enb_positions,
                              update_interval=update_interval,
                              hysteresis=hysteresis,
                              hysteresis_db=hysteresis_db)
    end_x = cell_spacing * (n_sites * enbs_per_site - 1)
    walk_duration = end_x / speed
    start_at = network.sim.now + 1.0
    users = []
    for i, ue in enumerate(ues):
        walk = WalkPath(waypoints=[(0.0, 0.0), (end_x, 0.0)], speed=speed)
        network.sim.schedule(
            start_at + i * stagger - network.sim.now,
            lambda u=ue, w=walk: users.append(manager.add_mobile(u, w)))
        if ping_interval > 0:
            pinger = Pinger(network, ue, fabric.server_of_site["edge0"],
                            size=ping_size, interval=ping_interval)
            count = int((walk_duration + n_ues * stagger + tail)
                        / ping_interval)
            pinger.run(count=count, start=start_at + i * stagger)
            pingers[ue.imsi] = pinger

    horizon = start_at + n_ues * stagger + walk_duration + tail
    network.sim.run(until=horizon)
    for pinger in pingers.values():
        pinger.close()

    last_site = f"edge{n_sites - 1}"
    sessions_alive = 0
    sessions_on_last_site = 0
    for ue in ues:
        session = mrs.session_for(ue, fabric.service_id)
        if session is None:
            continue
        bearer = ue.bearers.bearers.get(session.ebi)
        if bearer is not None and bearer.active:
            sessions_alive += 1
            if session.instance.site_name == last_site:
                sessions_on_last_site += 1

    interruptions = [e.interruption for e in relocated]
    handovers = sum(len(u.handovers) for u in users)
    answered = sum(len(pg.rtts) for pg in pingers.values())
    lost = sum(pg.lost for pg in pingers.values())
    return {
        "policy": policy,
        "n_ues": n_ues,
        "n_sites": n_sites,
        "attached": len(ues),
        "handovers": handovers,
        "relocations_started": mrs.relocations_started,
        "relocations_completed": mrs.relocations_completed,
        "relocations_skipped_fault": mrs.relocations_skipped_fault,
        "sessions_alive": sessions_alive,
        "sessions_on_last_site": sessions_on_last_site,
        "interruption_ms": {
            "mean": (float(np.mean(interruptions)) * 1e3
                     if interruptions else 0.0),
            "p95": (float(np.percentile(interruptions, 95)) * 1e3
                    if interruptions else 0.0),
            "max": (float(np.max(interruptions)) * 1e3
                    if interruptions else 0.0),
        },
        "context_bytes_moved": sum(e.transferred_bytes for e in relocated),
        "pings_answered": answered,
        "pings_lost": lost,
        "events_run": network.sim.events_run,
    }


# ---------------------------------------------------------------------------
# shard_fabric: multi-site fabric under sharded execution
# ---------------------------------------------------------------------------

@workload("shard_fabric")
def run_shard_fabric(trial: TrialSpec) -> dict[str, Any]:
    """An ``n_sites`` fabric of per-site shards coupled over the WAN.

    One :class:`~repro.baselines.deployments.ShardSiteApp` per edge
    site -- a full single-site MEC world with its own attach storm, CI
    ping trains and periodic context-sync traffic to every peer over
    the full-mesh WAN conduits -- federated by
    :class:`~repro.sim.shard.ShardedSimulator`.

    ``sharding`` selects the execution layout only: ``"off"`` runs the
    federation inline in this process, ``"site"`` gives every site its
    own OS process.  The result dict is byte-identical either way
    (asserted by the differential tests and ``tools/bench_shard.py``),
    which is why it deliberately carries no backend marker -- only
    invariant quantities.  The window-round count is *not* one (the
    window schedule follows scheduler lower bounds, so it may differ
    across schedulers); it lives in
    :meth:`~repro.sim.shard.ShardedSimulator.stats` for the bench
    driver, not here.

    Parameters (``trial.params``): ``sharding``, ``n_sites``,
    ``n_ues`` (per site), ``wan_delay`` (the conduit delay and
    therefore the conservative lookahead), ``warmup`` / ``duration`` /
    ``tail`` (horizon shape), ``ping_interval`` / ``ping_size``,
    ``sync_interval`` / ``sync_bytes``, ``data_plane`` and ``bg_mbps``
    (per site; ``fluid-bg`` + load gives the fluid sharded profile).
    """
    from repro.baselines.deployments import ShardSiteApp
    from repro.core.config import SHARDING_MODES
    from repro.sim.shard import Conduit, ShardSpec, ShardedSimulator

    p = trial.param_dict
    sharding = p.get("sharding", "off")
    if sharding not in SHARDING_MODES:
        raise ValueError(f"unknown sharding mode {sharding!r}; "
                         f"expected one of {SHARDING_MODES}")
    n_sites = int(p.get("n_sites", 3))
    if n_sites < 2:
        raise ValueError("shard_fabric needs at least 2 sites")
    wan_delay = float(p.get("wan_delay", 0.05))
    warmup = float(p.get("warmup", 1.0))
    duration = float(p.get("duration", 4.0))
    tail = float(p.get("tail", 1.0))

    site_kwargs = dict(
        seed=trial.seed,
        n_ues=int(p.get("n_ues", 4)),
        warmup=warmup, duration=duration,
        ping_interval=float(p.get("ping_interval", 0.1)),
        ping_size=int(p.get("ping_size", 256)),
        sync_interval=float(p.get("sync_interval", 0.5)),
        sync_bytes=int(p.get("sync_bytes", 2000)),
        data_plane=p.get("data_plane", "packet"),
        bg_mbps=float(p.get("bg_mbps", 0.0)),
    )
    names = [f"edge{i}" for i in range(n_sites)]
    specs = [ShardSpec(name, ShardSiteApp, dict(site_kwargs))
             for name in names]
    conduits = [Conduit(names[i], names[j], wan_delay)
                for i in range(n_sites) for j in range(i + 1, n_sites)]
    sharded = ShardedSimulator(
        specs, conduits,
        backend="process" if sharding == "site" else "inline")
    sites = sharded.run(until=warmup + duration + tail)
    return {
        "n_sites": n_sites,
        "wan_delay": wan_delay,
        "lookahead": sharded.lookahead,
        "envelopes_sent": sharded.envelopes_sent,
        "envelopes_dropped": sharded.envelopes_dropped,
        "events_run": sum(s["events_run"] for s in sites.values()),
        "sites": sites,
    }


# ---------------------------------------------------------------------------
# search_space: matching time/accuracy per scheme (Figure 11(a))
# ---------------------------------------------------------------------------

@workload("search_space")
def run_search_space(trial: TrialSpec) -> dict[str, Any]:
    """Mean matching time per (resolution, scheme) on one machine.

    Parameters: ``machine`` (a :data:`repro.vision.costmodel.DEVICES`
    key), optional ``frames_per_checkpoint`` and ``n_features``.
    """
    from repro.apps.retail import build_retail_database, landmark_map_for
    from repro.apps.scenario import store_scenario
    from repro.apps.workload import CheckpointWorkload
    from repro.core.localization_manager import LocalizationManager
    from repro.core.optimizer import SearchSpaceOptimizer
    from repro.d2d.radio import RadioModel
    from repro.localization.pathloss import calibrate_from_radio
    from repro.vision.camera import R720x480, R960x720, R1280x720
    from repro.vision.costmodel import DEVICES

    p = trial.param_dict
    machine = p.get("machine", "i7-8core")
    frames_per_checkpoint = int(p.get("frames_per_checkpoint", 5))
    n_features = int(p.get("n_features", 60))
    schemes = ("acacia", "rxpower", "naive")
    resolutions = (R720x480, R960x720, R1280x720)

    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=n_features)
    radio = RadioModel()
    rng = np.random.default_rng(trial.seed)
    regression = calibrate_from_radio(radio, rng)
    localization = LocalizationManager(landmark_map_for(scenario,
                                                        regression))
    workload_ = CheckpointWorkload(scenario, db, radio=radio,
                                   seed=trial.seed)
    samples = []
    for cp in scenario.checkpoints:
        sample = workload_.sample(cp)
        for round_index in range(3):
            observations = workload_.landmark_observations(cp.position)
            for landmark, rx_power in observations.items():
                localization.report(cp.name, landmark, rx_power,
                                    float(round_index))
        samples.append(sample)
    optimizer = SearchSpaceOptimizer(db, scenario)

    def space_for(scheme, cp_name):
        if scheme == "naive":
            return optimizer.naive()
        if scheme == "rxpower":
            return optimizer.rxpower(
                localization.strongest_landmarks(cp_name, now=1.0))
        location = localization.location(cp_name, now=1.0)
        return optimizer.acacia(
            location, localization.strongest_landmarks(cp_name, now=1.0))

    device = DEVICES[machine]
    mean_ms: dict[str, float] = {}
    for resolution in resolutions:
        for scheme in schemes:
            times = []
            for sample in samples:
                space = space_for(scheme, sample.checkpoint.name)
                t = device.db_match_time(
                    resolution, db_objects=space.size,
                    object_features=db.mean_nominal_features(
                        space.records))
                times.extend([t] * frames_per_checkpoint)
            mean_ms[f"{resolution}|{scheme}"] = float(
                np.mean(times)) * 1e3

    misses: dict[str, list[str]] = {scheme: [] for scheme in schemes}
    for sample in samples:
        for scheme in schemes:
            space = space_for(scheme, sample.checkpoint.name)
            names = {record.name for record in space.records}
            if sample.record.name not in names:
                misses[scheme].append(sample.checkpoint.name)

    return {"machine": machine, "mean_ms": mean_ms, "misses": misses,
            "checkpoints": len(samples)}


# ---------------------------------------------------------------------------
# end_to_end: full-stack AR session breakdown (Figure 13)
# ---------------------------------------------------------------------------

@workload("end_to_end")
def run_end_to_end(trial: TrialSpec) -> dict[str, Any]:
    """Per-frame latency breakdown for one deployment kind.

    Parameters: ``kind`` (``cloud`` | ``mec`` | ``acacia``), optional
    ``frames``, ``checkpoint`` (index) and ``n_features``.
    """
    from repro.apps.retail import build_retail_database
    from repro.apps.scenario import store_scenario
    from repro.apps.workload import CheckpointWorkload
    from repro.baselines import build_deployment
    from repro.vision.camera import R720x480

    p = trial.param_dict
    kind = p.get("kind", "acacia")
    frames = int(p.get("frames", 8))
    checkpoint_index = int(p.get("checkpoint", 4))
    n_features = int(p.get("n_features", 60))

    scenario = store_scenario()
    db = build_retail_database(scenario, n_features=n_features)
    deployment = build_deployment(
        kind, db, scenario, seed=trial.seed,
        data_plane=p.get("data_plane", "packet"))
    checkpoint = scenario.checkpoints[checkpoint_index]
    workload_ = CheckpointWorkload(scenario, db, seed=trial.seed,
                                   frames_per_object=frames,
                                   resolution=R720x480)
    sample = workload_.sample(checkpoint)

    if kind == "acacia":
        section = scenario.section_of_subsection(checkpoint.subsection)
        deployment.customer.move_to(checkpoint.position)
        deployment.customer.open([section])
        deployment.network.sim.run(until=32.0)
    session = deployment.new_session(iter(sample.frames),
                                     resolution=R720x480,
                                     max_frames=frames)
    session.start(at=deployment.network.sim.now)
    deployment.network.sim.run(until=deployment.network.sim.now + 120.0)

    breakdown = session.mean_breakdown()
    return {
        "kind": kind,
        "frames_completed": len(session.records),
        "all_matched": all(r.matched == sample.record.name
                           for r in session.records),
        "breakdown_ms": {part: value * 1e3
                         for part, value in breakdown.items()},
    }


# ---------------------------------------------------------------------------
# scenario: the generic declarative-document interpreter
# ---------------------------------------------------------------------------

@workload("scenario")
def run_scenario(trial: TrialSpec) -> dict[str, Any]:
    """Interpret one scenario-document trial.

    The params carry the document's ``topology`` / ``network`` /
    ``traffic`` / ``mobility`` / ``faults`` / ``run`` sections (placed
    there by :meth:`repro.scenario.document.Scenario.compile`) plus
    any sweep-axis scalar overrides; the whole interpretation lives in
    :func:`repro.scenario.runtime.execute`, imported lazily so this
    registry never drags the scenario layer in for the other
    workloads.
    """
    from repro.scenario.runtime import execute
    return execute(trial)
