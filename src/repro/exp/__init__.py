"""Declarative multi-seed experiment specs and a parallel trial runner.

An :class:`ExperimentSpec` names a workload (see
:mod:`repro.exp.workloads`), the seeds to repeat it over and the sweep
axes to cross; :class:`ExperimentRunner` fans the resulting trials out
over worker processes (or runs them serially -- the results are
byte-identical either way) and collects structured JSON with per-trial
provenance.  Preset specs for the paper's figures live in
:mod:`repro.exp.presets`.
"""

from repro.exp.presets import PRESETS, preset
from repro.exp.runner import (ExperimentResult, ExperimentRunner,
                              TrialResult, run_trial)
from repro.exp.spec import ExperimentSpec, TrialSpec
from repro.exp.workloads import WORKLOADS, workload

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "PRESETS",
    "TrialResult",
    "TrialSpec",
    "WORKLOADS",
    "preset",
    "run_trial",
    "workload",
]
