"""Frame compression model (grayscale JPEG/PNG).

Encodes two calibrated behaviours from the paper:

* Section 7.3: JPEG-90 compression of raw grayscale frames on the
  OnePlus One takes 53/38/23 ms for 1280*720 / 960*720 / 720*480 and
  yields 5 / 5.8 / 4.7x size reduction;
* Figure 3(f): achievable upload FPS per codec as a function of uplink
  capacity, where an uncompressed grayscale HD frame cannot even be
  sent once per second at 12 Mbps.

Compression ratio depends on scene content; the paper's retail-object
close-ups (Section 7.3) compress less than its wide HD preview scenes
(Figure 3(f)).  ``scene_complexity`` captures that: 1.0 reproduces the
Section 7.3 ratios, ~0.5 the Figure 3(f) frame sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vision.camera import Resolution

#: Raw grayscale: 8 bits per pixel.
RAW_BITS_PER_PIXEL = 8.0

#: Bits/pixel at scene_complexity=1.0; JPEG-90 at 1.6 bpp gives the
#: paper's ~5x reduction over 8 bpp raw.
_BASE_BPP = {
    "jpeg50": 0.70,
    "jpeg80": 1.15,
    "jpeg90": 1.60,
    "jpeg100": 4.40,
    "png": 5.70,
    "raw": RAW_BITS_PER_PIXEL,
}

#: OnePlus One JPEG encode cost: t = a * pixels + b, fitted to the
#: Section 7.3 measurements (23 ms @ 345.6 kpx ... 53 ms @ 921.6 kpx).
_ENCODE_COST_PER_PIXEL = 5.2e-8
_ENCODE_COST_FIXED = 0.005

#: Server-side decode, per pixel (i7 class).
_DECODE_COST_PER_PIXEL = 5e-9


@dataclass(frozen=True)
class CompressionModel:
    """One codec configuration."""

    name: str
    bits_per_pixel: float
    lossy: bool = True

    def frame_bytes(self, resolution: Resolution,
                    scene_complexity: float = 1.0) -> int:
        """Compressed frame size for a scene."""
        if self.name == "raw":
            return resolution.pixels           # complexity-independent
        bpp = self.bits_per_pixel * scene_complexity
        return max(1, int(resolution.pixels * bpp / 8))

    def compression_ratio(self, resolution: Resolution,
                          scene_complexity: float = 1.0) -> float:
        raw = resolution.pixels
        return raw / self.frame_bytes(resolution, scene_complexity)

    def encode_time(self, resolution: Resolution,
                    device_speedup: float = 1.0) -> float:
        """Encode latency (seconds); device_speedup=1 is the OnePlus One."""
        if self.name == "raw":
            return 0.0
        cost = (_ENCODE_COST_PER_PIXEL * resolution.pixels
                + _ENCODE_COST_FIXED)
        return cost / device_speedup

    def decode_time(self, resolution: Resolution) -> float:
        """Server-side decode latency (seconds)."""
        if self.name == "raw":
            return 0.0
        return _DECODE_COST_PER_PIXEL * resolution.pixels


def _make(name: str) -> CompressionModel:
    return CompressionModel(name=name, bits_per_pixel=_BASE_BPP[name],
                            lossy=name.startswith("jpeg")
                            and name != "jpeg100")


JPEG50 = _make("jpeg50")
JPEG80 = _make("jpeg80")
JPEG90 = _make("jpeg90")
JPEG100 = _make("jpeg100")
PNG = _make("png")
RAW_GRAY = _make("raw")

ALL_CODECS = [JPEG50, JPEG80, JPEG90, JPEG100, PNG, RAW_GRAY]


def achievable_fps(codec: CompressionModel, resolution: Resolution,
                   uplink_bps: float, camera_fps: float,
                   scene_complexity: float = 1.0) -> float:
    """Upload frame rate: network-limited, capped by the camera.

    The Figure 3(f) computation: how many compressed frames per second
    fit in the uplink, never exceeding what the camera produces.
    """
    frame_bits = codec.frame_bytes(resolution, scene_complexity) * 8
    network_fps = uplink_bps / frame_bits
    return min(network_fps, camera_fps)
