"""The object-matching pipeline: kNN + ratio + symmetry + RANSAC.

Implements the four accuracy stages of the paper's AR back-end
(Section 6.3): (1) brute-force 2-nearest-neighbour matching with a
ratio test, (2) a symmetry (mutual best match) test between the two
directions, (3) RANSAC geometric verification returning inlier matches,
(4) an inlier-count acceptance threshold.  These run for real on the
synthetic descriptor sets, so false negatives/positives are measured,
not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.vision.features import Frame, ObjectModel


@dataclass
class MatchOutcome:
    """Result of matching one frame against one object."""

    object_name: str
    good_matches: int = 0
    symmetric_matches: int = 0
    inliers: int = 0
    accepted: bool = False
    stage_reached: str = "ratio"     # ratio -> symmetry -> ransac -> accept


#: Policy for candidate sets with fewer than two reference descriptors:
#: the ratio test needs a second nearest neighbour to establish
#: distinctiveness, and with none available it would vacuously pass
#: every query (``d1 < ratio * inf``).  Both engines therefore REJECT
#: all matches against lone-descriptor (or empty) candidates.  Shared
#: by :class:`ObjectMatcher` and
#: :class:`~repro.vision.batch.BatchObjectMatcher`.
LONE_CANDIDATE_POLICY = "reject"


def _knn2(queries: np.ndarray, references: np.ndarray
          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-NN by cosine distance on unit vectors.

    Requires at least two reference rows (callers apply the
    lone-candidate policy first).  Returns
    (best_idx, best_dist, second_dist) per query row.
    """
    if references.shape[0] < 2:
        raise ValueError("2-NN needs at least two reference descriptors; "
                         "apply the lone-candidate policy upstream")
    similarity = queries @ references.T          # (q, r)
    distance = 1.0 - similarity
    order = np.argpartition(distance, 1, axis=1)[:, :2]
    rows = np.arange(len(queries))[:, None]
    two = distance[rows, order]
    swap = two[:, 0] > two[:, 1]
    order[swap] = order[swap][:, ::-1]
    two[swap] = two[swap][:, ::-1]
    return order[:, 0], two[:, 0], two[:, 1]


class ObjectMatcher:
    """Brute-force matcher with the paper's four verification stages."""

    def __init__(self, ratio_threshold: float = 0.75,
                 ransac_iterations: int = 50,
                 ransac_inlier_radius: float = 3.0,
                 min_inliers: int = 8,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not (0 < ratio_threshold < 1):
            raise ValueError("ratio threshold must be in (0, 1)")
        self.ratio_threshold = ratio_threshold
        self.ransac_iterations = ransac_iterations
        self.ransac_inlier_radius = ransac_inlier_radius
        self.min_inliers = min_inliers
        self.rng = rng if rng is not None else np.random.default_rng(1234)

    # -- stages ------------------------------------------------------------

    def _ratio_matches(self, a_desc: np.ndarray, b_desc: np.ndarray
                       ) -> list[tuple[int, int]]:
        if len(a_desc) == 0 or b_desc.shape[0] < 2:
            return []       # lone-candidate policy: no 2nd NN -> reject
        best, d1, d2 = _knn2(a_desc, b_desc)
        keep = d1 < self.ratio_threshold * d2
        return [(i, int(best[i])) for i in np.flatnonzero(keep)]

    def _symmetry_filter(self, forward: list[tuple[int, int]],
                         backward: list[tuple[int, int]]
                         ) -> list[tuple[int, int]]:
        reverse = {(j, i) for i, j in backward}
        return [(i, j) for i, j in forward if (i, j) in reverse]

    def _ransac_translation(self, frame_kp: np.ndarray,
                            object_kp: np.ndarray,
                            pairs: list[tuple[int, int]]) -> int:
        """Estimate a translation model; return the inlier count."""
        if len(pairs) < 2:
            return 0
        pair_idx = np.asarray(pairs, dtype=np.intp)
        offsets = frame_kp[pair_idx[:, 0]] - object_kp[pair_idx[:, 1]]
        best_inliers = 0
        n = len(pairs)
        for _ in range(self.ransac_iterations):
            candidate = offsets[self.rng.integers(n)]
            errors = np.linalg.norm(offsets - candidate, axis=1)
            inliers = int(np.sum(errors < self.ransac_inlier_radius))
            best_inliers = max(best_inliers, inliers)
        return best_inliers

    # -- public API -----------------------------------------------------------

    def _match_arrays(self, frame: Frame, name: str,
                      descriptors: np.ndarray,
                      keypoints: np.ndarray) -> MatchOutcome:
        """Full pipeline for one candidate given its raw arrays.

        Factored out of :meth:`match_one` so the batched engine can run
        the identical per-candidate arithmetic on stacked slices.
        """
        outcome = MatchOutcome(object_name=name)
        forward = self._ratio_matches(frame.descriptors, descriptors)
        outcome.good_matches = len(forward)
        if len(forward) < self.min_inliers:
            return outcome
        outcome.stage_reached = "symmetry"
        backward = self._ratio_matches(descriptors, frame.descriptors)
        symmetric = self._symmetry_filter(forward, backward)
        outcome.symmetric_matches = len(symmetric)
        if len(symmetric) < self.min_inliers:
            return outcome
        outcome.stage_reached = "ransac"
        inliers = self._ransac_translation(frame.keypoints, keypoints,
                                           symmetric)
        outcome.inliers = inliers
        if inliers >= self.min_inliers:
            outcome.accepted = True
            outcome.stage_reached = "accept"
        return outcome

    def match_one(self, frame: Frame, obj: ObjectModel) -> MatchOutcome:
        """Run the full pipeline for one frame/object pair."""
        return self._match_arrays(frame, obj.name, obj.descriptors,
                                  obj.keypoints)

    def match_frame(self, frame: Frame, candidates: Iterable[ObjectModel]
                    ) -> Optional[MatchOutcome]:
        """Match against a candidate set; best accepted outcome or None."""
        best: Optional[MatchOutcome] = None
        for obj in candidates:
            outcome = self.match_one(frame, obj)
            if outcome.accepted and (best is None
                                     or outcome.inliers > best.inliers):
                best = outcome
        return best


@dataclass
class MatchStats:
    """Aggregate accuracy bookkeeping across an experiment."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0
    details: list[tuple[Optional[str], Optional[str]]] = field(
        default_factory=list)

    def record(self, truth: Optional[str], matched: Optional[str]) -> None:
        self.details.append((truth, matched))
        if truth is None and matched is None:
            self.true_negatives += 1
        elif truth is None:
            self.false_positives += 1
        elif matched is None:
            self.false_negatives += 1
        elif matched == truth:
            self.true_positives += 1
        else:
            self.false_positives += 1

    @property
    def total(self) -> int:
        return len(self.details)
