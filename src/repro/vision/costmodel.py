"""Calibrated device cost model for SURF and matching runtimes.

The paper measures (Figures 3(a)/3(b)) SURF extraction and brute-force
matching across four devices, reporting the OnePlus One absolute times
and the server speed-ups: SURF 36x (1 i7 core), 182x (8 cores), 1087x
(GPU); matching 223x / 852x / 3284x.  Figure 11/12 adds a 32-core Xeon
roughly 2.5x faster than the 8-core i7 for matching.

Model:

* SURF:  ``t = surf_base(device) * (pixels / 76800)^0.85`` where
  ``surf_base`` is the device's 320*240 time (OnePlus One: 2 s).
* Matching one frame against one object:
  ``t = pair_cost(device) * frame_features * object_features``
  (two kNN passes and the verification stages are folded into the
  calibrated per-pair constant).
* Multi-client contention (Figure 12): matching parallelises across
  ``cores``; ``n`` concurrent clients inflate runtime by
  ``max(1, n * parallel_width / cores)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vision.camera import R320x240, Resolution
from repro.vision.features import expected_feature_count

#: SURF runtime growth with pixel count (super-linear feature work,
#: sub-linear per-pixel stages).
SURF_PIXEL_EXPONENT = 0.85

#: How many cores one matching job can use (OpenCV parallel matcher).
PARALLEL_WIDTH = 8

#: OnePlus One measured SURF time at 320*240 (Figure 3(a)): ~2 s.
_ONEPLUS_SURF_BASE = 2.0

#: OnePlus One per-descriptor-pair matching cost; with ~392.5 features
#: per side at 320*240 this gives ~0.9 s per object comparison, the
#: Figure 3(b) order of magnitude.
_ONEPLUS_PAIR_COST = 6.0e-6


@dataclass(frozen=True)
class DeviceProfile:
    """One compute platform."""

    name: str
    surf_speedup: float        # vs the OnePlus One (Figure 3(a))
    match_speedup: float       # vs the OnePlus One (Figure 3(b))
    cores: int

    @property
    def surf_base(self) -> float:
        return _ONEPLUS_SURF_BASE / self.surf_speedup

    @property
    def pair_cost(self) -> float:
        return _ONEPLUS_PAIR_COST / self.match_speedup

    # -- runtimes -----------------------------------------------------------

    def surf_time(self, resolution: Resolution) -> float:
        """Feature detection + description latency for one frame."""
        scale = (resolution.pixels / R320x240.pixels) ** SURF_PIXEL_EXPONENT
        return self.surf_base * scale

    def pairwise_match_time(self, frame_features: float,
                            object_features: float) -> float:
        """Brute-force match of one frame against one stored object."""
        return self.pair_cost * frame_features * object_features

    def db_match_time(self, resolution: Resolution, db_objects: int,
                      object_features: float = 500.0,
                      clients: int = 1) -> float:
        """Match one frame against a database of ``db_objects``.

        ``object_features`` is the mean stored feature count per object;
        ``clients`` applies the Figure 12 contention model.
        """
        if db_objects < 0:
            raise ValueError("db_objects must be non-negative")
        frame_features = expected_feature_count(resolution)
        single = self.pairwise_match_time(
            frame_features, object_features) * db_objects
        return single * self.contention_factor(clients)

    def contention_factor(self, clients: int) -> float:
        if clients < 1:
            raise ValueError("clients must be >= 1")
        return max(1.0, clients * PARALLEL_WIDTH / self.cores)


#: The paper's evaluation platforms.
DEVICES: dict[str, DeviceProfile] = {
    "oneplus-one": DeviceProfile("oneplus-one", surf_speedup=1.0,
                                 match_speedup=1.0, cores=4),
    "i7-1core": DeviceProfile("i7-1core", surf_speedup=36.0,
                              match_speedup=223.0, cores=1),
    "i7-8core": DeviceProfile("i7-8core", surf_speedup=182.0,
                              match_speedup=852.0, cores=8),
    "gpu-titan": DeviceProfile("gpu-titan", surf_speedup=1087.0,
                               match_speedup=3284.0, cores=2688),
    "xeon-32core": DeviceProfile("xeon-32core", surf_speedup=320.0,
                                 match_speedup=2130.0, cores=32),
}
