"""Synthetic SURF feature extraction.

Objects are modelled as deterministic sets of 64-dimensional unit
descriptors with 2-D keypoint positions (SURF descriptors are 64-d).
"Capturing a frame" of an object re-observes a subset of its features
with descriptor noise and keypoint jitter plus background clutter, so
downstream matching behaves like the real pipeline: true object frames
produce many mutual, geometrically-consistent matches, clutter does
not.

Feature *counts* per resolution follow the paper's measured averages
(Figure 3 x-axis): 392.5 / 703.9 / 1224.5 / 1704.9 / 2641.2 features
for 320*240 ... 1440*1080, extended by a fitted power law for the other
resolutions the evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.vision.camera import (R320x240, R480x360, R720x540, R960x720,
                                 R1440x1080, Resolution)

DESCRIPTOR_DIM = 64

#: Paper-measured average feature counts per resolution.
MEASURED_FEATURES: dict[Resolution, float] = {
    R320x240: 392.5,
    R480x360: 703.9,
    R720x540: 1224.5,
    R960x720: 1704.9,
    R1440x1080: 2641.2,
}

# power-law fit features ~ a * pixels^b through the measured points
_log_px = np.log([r.pixels for r in MEASURED_FEATURES])
_log_ft = np.log(list(MEASURED_FEATURES.values()))
_B, _LOG_A = np.polyfit(_log_px, _log_ft, 1)
_A = float(np.exp(_LOG_A))


def expected_feature_count(resolution: Resolution) -> float:
    """Average SURF feature count for a resolution."""
    if resolution in MEASURED_FEATURES:
        return MEASURED_FEATURES[resolution]
    return _A * resolution.pixels ** _B


def _unit_rows(rng: np.random.Generator, n: int) -> np.ndarray:
    rows = rng.normal(size=(n, DESCRIPTOR_DIM))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


@dataclass
class ObjectModel:
    """A catalogued object: its descriptors and keypoint layout.

    ``n_features`` controls the *computational* fidelity (small values
    keep accuracy experiments fast); timing always uses the paper-scale
    nominal counts via the cost model.
    """

    name: str
    descriptors: np.ndarray          # (n, 64), unit rows
    keypoints: np.ndarray            # (n, 2) positions in object frame
    seed: int

    @classmethod
    def generate(cls, name: str, n_features: int = 80,
                 seed: Optional[int] = None) -> "ObjectModel":
        if seed is None:
            # deterministic per name so databases are reproducible
            seed = abs(hash(name)) % (2 ** 31)
        # seed alongside a constant so object streams never collide with
        # plain-integer-seeded generators elsewhere (e.g. frame clutter)
        rng = np.random.default_rng([seed, 0xACAC1A])
        descriptors = _unit_rows(rng, n_features)
        keypoints = rng.uniform(0, 100, size=(n_features, 2))
        return cls(name=name, descriptors=descriptors,
                   keypoints=keypoints, seed=seed)

    @property
    def n_features(self) -> int:
        return self.descriptors.shape[0]


@dataclass
class Frame:
    """One captured camera frame, already feature-extracted."""

    resolution: Resolution
    descriptors: np.ndarray
    keypoints: np.ndarray
    true_object: Optional[str] = None      # ground truth for evaluation
    nominal_features: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.nominal_features == 0.0:
            self.nominal_features = expected_feature_count(self.resolution)

    @property
    def n_features(self) -> int:
        return self.descriptors.shape[0]


class FeatureExtractor:
    """Produces frames: noisy views of an object or pure clutter."""

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 descriptor_noise: float = 0.04,
                 keypoint_jitter: float = 0.8,
                 visible_fraction: float = 0.8,
                 clutter_fraction: float = 0.4) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.descriptor_noise = descriptor_noise
        self.keypoint_jitter = keypoint_jitter
        self.visible_fraction = visible_fraction
        self.clutter_fraction = clutter_fraction

    def frame_of(self, obj: ObjectModel, resolution: Resolution,
                 offset: tuple[float, float] = (10.0, 5.0)) -> Frame:
        """A frame showing ``obj`` (translated, noisy, with clutter)."""
        n_visible = max(8, int(obj.n_features * self.visible_fraction))
        idx = self.rng.choice(obj.n_features, size=n_visible, replace=False)
        descriptors = obj.descriptors[idx] + self.rng.normal(
            0, self.descriptor_noise, size=(n_visible, DESCRIPTOR_DIM))
        descriptors /= np.linalg.norm(descriptors, axis=1, keepdims=True)
        keypoints = (obj.keypoints[idx] + np.asarray(offset)
                     + self.rng.normal(0, self.keypoint_jitter,
                                       size=(n_visible, 2)))
        n_clutter = int(obj.n_features * self.clutter_fraction)
        clutter_desc = _unit_rows(self.rng, n_clutter)
        clutter_kp = self.rng.uniform(0, 120, size=(n_clutter, 2))
        return Frame(
            resolution=resolution,
            descriptors=np.vstack([descriptors, clutter_desc]),
            keypoints=np.vstack([keypoints, clutter_kp]),
            true_object=obj.name)

    def clutter_frame(self, resolution: Resolution,
                      n_features: int = 100) -> Frame:
        """A frame showing nothing from the database."""
        return Frame(
            resolution=resolution,
            descriptors=_unit_rows(self.rng, n_features),
            keypoints=self.rng.uniform(0, 120, size=(n_features, 2)),
            true_object=None)
