"""Simulated computer-vision substrate for the AR application.

The paper's AR pipeline is OpenCV SURF + brute-force matching on real
images; no camera or image corpus exists here, so this package uses a
two-fidelity substitution (documented in DESIGN.md):

* **semantics** -- objects carry deterministic synthetic descriptor sets
  (unit vectors with keypoint geometry); frames are noisy views of an
  object, and the real matching pipeline (kNN + ratio test + symmetry
  test + RANSAC) runs on those vectors, so accuracy/false-negative
  experiments are genuine computations;
* **timing** -- runtimes come from a cost model calibrated to the
  paper's measured device speeds (Figures 3(a), 3(b), 3(h)), driven by
  the paper's feature counts per resolution, so speed-up *ratios* are
  preserved without needing the authors' hardware.
"""

from repro.vision.batch import (BatchObjectMatcher, CandidateMatrixCache,
                                CandidateStack)
from repro.vision.camera import CameraModel, Resolution
from repro.vision.codec import CompressionModel, JPEG90
from repro.vision.costmodel import DEVICES, DeviceProfile
from repro.vision.database import ObjectDatabase, ObjectRecord
from repro.vision.features import (FeatureExtractor, Frame, ObjectModel,
                                   expected_feature_count)
from repro.vision.matcher import MatchOutcome, ObjectMatcher
from repro.vision.pool import MatcherPool

__all__ = [
    "BatchObjectMatcher",
    "CameraModel",
    "CandidateMatrixCache",
    "CandidateStack",
    "CompressionModel",
    "DEVICES",
    "DeviceProfile",
    "FeatureExtractor",
    "Frame",
    "JPEG90",
    "MatchOutcome",
    "MatcherPool",
    "ObjectDatabase",
    "ObjectMatcher",
    "ObjectModel",
    "ObjectRecord",
    "Resolution",
    "expected_feature_count",
]
