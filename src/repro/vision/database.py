"""Geo-tagged object database.

The AR back-end's database (Section 6.3): 105 objects emulating a
retail store, each stored with its name, an annotation tag, SURF
keypoints/descriptors and a geo-tag (the store sub-section the object
lives in).  The three search-space schemes of Section 7.3 are queries
against this structure: the whole floor (Naive), the sections of the
two strongest landmarks (rxPower), or the sub-sections around a
trilaterated location (ACACIA).

The paper persists the DB in OpenCV YAML; we persist to a JSON + NumPy
archive pair, a like-for-like substitution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

import numpy as np

from repro.vision.features import ObjectModel


@dataclass
class ObjectRecord:
    """One catalogued object plus its location metadata.

    ``nominal_features`` is the paper-scale stored feature count used by
    the *timing* cost model; ``model`` carries the (smaller) descriptor
    set actually matched for correctness.  See the two-fidelity note in
    :mod:`repro.vision`.
    """

    model: ObjectModel
    tag: str                      # annotation returned to the user
    section: str                  # coarse area (food, toys, ...)
    subsection: int               # fine geo-tag (cell id)
    position: tuple[float, float]
    nominal_features: float = 500.0

    @property
    def name(self) -> str:
        return self.model.name


def _condition_model(model: ObjectModel) -> None:
    """Store descriptors unit-normalized, float64 and C-contiguous.

    The matchers assume unit rows (cosine distance via a plain GEMM)
    and contiguous memory (BLAS fast path; cheap stacking in the
    batched engine).  Rows already unit within 1e-9 are left untouched
    so a save/load round-trip is bit-stable.
    """
    descriptors = np.ascontiguousarray(model.descriptors, dtype=np.float64)
    if descriptors.size:
        norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
        off_unit = np.abs(norms - 1.0) > 1e-9
        if np.any(off_unit):
            np.divide(descriptors, norms, out=descriptors,
                      where=off_unit & (norms > 0))
    model.descriptors = descriptors
    model.keypoints = np.ascontiguousarray(model.keypoints,
                                           dtype=np.float64)


class ObjectDatabase:
    """Geo-tagged object store with section/sub-section queries.

    Descriptor matrices are conditioned (unit-normalized, float64,
    C-contiguous) on :meth:`add`, which covers both programmatic builds
    and :meth:`load`."""

    def __init__(self) -> None:
        self._records: dict[str, ObjectRecord] = {}

    def add(self, record: ObjectRecord) -> None:
        if record.name in self._records:
            raise ValueError(f"duplicate object {record.name!r}")
        _condition_model(record.model)
        self._records[record.name] = record

    def get(self, name: str) -> ObjectRecord:
        try:
            return self._records[name]
        except KeyError:
            raise KeyError(f"unknown object {name!r}") from None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def all_records(self) -> list[ObjectRecord]:
        return list(self._records.values())

    # -- search-space queries ------------------------------------------------

    def in_sections(self, sections: Iterable[str]) -> list[ObjectRecord]:
        wanted = set(sections)
        return [r for r in self._records.values() if r.section in wanted]

    def in_subsections(self, subsections: Iterable[int]
                       ) -> list[ObjectRecord]:
        wanted = set(subsections)
        return [r for r in self._records.values()
                if r.subsection in wanted]

    def sections(self) -> list[str]:
        return sorted({r.section for r in self._records.values()})

    def subsections(self) -> list[int]:
        return sorted({r.subsection for r in self._records.values()})

    def mean_features(self, records: Optional[list[ObjectRecord]] = None
                      ) -> float:
        """Average *computational* descriptor count per object."""
        records = records if records is not None else self.all_records()
        if not records:
            return 0.0
        return float(np.mean([r.model.n_features for r in records]))

    def mean_nominal_features(self,
                              records: Optional[list[ObjectRecord]] = None
                              ) -> float:
        """Average paper-scale feature count (drives matching cost)."""
        records = records if records is not None else self.all_records()
        if not records:
            return 0.0
        return float(np.mean([r.nominal_features for r in records]))

    # -- persistence --------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = []
        arrays: dict[str, np.ndarray] = {}
        for record in self._records.values():
            meta.append({
                "name": record.name,
                "tag": record.tag,
                "section": record.section,
                "subsection": record.subsection,
                "position": list(record.position),
                "seed": record.model.seed,
                "nominal_features": record.nominal_features,
            })
            arrays[f"{record.name}__desc"] = record.model.descriptors
            arrays[f"{record.name}__kp"] = record.model.keypoints
        (directory / "db.json").write_text(json.dumps(meta, indent=2))
        np.savez_compressed(directory / "db.npz", **arrays)

    @classmethod
    def load(cls, directory: str | Path) -> "ObjectDatabase":
        directory = Path(directory)
        meta = json.loads((directory / "db.json").read_text())
        arrays = np.load(directory / "db.npz")
        db = cls()
        for item in meta:
            model = ObjectModel(
                name=item["name"],
                descriptors=arrays[f"{item['name']}__desc"],
                keypoints=arrays[f"{item['name']}__kp"],
                seed=item["seed"])
            db.add(ObjectRecord(
                model=model, tag=item["tag"], section=item["section"],
                subsection=item["subsection"],
                position=tuple(item["position"]),
                nominal_features=item.get("nominal_features", 500.0)))
        return db
