"""Camera model: resolutions and preview frame rates.

Figure 3(e) measures the OnePlus One camera's preview FPS per
resolution; the table below mirrors that curve (30 FPS at low
resolutions falling to 10 FPS at full HD).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Resolution:
    """A capture resolution."""

    width: int
    height: int

    @property
    def pixels(self) -> int:
        return self.width * self.height

    def __str__(self) -> str:
        return f"{self.width}*{self.height}"


# the resolutions the paper uses across its figures
R320x240 = Resolution(320, 240)
R480x360 = Resolution(480, 360)
R640x480 = Resolution(640, 480)
R720x480 = Resolution(720, 480)
R720x540 = Resolution(720, 540)
R960x720 = Resolution(960, 720)
R1280x720 = Resolution(1280, 720)
R1280x960 = Resolution(1280, 960)
R1440x1080 = Resolution(1440, 1080)
R1920x1080 = Resolution(1920, 1080)

#: Figure 3(e): OnePlus One camera preview FPS per resolution.
PREVIEW_FPS: dict[Resolution, float] = {
    R320x240: 30.0,
    R640x480: 30.0,
    R720x480: 30.0,
    R1280x720: 24.0,
    R1280x960: 15.0,
    R1440x1080: 13.0,
    R1920x1080: 10.0,
}


class CameraModel:
    """Preview-rate lookup with interpolation for unlisted resolutions."""

    def __init__(self, fps_table: dict[Resolution, float] | None = None):
        self.fps_table = dict(fps_table or PREVIEW_FPS)

    def preview_fps(self, resolution: Resolution) -> float:
        if resolution in self.fps_table:
            return self.fps_table[resolution]
        # interpolate on pixel count between the nearest known points
        known = sorted(self.fps_table, key=lambda r: r.pixels)
        if resolution.pixels <= known[0].pixels:
            return self.fps_table[known[0]]
        if resolution.pixels >= known[-1].pixels:
            return self.fps_table[known[-1]]
        for low, high in zip(known, known[1:]):
            if low.pixels <= resolution.pixels <= high.pixels:
                span = high.pixels - low.pixels
                frac = (resolution.pixels - low.pixels) / span
                return (self.fps_table[low] * (1 - frac)
                        + self.fps_table[high] * frac)
        raise AssertionError("unreachable")  # pragma: no cover

    def frame_interval(self, resolution: Resolution) -> float:
        """Seconds between preview frames at a resolution."""
        return 1.0 / self.preview_fps(resolution)
