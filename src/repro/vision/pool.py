"""Concurrent frame matching across worker threads or processes.

The Figure 12 multi-client sweep models contention with the calibrated
cost model; :class:`MatcherPool` lets experiments exercise *genuine*
concurrency instead: N frames matched in parallel against their
candidate sets.  The heavy kernels (GEMM, partition) release the GIL
inside NumPy, so a thread pool already achieves real parallelism for
this workload; a process pool sidesteps the GIL entirely at the cost
of pickling frames and models.

Determinism: job ``k`` always runs with a matcher seeded
``[seed, k]``, so results are independent of scheduling order and
worker count, and reproducible against a serial run with the same
per-job seeding.
"""

from __future__ import annotations

from concurrent.futures import (Executor, Future, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.vision.batch import BatchObjectMatcher, CandidateMatrixCache
from repro.vision.features import Frame, ObjectModel
from repro.vision.matcher import MatchOutcome, ObjectMatcher

POOL_KINDS = ("thread", "process")
POOL_ENGINES = ("batch", "reference")


def build_pool_matcher(engine: str, seed: int, index: int,
                       cache: Optional[CandidateMatrixCache] = None,
                       **matcher_kwargs) -> ObjectMatcher:
    """The matcher a pool uses for job ``index`` (also usable serially
    to reproduce pool results)."""
    rng = np.random.default_rng([seed, index])
    if engine == "reference":
        return ObjectMatcher(rng=rng, **matcher_kwargs)
    if engine == "batch":
        return BatchObjectMatcher(rng=rng, cache=cache, **matcher_kwargs)
    raise ValueError(f"unknown pool engine {engine!r}; "
                     f"expected one of {POOL_ENGINES}")


def _process_job(engine: str, seed: int, index: int, matcher_kwargs: dict,
                 frame: Frame, models: list[ObjectModel]
                 ) -> Optional[MatchOutcome]:
    # module-level so process pools can pickle it; each worker job
    # builds its own (private) candidate cache
    matcher = build_pool_matcher(engine, seed, index, **matcher_kwargs)
    return matcher.match_frame(frame, models)


class MatcherPool:
    """Deterministic parallel matching of many frames.

    ``kind="thread"`` shares one thread-safe
    :class:`~repro.vision.batch.CandidateMatrixCache` across all jobs;
    ``kind="process"`` gives each job a private cache (stacks are not
    shared across address spaces).
    """

    def __init__(self, workers: Optional[int] = None, kind: str = "thread",
                 engine: str = "batch", seed: int = 1234,
                 cache: Optional[CandidateMatrixCache] = None,
                 **matcher_kwargs) -> None:
        if kind not in POOL_KINDS:
            raise ValueError(f"unknown pool kind {kind!r}; "
                             f"expected one of {POOL_KINDS}")
        if engine not in POOL_ENGINES:
            raise ValueError(f"unknown pool engine {engine!r}; "
                             f"expected one of {POOL_ENGINES}")
        self.workers = workers
        self.kind = kind
        self.engine = engine
        self.seed = seed
        self.matcher_kwargs = matcher_kwargs
        if kind == "thread" and engine == "batch" and cache is None:
            cache = CandidateMatrixCache()
        self.cache = cache
        self._executor: Optional[Executor] = None
        self._inflight: set[Future] = set()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        if self._closed:
            raise RuntimeError("MatcherPool is closed")
        if self._executor is None:
            factory = (ThreadPoolExecutor if self.kind == "thread"
                       else ProcessPoolExecutor)
            self._executor = factory(max_workers=self.workers)
        return self._executor

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def inflight(self) -> int:
        """Jobs submitted but not yet finished."""
        return sum(1 for f in self._inflight if not f.done())

    def drain(self) -> int:
        """Block until every in-flight match completes; return how many
        were waited on.

        The pool stays usable afterwards -- ``drain()`` is the graceful
        half of teardown (and what an autoscaler calls before retiring
        a worker pool), ``close()`` the terminal half.
        """
        pending = [f for f in self._inflight if not f.done()]
        if pending:
            wait(pending)
        self._inflight.clear()
        return len(pending)

    def close(self) -> None:
        """Complete in-flight matches, then tear the executor down.

        Idempotent.  After ``close()`` the pool rejects new work; every
        worker thread/process is joined before this returns, so no
        worker survives pool shutdown.
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self.drain()
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "MatcherPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- matching ----------------------------------------------------------

    def _thread_job(self, index: int, frame: Frame,
                    models: list[ObjectModel]) -> Optional[MatchOutcome]:
        matcher = build_pool_matcher(self.engine, self.seed, index,
                                     cache=self.cache,
                                     **self.matcher_kwargs)
        return matcher.match_frame(frame, models)

    def submit(self, index: int, frame: Frame,
               models: Sequence[ObjectModel]) -> Future:
        """Submit one match job asynchronously; returns its future.

        ``index`` selects the deterministic per-job matcher seed
        ``[seed, index]`` exactly as :meth:`match_frames` does, so an
        asynchronous caller that numbers its jobs reproduces a serial
        run.  The future is tracked until done: :meth:`drain` waits on
        it, :meth:`close` completes it before teardown.
        """
        executor = self._ensure_executor()
        models = list(models)
        if self.kind == "thread":
            future = executor.submit(self._thread_job, index, frame, models)
        else:
            future = executor.submit(_process_job, self.engine, self.seed,
                                     index, self.matcher_kwargs, frame,
                                     models)
        self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        return future

    def match_frames(self, jobs: Iterable[
            tuple[Frame, Sequence[ObjectModel]]]
            ) -> list[Optional[MatchOutcome]]:
        """Match each (frame, candidates) job; results in job order."""
        prepared = [(frame, list(models)) for frame, models in jobs]
        if not prepared:
            return []
        executor = self._ensure_executor()
        if self.kind == "thread":
            futures = [executor.submit(self._thread_job, i, frame, models)
                       for i, (frame, models) in enumerate(prepared)]
        else:
            futures = [executor.submit(_process_job, self.engine, self.seed,
                                       i, self.matcher_kwargs, frame, models)
                       for i, (frame, models) in enumerate(prepared)]
        self._inflight.update(futures)
        try:
            return [future.result() for future in futures]
        finally:
            self._inflight.difference_update(futures)
