"""Batched object matching: one GEMM per frame over a stacked candidate set.

The reference :class:`~repro.vision.matcher.ObjectMatcher` loops over
candidates in Python, re-running a small descriptor GEMM per
frame/object pair and filtering with Python lists and sets.  That is
the dominant real wall-clock cost of the benchmark suite, and it is
exactly the loop the paper's evaluation hammers: the whole-floor Naive
scheme matches every frame against all 105 objects (Figures 11-13).

This module restructures the pipeline around a certified screen:

* all candidate descriptors are stacked into one ``(R_total, d)``
  matrix with per-object segment offsets, plus a float32 copy carrying
  an extra all-ones column, so each frame costs **one** float32 GEMM
  producing the *biased* similarities ``dot + 1 >= 0`` against the
  whole candidate set;
* because the biased similarities are non-negative, their IEEE-754
  bit patterns order like integers, and segment-wise max reductions
  run on an ``int32`` view (measurably faster than float reductions);
  two half-segment maxima give the best similarity and a lower bound
  on the second best per (query, object) lane;
* lanes whose ratio test provably fails under a rigorous float32
  error bound (the overwhelming majority) are rejected wholesale; the
  surviving lanes get an exact float32 2-NN from gathered rows, and
  only candidates that pass the forward gate -- or sit within the
  error margin of it -- are recomputed with the reference matcher's
  own float64 per-candidate arithmetic on the stacked slices;
* all RANSAC iterations for the surviving pairs run as one broadcasted
  distance computation per surviving object, drawing the translation
  hypotheses in a single ``rng.integers(n, size=iterations)`` call
  that consumes the *same* random stream as the reference matcher's
  per-iteration draws.

A :class:`CandidateMatrixCache` (LRU, keyed by the sorted tuple of
object names) lets repeated search spaces -- Naive reuses the same
whole-floor set every frame; ACACIA sub-section sets repeat per
checkpoint -- reuse their stacked matrix instead of re-concatenating.

:class:`BatchObjectMatcher` is decision-equivalent to the reference
matcher: for a shared RNG seed it produces the same accepted object and
the same good/symmetric/inlier counts (enforced by the differential
tests in ``tests/test_vision_batch.py``).  The screen only ever
*rejects* lanes whose ratio test fails by more than the certified
error bound; every decision that could be affected by float32 rounding
is re-derived in float64 by the reference code path itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.vision.features import Frame, ObjectModel
from repro.vision.matcher import MatchOutcome, ObjectMatcher

#: Sentinel for padded (out-of-segment) columns of the biased
#: similarity matrix.  Biased similarities are ``dot + 1 in [0, 2]``;
#: -1 is strictly below every real value, so padding never wins a max.
_PAD_SENTINEL = np.float32(-1.0)

_INT32_MIN = np.int32(np.iinfo(np.int32).min)


@dataclass(frozen=True)
class CandidateStack:
    """An immutable stacked view of one candidate set.

    Objects are stacked in sorted-name order (the canonical order), so
    any permutation of the same candidate set maps onto the same stack
    and therefore the same cache entry.  Callers translate between
    canonical positions and their own candidate order via :attr:`index`.
    """

    names: tuple[str, ...]              # canonical (sorted) order
    descriptors: np.ndarray             # (R_total, d) float64, C-contiguous
    screen_desc: np.ndarray             # (d + 1, R_total) float32, already
                                        # transposed for an NN GEMM, with a
                                        # trailing all-ones row so
                                        # ``frame32 @ screen_desc`` yields
                                        # the biased similarities dot + 1
    keypoints: tuple[np.ndarray, ...]   # per object, canonical order
    starts: np.ndarray                  # (n_obj,) segment start offsets
    sizes: np.ndarray                   # (n_obj,) descriptor counts
    pad_gather: np.ndarray              # (n_obj, max_r) column gather into
                                        # the biased similarity matrix
                                        # extended by one sentinel column
                                        # at index R_total
    index: dict[str, int]               # name -> canonical position
    uniform: bool                       # all segments the same size
    lone_mask: np.ndarray               # (n_obj,) True where size < 2

    @property
    def total_descriptors(self) -> int:
        return self.descriptors.shape[0]

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the cached arrays."""
        return int(self.descriptors.nbytes + self.screen_desc.nbytes
                   + self.pad_gather.nbytes + self.starts.nbytes
                   + self.sizes.nbytes)

    @classmethod
    def build(cls, models: Sequence[ObjectModel]) -> "CandidateStack":
        ordered = sorted(models, key=lambda m: m.name)
        names = tuple(m.name for m in ordered)
        if len(set(names)) != len(names):
            raise ValueError("candidate set contains duplicate object names")
        sizes = np.array([m.descriptors.shape[0] for m in ordered],
                         dtype=np.intp)
        starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.intp)
        total = int(sizes.sum())
        if total:
            descriptors = np.ascontiguousarray(
                np.concatenate([m.descriptors for m in ordered], axis=0),
                dtype=np.float64)
        else:
            descriptors = np.zeros((0, 64), dtype=np.float64)
        dim = descriptors.shape[1]
        screen_desc = np.empty((dim + 1, total), dtype=np.float32)
        screen_desc[:dim] = descriptors.T
        screen_desc[dim] = 1.0
        max_r = int(sizes.max()) if len(sizes) else 0
        # padding targets the sentinel column appended at index `total`
        pad_gather = np.full((len(ordered), max(max_r, 1)), total,
                             dtype=np.intp)
        for k, (start, size) in enumerate(zip(starts, sizes)):
            pad_gather[k, :size] = np.arange(start, start + size)
        keypoints = tuple(np.ascontiguousarray(m.keypoints, dtype=np.float64)
                          for m in ordered)
        uniform = bool(len(sizes)) and int(sizes.min()) == max_r
        return cls(names=names, descriptors=descriptors,
                   screen_desc=screen_desc, keypoints=keypoints,
                   starts=starts, sizes=sizes, pad_gather=pad_gather,
                   index={name: k for k, name in enumerate(names)},
                   uniform=uniform, lone_mask=sizes < 2)


class CandidateMatrixCache:
    """LRU cache of :class:`CandidateStack` keyed by sorted object names.

    Entries are keyed by name only: object models are assumed immutable
    for the lifetime of a database, which holds for
    :class:`~repro.vision.database.ObjectDatabase` records.  The cache
    is thread-safe so one instance can back a
    :class:`~repro.vision.pool.MatcherPool`.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._stacks: "OrderedDict[tuple[str, ...], CandidateStack]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(models: Sequence[ObjectModel]) -> tuple[str, ...]:
        return tuple(sorted(m.name for m in models))

    def touch(self, key: tuple[str, ...]) -> Optional[CandidateStack]:
        """Look up an already-canonical key, refreshing LRU recency.

        Used by the matcher's candidate-list memo so repeat lookups
        still count as cache hits without re-sorting the name list.
        """
        with self._lock:
            stack = self._stacks.get(key)
            if stack is not None:
                self.hits += 1
                self._stacks.move_to_end(key)
            return stack

    def get_or_build(self, models: Sequence[ObjectModel]) -> CandidateStack:
        key = self.key_for(models)
        with self._lock:
            stack = self._stacks.get(key)
            if stack is not None:
                self.hits += 1
                self._stacks.move_to_end(key)
                return stack
            self.misses += 1
        stack = CandidateStack.build(models)    # build outside the lock
        with self._lock:
            self._stacks[key] = stack
            self._stacks.move_to_end(key)
            while len(self._stacks) > self.capacity:
                self._stacks.popitem(last=False)
                self.evictions += 1
        return stack

    def __len__(self) -> int:
        return len(self._stacks)

    def __contains__(self, key: tuple[str, ...]) -> bool:
        return key in self._stacks

    def clear(self) -> None:
        with self._lock:
            self._stacks.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size and bytes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._stacks),
                "bytes": sum(s.nbytes for s in self._stacks.values()),
            }


#: When to engage the float32 screen (see :class:`BatchObjectMatcher`).
SCREEN_MODES = ("auto", "always", "never")


class BatchObjectMatcher(ObjectMatcher):
    """Vectorized matcher, decision-equivalent to the reference.

    Runs the same four verification stages as
    :class:`~repro.vision.matcher.ObjectMatcher` but batched across the
    whole candidate set: one float32 GEMM per frame screens out the
    lanes whose ratio test provably fails, and only gate-passing (or
    borderline) candidates are finished with the reference per-object
    float64 arithmetic.  For a shared RNG seed it reproduces the
    reference decisions exactly (same accepted object, same
    good/symmetric/inlier counts and stages).

    ``screen`` selects when the float32 screen engages: ``"auto"``
    (default) uses it for candidate sets large enough to amortise the
    setup, ``"always"`` forces it (useful in tests), ``"never"``
    disables it, leaving the stacked exact per-candidate loop.

    Instances are not safe for concurrent use (the RNG stream and the
    reused GEMM buffers are per-instance state); a
    :class:`~repro.vision.pool.MatcherPool` gives each worker its own
    matcher.
    """

    #: Below these sizes the screen's fixed costs outweigh the GEMM win
    #: (location-pruned ACACIA search spaces are often this small).
    SCREEN_MIN_DESCRIPTORS = 512
    SCREEN_MIN_QUERIES = 4

    #: Certified bound on ``|float32 biased similarity - exact|``.  The
    #: worst case for 65-term float32 dot products of unit-norm inputs
    #: is ~1e-5 (n*u*sum|x_i y_i| with u = 2^-24); 5e-5 leaves a 5x
    #: safety factor.  Only *rejections* ride on this bound alone; any
    #: lane within ``(1 + ratio) * epsilon`` of the ratio threshold is
    #: re-derived in float64.
    SCREEN_EPSILON = 5e-5

    def __init__(self, ratio_threshold: float = 0.75,
                 ransac_iterations: int = 50,
                 ransac_inlier_radius: float = 3.0,
                 min_inliers: int = 8,
                 rng: Optional[np.random.Generator] = None,
                 cache: Optional[CandidateMatrixCache] = None,
                 screen: str = "auto") -> None:
        super().__init__(ratio_threshold=ratio_threshold,
                         ransac_iterations=ransac_iterations,
                         ransac_inlier_radius=ransac_inlier_radius,
                         min_inliers=min_inliers, rng=rng)
        if screen not in SCREEN_MODES:
            raise ValueError(f"unknown screen mode {screen!r}; "
                             f"expected one of {SCREEN_MODES}")
        self.cache = cache if cache is not None else CandidateMatrixCache()
        self.screen = screen
        self._sim_buffers: dict[tuple[int, int], np.ndarray] = {}
        self._frame_buffers: dict[tuple[int, int], np.ndarray] = {}
        self._aranges: dict[int, np.ndarray] = {}
        # candidate-list memo: caller-order name tuple -> (canonical
        # cache key, caller-order canonical positions).  Skips the
        # per-call sort + per-model dict lookups for repeated lists.
        self._lookup_memo: "OrderedDict[tuple[str, ...], tuple[tuple[str, ...], np.ndarray]]" = OrderedDict()

    _LOOKUP_MEMO_CAPACITY = 128

    def _resolve(self, models: Sequence[ObjectModel]
                 ) -> tuple[CandidateStack, tuple[str, ...], np.ndarray]:
        """Stack + caller-order canonical positions for a candidate list."""
        names = tuple(m.name for m in models)
        memo = self._lookup_memo
        entry = memo.get(names)
        if entry is not None:
            sorted_key, positions = entry
            stack = self.cache.touch(sorted_key)
            if stack is None:                   # evicted meanwhile
                stack = self.cache.get_or_build(models)
            memo.move_to_end(names)
            return stack, names, positions
        stack = self.cache.get_or_build(models)
        index = stack.index
        positions = np.fromiter((index[name] for name in names),
                                dtype=np.intp, count=len(names))
        memo[names] = (stack.names, positions)
        while len(memo) > self._LOOKUP_MEMO_CAPACITY:
            memo.popitem(last=False)
        return stack, names, positions

    # -- vectorized stages -------------------------------------------------

    def _ransac_offsets(self, offsets: np.ndarray) -> int:
        """All RANSAC iterations in one broadcasted computation.

        Draws the hypothesis indices with one ``integers(n, size=k)``
        call, which consumes the identical PCG64 stream as ``k``
        sequential ``integers(n)`` draws in the reference loop.
        """
        n = offsets.shape[0]
        if n < 2:
            return 0
        picks = self.rng.integers(n, size=self.ransac_iterations)
        hypotheses = offsets[picks]                       # (iters, 2)
        # inlined ||offsets - hypothesis||: same multiply/pairwise-add/
        # sqrt sequence as np.linalg.norm(..., axis=2), so bit-identical
        # to the reference loop, without the linalg wrapper overhead
        dx = offsets[:, 0] - hypotheses[:, 0, None]       # (iters, n)
        dy = offsets[:, 1] - hypotheses[:, 1, None]
        errors = np.sqrt(dx * dx + dy * dy)
        inlier_counts = (errors < self.ransac_inlier_radius).sum(axis=1)
        return int(inlier_counts.max())

    def _ransac_translation(self, frame_kp: np.ndarray,
                            object_kp: np.ndarray,
                            pairs: list[tuple[int, int]]) -> int:
        """Broadcasted drop-in for the reference's per-iteration loop.

        Same inlier counts, same RNG stream consumption, so
        :meth:`~repro.vision.matcher.ObjectMatcher._match_arrays` stays
        decision-equivalent when run by this engine.
        """
        if len(pairs) < 2:
            return 0
        pair_idx = np.asarray(pairs, dtype=np.intp)
        offsets = frame_kp[pair_idx[:, 0]] - object_kp[pair_idx[:, 1]]
        return self._ransac_offsets(offsets)

    def _arange(self, n: int) -> np.ndarray:
        """Cached ``np.arange(n)`` for the small per-candidate shapes."""
        cached = self._aranges.get(n)
        if cached is None:
            if len(self._aranges) >= 32:
                self._aranges.clear()
            cached = np.arange(n)
            self._aranges[n] = cached
        return cached

    def _screen_buffer(self, q: int, total: int) -> np.ndarray:
        """Reused float32 GEMM output buffer keyed by problem shape."""
        key = (q, total)
        buf = self._sim_buffers.get(key)
        if buf is None:
            if len(self._sim_buffers) >= 16:
                self._sim_buffers.clear()
            buf = np.empty((q, total), dtype=np.float32)
            self._sim_buffers[key] = buf
        return buf

    def _screen_rows(self, queries: np.ndarray, stack: CandidateStack
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Certified float32 screen over a stacked block of query rows.

        ``queries`` is a ``(Q, d)`` float64 block holding one or
        several frames' descriptors.  Returns ``(rows, segs, margin)``
        for the lanes that survive certified rejection: their
        exact-float32 forward ratio-test margin is negative iff the
        lane passes.  Lanes absent from the output are *certified*
        ratio-test failures under :attr:`SCREEN_EPSILON`.
        """
        q, dim = queries.shape
        n = len(stack.names)
        total = stack.total_descriptors

        fkey = (q, dim + 1)
        frame32 = self._frame_buffers.get(fkey)
        if frame32 is None:
            if len(self._frame_buffers) >= 16:
                self._frame_buffers.clear()
            frame32 = np.empty(fkey, dtype=np.float32)
            self._frame_buffers[fkey] = frame32
        frame32[:, :dim] = queries
        frame32[:, dim] = 1.0
        sim = self._screen_buffer(q, total)
        np.matmul(frame32, stack.screen_desc, out=sim)  # biased: dot + 1

        if stack.uniform:
            padded = sim.reshape(q, n, -1)
        else:
            ext = np.concatenate(
                [sim, np.full((q, 1), _PAD_SENTINEL)], axis=1)
            padded = np.ascontiguousarray(ext[:, stack.pad_gather])
        r = padded.shape[2]

        # Segment max + a lower bound on the second max, per lane, via
        # int32-ordered reductions (biased similarities are >= 0, so
        # IEEE bit patterns order like integers; int32 max reductions
        # are the fastest exact reduction this shape admits).  The two
        # elements of each lane's half-split are an upper/lower pair:
        # the larger is the exact segment max, the smaller is a true
        # element outside the argmax position, hence <= the second max.
        bits = padded.view(np.int32)
        half = max(r // 2, 1)
        if r == 2 * half:
            pair = bits.reshape(q, n, 2, half).max(axis=3)
            first, second = pair[..., 0], pair[..., 1]
        else:
            first = bits[:, :, :half].max(axis=2)
            second = bits[:, :, half:].max(axis=2)
        s1 = np.maximum(first, second).view(np.float32).astype(np.float64)
        lo = np.minimum(first, second).view(np.float32).astype(np.float64)

        # Certified rejection: true d1 >= ratio * d2 whenever the
        # float32 evidence clears the error bound.  d = 2 - biased.
        eps = self.SCREEN_EPSILON
        d1_lb = (2.0 - s1) - eps
        d2_ub = (2.0 - lo) + eps
        certified_fail = d1_lb >= self.ratio_threshold * d2_ub
        certified_fail[:, stack.lone_mask] = True   # lone-candidate policy

        rows, segs = np.nonzero(~certified_fail)
        if not rows.size:
            return rows, segs, np.empty(0, dtype=np.float64)
        # Exact float32 2-NN for the surviving lanes only (float64
        # copies: float64 argmax is the fast path in this numpy build,
        # and float32 values are exactly representable in float64).
        sub = padded[rows, segs].astype(np.float64)      # (m, r) copies
        lane = self._arange(rows.size)
        b1 = sub.argmax(axis=1)
        v1 = sub[lane, b1].copy()
        sub[lane, b1] = -1.0
        v2 = sub.max(axis=1)
        margin = (2.0 - v1) - self.ratio_threshold * (2.0 - v2)
        return rows, segs, margin

    def _screen_stack(self, frame: Frame, stack: CandidateStack
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Certified float32 screen of one frame, per-candidate verdicts.

        Returns ``(good_counts, needs_exact)`` per canonical candidate:
        ``good_counts[k]`` is the exact forward ratio-test match count
        for every candidate with ``needs_exact[k]`` False; candidates
        flagged ``needs_exact`` (forward gate passed, or any lane
        within the certified error margin) must be recomputed with the
        float64 reference arithmetic.
        """
        n = len(stack.names)
        rows, segs, margin = self._screen_rows(frame.descriptors, stack)
        uncertain_seg = np.zeros(n, dtype=bool)
        if rows.size:
            good_counts = np.bincount(segs[margin < 0.0], minlength=n)
            tau = (1.0 + self.ratio_threshold) * self.SCREEN_EPSILON
            unsure = np.abs(margin) < tau
            if unsure.any():
                uncertain_seg[segs[unsure]] = True
        else:
            good_counts = np.zeros(n, dtype=np.intp)
        needs_exact = (good_counts >= self.min_inliers) | uncertain_seg
        return good_counts, needs_exact

    def _finish_candidate(self, frame: Frame, stack: CandidateStack,
                          position: int, name: str) -> MatchOutcome:
        """Float64 pipeline for one candidate's stacked slice.

        Decision-equivalent vectorization of
        :meth:`~repro.vision.matcher.ObjectMatcher._match_arrays`: one
        small GEMM serves both match directions, and the 2-NN comes
        from argmin + masked-min instead of argpartition, with the
        reference's exact comparison arithmetic (``d1 < ratio * d2`` on
        ``d = 1 - similarity``).
        """
        start = int(stack.starts[position])
        size = int(stack.sizes[position])
        refs = stack.descriptors[start:start + size]
        outcome = MatchOutcome(object_name=name)
        q = frame.descriptors.shape[0]
        if q == 0 or size < 2:     # lone-candidate policy: reject
            return outcome

        distance = 1.0 - frame.descriptors @ refs.T            # (q, r)
        rows = self._arange(q)
        best_f = distance.argmin(axis=1)
        d1 = distance[rows, best_f].copy()
        distance[rows, best_f] = np.inf
        d2 = distance.min(axis=1)
        distance[rows, best_f] = d1
        keep_f = d1 < self.ratio_threshold * d2
        outcome.good_matches = int(keep_f.sum())
        if outcome.good_matches < self.min_inliers:
            return outcome

        outcome.stage_reached = "symmetry"
        if q < 2:                  # backward 2-NN needs two queries
            return outcome
        cols = self._arange(size)
        best_b = distance.argmin(axis=0)
        b1 = distance[best_b, cols].copy()
        distance[best_b, cols] = np.inf
        b2 = distance.min(axis=0)
        distance[best_b, cols] = b1
        keep_b = b1 < self.ratio_threshold * b2

        forward_rows = np.flatnonzero(keep_f)
        forward_cols = best_f[forward_rows]
        mutual = keep_b[forward_cols] & (best_b[forward_cols] == forward_rows)
        sym_rows = forward_rows[mutual]
        sym_cols = forward_cols[mutual]
        outcome.symmetric_matches = int(sym_rows.size)
        if outcome.symmetric_matches < self.min_inliers:
            return outcome

        outcome.stage_reached = "ransac"
        offsets = (frame.keypoints[sym_rows]
                   - stack.keypoints[position][sym_cols])
        outcome.inliers = self._ransac_offsets(offsets)
        if outcome.inliers >= self.min_inliers:
            outcome.accepted = True
            outcome.stage_reached = "accept"
        return outcome

    def _use_screen(self, frame: Frame, stack: CandidateStack) -> bool:
        if self.screen == "never":
            return False
        if self.screen == "always":
            return True
        return (stack.total_descriptors >= self.SCREEN_MIN_DESCRIPTORS
                and frame.descriptors.shape[0] >= self.SCREEN_MIN_QUERIES)

    def _scan_stack(self, frame: Frame, stack: CandidateStack,
                    names: tuple[str, ...], positions: np.ndarray,
                    want_all: bool = True):
        """Yield per-candidate results in caller order.

        Caller order fixes both the RANSAC RNG consumption order and
        the tie-break order, matching the reference loop exactly.  With
        ``want_all=False`` (the :meth:`match_frame` fast path), only
        candidates surviving the screen are finished and yielded --
        screen-rejected candidates can never be accepted.
        """
        q = frame.descriptors.shape[0]
        total = stack.total_descriptors
        max_r = int(stack.sizes.max()) if len(stack.sizes) else 0
        if q == 0 or total == 0 or max_r < 2:
            # no queries, or every candidate falls under the
            # lone-candidate policy: nothing can match
            if want_all:
                for name in names:
                    yield MatchOutcome(object_name=name)
            return

        if not self._use_screen(frame, stack):
            for j, name in enumerate(names):
                yield self._finish_candidate(frame, stack,
                                             int(positions[j]), name)
            return

        good_counts, needs_exact = self._screen_stack(frame, stack)
        if want_all:
            for j, name in enumerate(names):
                k = int(positions[j])
                if needs_exact[k]:
                    yield self._finish_candidate(frame, stack, k, name)
                else:
                    yield MatchOutcome(object_name=name,
                                       good_matches=int(good_counts[k]))
        else:
            for j in np.flatnonzero(needs_exact[positions]):
                yield self._finish_candidate(frame, stack,
                                             int(positions[j]), names[j])

    # -- public API --------------------------------------------------------

    def match_all(self, frame: Frame, candidates: Iterable[ObjectModel]
                  ) -> list[MatchOutcome]:
        """Outcomes for every candidate, in candidate order."""
        models = list(candidates)
        if not models:
            return []
        stack, names, positions = self._resolve(models)
        return list(self._scan_stack(frame, stack, names, positions))

    def match_one(self, frame: Frame, obj: ObjectModel) -> MatchOutcome:
        """Run the full pipeline for one frame/object pair."""
        return self.match_all(frame, [obj])[0]

    def match_frame(self, frame: Frame, candidates: Iterable[ObjectModel]
                    ) -> Optional[MatchOutcome]:
        """Match against a candidate set; best accepted outcome or None."""
        models = list(candidates)
        if not models:
            return None
        stack, names, positions = self._resolve(models)
        best: Optional[MatchOutcome] = None
        for outcome in self._scan_stack(frame, stack, names, positions,
                                        want_all=False):
            if outcome.accepted and (best is None
                                     or outcome.inliers > best.inliers):
                best = outcome
        return best

    def match_frames(self, frames: Sequence[Frame],
                     candidates: Iterable[ObjectModel]
                     ) -> list[Optional[MatchOutcome]]:
        """Per-frame :meth:`match_frame` results for a block of frames.

        Equivalent to ``[self.match_frame(f, candidates) for f in
        frames]`` -- including RNG stream consumption order (frames are
        finished sequentially, candidates in caller order) -- but all
        frames share one screening GEMM and one segment reduction,
        which amortises the per-frame fixed costs.  This is the natural
        shape of the evaluation workloads, which capture several frames
        per checkpoint against the same candidate set.
        """
        frames = list(frames)
        models = list(candidates)
        if not frames:
            return []
        if not models:
            return [None] * len(frames)
        stack, names, positions = self._resolve(models)
        max_r = int(stack.sizes.max()) if len(stack.sizes) else 0
        counts = np.array([f.descriptors.shape[0] for f in frames],
                          dtype=np.intp)
        if (stack.total_descriptors == 0 or max_r < 2
                or int(counts.sum()) == 0
                or not self._use_screen(frames[int(counts.argmax())],
                                        stack)):
            return [self.match_frame(f, models) for f in frames]

        n = len(stack.names)
        n_frames = len(frames)
        row_starts = np.concatenate([[0], np.cumsum(counts)])
        block = np.concatenate([f.descriptors for f in frames], axis=0)
        rows, segs, margin = self._screen_rows(block, stack)

        needs_exact = np.zeros((n_frames, n), dtype=bool)
        if rows.size:
            frame_id = np.searchsorted(row_starts, rows, side="right") - 1
            flat = frame_id * n + segs
            good = np.bincount(flat[margin < 0.0],
                               minlength=n_frames * n).reshape(n_frames, n)
            needs_exact = good >= self.min_inliers
            tau = (1.0 + self.ratio_threshold) * self.SCREEN_EPSILON
            unsure = np.abs(margin) < tau
            if unsure.any():
                needs_exact[frame_id[unsure], segs[unsure]] = True

        results: list[Optional[MatchOutcome]] = []
        for fi, frame in enumerate(frames):
            best: Optional[MatchOutcome] = None
            if counts[fi]:
                for j in np.flatnonzero(needs_exact[fi][positions]):
                    outcome = self._finish_candidate(
                        frame, stack, int(positions[j]), names[j])
                    if outcome.accepted and (best is None or
                                             outcome.inliers > best.inliers):
                        best = outcome
            results.append(best)
        return results
