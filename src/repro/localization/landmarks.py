"""Landmark metadata: names, positions, per-landmark regressions.

The LTE-direct localisation manager "reads the metadata from a file:
the number, location and names of landmarks, and the model parameters
(alpha, beta)" (Section 6.3).  :class:`LandmarkMap` is that metadata,
with JSON persistence standing in for the paper's file format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.localization.pathloss import PathLossRegression


@dataclass(frozen=True)
class Landmark:
    """One publisher device at a known position."""

    name: str
    x: float
    y: float

    @property
    def position(self) -> tuple[float, float]:
        return (self.x, self.y)


class LandmarkMap:
    """Named landmarks plus the environment's path-loss model."""

    def __init__(self, landmarks: Optional[list[Landmark]] = None,
                 regression: Optional[PathLossRegression] = None) -> None:
        self._landmarks: dict[str, Landmark] = {}
        self.regression = regression
        for landmark in landmarks or []:
            self.add(landmark)

    def add(self, landmark: Landmark) -> None:
        if landmark.name in self._landmarks:
            raise ValueError(f"duplicate landmark {landmark.name!r}")
        self._landmarks[landmark.name] = landmark

    def get(self, name: str) -> Landmark:
        try:
            return self._landmarks[name]
        except KeyError:
            raise KeyError(f"unknown landmark {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._landmarks

    def __len__(self) -> int:
        return len(self._landmarks)

    def __iter__(self):
        return iter(self._landmarks.values())

    @property
    def names(self) -> list[str]:
        return list(self._landmarks)

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "landmarks": [
                {"name": lm.name, "x": lm.x, "y": lm.y}
                for lm in self._landmarks.values()
            ],
            "regression": (
                {"alpha": self.regression.alpha, "beta": self.regression.beta}
                if self.regression is not None else None),
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "LandmarkMap":
        payload = json.loads(text)
        landmarks = [Landmark(item["name"], item["x"], item["y"])
                     for item in payload["landmarks"]]
        regression = None
        if payload.get("regression"):
            regression = PathLossRegression(
                alpha=payload["regression"]["alpha"],
                beta=payload["regression"]["beta"])
        return cls(landmarks=landmarks, regression=regression)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "LandmarkMap":
        return cls.from_json(Path(path).read_text())
