"""LTE-direct indoor localisation: path-loss regression + trilateration.

Section 5.5 of the paper: a one-time linear regression maps rxPower to
distance for the environment; live rxPower observations from landmarks
are converted to distances and trilaterated into an (x, y) estimate,
accurate to ~3 m on average with seven landmarks (Figure 9(b)) -- plenty
for pruning an AR database at sub-section granularity.
"""

from repro.localization.landmarks import Landmark, LandmarkMap
from repro.localization.pathloss import PathLossRegression
from repro.localization.tracker import LocationTracker
from repro.localization.trilateration import (TrilaterationError,
                                              trilaterate)

__all__ = [
    "Landmark",
    "LandmarkMap",
    "LocationTracker",
    "PathLossRegression",
    "TrilaterationError",
    "trilaterate",
]
