"""Nonlinear least-squares trilateration.

Given landmark positions L_i and estimated ranges d_i, find x minimising
``sum_i (||x - L_i|| - d_i)^2``.  A linearised closed-form solution
seeds a Gauss-Newton refinement (the classic approach of Borenstein et
al., which the paper's trilateration solver implements).  Works with
two landmarks as well (degenerate but useful), returning the
least-squares point on the line between them.
"""

from __future__ import annotations

import numpy as np


class TrilaterationError(ValueError):
    """Raised when the input geometry cannot produce an estimate."""


def _linear_seed(anchors: np.ndarray, ranges: np.ndarray) -> np.ndarray:
    """Linearised estimate: subtract the first sphere equation."""
    x0, y0 = anchors[0]
    d0 = ranges[0]
    rows, rhs = [], []
    for (xi, yi), di in zip(anchors[1:], ranges[1:]):
        rows.append([2 * (xi - x0), 2 * (yi - y0)])
        rhs.append(d0 ** 2 - di ** 2 + xi ** 2 - x0 ** 2
                   + yi ** 2 - y0 ** 2)
    solution, *_ = np.linalg.lstsq(np.array(rows, dtype=float),
                                   np.array(rhs, dtype=float), rcond=None)
    return solution


def trilaterate(anchors, ranges, max_iterations: int = 50,
                tolerance: float = 1e-6,
                bounds: "Optional[tuple[tuple[float, float], tuple[float, float]]]" = None,
                ) -> tuple[float, float]:
    """Estimate a 2-D position from landmark positions and ranges.

    Parameters
    ----------
    anchors:
        Sequence of (x, y) landmark positions.
    ranges:
        Estimated distances to each landmark (same order).
    bounds:
        Optional ``((xmin, xmax), (ymin, ymax))`` prior (e.g. the store
        floor); iterates are clamped into it, which also prevents the
        refinement diverging under badly inconsistent ranges.

    The refinement tracks the best iterate by RMS range residual, so a
    diverging Gauss-Newton step can never make the answer worse than
    the linear seed.  Raises :class:`TrilaterationError` for fewer than
    two anchors, mismatched lengths, negative ranges or coincident
    anchors.
    """
    anchors = np.asarray(anchors, dtype=float)
    ranges = np.asarray(ranges, dtype=float)
    if anchors.ndim != 2 or anchors.shape[1] != 2:
        raise TrilaterationError("anchors must be (n, 2)")
    if anchors.shape[0] != ranges.shape[0]:
        raise TrilaterationError("anchors and ranges must align")
    if anchors.shape[0] < 2:
        raise TrilaterationError("need at least two landmarks")
    if np.any(ranges < 0):
        raise TrilaterationError("ranges must be non-negative")
    if np.allclose(anchors.std(axis=0), 0):
        raise TrilaterationError("anchors are coincident")

    if anchors.shape[0] == 2:
        estimate = _two_anchor_seed(anchors, ranges)
    else:
        estimate = _linear_seed(anchors, ranges)

    def clamp(point: np.ndarray) -> np.ndarray:
        if bounds is None:
            return point
        (xmin, xmax), (ymin, ymax) = bounds
        return np.array([np.clip(point[0], xmin, xmax),
                         np.clip(point[1], ymin, ymax)])

    def rms(point: np.ndarray) -> float:
        distances = np.linalg.norm(point - anchors, axis=1)
        return float(np.sqrt(np.mean((distances - ranges) ** 2)))

    estimate = clamp(estimate)
    best, best_rms = estimate, rms(estimate)

    # Gauss-Newton refinement of the nonlinear residuals
    for _ in range(max_iterations):
        deltas = estimate - anchors              # (n, 2)
        distances = np.linalg.norm(deltas, axis=1)
        distances = np.maximum(distances, 1e-9)
        residuals = distances - ranges
        jacobian = deltas / distances[:, None]
        try:
            step, *_ = np.linalg.lstsq(jacobian, residuals, rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate
            break
        estimate = clamp(estimate - step)
        current = rms(estimate)
        if current < best_rms:
            best, best_rms = estimate, current
        if np.linalg.norm(step) < tolerance:
            break
    return float(best[0]), float(best[1])


def _two_anchor_seed(anchors: np.ndarray, ranges: np.ndarray) -> np.ndarray:
    """With two anchors, place the point between them pro-rata."""
    a, b = anchors
    total = ranges.sum()
    if total == 0:
        return (a + b) / 2
    fraction = ranges[0] / total
    return a + fraction * (b - a)


def residual_error(anchors, ranges, estimate) -> float:
    """RMS range residual of an estimate (quality indicator)."""
    anchors = np.asarray(anchors, dtype=float)
    ranges = np.asarray(ranges, dtype=float)
    point = np.asarray(estimate, dtype=float)
    distances = np.linalg.norm(anchors - point, axis=1)
    return float(np.sqrt(np.mean((distances - ranges) ** 2)))
