"""Live location tracking from streamed rxPower observations.

The CI-server-side "LTE-direct localisation manager": aggregates the
latest rxPower per landmark (with a staleness window, since the user
moves), converts them to distances through the environment's path-loss
regression, and trilaterates whenever enough landmarks are fresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.localization.landmarks import LandmarkMap
from repro.localization.trilateration import TrilaterationError, trilaterate


@dataclass
class _Reading:
    rx_power: float
    timestamp: float


class LocationTracker:
    """Per-user location estimator.

    Successive readings from the same landmark are smoothed with an
    exponentially-weighted moving average (``ewma_alpha``): a user who
    stands still through 2-3 discovery periods gets a noticeably less
    noisy fix, which is what lets the AR back-end prune aggressively.
    A stale previous reading (older than ``staleness``) is discarded
    rather than averaged, since the user has likely moved.
    """

    def __init__(self, landmark_map: LandmarkMap,
                 staleness: float = 30.0,
                 min_landmarks: int = 3,
                 ewma_alpha: float = 0.5) -> None:
        if landmark_map.regression is None:
            raise ValueError("landmark map has no path-loss regression")
        if min_landmarks < 2:
            raise ValueError("trilateration needs at least two landmarks")
        if not (0 < ewma_alpha <= 1):
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.map = landmark_map
        self.staleness = staleness
        self.min_landmarks = min_landmarks
        self.ewma_alpha = ewma_alpha
        self._readings: dict[str, _Reading] = {}
        self.last_estimate: Optional[tuple[float, float]] = None
        self.estimates_made = 0

    def observe(self, landmark_name: str, rx_power: float,
                timestamp: float) -> None:
        """Record one rxPower reading from a named landmark."""
        if landmark_name not in self.map:
            raise KeyError(f"unknown landmark {landmark_name!r}")
        previous = self._readings.get(landmark_name)
        if previous is not None and \
                timestamp - previous.timestamp <= self.staleness:
            rx_power = (self.ewma_alpha * rx_power
                        + (1 - self.ewma_alpha) * previous.rx_power)
        self._readings[landmark_name] = _Reading(rx_power, timestamp)

    def fresh_readings(self, now: float) -> dict[str, _Reading]:
        return {name: reading for name, reading in self._readings.items()
                if now - reading.timestamp <= self.staleness}

    def estimate(self, now: float) -> Optional[tuple[float, float]]:
        """Trilaterate from fresh readings; None if not enough of them."""
        fresh = self.fresh_readings(now)
        if len(fresh) < self.min_landmarks:
            return None
        anchors, ranges = [], []
        for name, reading in fresh.items():
            landmark = self.map.get(name)
            anchors.append(landmark.position)
            ranges.append(self.map.regression.predict_distance(
                reading.rx_power))
        try:
            estimate = trilaterate(anchors, ranges)
        except TrilaterationError:
            return None
        self.last_estimate = estimate
        self.estimates_made += 1
        return estimate

    def strongest_landmarks(self, now: float, count: int = 2) -> list[str]:
        """Names of the freshest landmarks with highest rxPower.

        This is the paper's *rxPower* baseline scheme: prune the search
        space to the sections of the two loudest landmarks instead of
        trilaterating.
        """
        fresh = self.fresh_readings(now)
        ranked = sorted(fresh.items(), key=lambda kv: -kv[1].rx_power)
        return [name for name, _ in ranked[:count]]
