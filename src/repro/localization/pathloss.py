"""rxPower -> distance regression.

The paper fits a linear regression model for the path loss between a
user and a landmark, "a one-time overhead" per environment: collect
(distance, rxPower) calibration pairs, fit

    rxPower = alpha + beta * log10(distance)

and invert it at runtime to predict distance from live rxPower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PathLossRegression:
    """Fitted log-distance model: ``rx = alpha + beta * log10(d)``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.beta >= 0:
            raise ValueError(
                "beta must be negative: rxPower decreases with distance")

    @classmethod
    def fit(cls, distances: np.ndarray,
            rx_powers: np.ndarray) -> "PathLossRegression":
        """Least-squares fit from calibration pairs."""
        distances = np.asarray(distances, dtype=float)
        rx_powers = np.asarray(rx_powers, dtype=float)
        if distances.shape != rx_powers.shape or distances.size < 2:
            raise ValueError("need >= 2 matching calibration pairs")
        if np.any(distances <= 0):
            raise ValueError("distances must be positive")
        log_d = np.log10(distances)
        beta, alpha = np.polyfit(log_d, rx_powers, deg=1)
        return cls(alpha=float(alpha), beta=float(beta))

    def predict_rx_power(self, distance: float) -> float:
        if distance <= 0:
            raise ValueError("distance must be positive")
        return self.alpha + self.beta * np.log10(distance)

    def predict_distance(self, rx_power: float,
                         max_distance: float = 500.0) -> float:
        """Invert the model; clamps to a sane indoor range."""
        distance = 10 ** ((rx_power - self.alpha) / self.beta)
        return float(np.clip(distance, 0.01, max_distance))

    def residual_std(self, distances: np.ndarray,
                     rx_powers: np.ndarray) -> float:
        """Std-dev of fit residuals (dB) -- the shadowing estimate."""
        predicted = np.array([self.predict_rx_power(d) for d in distances])
        return float(np.std(np.asarray(rx_powers, dtype=float) - predicted))


def calibrate_from_radio(radio, rng: np.random.Generator,
                         distances: np.ndarray | None = None,
                         samples_per_point: int = 10) -> PathLossRegression:
    """Convenience: run the one-time calibration against a radio model.

    Emulates walking a reference device to known distances from a
    landmark and recording rxPower, the procedure the paper describes.
    """
    if distances is None:
        distances = np.array([1, 2, 3, 5, 8, 12, 18, 25, 35, 50],
                             dtype=float)
    ds, rxs = [], []
    for d in distances:
        for _ in range(samples_per_point):
            ds.append(d)
            rxs.append(radio.rx_power(d, rng))
    return PathLossRegression.fit(np.array(ds), np.array(rxs))
