"""Declarative fault injection for the simulated network.

The fault layer turns the ad-hoc ``link.set_up(False)`` style of
failure testing into a first-class subsystem: a :class:`FaultPlan` is
a declarative, seeded list of typed fault specs, and a
:class:`FaultInjector` arms and disarms them at scheduled simulation
times, publishing :class:`FaultInjected` / :class:`FaultCleared`
events on the hook bus so resilience machinery elsewhere (MRS
degradation, telemetry) can react.

Fault taxonomy:

* :class:`LinkDown` / :class:`LinkFlap` -- one-shot or intermittent
  outage of a named data-plane link;
* :class:`ChannelLoss` / :class:`ChannelDelaySpike` -- probabilistic
  drop / jitter on signalling channels (drawn from a named
  :class:`~repro.sim.context.SimContext` RNG stream);
* :class:`EntityCrash` / :class:`EntityRestart` -- a control-plane
  party (MME, SGW-C/PGW-C, SDN controller, ...) stops answering;
* :class:`McServerOutage` -- a MEC server's SGi link dies, triggering
  the MRS's graceful-degradation path.
"""

from repro.faults.events import FaultCleared, FaultInjected
from repro.faults.injector import FaultInjector
from repro.faults.plan import (FAULT_TYPES, ChannelDelaySpike, ChannelLoss,
                               EntityCrash, EntityRestart, FaultPlan,
                               FaultSpec, FaultSpecError, LinkDown, LinkFlap,
                               McServerOutage)

__all__ = [
    "ChannelDelaySpike",
    "ChannelLoss",
    "EntityCrash",
    "EntityRestart",
    "FAULT_TYPES",
    "FaultCleared",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "LinkDown",
    "LinkFlap",
    "McServerOutage",
]
