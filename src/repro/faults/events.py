"""Hook-bus events published by the fault injector.

Kept dependency-free so any layer (``core.mrs`` included) can
subscribe without pulling the injector machinery in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class FaultInjected:
    """A fault just became active.  ``spec`` is the originating
    :class:`~repro.faults.plan.FaultSpec`."""

    spec: Any
    time: float


@dataclass(frozen=True)
class FaultCleared:
    """A previously injected fault was disarmed / recovered."""

    spec: Any
    time: float
