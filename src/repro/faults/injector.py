"""Executes a :class:`~repro.faults.plan.FaultPlan` against a network.

The injector is pure scheduling: :meth:`FaultInjector.arm` translates
every spec into simulator events that flip the targeted link, channel
or party at the right times and publish
:class:`~repro.faults.events.FaultInjected` /
:class:`~repro.faults.events.FaultCleared` on the hook bus.  It never
blocks and holds no processes of its own, so arming is O(plan) and the
faults fire interleaved with whatever workload the experiment runs.

The injector only *uses* the network's public surface (``links``,
``fabric``, ``ctx``, ``hooks``); resilience to the injected faults
lives where it belongs -- retransmission in
:mod:`repro.epc.signalling`, degradation in :mod:`repro.core.mrs`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.epc.signalling import ChannelPerturbation
from repro.faults.events import FaultCleared, FaultInjected
from repro.faults.plan import (ChannelDelaySpike, ChannelLoss, EntityCrash,
                               EntityRestart, FaultPlan, FaultSpec, LinkDown,
                               LinkFlap, McServerOutage)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import MobileNetwork
    from repro.sim.link import Link


class FaultInjector:
    """Arms a fault plan on a built :class:`MobileNetwork`."""

    def __init__(self, network: "MobileNetwork", plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.armed = False
        self.injected = 0
        self.cleared = 0

    # -- plumbing ---------------------------------------------------------

    def _link(self, name: str) -> "Link":
        """Resolve a link by name: data-plane links first, then the
        signalling channels' underlying links (``sig.<channel>``)."""
        link = self.network.links.get(name)
        if link is not None:
            return link
        if name.startswith("sig."):
            channel = self.network.fabric.channels.get(name[len("sig."):])
            if channel is not None:
                return channel.link
        raise KeyError(f"no link named {name!r} in the network")

    def _emit(self, event_type, spec: FaultSpec) -> None:
        if event_type is FaultInjected:
            self.injected += 1
        else:
            self.cleared += 1
        self.network.hooks.emit(event_type(spec=spec,
                                           time=self.network.sim.now))

    def _at(self, time: float, fn, *args) -> None:
        self.network.sim.schedule_at(time, fn, *args)

    # -- arming -----------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every fault in the plan.  Call once, before (or
        while) the simulation runs; returns ``self`` for chaining."""
        if self.armed:
            raise RuntimeError("fault plan is already armed")
        self.armed = True
        for spec in self.plan:
            if isinstance(spec, LinkDown):
                self._arm_link_down(spec)
            elif isinstance(spec, LinkFlap):
                self._arm_link_flap(spec)
            elif isinstance(spec, (ChannelLoss, ChannelDelaySpike)):
                self._arm_perturbation(spec)
            elif isinstance(spec, EntityCrash):
                self._arm_crash(spec)
            elif isinstance(spec, EntityRestart):
                self._at(spec.at, self._restart, spec)
            elif isinstance(spec, McServerOutage):
                self._arm_outage(spec)
            else:  # pragma: no cover - plan validation prevents this
                raise TypeError(f"unknown fault spec {spec!r}")
        return self

    # -- link faults ------------------------------------------------------

    def _arm_link_down(self, spec: LinkDown) -> None:
        link = self._link(spec.link)     # resolve early: fail at arm time
        self._at(spec.at, self._set_link, link, False, spec, FaultInjected)
        if spec.duration is not None:
            self._at(spec.at + spec.duration,
                     self._set_link, link, True, spec, FaultCleared)

    def _arm_link_flap(self, spec: LinkFlap) -> None:
        link = self._link(spec.link)
        t = spec.at
        while t < spec.until:
            self._at(t, self._set_link, link, False, spec, FaultInjected)
            up_at = min(t + spec.period * spec.duty, spec.until)
            self._at(up_at, self._set_link, link, True, spec, FaultCleared)
            t += spec.period

    def _set_link(self, link: "Link", up: bool, spec: FaultSpec,
                  event_type) -> None:
        link.set_up(up)
        self._emit(event_type, spec)

    # -- signalling perturbations ----------------------------------------

    def _arm_perturbation(self, spec) -> None:
        if isinstance(spec, ChannelLoss):
            pert = ChannelPerturbation(kind="loss", rate=spec.rate,
                                       rng=self.network.ctx.rng(spec.stream))
        else:
            pert = ChannelPerturbation(kind="delay",
                                       probability=spec.probability,
                                       extra_delay=spec.extra_delay,
                                       rng=self.network.ctx.rng(spec.stream))
        self._at(spec.at, self._add_perturbation, spec, pert)
        if spec.until is not None:
            self._at(spec.until, self._remove_perturbation, spec, pert)

    def _add_perturbation(self, spec, pert: ChannelPerturbation) -> None:
        self.network.fabric.add_perturbation(spec.channel, pert)
        self._emit(FaultInjected, spec)

    def _remove_perturbation(self, spec, pert: ChannelPerturbation) -> None:
        self.network.fabric.remove_perturbation((spec.channel, pert))
        self._emit(FaultCleared, spec)

    # -- entity faults ----------------------------------------------------

    def _arm_crash(self, spec: EntityCrash) -> None:
        self._at(spec.at, self._crash, spec)
        if spec.duration is not None:
            self._at(spec.at + spec.duration, self._restart, spec)

    def _crash(self, spec: EntityCrash) -> None:
        self.network.fabric.set_party_down(spec.entity, True)
        self._emit(FaultInjected, spec)

    def _restart(self, spec) -> None:
        self.network.fabric.set_party_down(spec.entity, False)
        self._emit(FaultCleared, spec)

    # -- MEC server outage -------------------------------------------------

    def _arm_outage(self, spec: McServerOutage) -> None:
        link = self._link(f"sgi.{spec.server}")
        self._at(spec.at, self._outage, link, spec)
        if spec.duration is not None:
            self._at(spec.at + spec.duration, self._recover, link, spec)

    def _outage(self, link: "Link", spec: McServerOutage) -> None:
        link.set_up(False)
        self._emit(FaultInjected, spec)

    def _recover(self, link: "Link", spec: McServerOutage) -> None:
        link.set_up(True)
        self._emit(FaultCleared, spec)
