"""Typed, declarative fault specifications.

A :class:`FaultPlan` is an immutable list of fault specs validated at
construction; the :class:`~repro.faults.injector.FaultInjector`
executes it against a built network.  Specs carry *when* and *what*,
never simulator handles, so plans are cheap to construct inside
experiment workloads and trivially serialisable in spec params.

All probabilistic faults name the :class:`~repro.sim.context.
SimContext` RNG stream they draw from (``stream``), so a plan is
deterministic per seed regardless of what else the simulation does.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Optional


class FaultSpecError(ValueError):
    """A fault document failed to deserialise.

    ``path`` qualifies which entry/key is wrong
    (``"faults[2].duration"``), mirroring
    :class:`repro.core.config.ConfigError` so scenario documents report
    all deserialisation problems the same way.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


@dataclass(frozen=True, kw_only=True)
class FaultSpec:
    """Base class: every fault activates at sim time ``at``."""

    at: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"{type(self).__name__}.at must be >= 0")

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dict with a ``"type"`` discriminator.

        Every field is emitted explicitly (defaults included), so the
        document is self-describing and
        ``from_dict(to_dict(spec)) == spec`` for every fault type.
        """
        data: dict[str, Any] = {"type": FAULT_TYPE_NAMES[type(self)]}
        for f in dataclasses.fields(self):
            data[f.name] = getattr(self, f.name)
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any],
                  path: str = "") -> "FaultSpec":
        """Strictly deserialise one fault spec.

        ``data`` must carry a known ``"type"`` discriminator; unknown
        fields raise :class:`FaultSpecError` with the qualified path.
        """
        if not isinstance(data, Mapping):
            raise FaultSpecError(path, "expected an object, "
                                       f"got {type(data).__name__}")
        try:
            type_name = data["type"]
        except KeyError:
            raise FaultSpecError(path, 'missing the "type" discriminator; '
                                 f"expected one of {sorted(FAULT_TYPES)}"
                                 ) from None
        try:
            cls = FAULT_TYPES[type_name]
        except (KeyError, TypeError):
            raise FaultSpecError(
                f"{path}.type" if path else "type",
                f"unknown fault type {type_name!r}; expected one of "
                f"{sorted(FAULT_TYPES)}") from None
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - field_names - {"type"})
        if unknown:
            raise FaultSpecError(path, f"unknown key(s) {unknown} for "
                                 f"fault type {type_name!r}; valid keys: "
                                 f"{sorted(field_names)}")
        kwargs = {}
        for f in dataclasses.fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            # JSON authors write `3` for `3.0`: widen ints on float fields
            if (str(f.type) in ("float", "Optional[float]")
                    and isinstance(value, int)
                    and not isinstance(value, bool)):
                value = float(value)
            kwargs[f.name] = value
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise FaultSpecError(path, str(exc)) from None


@dataclass(frozen=True, kw_only=True)
class LinkDown(FaultSpec):
    """Take a named data-plane link down at ``at``.

    ``duration=None`` leaves it down for the rest of the run;
    otherwise it comes back up after ``duration`` seconds.
    """

    link: str
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration is not None and self.duration <= 0:
            raise ValueError("LinkDown.duration must be positive")


@dataclass(frozen=True, kw_only=True)
class LinkFlap(FaultSpec):
    """Intermittent outage: the link cycles down/up until ``until``.

    Each ``period`` starts with ``period * duty`` seconds of outage
    followed by ``period * (1 - duty)`` seconds up.
    """

    link: str
    period: float
    duty: float = 0.5
    until: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period <= 0:
            raise ValueError("LinkFlap.period must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("LinkFlap.duty must be in (0, 1)")
        if self.until <= self.at:
            raise ValueError("LinkFlap.until must be after .at")


@dataclass(frozen=True, kw_only=True)
class ChannelLoss(FaultSpec):
    """Probabilistic drop of signalling messages on matching channels.

    ``channel`` is an fnmatch glob over channel ids (``"*"`` = every
    channel, ``"rrc.*"`` = all air-interface channels).  Each delivery
    is dropped with probability ``rate``, drawn from the named RNG
    stream.  ``until=None`` keeps the loss for the rest of the run.
    """

    channel: str = "*"
    rate: float = 0.01
    until: Optional[float] = None
    stream: str = "faults.loss"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("ChannelLoss.rate must be in [0, 1]")
        if self.until is not None and self.until <= self.at:
            raise ValueError("ChannelLoss.until must be after .at")


@dataclass(frozen=True, kw_only=True)
class ChannelDelaySpike(FaultSpec):
    """Probabilistic extra delay on matching signalling channels.

    With probability ``probability`` a delivery is held back
    ``extra_delay`` seconds -- long enough spikes race the sender's
    retransmission timer, which is exactly the duplicate-suppression
    case the fabric handles.
    """

    channel: str = "*"
    probability: float = 0.01
    extra_delay: float = 0.05
    until: Optional[float] = None
    stream: str = "faults.delay"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                "ChannelDelaySpike.probability must be in [0, 1]")
        if self.extra_delay <= 0:
            raise ValueError("ChannelDelaySpike.extra_delay must be positive")
        if self.until is not None and self.until <= self.at:
            raise ValueError("ChannelDelaySpike.until must be after .at")


@dataclass(frozen=True, kw_only=True)
class EntityCrash(FaultSpec):
    """A control-plane party (MME, ``sgw-c``, ``pgw-c``, ``ryu``, an
    eNodeB, ...) crashes: messages addressed to it are dropped with
    reason ``"entity-down"`` until it restarts.

    ``duration=None`` means it stays down until an
    :class:`EntityRestart` (or forever).
    """

    entity: str
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration is not None and self.duration <= 0:
            raise ValueError("EntityCrash.duration must be positive")


@dataclass(frozen=True, kw_only=True)
class EntityRestart(FaultSpec):
    """Bring a crashed party back at ``at``."""

    entity: str


@dataclass(frozen=True, kw_only=True)
class McServerOutage(FaultSpec):
    """A MEC server dies: its SGi link goes down and the outage is
    announced on the bus so the MRS can degrade affected sessions
    (relocate to a surviving instance or fall back to the central
    path).  ``duration=None`` = no recovery.
    """

    server: str
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration is not None and self.duration <= 0:
            raise ValueError("McServerOutage.duration must be positive")


#: Document discriminator -> fault spec class.  Names are the snake_case
#: forms used by scenario documents (``docs/scenario.schema.json``).
FAULT_TYPES: dict[str, type] = {
    "link_down": LinkDown,
    "link_flap": LinkFlap,
    "channel_loss": ChannelLoss,
    "channel_delay_spike": ChannelDelaySpike,
    "entity_crash": EntityCrash,
    "entity_restart": EntityRestart,
    "mc_server_outage": McServerOutage,
}

FAULT_TYPE_NAMES: dict[type, str] = {
    cls: name for name, cls in FAULT_TYPES.items()}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated sequence of fault specs."""

    faults: tuple = ()

    def __post_init__(self) -> None:
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(
                    f"FaultPlan entries must be FaultSpec instances, "
                    f"got {spec!r}")

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, data, path: str = "") -> "FaultPlan":
        """Deserialise a plan from ``{"faults": [...]}`` or a bare list.

        Entry errors are qualified as ``<path>.faults[i]`` /
        ``<path>[i]`` so a bad fault inside a scenario document names
        its exact location.
        """
        if isinstance(data, Mapping):
            unknown = sorted(set(data) - {"faults"})
            if unknown:
                raise FaultSpecError(path, f"unknown key(s) {unknown}; "
                                     'a fault plan is {"faults": [...]}')
            entries = data.get("faults", [])
            path = f"{path}.faults" if path else "faults"
        else:
            entries = data
        if not isinstance(entries, (list, tuple)):
            raise FaultSpecError(path, "expected a list of fault specs, "
                                       f"got {type(entries).__name__}")
        return cls(faults=tuple(
            FaultSpec.from_dict(entry, path=f"{path}[{i}]")
            for i, entry in enumerate(entries)))
