"""eNodeB (LTE base station) data-plane model.

The eNodeB maps each radio bearer onto an S1 GTP-U tunnel.  Uplink
packets arrive bare from the UE (tagged with their EPS bearer identity
by the modem) and are GTP-encapsulated toward the serving SGW-U --
*which SGW-U* is bearer state installed by the MME during setup, and is
exactly the hook ACACIA uses to point MEC bearers at the local edge
gateways.  Downlink GTP packets are decapsulated and forwarded onto the
right UE's radio link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.epc.gtp import gtp_decapsulate, gtp_encapsulate, is_gtp
from repro.epc.identifiers import FTeid, TeidAllocator
from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link


@dataclass
class S1UplinkEntry:
    """Where uplink traffic of one bearer goes: SGW-U F-TEID + local port."""

    sgw_fteid: FTeid
    port: str


class ENodeB(Node):
    """Base station bridging radio bearers and S1 GTP tunnels."""

    def __init__(self, sim: "Simulator", name: str,
                 ip: Optional[str] = None) -> None:
        super().__init__(sim, name, ip)
        self.teids = TeidAllocator(start=0x100)
        #: (ue_ip, ebi) -> S1UplinkEntry
        self.ul_map: dict[tuple[str, int], S1UplinkEntry] = {}
        #: downlink TEID (allocated here) -> ue_ip
        self.dl_map: dict[int, str] = {}
        #: (ue_ip, ebi) -> downlink TEID, for precise release
        self.dl_by_bearer: dict[tuple[str, int], int] = {}
        #: ue_ip -> radio port name
        self.radio_ports: dict[str, str] = {}
        self.unrouted = 0
        #: control messages delivered to this eNodeB over the fabric
        self.messages_received = 0

    def handle_message(self, message) -> None:
        """Signalling-fabric delivery hook (S1-AP, RRC, X2-AP)."""
        self.messages_received += 1

    # -- configuration (driven by the MME during procedures) --------------

    def register_ue(self, ue_ip: str, port: str) -> None:
        self.radio_ports[ue_ip] = port

    def setup_bearer(self, ue_ip: str, ebi: int, sgw_fteid: FTeid,
                     port: str) -> FTeid:
        """Install both directions of a bearer's S1 mapping.

        Returns the eNB's downlink F-TEID, which the MME relays to the
        SGW-C so the SGW-U knows where to tunnel downlink traffic.
        """
        if ue_ip not in self.radio_ports:
            raise KeyError(f"UE {ue_ip} is not registered at {self.name}")
        self.ul_map[(ue_ip, ebi)] = S1UplinkEntry(sgw_fteid, port)
        dl_teid = self.teids.allocate()
        self.dl_map[dl_teid] = ue_ip
        self.dl_by_bearer[(ue_ip, ebi)] = dl_teid
        return FTeid(dl_teid, self.ip)

    def release_bearer(self, ue_ip: str, ebi: int) -> None:
        self.ul_map.pop((ue_ip, ebi), None)
        dl_teid = self.dl_by_bearer.pop((ue_ip, ebi), None)
        if dl_teid is not None:
            del self.dl_map[dl_teid]
            self.teids.release(dl_teid)

    # -- data path ----------------------------------------------------------

    def on_receive(self, packet: Packet, link: "Link") -> None:
        if is_gtp(packet):
            self._downlink(packet)
        else:
            self._uplink(packet)

    def _uplink(self, packet: Packet) -> None:
        ebi = packet.meta.get("ebi")
        entry = self.ul_map.get((packet.src, ebi)) if ebi is not None else None
        if entry is None:
            self.unrouted += 1
            return
        gtp_encapsulate(packet, entry.sgw_fteid.teid, self.ip,
                        entry.sgw_fteid.address)
        self.send(entry.port, packet)

    def _downlink(self, packet: Packet) -> None:
        packet, teid = gtp_decapsulate(packet)
        ue_ip = self.dl_map.get(teid)
        if ue_ip is None:
            self.unrouted += 1
            return
        port = self.radio_ports.get(ue_ip)
        if port is None:
            self.unrouted += 1
            return
        self.send(port, packet)
