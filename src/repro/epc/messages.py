"""Control-plane message definitions with calibrated wire sizes.

Section 4 of the paper measures a "release and re-establish" sequence in
an NFV/SDN LTE deployment at **15 messages / 2914 bytes**, broken down as
SCTP(S1AP) 7 messages (1138 B), GTPv2 4 (352 B) and OpenFlow 4 (1424 B).
The byte sizes below are calibrated so those exact totals fall out of the
procedure implementations in :mod:`repro.epc.procedures`; other messages
(dedicated-bearer activation, Diameter policy signalling) carry plausible
sizes taken from typical captures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_msg_seq = itertools.count(1)


@dataclass(frozen=True)
class MessageType:
    """A control message type: transport protocol, name and wire size."""

    protocol: str   # "SCTP" (S1AP over SCTP), "GTPv2", "OpenFlow", "Diameter", "RRC"
    name: str
    size: int       # bytes on the wire, including transport overhead


# --- S1AP over SCTP (MME <-> eNodeB) -- calibrated group: 7 msgs, 1138 B
UE_CONTEXT_RELEASE_REQUEST = MessageType("SCTP", "UEContextReleaseRequest", 118)
UE_CONTEXT_RELEASE_COMMAND = MessageType("SCTP", "UEContextReleaseCommand", 126)
UE_CONTEXT_RELEASE_COMPLETE = MessageType("SCTP", "UEContextReleaseComplete", 110)
INITIAL_UE_MESSAGE = MessageType("SCTP", "InitialUEMessage(ServiceRequest)", 172)
INITIAL_CONTEXT_SETUP_REQUEST = MessageType("SCTP", "InitialContextSetupRequest", 340)
INITIAL_CONTEXT_SETUP_RESPONSE = MessageType("SCTP", "InitialContextSetupResponse", 180)
UPLINK_NAS_TRANSPORT = MessageType("SCTP", "UplinkNASTransport(ServiceAccept)", 92)

# --- S1AP for attach / bearer management (not in the calibrated group)
S1_SETUP_REQUEST = MessageType("SCTP", "S1SetupRequest", 104)
S1_SETUP_RESPONSE = MessageType("SCTP", "S1SetupResponse", 88)
ATTACH_INITIAL_UE_MESSAGE = MessageType("SCTP", "InitialUEMessage(AttachRequest)", 244)
ATTACH_ACCEPT_DOWNLINK = MessageType("SCTP", "DownlinkNASTransport(AttachAccept)", 196)
ATTACH_COMPLETE_UPLINK = MessageType("SCTP", "UplinkNASTransport(AttachComplete)", 96)
ERAB_SETUP_REQUEST = MessageType("SCTP", "E-RABSetupRequest(BearerSetupRequest)", 248)
ERAB_SETUP_RESPONSE = MessageType("SCTP", "E-RABSetupResponse", 132)
ERAB_RELEASE_COMMAND = MessageType("SCTP", "E-RABReleaseCommand", 140)
ERAB_RELEASE_RESPONSE = MessageType("SCTP", "E-RABReleaseResponse", 112)

# --- GTPv2-C (MME <-> SGW-C <-> PGW-C) -- calibrated group: 4 msgs, 352 B
RELEASE_ACCESS_BEARERS_REQUEST = MessageType("GTPv2", "ReleaseAccessBearersRequest", 70)
RELEASE_ACCESS_BEARERS_RESPONSE = MessageType("GTPv2", "ReleaseAccessBearersResponse", 62)
MODIFY_BEARER_REQUEST = MessageType("GTPv2", "ModifyBearerRequest", 120)
MODIFY_BEARER_RESPONSE = MessageType("GTPv2", "ModifyBearerResponse", 100)

# --- GTPv2-C paging support
DOWNLINK_DATA_NOTIFICATION = MessageType("GTPv2",
                                         "DownlinkDataNotification", 70)
DOWNLINK_DATA_NOTIFICATION_ACK = MessageType(
    "GTPv2", "DownlinkDataNotificationAcknowledge", 62)

# --- GTPv2-C session / bearer management
CREATE_SESSION_REQUEST = MessageType("GTPv2", "CreateSessionRequest", 260)
CREATE_SESSION_RESPONSE = MessageType("GTPv2", "CreateSessionResponse", 220)
CREATE_BEARER_REQUEST = MessageType("GTPv2", "CreateBearerRequest", 156)
CREATE_BEARER_RESPONSE = MessageType("GTPv2", "CreateBearerResponse", 112)
DELETE_BEARER_REQUEST = MessageType("GTPv2", "DeleteBearerRequest", 84)
DELETE_BEARER_RESPONSE = MessageType("GTPv2", "DeleteBearerResponse", 76)

# --- OpenFlow (controller <-> GW-U) -- calibrated group: 4 msgs, 1424 B
FLOW_MOD_DELETE_SGWU = MessageType("OpenFlow", "FlowMod(delete,SGW-U)", 344)
FLOW_MOD_DELETE_PGWU = MessageType("OpenFlow", "FlowMod(delete,PGW-U)", 344)
FLOW_MOD_ADD_SGWU = MessageType("OpenFlow", "FlowMod(add,SGW-U)", 368)
FLOW_MOD_ADD_PGWU = MessageType("OpenFlow", "FlowMod(add,PGW-U)", 368)

# --- X2AP (eNodeB <-> eNodeB) and S1 path switch, for handover
X2_HANDOVER_REQUEST = MessageType("X2AP", "HandoverRequest", 184)
X2_HANDOVER_REQUEST_ACK = MessageType("X2AP", "HandoverRequestAcknowledge",
                                      148)
X2_SN_STATUS_TRANSFER = MessageType("X2AP", "SNStatusTransfer", 72)
X2_UE_CONTEXT_RELEASE = MessageType("X2AP", "UEContextRelease", 56)
PATH_SWITCH_REQUEST = MessageType("SCTP", "PathSwitchRequest", 172)
PATH_SWITCH_REQUEST_ACK = MessageType("SCTP",
                                      "PathSwitchRequestAcknowledge", 124)

# --- S1 handover (MME-coordinated, for eNBs without an X2 link)
HANDOVER_REQUIRED = MessageType("SCTP", "HandoverRequired", 196)
HANDOVER_REQUEST = MessageType("SCTP", "HandoverRequest", 228)
HANDOVER_REQUEST_ACK = MessageType("SCTP", "HandoverRequestAcknowledge",
                                   164)
HANDOVER_COMMAND = MessageType("SCTP", "HandoverCommand", 132)
HANDOVER_NOTIFY = MessageType("SCTP", "HandoverNotify", 88)

# --- Diameter (Rx: MRS/AF <-> PCRF; Gx: PCRF <-> PCEF/PGW-C)
AA_REQUEST = MessageType("Diameter", "AA-Request(Rx)", 412)
AA_ANSWER = MessageType("Diameter", "AA-Answer(Rx)", 220)
RE_AUTH_REQUEST = MessageType("Diameter", "Re-Auth-Request(Gx)", 388)
RE_AUTH_ANSWER = MessageType("Diameter", "Re-Auth-Answer(Gx)", 204)
SESSION_TERMINATION_REQUEST = MessageType("Diameter", "Session-Termination-Request(Rx)", 240)
SESSION_TERMINATION_ANSWER = MessageType("Diameter", "Session-Termination-Answer(Rx)", 180)

# --- RRC (eNodeB <-> UE, over the air)
RRC_CONNECTION_RECONFIGURATION = MessageType("RRC", "RRCConnectionReconfiguration", 164)
RRC_CONNECTION_RECONFIGURATION_COMPLETE = MessageType(
    "RRC", "RRCConnectionReconfigurationComplete", 44)
RRC_CONNECTION_RELEASE = MessageType("RRC", "RRCConnectionRelease", 52)
RRC_CONNECTION_REQUEST = MessageType("RRC", "RRCConnectionRequest", 48)
RRC_CONNECTION_SETUP = MessageType("RRC", "RRCConnectionSetup", 120)
RRC_CONNECTION_SETUP_COMPLETE = MessageType("RRC", "RRCConnectionSetupComplete", 84)


@dataclass
class ControlMessage:
    """A concrete control-message instance exchanged during a procedure."""

    mtype: MessageType
    sender: str
    receiver: str
    fields: dict = field(default_factory=dict)
    timestamp: float = 0.0
    seq: int = field(default_factory=lambda: next(_msg_seq))

    @property
    def protocol(self) -> str:
        return self.mtype.protocol

    @property
    def name(self) -> str:
        return self.mtype.name

    @property
    def size(self) -> int:
        return self.mtype.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{self.protocol}:{self.name} {self.sender}->"
                f"{self.receiver} {self.size}B>")


#: Message groups whose byte totals are calibrated to the paper's
#: measured release + re-establish sequence (Section 4).
RELEASE_SEQUENCE = [
    UE_CONTEXT_RELEASE_REQUEST, UE_CONTEXT_RELEASE_COMMAND,
    UE_CONTEXT_RELEASE_COMPLETE,
    RELEASE_ACCESS_BEARERS_REQUEST, RELEASE_ACCESS_BEARERS_RESPONSE,
    FLOW_MOD_DELETE_SGWU, FLOW_MOD_DELETE_PGWU,
]

REESTABLISH_SEQUENCE = [
    INITIAL_UE_MESSAGE, INITIAL_CONTEXT_SETUP_REQUEST,
    INITIAL_CONTEXT_SETUP_RESPONSE, UPLINK_NAS_TRANSPORT,
    MODIFY_BEARER_REQUEST, MODIFY_BEARER_RESPONSE,
    FLOW_MOD_ADD_SGWU, FLOW_MOD_ADD_PGWU,
]
