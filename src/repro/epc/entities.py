"""EPC control-plane entities: HSS, MME, PCRF/PCEF, split GW-Cs.

These are thin, testable state holders; the message choreography that
ties them together lives in :mod:`repro.epc.procedures`.  The split
gateway architecture (GW-C control entities programming GW-U switches
through the SDN controller) follows Section 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.epc.admission import Arp
from repro.epc.identifiers import IpPool, TeidAllocator
from repro.epc.qos import DEFAULT_BEARER_QCI, qos_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.enodeb import ENodeB
    from repro.epc.messages import ControlMessage
    from repro.epc.ue import UEDevice
    from repro.sdn.switch import FlowSwitch


class ControlEndpoint:
    """Mixin turning an entity into a signalling-fabric message handler.

    The control plane registers each entity's :meth:`handle_message`
    with the fabric, so every control message addressed to it is
    counted (and kept, most recent last) as it is *delivered* -- the
    per-entity view of signalling load under concurrent procedures.
    """

    def _init_endpoint(self) -> None:
        self.messages_received = 0
        self.last_message: Optional["ControlMessage"] = None

    def handle_message(self, message: "ControlMessage") -> None:
        self.messages_received += 1
        self.last_message = message


# --------------------------------------------------------------------------
# HSS
# --------------------------------------------------------------------------

@dataclass
class SubscriberProfile:
    """Subscription record stored in the HSS."""

    imsi: str
    apn: str = "internet"
    default_qci: int = DEFAULT_BEARER_QCI
    ambr_ul: float = 50e6       # aggregate maximum bit rate, bits/sec
    ambr_dl: float = 100e6


class HSS:
    """Home Subscriber Server: the subscription database."""

    def __init__(self) -> None:
        self._subscribers: dict[str, SubscriberProfile] = {}

    def provision(self, profile: SubscriberProfile) -> None:
        self._subscribers[profile.imsi] = profile

    def lookup(self, imsi: str) -> SubscriberProfile:
        try:
            return self._subscribers[imsi]
        except KeyError:
            raise KeyError(f"IMSI {imsi} is not provisioned") from None

    def __contains__(self, imsi: str) -> bool:
        return imsi in self._subscribers

    def __len__(self) -> int:
        return len(self._subscribers)


# --------------------------------------------------------------------------
# MME
# --------------------------------------------------------------------------

@dataclass
class UeContext:
    """MME-side state for one attached UE."""

    imsi: str
    ue: "UEDevice"
    enb: "ENodeB"
    state: str = "connected"        # "connected" | "idle"


class MME(ControlEndpoint):
    """Mobility Management Entity: tracks attached UEs and their state."""

    def __init__(self, name: str = "mme") -> None:
        self.name = name
        self.contexts: dict[str, UeContext] = {}
        self._init_endpoint()

    def register(self, context: UeContext) -> None:
        self.contexts[context.imsi] = context

    def deregister(self, imsi: str) -> UeContext:
        return self.contexts.pop(imsi)

    def context(self, imsi: str) -> UeContext:
        try:
            return self.contexts[imsi]
        except KeyError:
            raise KeyError(f"no MME context for IMSI {imsi}") from None

    def connected_count(self) -> int:
        return sum(1 for c in self.contexts.values() if c.state == "connected")


# --------------------------------------------------------------------------
# PCRF + PCEF
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ServicePolicy:
    """Operator-configured policy for one CI service (PCRF database row).

    ``gbr`` (bits/sec) is only meaningful for GBR QCIs (1-4) and makes
    dedicated bearers subject to admission control; ``arp`` governs
    preemption (see :mod:`repro.epc.admission`).
    """

    service_id: str
    qci: int
    precedence: int = 10
    gbr: float = 0.0
    arp: Arp = field(default_factory=Arp)

    def __post_init__(self) -> None:
        qos_for(self.qci)
        if self.gbr < 0:
            raise ValueError("GBR must be non-negative")
        if self.gbr > 0 and not qos_for(self.qci).is_gbr:
            raise ValueError(
                f"QCI {self.qci} is non-GBR; cannot guarantee a bit rate")


@dataclass
class PolicyRule:
    """A dynamically generated PCC rule pushed to the PCEF.

    Carries the service id, QCI and the flow information (UE and CI
    server addresses) exactly as Section 5.4 step (2) describes, plus
    the GBR/ARP attributes admission control needs.
    """

    service_id: str
    qci: int
    precedence: int
    ue_ip: str
    server_ip: str
    server_port: Optional[int] = None
    gbr: float = 0.0
    arp: Arp = field(default_factory=Arp)


class PCRF(ControlEndpoint):
    """Policy and Charging Rules Function."""

    def __init__(self) -> None:
        self._policies: dict[str, ServicePolicy] = {}
        self.rules_generated: list[PolicyRule] = []
        self._init_endpoint()

    def configure(self, policy: ServicePolicy) -> None:
        self._policies[policy.service_id] = policy

    def policy_for(self, service_id: str) -> ServicePolicy:
        try:
            return self._policies[service_id]
        except KeyError:
            raise KeyError(
                f"no PCRF policy configured for service {service_id!r}"
            ) from None

    def generate_rule(self, service_id: str, ue_ip: str, server_ip: str,
                      server_port: Optional[int] = None) -> PolicyRule:
        policy = self.policy_for(service_id)
        rule = PolicyRule(service_id=service_id, qci=policy.qci,
                          precedence=policy.precedence, ue_ip=ue_ip,
                          server_ip=server_ip, server_port=server_port,
                          gbr=policy.gbr, arp=policy.arp)
        self.rules_generated.append(rule)
        return rule


# --------------------------------------------------------------------------
# Gateway sites and GW-Cs
# --------------------------------------------------------------------------

@dataclass
class GatewaySite:
    """One deployment site of a (SGW-U, PGW-U) pair plus its wiring.

    ``central`` is the conventional core site; ACACIA adds MEC sites
    whose GW-Us live next to the CI servers.  The port maps record the
    topology the network builder wired so procedures can emit correct
    flow rules without re-discovering the graph; a site may serve
    several eNodeBs, each over its own S1 link (which is what makes the
    SGW-U the mobility anchor during handover).
    """

    name: str
    sgw_u: "FlowSwitch"
    pgw_u: "FlowSwitch"
    #: eNB name -> that eNB's port toward this site's SGW-U
    enb_ports: dict[str, str]
    #: eNB name -> SGW-U port toward that eNB
    sgw_dl_ports: dict[str, str]
    sgw_ul_port: str            # SGW-U port toward the PGW-U
    pgw_dl_port: str            # PGW-U port toward the SGW-U
    pgw_ul_port: str            # PGW-U port toward the SGi network
    sgw_teids: TeidAllocator = field(
        default_factory=lambda: TeidAllocator(start=0x1000))
    pgw_teids: TeidAllocator = field(
        default_factory=lambda: TeidAllocator(start=0x8000))

    @property
    def is_central(self) -> bool:
        return self.name == "central"

    def enb_port(self, enb_name: str) -> str:
        try:
            return self.enb_ports[enb_name]
        except KeyError:
            raise KeyError(f"site {self.name!r} has no S1 link to "
                           f"{enb_name!r}") from None

    def sgw_dl_port(self, enb_name: str) -> str:
        try:
            return self.sgw_dl_ports[enb_name]
        except KeyError:
            raise KeyError(f"site {self.name!r} has no S1 link to "
                           f"{enb_name!r}") from None


class SGWC(ControlEndpoint):
    """Serving-gateway control plane: manages SGW-U TEIDs per site."""

    def __init__(self, name: str = "sgw-c") -> None:
        self.name = name
        self.sites: dict[str, GatewaySite] = {}
        self._init_endpoint()

    def add_site(self, site: GatewaySite) -> None:
        self.sites[site.name] = site

    def site(self, name: str) -> GatewaySite:
        try:
            return self.sites[name]
        except KeyError:
            raise KeyError(f"SGW-C knows no gateway site {name!r}") from None


class PGWC(ControlEndpoint):
    """PDN-gateway control plane: owns the UE IP pool and the PCEF."""

    def __init__(self, name: str = "pgw-c",
                 ip_pool: Optional[IpPool] = None) -> None:
        self.name = name
        self._init_endpoint()
        self.ip_pool = ip_pool if ip_pool is not None else IpPool()
        self.sites: dict[str, GatewaySite] = {}
        #: PCEF state: rules installed by the PCRF, by (imsi, service_id)
        self.pcef_rules: dict[tuple[str, str], PolicyRule] = {}

    def add_site(self, site: GatewaySite) -> None:
        self.sites[site.name] = site

    def site(self, name: str) -> GatewaySite:
        try:
            return self.sites[name]
        except KeyError:
            raise KeyError(f"PGW-C knows no gateway site {name!r}") from None

    def allocate_ue_ip(self) -> str:
        return self.ip_pool.allocate()

    def pcef_install(self, imsi: str, rule: PolicyRule) -> None:
        self.pcef_rules[(imsi, rule.service_id)] = rule

    def pcef_remove(self, imsi: str, service_id: str) -> PolicyRule:
        return self.pcef_rules.pop((imsi, service_id))
