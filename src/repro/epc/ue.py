"""User equipment (UE) data-plane model.

The UE holds the uplink half of the bearer machinery: its "LTE modem"
evaluates UL TFTs to classify every outgoing packet onto a bearer (this
is ACACIA's source-side traffic classification), tags the packet with
the bearer's QCI, and transmits on the radio link.  It also models the
RRC connected/idle cycle: after ``idle_timeout`` seconds without
traffic the radio connection is released, and the next packet pays the
``promotion_delay`` of an RRC service request, triggering the
release/re-establish control sequences whose overhead Section 4
quantifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.epc.bearer import Bearer, BearerRegistry
from repro.epc.events import DownlinkDelivered
from repro.epc.overhead import LTE_IDLE_TIMEOUT
from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

#: Median LTE idle->connected promotion latency (Huang et al., MobiSys'12).
DEFAULT_PROMOTION_DELAY = 0.26

RADIO_PORT = "radio"


class UEDevice(Node):
    """A smartphone attached to the LTE network."""

    def __init__(self, sim: "Simulator", name: str, imsi: str,
                 idle_timeout: float = LTE_IDLE_TIMEOUT,
                 promotion_delay: float = DEFAULT_PROMOTION_DELAY,
                 manage_idle: bool = False) -> None:
        super().__init__(sim, name, ip=None)
        self.imsi = imsi
        self.bearers = BearerRegistry()
        self.rrc_connected = False
        self.attached = False
        self.idle_timeout = idle_timeout
        self.promotion_delay = promotion_delay
        self.manage_idle = manage_idle
        self.control_plane = None       # set by the network builder
        self.on_downlink: Optional[Callable[[Packet], None]] = None
        self.unrouted_uplink = 0
        self.promotions = 0
        self._idle_timer = None

    # -- attach-time configuration ---------------------------------------

    def assign_ip(self, address: str) -> None:
        self.ip = address

    def add_bearer(self, bearer: Bearer) -> None:
        self.bearers.add(bearer)

    def remove_bearer(self, ebi: int) -> Bearer:
        return self.bearers.remove(ebi)

    # -- uplink ------------------------------------------------------------

    def send_app(self, packet: Packet) -> Optional[Bearer]:
        """Classify and transmit an application packet.

        Returns the bearer the packet was mapped to (None if unrouted).
        The UL TFT lookup happens here, in the "modem", exactly as the
        paper's design places it.
        """
        if not self.attached:
            raise RuntimeError(f"{self.name} is not attached to the network")
        delay = 0.0
        if not self.rrc_connected:
            # promote first: the service request reactivates the bearers,
            # which the TFT classification below depends on
            delay = self._promote()
        bearer = self.bearers.classify_uplink(packet)
        if bearer is None:
            self.unrouted_uplink += 1
            return None
        packet.qci = bearer.qci
        packet.meta["ebi"] = bearer.ebi
        packet.meta["imsi"] = self.imsi
        self._touch()
        if delay > 0:
            self.sim.schedule(delay, self.send, RADIO_PORT, packet)
        else:
            self.send(RADIO_PORT, packet)
        return bearer

    def _promote(self) -> float:
        """RRC idle -> connected transition (service request)."""
        self.rrc_connected = True
        self.promotions += 1
        if self.control_plane is not None:
            self.control_plane.service_request(self)
        return self.promotion_delay

    # -- downlink ------------------------------------------------------------

    def on_receive(self, packet: Packet, link: "Link") -> None:
        self._touch()
        hooks = self.sim.hooks
        if hooks.has(DownlinkDelivered):
            hooks.emit(DownlinkDelivered(ue=self, packet=packet))
        if self.on_downlink is not None:
            self.on_downlink(packet)

    # -- RRC idle cycle ------------------------------------------------------

    def _touch(self) -> None:
        if not self.manage_idle:
            return
        if self._idle_timer is not None:
            self._idle_timer.cancel()
        self._idle_timer = self.sim.schedule(self.idle_timeout, self._go_idle)

    def _go_idle(self) -> None:
        if not self.rrc_connected:
            return
        self.rrc_connected = False
        if self.control_plane is not None:
            self.control_plane.release_to_idle(self)
