"""EPC signalling procedures.

Implements the control-plane choreography the paper relies on:

* **attach** -- default bearer establishment through the central
  gateways (always-on internet connectivity);
* **network-initiated dedicated bearer activation** -- the Section 5.4
  sequence (Request -> Create -> Set-up -> Route): MRS -> PCRF -> PCEF/
  PGW-C -> SGW-C -> MME -> eNB -> UE, with the GW-Cs placing *local*
  GW-U addresses in the F-TEIDs so the bearer's data plane lands on the
  MEC-site switches, then OpenFlow rules pushed by the controller;
* **dedicated bearer deactivation**;
* **release to idle / service request** -- the RRC inactivity cycle
  whose message counts and byte totals are calibrated to the paper's
  measured 15 messages / 2914 bytes (Section 4).

Every message is recorded in a :class:`~repro.epc.overhead.ControlLedger`
and procedures return the elapsed signalling latency computed from
per-hop delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.epc import messages as m
from repro.epc.bearer import Bearer, PacketFilter, TrafficFlowTemplate
from repro.epc.entities import (GatewaySite, HSS, MME, PCRF, PGWC, SGWC,
                                UeContext)
from repro.epc.events import (BearerActivated, BearerDeactivated,
                              HandoverCompleted, ServiceRequestCompleted,
                              UeAttached, UeIpAssigned, UeReleasedToIdle)
from repro.epc.identifiers import FTeid
from repro.epc.messages import ControlMessage
from repro.epc.overhead import ControlLedger
from repro.sdn.openflow import FlowMatch, FlowRule, GtpDecap, GtpEncap, Output

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.enodeb import ENodeB
    from repro.epc.ue import UEDevice
    from repro.sdn.controller import SdnController
    from repro.sim.engine import Simulator

#: Per-hop control-message latencies (seconds) by transport.
DEFAULT_HOP_DELAYS = {
    "RRC": 0.008,        # over the air
    "SCTP": 0.0015,      # S1-AP backhaul hop
    "GTPv2": 0.0015,     # core control hop
    "Diameter": 0.0015,  # Rx / Gx hop
    "OpenFlow": 0.001,   # controller -> switch
    "X2AP": 0.002,       # inter-eNodeB backhaul hop
}

#: Flow-rule priorities: dedicated-bearer DL classification must beat the
#: default bearer's catch-all at the PGW-U.
PRIORITY_DEFAULT = 100
PRIORITY_DEDICATED = 200


@dataclass
class ProcedureResult:
    """Outcome of one signalling procedure."""

    name: str
    messages: list[ControlMessage] = field(default_factory=list)
    elapsed: float = 0.0
    bearer: Optional[Bearer] = None

    @property
    def message_count(self) -> int:
        return len(self.messages)

    @property
    def byte_count(self) -> int:
        return sum(msg.size for msg in self.messages)


class EPCControlPlane:
    """Binds the control entities together and runs the procedures."""

    def __init__(self, sim: "Simulator", mme: MME, hss: HSS, pcrf: PCRF,
                 sgwc: SGWC, pgwc: PGWC, controller: "SdnController",
                 ledger: Optional[ControlLedger] = None,
                 hop_delays: Optional[dict[str, float]] = None) -> None:
        self.sim = sim
        self.mme = mme
        self.hss = hss
        self.pcrf = pcrf
        self.sgwc = sgwc
        self.pgwc = pgwc
        self.controller = controller
        self.ledger = ledger if ledger is not None else controller.ledger
        if controller.ledger is not self.ledger:
            raise ValueError(
                "controller and control plane must share one ledger")
        self.hop_delays = dict(DEFAULT_HOP_DELAYS)
        if hop_delays:
            self.hop_delays.update(hop_delays)
        #: optional GBR admission control (repro.epc.admission)
        self.admission = None

    # -- plumbing ---------------------------------------------------------

    def add_site(self, site: GatewaySite) -> None:
        self.sgwc.add_site(site)
        self.pgwc.add_site(site)
        self.controller.register(site.sgw_u)
        self.controller.register(site.pgw_u)

    def _emit(self, mtype: m.MessageType, sender: str,
              receiver: str, **fields) -> ControlMessage:
        message = ControlMessage(mtype, sender, receiver, fields,
                                 timestamp=self.sim.now)
        self.ledger.record(message)
        return message

    def _finish(self, result: ProcedureResult, start_index: int) -> None:
        result.messages = self.ledger.messages[start_index:]
        result.elapsed = sum(
            self.hop_delays.get(msg.protocol, 0.0015)
            for msg in result.messages)

    def _signal(self, event_type, **fields) -> None:
        """Publish a procedure event, skipping construction if unheard."""
        hooks = self.sim.hooks
        if hooks.has(event_type):
            hooks.emit(event_type(**fields))

    # -- flow-rule helpers --------------------------------------------------

    @staticmethod
    def _ul_cookie(bearer: Bearer) -> str:
        return f"{bearer.imsi}:ebi{bearer.ebi}:ul"

    @staticmethod
    def _dl_cookie(bearer: Bearer) -> str:
        return f"{bearer.imsi}:ebi{bearer.ebi}:dl"

    def _install_uplink_flows(self, bearer: Bearer,
                              site: GatewaySite) -> None:
        if not site.pgw_ul_port:
            raise RuntimeError(
                f"site {site.name!r} has no SGi destination; attach a "
                f"server to it before establishing bearers")
        self._install_sgw_ul_rule(bearer, site)
        self.controller.install_rule(site.pgw_u.name, FlowRule(
            FlowMatch(teid=bearer.pgw_fteid.teid),
            [GtpDecap(), Output(site.pgw_ul_port)],
            priority=PRIORITY_DEFAULT, cookie=self._ul_cookie(bearer)))

    def _install_sgw_ul_rule(self, bearer: Bearer,
                             site: GatewaySite) -> None:
        self.controller.install_rule(site.sgw_u.name, FlowRule(
            FlowMatch(teid=bearer.sgw_s1_fteid.teid),
            [GtpDecap(),
             GtpEncap(bearer.pgw_fteid.teid, site.sgw_u.ip, site.pgw_u.ip),
             Output(site.sgw_ul_port)],
            priority=PRIORITY_DEFAULT, cookie=self._ul_cookie(bearer)))

    def _install_downlink_flows(self, bearer: Bearer, site: GatewaySite,
                                enb: "ENodeB",
                                server_ip: Optional[str] = None) -> None:
        self._install_pgw_dl_rule(bearer, site, server_ip)
        self._install_sgw_dl_rule(bearer, site, enb)

    def _install_pgw_dl_rule(self, bearer: Bearer, site: GatewaySite,
                             server_ip: Optional[str] = None) -> None:
        cookie = self._dl_cookie(bearer)
        if server_ip is None:
            match = FlowMatch(dst_ip=bearer.ue_ip)
            priority = PRIORITY_DEFAULT
        else:
            match = FlowMatch(src_ip=server_ip, dst_ip=bearer.ue_ip)
            priority = PRIORITY_DEDICATED
        self.controller.install_rule(site.pgw_u.name, FlowRule(
            match,
            [GtpEncap(bearer.sgw_s5_fteid.teid, site.pgw_u.ip, site.sgw_u.ip),
             Output(site.pgw_dl_port)],
            priority=priority, cookie=cookie))

    def _install_sgw_dl_rule(self, bearer: Bearer, site: GatewaySite,
                             enb: "ENodeB") -> None:
        priority = (PRIORITY_DEFAULT if bearer.default
                    else PRIORITY_DEDICATED)
        self.controller.install_rule(site.sgw_u.name, FlowRule(
            FlowMatch(teid=bearer.sgw_s5_fteid.teid),
            [GtpDecap(),
             GtpEncap(bearer.enb_fteid.teid, site.sgw_u.ip,
                      bearer.enb_fteid.address),
             Output(site.sgw_dl_port(enb.name))],
            priority=priority, cookie=self._dl_cookie(bearer)))

    def _allocate_tunnel_endpoints(self, bearer: Bearer, site: GatewaySite,
                                   enb: "ENodeB") -> None:
        bearer.sgw_s1_fteid = FTeid(site.sgw_teids.allocate(), site.sgw_u.ip)
        bearer.sgw_s5_fteid = FTeid(site.sgw_teids.allocate(), site.sgw_u.ip)
        bearer.pgw_fteid = FTeid(site.pgw_teids.allocate(), site.pgw_u.ip)
        bearer.enb_fteid = enb.setup_bearer(
            bearer.ue_ip, bearer.ebi, bearer.sgw_s1_fteid,
            site.enb_port(enb.name))
        bearer.gateway_site = site.name

    # -- procedures -----------------------------------------------------------

    def attach(self, ue: "UEDevice", enb: "ENodeB",
               site_name: str = "central") -> ProcedureResult:
        """Attach a UE: authentication + default bearer establishment."""
        if ue.attached:
            raise RuntimeError(f"{ue.name} is already attached")
        profile = self.hss.lookup(ue.imsi)     # raises for unknown IMSI
        site = self.sgwc.site(site_name)
        result = ProcedureResult("attach")
        start = len(self.ledger)

        self._emit(m.RRC_CONNECTION_REQUEST, ue.name, enb.name)
        self._emit(m.RRC_CONNECTION_SETUP, enb.name, ue.name)
        self._emit(m.RRC_CONNECTION_SETUP_COMPLETE, ue.name, enb.name)
        self._emit(m.ATTACH_INITIAL_UE_MESSAGE, enb.name, self.mme.name,
                   imsi=ue.imsi)
        self._emit(m.CREATE_SESSION_REQUEST, self.mme.name, self.sgwc.name)
        self._emit(m.CREATE_SESSION_REQUEST, self.sgwc.name, self.pgwc.name)

        ue.assign_ip(self.pgwc.allocate_ue_ip())
        # announced synchronously so fabric-level subscribers (radio-port
        # registration) run before the eNodeB validates the bearer below
        self._signal(UeIpAssigned, ue=ue, address=ue.ip)
        bearer = Bearer(ebi=ue.bearers.allocate_ebi(), qci=profile.default_qci,
                        imsi=ue.imsi, ue_ip=ue.ip, default=True)
        self._allocate_tunnel_endpoints(bearer, site, enb)

        self._emit(m.CREATE_SESSION_RESPONSE, self.pgwc.name, self.sgwc.name,
                   pgw_fteid=str(bearer.pgw_fteid))
        self._emit(m.CREATE_SESSION_RESPONSE, self.sgwc.name, self.mme.name,
                   sgw_fteid=str(bearer.sgw_s1_fteid))
        self._emit(m.INITIAL_CONTEXT_SETUP_REQUEST, self.mme.name, enb.name)
        self._emit(m.RRC_CONNECTION_RECONFIGURATION, enb.name, ue.name)
        self._emit(m.RRC_CONNECTION_RECONFIGURATION_COMPLETE, ue.name,
                   enb.name)
        self._emit(m.INITIAL_CONTEXT_SETUP_RESPONSE, enb.name, self.mme.name,
                   enb_fteid=str(bearer.enb_fteid))
        self._emit(m.ATTACH_COMPLETE_UPLINK, enb.name, self.mme.name)
        self._emit(m.MODIFY_BEARER_REQUEST, self.mme.name, self.sgwc.name)
        self._emit(m.MODIFY_BEARER_RESPONSE, self.sgwc.name, self.mme.name)

        self._install_uplink_flows(bearer, site)
        self._install_downlink_flows(bearer, site, enb)

        ue.add_bearer(bearer)
        ue.attached = True
        ue.rrc_connected = True
        ue.control_plane = self
        self.mme.register(UeContext(imsi=ue.imsi, ue=ue, enb=enb))

        self._finish(result, start)
        result.bearer = bearer
        self._signal(UeAttached, ue=ue, enb=enb, result=result)
        return result

    def activate_dedicated_bearer(
            self, ue: "UEDevice", service_id: str, server_ip: str,
            site_name: str, server_port: Optional[int] = None,
            requested_by: str = "mrs") -> ProcedureResult:
        """Network-initiated dedicated bearer to a CI server (Section 5.4)."""
        context = self.mme.context(ue.imsi)
        enb = context.enb
        site = self.sgwc.site(site_name)
        result = ProcedureResult("activate-dedicated-bearer")
        start = len(self.ledger)

        # (1) Request + (2) Create: MRS -> PCRF -> PCEF in PGW-C
        self._emit(m.AA_REQUEST, requested_by, "pcrf",
                   service=service_id, ue_ip=ue.ip, server_ip=server_ip)
        rule = self.pcrf.generate_rule(service_id, ue.ip, server_ip,
                                       server_port)
        self._emit(m.RE_AUTH_REQUEST, "pcrf", self.pgwc.name,
                   qci=rule.qci, service=service_id)
        self.pgwc.pcef_install(ue.imsi, rule)
        self._emit(m.RE_AUTH_ANSWER, self.pgwc.name, "pcrf")

        # GBR admission (optional): reserve bandwidth, preempting
        # lower-ARP bearers if the rule's ARP permits
        ebi = ue.bearers.allocate_ebi()
        if self.admission is not None:
            try:
                self.admission.request(ue.imsi, ebi, site_name, rule.qci,
                                       rule.gbr, rule.arp)
            except Exception:
                self.pgwc.pcef_remove(ue.imsi, service_id)
                self._emit(m.AA_ANSWER, "pcrf", requested_by,
                           outcome="rejected")
                self._finish(result, start)
                raise
            for victim in self.admission.drain_preempted():
                victim_ue = self.mme.context(victim.imsi).ue
                self.deactivate_dedicated_bearer(
                    victim_ue, victim.ebi, requested_by="admission")

        # (3) Set-up: GW-Cs place *local* GW-U addresses in the F-TEIDs
        bearer = Bearer(ebi=ebi, qci=rule.qci,
                        imsi=ue.imsi, ue_ip=ue.ip, default=False)
        bearer.tft = TrafficFlowTemplate([PacketFilter(
            precedence=rule.precedence, direction="bidirectional",
            remote_address=server_ip, remote_port=server_port)])
        self._allocate_tunnel_endpoints(bearer, site, enb)

        self._emit(m.CREATE_BEARER_REQUEST, self.pgwc.name, self.sgwc.name,
                   pgw_fteid=str(bearer.pgw_fteid))
        self._emit(m.CREATE_BEARER_REQUEST, self.sgwc.name, self.mme.name,
                   sgw_fteid=str(bearer.sgw_s1_fteid))
        self._emit(m.ERAB_SETUP_REQUEST, self.mme.name, enb.name,
                   sgw_fteid=str(bearer.sgw_s1_fteid))
        self._emit(m.RRC_CONNECTION_RECONFIGURATION, enb.name, ue.name,
                   ebi=bearer.ebi, qci=bearer.qci, tft_remote=server_ip)
        self._emit(m.RRC_CONNECTION_RECONFIGURATION_COMPLETE, ue.name,
                   enb.name)
        self._emit(m.ERAB_SETUP_RESPONSE, enb.name, self.mme.name,
                   enb_fteid=str(bearer.enb_fteid))
        self._emit(m.CREATE_BEARER_RESPONSE, self.mme.name, self.sgwc.name)
        self._emit(m.CREATE_BEARER_RESPONSE, self.sgwc.name, self.pgwc.name)
        self._emit(m.AA_ANSWER, "pcrf", requested_by)

        # (4) Route: OpenFlow rules onto the local GW-Us
        self._install_uplink_flows(bearer, site)
        self._install_downlink_flows(bearer, site, enb, server_ip=server_ip)

        ue.add_bearer(bearer)

        self._finish(result, start)
        result.bearer = bearer
        self._signal(BearerActivated, ue=ue, bearer=bearer, result=result)
        return result

    def deactivate_dedicated_bearer(self, ue: "UEDevice", ebi: int,
                                    requested_by: str = "mrs"
                                    ) -> ProcedureResult:
        """Tear down a dedicated bearer and its flow state."""
        context = self.mme.context(ue.imsi)
        enb = context.enb
        bearer = ue.bearers.bearers.get(ebi)
        if bearer is None or bearer.default:
            raise ValueError(f"EBI {ebi} is not a dedicated bearer of "
                             f"{ue.name}")
        site = self.sgwc.site(bearer.gateway_site)
        result = ProcedureResult("deactivate-dedicated-bearer")
        start = len(self.ledger)

        self._emit(m.SESSION_TERMINATION_REQUEST, requested_by, "pcrf")
        self._emit(m.RE_AUTH_REQUEST, "pcrf", self.pgwc.name)
        self._emit(m.DELETE_BEARER_REQUEST, self.pgwc.name, self.sgwc.name)
        self._emit(m.DELETE_BEARER_REQUEST, self.sgwc.name, self.mme.name)
        self._emit(m.ERAB_RELEASE_COMMAND, self.mme.name, enb.name)
        self._emit(m.RRC_CONNECTION_RECONFIGURATION, enb.name, ue.name)
        self._emit(m.RRC_CONNECTION_RECONFIGURATION_COMPLETE, ue.name,
                   enb.name)
        self._emit(m.ERAB_RELEASE_RESPONSE, enb.name, self.mme.name)
        self._emit(m.DELETE_BEARER_RESPONSE, self.mme.name, self.sgwc.name)
        self._emit(m.DELETE_BEARER_RESPONSE, self.sgwc.name, self.pgwc.name)
        self._emit(m.RE_AUTH_ANSWER, self.pgwc.name, "pcrf")
        self._emit(m.SESSION_TERMINATION_ANSWER, "pcrf", requested_by)

        service_ids = [sid for (imsi, sid) in self.pgwc.pcef_rules
                       if imsi == ue.imsi]
        for sid in service_ids:
            self.pgwc.pcef_remove(ue.imsi, sid)

        self.controller.remove_rules(site.sgw_u.name, self._ul_cookie(bearer))
        self.controller.remove_rules(site.pgw_u.name, self._ul_cookie(bearer))
        self.controller.remove_rules(site.sgw_u.name, self._dl_cookie(bearer))
        self.controller.remove_rules(site.pgw_u.name, self._dl_cookie(bearer))

        site.sgw_teids.release(bearer.sgw_s1_fteid.teid)
        site.sgw_teids.release(bearer.sgw_s5_fteid.teid)
        site.pgw_teids.release(bearer.pgw_fteid.teid)
        enb.release_bearer(ue.ip, ebi)
        ue.remove_bearer(ebi)
        if self.admission is not None:
            self.admission.release(ue.imsi, ebi, bearer.gateway_site)

        self._finish(result, start)
        result.bearer = bearer
        self._signal(BearerDeactivated, ue=ue, ebi=ebi, result=result)
        return result

    def release_to_idle(self, ue: "UEDevice") -> ProcedureResult:
        """RRC-inactivity release: the calibrated 7-message sequence
        (3 SCTP + 2 GTPv2 + 2 OpenFlow) for a single-bearer UE."""
        context = self.mme.context(ue.imsi)
        enb = context.enb
        result = ProcedureResult("release-to-idle")
        start = len(self.ledger)

        self._emit(m.UE_CONTEXT_RELEASE_REQUEST, enb.name, self.mme.name)
        self._emit(m.RELEASE_ACCESS_BEARERS_REQUEST, self.mme.name,
                   self.sgwc.name)
        self._emit(m.RELEASE_ACCESS_BEARERS_RESPONSE, self.sgwc.name,
                   self.mme.name)
        self._emit(m.UE_CONTEXT_RELEASE_COMMAND, self.mme.name, enb.name)
        self._emit(m.UE_CONTEXT_RELEASE_COMPLETE, enb.name, self.mme.name)

        # only the S1 leg is torn down: the SGW-U's rules go, but the
        # PGW-U keeps tunnelling downlink toward the SGW-U, where
        # misses feed the paging buffer (see repro.epc.paging)
        for bearer in list(ue.bearers):
            if not bearer.active:
                continue
            site = self.sgwc.site(bearer.gateway_site)
            self.controller.remove_rules(site.sgw_u.name,
                                         self._ul_cookie(bearer))
            self.controller.remove_rules(site.sgw_u.name,
                                         self._dl_cookie(bearer))
            bearer.active = False

        ue.rrc_connected = False
        context.state = "idle"
        self._finish(result, start)
        self._signal(UeReleasedToIdle, ue=ue, result=result)
        return result

    def service_request(self, ue: "UEDevice") -> ProcedureResult:
        """Idle -> connected re-establishment: the calibrated 8-message
        sequence (4 SCTP + 2 GTPv2 + 2 OpenFlow) for a single-bearer UE."""
        context = self.mme.context(ue.imsi)
        enb = context.enb
        if context.state == "connected":
            return ProcedureResult("service-request(noop)")
        result = ProcedureResult("service-request")
        start = len(self.ledger)

        self._emit(m.INITIAL_UE_MESSAGE, enb.name, self.mme.name)
        self._emit(m.INITIAL_CONTEXT_SETUP_REQUEST, self.mme.name, enb.name)
        self._emit(m.INITIAL_CONTEXT_SETUP_RESPONSE, enb.name, self.mme.name)
        self._emit(m.UPLINK_NAS_TRANSPORT, enb.name, self.mme.name)
        self._emit(m.MODIFY_BEARER_REQUEST, self.mme.name, self.sgwc.name)
        self._emit(m.MODIFY_BEARER_RESPONSE, self.sgwc.name, self.mme.name)

        for bearer in list(ue.bearers):
            if bearer.active:
                continue
            site = self.sgwc.site(bearer.gateway_site)
            self._install_sgw_ul_rule(bearer, site)
            self._install_sgw_dl_rule(bearer, site, enb)
            bearer.active = True

        ue.rrc_connected = True
        context.state = "connected"
        self._finish(result, start)
        self._signal(ServiceRequestCompleted, ue=ue, result=result)
        return result

    def handover(self, ue: "UEDevice", target_enb: "ENodeB",
                 radio_port: str) -> ProcedureResult:
        """X2-based handover with S1 path switch.

        The SGW-U is the mobility anchor: every bearer keeps its S5
        segment and its serving gateway site; only the S1 leg moves --
        the target eNodeB allocates fresh downlink TEIDs and the SGW-C
        re-points the SGW-U's downlink flow rules at the target.  A
        dedicated MEC bearer therefore survives the handover with its
        local gateways intact (the CI server does not change).

        ``radio_port`` is the target eNodeB's port name for the UE's
        (re-attached) radio link; the network builder wires the link
        before invoking the procedure.
        """
        context = self.mme.context(ue.imsi)
        source = context.enb
        if source is target_enb:
            return ProcedureResult("handover(noop)")
        if not ue.rrc_connected:
            raise RuntimeError(
                f"{ue.name} is idle; handover needs RRC connected")
        result = ProcedureResult("handover")
        start = len(self.ledger)

        # preparation over X2: target admits the UE and all its bearers
        self._emit(m.X2_HANDOVER_REQUEST, source.name, target_enb.name,
                   imsi=ue.imsi)
        target_enb.register_ue(ue.ip, radio_port)
        active = [b for b in ue.bearers if b.active]
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            bearer.enb_fteid = target_enb.setup_bearer(
                ue.ip, bearer.ebi, bearer.sgw_s1_fteid,
                site.enb_port(target_enb.name))
        self._emit(m.X2_HANDOVER_REQUEST_ACK, target_enb.name, source.name)

        # execution: the UE is commanded over and syncs to the target
        self._emit(m.RRC_CONNECTION_RECONFIGURATION, source.name, ue.name,
                   handover=True)
        self._emit(m.X2_SN_STATUS_TRANSFER, source.name, target_enb.name)
        self._emit(m.RRC_CONNECTION_RECONFIGURATION_COMPLETE, ue.name,
                   target_enb.name)

        # completion: S1 path switch re-anchors the downlink at the SGW-Us
        self._emit(m.PATH_SWITCH_REQUEST, target_enb.name, self.mme.name)
        self._emit(m.MODIFY_BEARER_REQUEST, self.mme.name, self.sgwc.name)
        self._emit(m.MODIFY_BEARER_RESPONSE, self.sgwc.name, self.mme.name)
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            self.controller.remove_rules(site.sgw_u.name,
                                         self._dl_cookie(bearer))
            self._install_sgw_dl_rule(bearer, site, target_enb)
        self._emit(m.PATH_SWITCH_REQUEST_ACK, self.mme.name,
                   target_enb.name)
        self._emit(m.X2_UE_CONTEXT_RELEASE, target_enb.name, source.name)
        for bearer in active:
            source.release_bearer(ue.ip, bearer.ebi)
        source.radio_ports.pop(ue.ip, None)
        context.enb = target_enb

        self._finish(result, start)
        self._signal(HandoverCompleted, ue=ue, source=source,
                     target=target_enb, result=result)
        return result

    def s1_handover(self, ue: "UEDevice", target_enb: "ENodeB",
                    radio_port: str) -> ProcedureResult:
        """S1 (MME-coordinated) handover, for cells without an X2 link.

        Same data-plane outcome as :meth:`handover` -- the SGW-U
        anchors every bearer and only the S1 leg moves -- but the
        preparation and completion run through the MME, costing more
        signalling and a longer interruption.
        """
        context = self.mme.context(ue.imsi)
        source = context.enb
        if source is target_enb:
            return ProcedureResult("s1-handover(noop)")
        if not ue.rrc_connected:
            raise RuntimeError(
                f"{ue.name} is idle; handover needs RRC connected")
        result = ProcedureResult("s1-handover")
        start = len(self.ledger)

        # preparation through the MME
        self._emit(m.HANDOVER_REQUIRED, source.name, self.mme.name,
                   imsi=ue.imsi)
        self._emit(m.HANDOVER_REQUEST, self.mme.name, target_enb.name)
        target_enb.register_ue(ue.ip, radio_port)
        active = [b for b in ue.bearers if b.active]
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            bearer.enb_fteid = target_enb.setup_bearer(
                ue.ip, bearer.ebi, bearer.sgw_s1_fteid,
                site.enb_port(target_enb.name))
        self._emit(m.HANDOVER_REQUEST_ACK, target_enb.name, self.mme.name)
        self._emit(m.HANDOVER_COMMAND, self.mme.name, source.name)

        # execution over the air
        self._emit(m.RRC_CONNECTION_RECONFIGURATION, source.name, ue.name,
                   handover=True)
        self._emit(m.RRC_CONNECTION_RECONFIGURATION_COMPLETE, ue.name,
                   target_enb.name)
        self._emit(m.HANDOVER_NOTIFY, target_enb.name, self.mme.name)

        # completion: bearer modification + downlink path switch
        self._emit(m.MODIFY_BEARER_REQUEST, self.mme.name, self.sgwc.name)
        self._emit(m.MODIFY_BEARER_RESPONSE, self.sgwc.name, self.mme.name)
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            self.controller.remove_rules(site.sgw_u.name,
                                         self._dl_cookie(bearer))
            self._install_sgw_dl_rule(bearer, site, target_enb)

        # the MME releases the source-side context
        self._emit(m.UE_CONTEXT_RELEASE_COMMAND, self.mme.name,
                   source.name)
        self._emit(m.UE_CONTEXT_RELEASE_COMPLETE, source.name,
                   self.mme.name)
        for bearer in active:
            source.release_bearer(ue.ip, bearer.ebi)
        source.radio_ports.pop(ue.ip, None)
        context.enb = target_enb

        self._finish(result, start)
        self._signal(HandoverCompleted, ue=ue, source=source,
                     target=target_enb, result=result)
        return result
